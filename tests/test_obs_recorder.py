"""RunRecorder: JSONL round-trips, atomic manifests, and crashed-run behavior.

Crash scenarios reuse the deterministic injectors from
``repro.resilience.faults`` — the same ones the resilience suite drives
checkpoint recovery with — so "a run record survives the faults the rest
of the system survives" is tested with the identical failure modes.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.nn import Adam, MSELoss, Trainer, mlp
from repro.obs import (
    RunRecorder,
    active_recorder,
    config_hash,
    counter,
    record_event,
    span,
)
from repro.obs import metrics as metrics_mod
from repro.obs import timing as timing_mod
from repro.obs.recorder import EVENTS_FILENAME, MANIFEST_FILENAME, NullRecorder
from repro.obs.report import load_run
from repro.resilience.faults import KillAtEpoch, SimulatedCrash, truncate_file


@pytest.fixture(autouse=True)
def _clean_obs_state():
    yield
    # a test that leaks an active recorder must not poison the others
    timing_mod.deactivate(None)
    metrics_mod.deactivate(None)
    import repro.obs.recorder as recorder_mod

    recorder_mod._ACTIVE = None


class TestRoundTrip:
    def test_events_and_manifest_round_trip(self, tmp_path):
        run_dir = tmp_path / "run-a"
        with RunRecorder(run_dir, meta={"seed": 7, "profile": "quick"}) as rec:
            with span("outer", size=2):
                with span("inner"):
                    counter("work.items").inc(2)
            record_event("checkpoint", path="ck.npz", epoch=3)
            assert active_recorder() is rec

        assert (run_dir / EVENTS_FILENAME).exists()
        assert (run_dir / MANIFEST_FILENAME).exists()

        record = load_run(run_dir)
        assert record.status == "completed"
        assert [r.name for r in record.roots] == ["outer"]
        assert [c.name for c in record.roots[0].children] == ["inner"]
        assert record.metrics["counters"]["work.items"] == 2
        kinds = [e["kind"] for e in record.events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert "checkpoint" in kinds
        # seq is a gapless monotonic sequence
        assert [e["seq"] for e in record.events] == list(range(len(record.events)))

    def test_manifest_provenance_fields(self, tmp_path):
        meta = {"seed": 11, "dataset": "hurricane"}
        with RunRecorder(tmp_path / "run", meta=meta):
            with span("step"):
                pass
        manifest = json.loads((tmp_path / "run" / MANIFEST_FILENAME).read_text())
        assert manifest["seed"] == 11
        assert manifest["config"] == meta
        assert manifest["config_hash"] == config_hash(meta)
        assert manifest["versions"]["numpy"] == np.__version__
        assert manifest["spans"]["step"]["count"] == 1
        assert manifest["events"] == len(load_run(tmp_path / "run").events)

    def test_config_hash_is_stable_and_order_independent(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_deactivation_restores_previous_sinks(self, tmp_path):
        with RunRecorder(tmp_path / "outer-run") as outer:
            assert active_recorder() is outer
            with RunRecorder(tmp_path / "nested-run") as nested:
                assert active_recorder() is nested
            assert active_recorder() is outer
        assert active_recorder() is None
        assert timing_mod.active_tracker() is None
        assert metrics_mod.active_registry() is None

    def test_null_recorder_is_inert(self, tmp_path):
        rec = NullRecorder()
        with rec:
            rec.event("anything", x=1)
            assert active_recorder() is None
        assert rec.run_dir is None
        assert list(tmp_path.iterdir()) == []

    def test_record_event_without_recorder_is_noop(self):
        record_event("orphan", detail="nothing listens")  # must not raise


class TestCrashTolerance:
    def test_exception_finalizes_as_failed(self, tmp_path):
        run_dir = tmp_path / "crashed"
        with pytest.raises(SimulatedCrash):
            with RunRecorder(run_dir):
                with span("train.fit"):
                    raise SimulatedCrash("injected")
        manifest = json.loads((run_dir / MANIFEST_FILENAME).read_text())
        assert manifest["status"] == "failed"
        record = load_run(run_dir)
        assert record.status == "failed"
        assert record.roots[0].attrs["error"] == "SimulatedCrash"

    def test_killed_training_run_leaves_readable_prefix(self, tmp_path):
        """A KillAtEpoch-crashed fit still yields per-epoch span events."""
        gen = np.random.default_rng(0)
        x = gen.normal(size=(64, 3))
        y = x.sum(axis=1, keepdims=True)
        model = mlp(3, [8], 1, seed=0)
        trainer = Trainer(model, MSELoss(), Adam(model.parameters()), batch_size=32, seed=0)

        run_dir = tmp_path / "killed"
        with pytest.raises(SimulatedCrash):
            with RunRecorder(run_dir):
                trainer.fit(x, y, epochs=10, callback=KillAtEpoch(3))

        record = load_run(run_dir)
        assert record.status == "failed"
        epoch_spans = [e for e in record.events
                       if e["kind"] == "span_close" and e["name"] == "train.epoch"]
        assert len(epoch_spans) == 4  # epochs 0..3 completed before the kill
        assert record.metrics["counters"]["train.epochs"] == 4

    def test_hard_kill_without_finalize_reads_incomplete(self, tmp_path):
        """No run.json + a truncated final event line ⇒ a usable prefix."""
        run_dir = tmp_path / "hard-kill"
        with RunRecorder(run_dir):
            with span("train.fit"):
                with span("train.epoch"):
                    pass
        # simulate the process dying mid-write: drop the manifest, truncate
        # the stream so its final line is cut mid-JSON
        os.unlink(run_dir / MANIFEST_FILENAME)
        truncate_file(run_dir / EVENTS_FILENAME, keep_fraction=0.8)

        record = load_run(run_dir)
        assert record.status == "incomplete"
        assert record.events[0]["kind"] == "run_start"
        assert any(e["kind"] == "span_open" for e in record.events)

    def test_manifest_write_failure_leaves_no_partial_file(self, tmp_path, monkeypatch):
        run_dir = tmp_path / "no-partial"
        rec = RunRecorder(run_dir).start()
        with span("s"):
            pass
        monkeypatch.setattr("repro.obs.recorder.os.replace",
                            lambda *a: (_ for _ in ()).throw(OSError("disk full")))
        with pytest.raises(OSError):
            rec.finalize()
        monkeypatch.undo()
        assert not (run_dir / MANIFEST_FILENAME).exists()
        assert not list(run_dir.glob("*.tmp"))  # temp file cleaned up


class TestTrainingIntegration:
    def test_fit_emits_spans_metrics_and_checkpoint_events(self, tmp_path):
        from repro.resilience import CheckpointConfig

        gen = np.random.default_rng(1)
        x = gen.normal(size=(64, 3))
        y = x.sum(axis=1, keepdims=True)
        model = mlp(3, [8], 1, seed=0)
        trainer = Trainer(model, MSELoss(), Adam(model.parameters()), batch_size=32, seed=0)

        run_dir = tmp_path / "fit"
        ckpt = CheckpointConfig(tmp_path / "ck.npz", every=2)
        with RunRecorder(run_dir):
            trainer.fit(x, y, epochs=4, checkpoint=ckpt)

        record = load_run(run_dir)
        fit_roots = [r for r in record.roots if r.name == "train.fit"]
        assert len(fit_roots) == 1
        epochs = [c for c in fit_roots[0].children if c.name == "train.epoch"]
        assert len(epochs) == 4
        snap = record.metrics
        assert snap["counters"]["train.epochs"] == 4
        assert snap["counters"]["train.batches"] == 8  # 64 rows / 32 per batch * 4
        assert snap["counters"]["train.checkpoints"] >= 2
        assert snap["gauges"]["train.loss"] is not None
        assert snap["histograms"]["train.epoch.seconds"]["count"] == 4
        assert any(e["kind"] == "checkpoint" for e in record.events)

    def test_training_unchanged_when_disabled(self):
        """Instrumented Trainer.fit must be bit-identical with obs off vs on."""
        def run_once(record_dir=None):
            gen = np.random.default_rng(2)
            x = gen.normal(size=(48, 3))
            y = x.sum(axis=1, keepdims=True)
            model = mlp(3, [8], 1, seed=3)
            trainer = Trainer(model, MSELoss(), Adam(model.parameters()),
                              batch_size=16, seed=3)
            if record_dir is None:
                history = trainer.fit(x, y, epochs=3)
            else:
                with RunRecorder(record_dir):
                    history = trainer.fit(x, y, epochs=3)
            return history.train_loss, [p.value.copy() for p in model.parameters()]

        loss_off, params_off = run_once()
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            loss_on, params_on = run_once(record_dir=f"{tmp}/run")
        assert loss_off == loss_on
        for a, b in zip(params_off, params_on):
            np.testing.assert_array_equal(a, b)
