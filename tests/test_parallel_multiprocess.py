"""Multi-process execution paths of repro.parallel.

Separate module so the spawn-heavy tests are easy to deselect on
constrained machines; they degrade gracefully (ParallelExecutor falls back
to serial if process creation fails, so results are asserted either way).
"""

import numpy as np

from repro.interpolation import DelaunayLinearInterpolator, ModifiedShepardInterpolator
from repro.parallel import ParallelExecutor, parallel_reconstruct


def _cube(v):
    return v**3


class TestMultiProcess:
    def test_pool_map_matches_serial(self):
        ex = ParallelExecutor(max_workers=2)
        payloads = list(range(25))
        assert ex.map(_cube, payloads) == [v**3 for v in payloads]

    def test_parallel_reconstruct_two_workers(self, sample):
        interp = DelaunayLinearInterpolator()
        serial = interp.reconstruct(sample)
        parallel = parallel_reconstruct(
            interp, sample, executor=ParallelExecutor(max_workers=2), num_chunks=4
        )
        np.testing.assert_allclose(parallel, serial)

    def test_parallel_reconstruct_shepard_two_workers(self, sample):
        interp = ModifiedShepardInterpolator()
        serial = interp.reconstruct(sample)
        parallel = parallel_reconstruct(
            interp, sample, executor=ParallelExecutor(max_workers=2), num_chunks=3
        )
        np.testing.assert_allclose(parallel, serial)
