"""Per-rule fixtures: every rule has a trigger, a clean, and a suppression case.

Each fixture is a tiny on-disk project run through the real engine, so
these tests also exercise discovery, module-name derivation and the
``# repro: noqa[RULE-ID]`` pipeline exactly as ``python -m repro.checks``
does.  A meta-test asserts the fixture table covers the whole battery, so
adding a rule without fixtures fails the suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.checks import ALL_RULES, CheckConfig, run_checks


@dataclass(frozen=True)
class RuleFixture:
    """Trigger/clean/suppressed sources for one rule."""

    relpath: str                    # where the varying file lives
    trigger: str                    # source producing >= 1 finding
    clean: str                      # source producing 0 findings
    suppressed: str                 # trigger + noqa producing 0 findings
    extra_files: dict = field(default_factory=dict)   # shared scaffolding


FIXTURES: dict[str, RuleFixture] = {
    "RNG001": RuleFixture(
        relpath="repro_fixture/sim.py",
        trigger=(
            "import numpy as np\n"
            "def draw(n):\n"
            "    np.random.seed(0)\n"
            "    return np.random.rand(n)\n"
        ),
        clean=(
            "import numpy as np\n"
            "def draw(n, rng: np.random.Generator):\n"
            "    return rng.random(n)\n"
        ),
        suppressed=(
            "import numpy as np\n"
            "def draw(n):\n"
            "    np.random.seed(0)  # repro: noqa[RNG001]\n"
            "    return np.random.rand(n)  # repro: noqa[RNG001]\n"
        ),
    ),
    "RNG002": RuleFixture(
        relpath="repro_fixture/sim.py",
        trigger=(
            "import numpy as np\n"
            "def init():\n"
            "    return np.random.default_rng()\n"
        ),
        clean=(
            "import numpy as np\n"
            "def init(seed=0):\n"
            "    return np.random.default_rng(seed)\n"
        ),
        suppressed=(
            "import numpy as np\n"
            "def init():\n"
            "    return np.random.default_rng()  # repro: noqa[RNG002]\n"
        ),
    ),
    "DT001": RuleFixture(
        relpath="nn/layers_fixture.py",
        trigger=(
            "import numpy as np\n"
            "def forward(x):\n"
            "    return np.asarray(x) * 2\n"
        ),
        clean=(
            "import numpy as np\n"
            "def forward(x):\n"
            "    return np.asarray(x, dtype=np.float64) * 2\n"
        ),
        suppressed=(
            "import numpy as np\n"
            "def forward(x):\n"
            "    return np.asarray(x) * 2  # repro: noqa[DT001]\n"
        ),
    ),
    "DT002": RuleFixture(
        relpath="metrics/fast_fixture.py",
        trigger=(
            "import numpy as np\n"
            "def shrink(x):\n"
            "    return x.astype(np.float32)\n"
        ),
        clean=(
            "import numpy as np\n"
            "def shrink(x):\n"
            "    return x.astype(np.float64)\n"
        ),
        suppressed=(
            "import numpy as np\n"
            "def shrink(x):\n"
            "    return x.astype(np.float32)  # repro: noqa[DT002]\n"
        ),
    ),
    "DIV001": RuleFixture(
        relpath="metrics/ratio_fixture.py",
        trigger=(
            "def ratio(a, b):\n"
            "    return a / b\n"
        ),
        clean=(
            "EPS = 1e-12\n"
            "def ratio(a, b):\n"
            "    return a / (b + EPS)\n"
        ),
        suppressed=(
            "def ratio(a, b):\n"
            "    return a / b  # repro: noqa[DIV001]\n"
        ),
    ),
    "REG001": RuleFixture(
        relpath="plugins/registry.py",
        trigger=(
            "from plugins.impl import Alpha, Beta\n"
            'THINGS = {"alpha": Alpha, "beta": Beta, "alpha": Alpha}\n'
        ),
        clean=(
            "from plugins.impl import Alpha\n"
            'THINGS = {"alpha": Alpha}\n'
        ),
        suppressed=(
            "from plugins.impl import Alpha, Beta\n"
            "THINGS = {\n"
            '    "alpha": Alpha,\n'
            '    "beta": Beta,  # repro: noqa[REG001]\n'
            '    "alpha": Alpha,  # repro: noqa[REG001]\n'
            "}\n"
        ),
        extra_files={
            "plugins/__init__.py": '__all__ = ["Alpha"]\nfrom plugins.impl import Alpha\n',
            "plugins/impl.py": "class Alpha: pass\n\nclass Beta: pass\n",
        },
    ),
    "IMP001": RuleFixture(
        relpath="pkg/alpha.py",
        trigger="from pkg.beta import helper\n\ndef top():\n    return helper\n",
        clean="def top():\n    from pkg.beta import helper\n    return helper\n",
        suppressed=(
            "from pkg.beta import helper  # repro: noqa[IMP001]\n"
            "\n"
            "def top():\n"
            "    return helper\n"
        ),
        extra_files={
            "pkg/__init__.py": "",
            "pkg/beta.py": "from pkg.alpha import top\n\ndef helper():\n    return top\n",
        },
    ),
    "DEF001": RuleFixture(
        relpath="repro_fixture/util.py",
        trigger="def collect(x, into=[]):\n    into.append(x)\n    return into\n",
        clean=(
            "def collect(x, into=None):\n"
            "    into = [] if into is None else into\n"
            "    into.append(x)\n"
            "    return into\n"
        ),
        suppressed=(
            "def collect(x, into=[]):  # repro: noqa[DEF001]\n"
            "    into.append(x)\n"
            "    return into\n"
        ),
    ),
    "ATM001": RuleFixture(
        relpath="repro_fixture/store.py",
        trigger=(
            "import numpy as np\n"
            "def save_state(path, arr):\n"
            "    np.savez_compressed(path, arr=arr)\n"
        ),
        clean=(
            "import os\n"
            "import numpy as np\n"
            "def save_state(path, arr):\n"
            "    tmp = str(path) + '.tmp'\n"
            "    np.savez_compressed(tmp, arr=arr)\n"
            "    os.replace(tmp, path)\n"
        ),
        suppressed=(
            "import numpy as np\n"
            "def save_state(path, arr):\n"
            "    np.savez_compressed(path, arr=arr)  # repro: noqa[ATM001]\n"
        ),
    ),
    "THR001": RuleFixture(
        relpath="repro_fixture/pipe.py",
        trigger=(
            "import threading\n"
            "def run(items):\n"
            "    total = {'n': 0}\n"
            "    def worker():\n"
            "        for _ in items:\n"
            "            total['n'] += 1\n"
            "    t = threading.Thread(target=worker)\n"
            "    t.start()\n"
            "    t.join()\n"
            "    return total['n']\n"
        ),
        clean=(
            "import threading\n"
            "def run(items):\n"
            "    total = {'n': 0}\n"
            "    lock = threading.Lock()\n"
            "    def worker():\n"
            "        for _ in items:\n"
            "            with lock:\n"
            "                total['n'] += 1\n"
            "    t = threading.Thread(target=worker)\n"
            "    t.start()\n"
            "    t.join()\n"
            "    return total['n']\n"
        ),
        suppressed=(
            "import threading\n"
            "def run(items):\n"
            "    total = {'n': 0}\n"
            "    def worker():\n"
            "        for _ in items:\n"
            "            total['n'] += 1  # repro: noqa[THR001]\n"
            "    t = threading.Thread(target=worker)\n"
            "    t.start()\n"
            "    t.join()\n"
            "    return total['n']\n"
        ),
    ),
    "THR002": RuleFixture(
        relpath="repro_fixture/transport.py",
        trigger=(
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def publish(data):\n"
            "    shm = SharedMemory(create=True, size=len(data))\n"
            "    shm.buf[: len(data)] = data\n"
            "    return len(data)\n"
        ),
        clean=(
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def publish(data):\n"
            "    shm = SharedMemory(create=True, size=len(data))\n"
            "    try:\n"
            "        shm.buf[: len(data)] = data\n"
            "        return len(data)\n"
            "    finally:\n"
            "        shm.close()\n"
            "        shm.unlink()\n"
        ),
        suppressed=(
            "from multiprocessing.shared_memory import SharedMemory\n"
            "def publish(data):\n"
            "    shm = SharedMemory(create=True, size=len(data))  # repro: noqa[THR002]\n"
            "    shm.buf[: len(data)] = data\n"
            "    return len(data)\n"
        ),
    ),
    "THR003": RuleFixture(
        relpath="repro_fixture/state.py",
        trigger=(
            "import threading\n"
            "GUARD = threading.Lock()\n"
            "def update(store, key, value):\n"
            "    GUARD.acquire()\n"
            "    store[key] = value\n"
            "    GUARD.release()\n"
        ),
        clean=(
            "import threading\n"
            "GUARD = threading.Lock()\n"
            "def update(store, key, value):\n"
            "    with GUARD:\n"
            "        store[key] = value\n"
        ),
        suppressed=(
            "import threading\n"
            "GUARD = threading.Lock()\n"
            "def update(store, key, value):\n"
            "    GUARD.acquire()  # repro: noqa[THR003]\n"
            "    store[key] = value\n"
            "    GUARD.release()\n"
        ),
    ),
    "THR004": RuleFixture(
        relpath="repro_fixture/spawner.py",
        trigger=(
            "import threading\n"
            "def kick(fn):\n"
            "    t = threading.Thread(target=fn)\n"
            "    t.start()\n"
        ),
        clean=(
            "import threading\n"
            "def kick(fn):\n"
            "    t = threading.Thread(target=fn)\n"
            "    t.start()\n"
            "    t.join()\n"
        ),
        suppressed=(
            "import threading\n"
            "def kick(fn):\n"
            "    t = threading.Thread(target=fn)  # repro: noqa[THR004]\n"
            "    t.start()\n"
        ),
    ),
    "ALS001": RuleFixture(
        relpath="repro_fixture/kernels.py",
        trigger=(
            "import numpy as np\n"
            "def project(x, w):\n"
            "    np.matmul(x, w, out=x)\n"
            "    return x\n"
        ),
        clean=(
            "import numpy as np\n"
            "def project(x, w, out):\n"
            "    np.matmul(x, w, out=out)\n"
            "    return out\n"
        ),
        suppressed=(
            "import numpy as np\n"
            "def project(x, w):\n"
            "    np.matmul(x, w, out=x)  # repro: noqa[ALS001]\n"
            "    return x\n"
        ),
    ),
    "ALS002": RuleFixture(
        relpath="nn/act_fixture.py",
        trigger=(
            "import numpy as np\n"
            "class Act:\n"
            "    def forward(self, x, ws):\n"
            "        mask = ws.buffer('mask', x.shape)\n"
            "        np.greater(x, 0, out=mask)\n"
            "        self._mask = mask\n"
            "        return x\n"
        ),
        clean=(
            "import numpy as np\n"
            "class Act:\n"
            "    def forward(self, x, ws):\n"
            "        mask = ws.buffer('mask', x.shape)\n"
            "        np.greater(x, 0, out=mask)\n"
            "        self._mask = mask.copy()\n"
            "        return x\n"
        ),
        suppressed=(
            "import numpy as np\n"
            "class Act:\n"
            "    def forward(self, x, ws):\n"
            "        mask = ws.buffer('mask', x.shape)\n"
            "        np.greater(x, 0, out=mask)\n"
            "        self._mask = mask  # repro: noqa[ALS002]\n"
            "        return x\n"
        ),
    ),
    "RES001": RuleFixture(
        relpath="repro_fixture/daemon.py",
        trigger=(
            "import signal\n"
            "def handler(signum, frame):\n"
            "    pass\n"
            "def install():\n"
            "    signal.signal(signal.SIGTERM, handler)\n"
        ),
        clean=(
            "import signal\n"
            "def handler(signum, frame):\n"
            "    pass\n"
            "def install():\n"
            "    previous = signal.signal(signal.SIGTERM, handler)\n"
            "    try:\n"
            "        pass\n"
            "    finally:\n"
            "        signal.signal(signal.SIGTERM, previous)\n"
        ),
        suppressed=(
            "import signal\n"
            "def handler(signum, frame):\n"
            "    pass\n"
            "def install():\n"
            "    signal.signal(signal.SIGTERM, handler)  # repro: noqa[RES001]\n"
        ),
    ),
    "PRF001": RuleFixture(
        relpath="repro_fixture/kernels.py",
        trigger=(
            "# hot-path\n"
            "import numpy as np\n"
            "def run(batches):\n"
            "    for b in batches:\n"
            "        tmp = np.empty(b.shape)\n"
            "        tmp[:] = b * 2.0\n"
        ),
        clean=(
            "# hot-path\n"
            "import numpy as np\n"
            "def run(batches, ws):\n"
            "    for b in batches:\n"
            "        out = ws.buffer('out', b.shape)\n"
            "        np.multiply(b, 2.0, out=out)\n"
        ),
        suppressed=(
            "# hot-path\n"
            "import numpy as np\n"
            "def run(batches):\n"
            "    for b in batches:\n"
            "        tmp = np.empty(b.shape)  # repro: noqa[PRF001]\n"
            "        tmp[:] = b * 2.0\n"
        ),
    ),
}


def _run_fixture(tmp_path, fixture: RuleFixture, source: str, rule_id: str):
    for relpath, content in fixture.extra_files.items():
        f = tmp_path / relpath
        f.parent.mkdir(parents=True, exist_ok=True)
        f.write_text(content)
    target = tmp_path / fixture.relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    config = CheckConfig(select=frozenset({rule_id}))
    return run_checks([tmp_path], config=config)


def test_fixture_table_covers_whole_battery():
    assert set(FIXTURES) == {cls.id for cls in ALL_RULES}


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_trigger_fires(tmp_path, rule_id):
    result = _run_fixture(tmp_path, FIXTURES[rule_id], FIXTURES[rule_id].trigger, rule_id)
    assert result.findings, f"{rule_id} trigger fixture produced no findings"
    assert all(f.rule == rule_id for f in result.findings)


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_clean_is_clean(tmp_path, rule_id):
    result = _run_fixture(tmp_path, FIXTURES[rule_id], FIXTURES[rule_id].clean, rule_id)
    assert not result.findings, f"{rule_id} clean fixture: {result.findings}"


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_noqa_suppresses(tmp_path, rule_id):
    result = _run_fixture(
        tmp_path, FIXTURES[rule_id], FIXTURES[rule_id].suppressed, rule_id
    )
    assert not result.findings, f"{rule_id} suppression fixture: {result.findings}"
    assert result.suppressed >= 1


# ---------------------------------------------------------------- edge cases


def test_perf_rule_exempts_out_target_arena_fill(tmp_path):
    """The batched engine's fallback idiom: a loop allocation whose name is
    elsewhere an ``out=`` target is the arena itself, not churn."""
    src = (
        "# hot-path\n"
        "import numpy as np\n"
        "def run(batches):\n"
        "    for b in batches:\n"
        "        gbuf = np.empty(b.shape)\n"
        "        np.multiply(b, 2.0, out=gbuf)\n"
    )
    fixture = RuleFixture("repro_fixture/kernels.py", src, src, src)
    assert not _run_fixture(tmp_path, fixture, src, "PRF001").findings


def test_perf_rule_out_exemption_matches_attribute_and_subscript_targets(tmp_path):
    src = (
        "# hot-path\n"
        "import numpy as np\n"
        "def warm(self, tags, n, batches):\n"
        "    for tag in tags:\n"
        "        self.scratch[tag] = np.empty(n)\n"
        "    for tag, b in zip(tags, batches):\n"
        "        np.multiply(b, 2.0, out=self.scratch[tag])\n"
    )
    fixture = RuleFixture("repro_fixture/kernels.py", src, src, src)
    assert not _run_fixture(tmp_path, fixture, src, "PRF001").findings


def test_perf_rule_still_fires_when_out_targets_differ(tmp_path):
    src = (
        "# hot-path\n"
        "import numpy as np\n"
        "def run(batches, arena):\n"
        "    for b in batches:\n"
        "        tmp = np.empty(b.shape)\n"
        "        np.multiply(b, 2.0, out=arena)\n"
    )
    fixture = RuleFixture("repro_fixture/kernels.py", src, src, src)
    result = _run_fixture(tmp_path, fixture, src, "PRF001")
    assert len(result.findings) == 1
    assert "np.empty" in result.findings[0].message


def test_div_rule_accepts_clamped_denominator(tmp_path):
    src = (
        "import numpy as np\n"
        "def ratio(a, b):\n"
        "    return a / np.maximum(b, 1e-12)\n"
    )
    fixture = RuleFixture("metrics/m.py", src, src, src)
    assert not _run_fixture(tmp_path, fixture, src, "DIV001").findings


def test_div_rule_accepts_ssim_style_stabilizers(tmp_path):
    src = (
        "def ssim_like(mu_a, mu_b, c1):\n"
        "    return (2 * mu_a * mu_b + c1) / (mu_a**2 + mu_b**2 + c1)\n"
    )
    fixture = RuleFixture("metrics/m.py", src, src, src)
    assert not _run_fixture(tmp_path, fixture, src, "DIV001").findings


def test_div_rule_ignores_out_of_scope_modules(tmp_path):
    src = "def ratio(a, b):\n    return a / b\n"
    fixture = RuleFixture("vis/m.py", src, src, src)
    assert not _run_fixture(tmp_path, fixture, src, "DIV001").findings


def test_registry_rule_flags_unexported_factory(tmp_path):
    fixture = RuleFixture(
        "plugins/registry.py",
        'from plugins.impl import Beta\nTHINGS = {"beta": Beta}\n',
        "",
        "",
        extra_files=FIXTURES["REG001"].extra_files,
    )
    result = _run_fixture(tmp_path, fixture, fixture.trigger, "REG001")
    assert any("missing from" in f.message for f in result.findings)


def test_registry_rule_flags_duplicate_register_calls(tmp_path):
    fixture = RuleFixture(
        "plugins/registry.py",
        (
            "from plugins.impl import Alpha\n"
            "def register(name, factory):\n"
            "    pass\n"
            'register("alpha", Alpha)\n'
            'register("alpha", Alpha)\n'
        ),
        "",
        "",
        extra_files=FIXTURES["REG001"].extra_files,
    )
    result = _run_fixture(tmp_path, fixture, fixture.trigger, "REG001")
    assert any("registered twice" in f.message for f in result.findings)


def test_registry_rule_flags_all_dupes_and_unbound(tmp_path):
    fixture = RuleFixture(
        "plugins/__init__.py",
        '__all__ = ["Alpha", "Alpha", "Ghost"]\nfrom plugins.impl import Alpha\n',
        "",
        "",
        extra_files={"plugins/impl.py": "class Alpha: pass\n"},
    )
    result = _run_fixture(tmp_path, fixture, fixture.trigger, "REG001")
    messages = " | ".join(f.message for f in result.findings)
    assert "twice" in messages and "never binds" in messages


def test_registry_rule_allows_pep562_lazy_exports(tmp_path):
    # A module-level __getattr__ (PEP 562) can bind any exported name on
    # demand, so "never binds" must not fire (repro.perf re-exports the
    # campaign layer this way to break the core <-> perf import cycle).
    fixture = RuleFixture(
        "plugins/__init__.py",
        (
            '__all__ = ["Alpha", "Lazy"]\n'
            "from plugins.impl import Alpha\n"
            "def __getattr__(name):\n"
            '    if name == "Lazy":\n'
            "        from plugins.impl import Alpha as Lazy\n"
            "        return Lazy\n"
            "    raise AttributeError(name)\n"
        ),
        "",
        "",
        extra_files={"plugins/impl.py": "class Alpha: pass\n"},
    )
    result = _run_fixture(tmp_path, fixture, fixture.trigger, "REG001")
    assert not any("never binds" in f.message for f in result.findings)


def test_import_cycle_reports_full_chain(tmp_path):
    fixture = FIXTURES["IMP001"]
    result = _run_fixture(tmp_path, fixture, fixture.trigger, "IMP001")
    assert len(result.findings) == 1
    assert "pkg.alpha" in result.findings[0].message
    assert "pkg.beta" in result.findings[0].message


def test_unseeded_rng_allows_variable_seed(tmp_path):
    src = (
        "import numpy as np\n"
        "def init(seed):\n"
        "    return np.random.default_rng(seed)\n"
    )
    fixture = RuleFixture("repro_fixture/sim.py", src, src, src)
    assert not _run_fixture(tmp_path, fixture, src, "RNG002").findings


def test_dtype_boundary_only_applies_inside_nn(tmp_path):
    src = "import numpy as np\ndef load(x):\n    return np.asarray(x)\n"
    fixture = RuleFixture("io_helpers/loader.py", src, src, src)
    assert not _run_fixture(tmp_path, fixture, src, "DT001").findings


def test_thr001_condition_variable_counts_as_lock(tmp_path):
    """``with self._cond:`` guards writes: condition variables ARE locks."""
    src = (
        "import threading\n"
        "class Server:\n"
        "    def __init__(self):\n"
        "        self._cond = threading.Condition()\n"
        "        self._n = {'requests': 0}\n"
        "        threading.Thread(target=self._run).start()\n"
        "    def _run(self):\n"
        "        with self._cond:\n"
        "            self._n['requests'] += 1\n"
    )
    fixture = RuleFixture("repro_fixture/serve.py", src, src, src)
    assert not _run_fixture(tmp_path, fixture, src, "THR001").findings


def test_thr001_cond_heuristic_anchors_to_name_segment(tmp_path):
    """``second``/``precondition`` must not pass as locks via 'cond'."""
    src = (
        "import threading\n"
        "class Server:\n"
        "    def __init__(self):\n"
        "        self._second = open('/dev/null')\n"
        "        self._n = {'requests': 0}\n"
        "        threading.Thread(target=self._run).start()\n"
        "    def _run(self):\n"
        "        with self._second:\n"
        "            self._n['requests'] += 1\n"
    )
    fixture = RuleFixture("repro_fixture/serve.py", src, src, src)
    findings = _run_fixture(tmp_path, fixture, src, "THR001").findings
    assert findings and all(f.rule == "THR001" for f in findings)
