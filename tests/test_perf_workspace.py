"""Workspace arena semantics: keying, reuse, ownership, stats."""

import numpy as np
import pytest

from repro.nn import mlp
from repro.perf import Workspace


class TestBuffer:
    def test_same_key_returns_same_array(self):
        ws = Workspace()
        a = ws.buffer("a", (4, 3))
        b = ws.buffer("a", (4, 3))
        assert a is b
        assert ws.hits == 1 and ws.misses == 1

    def test_distinct_keys_get_distinct_buffers(self):
        ws = Workspace()
        a = ws.buffer("a", (4, 3))
        assert ws.buffer("b", (4, 3)) is not a       # different tag
        assert ws.buffer("a", (5, 3)) is not a       # different shape
        assert ws.buffer("a", (4, 3), dtype=np.float32) is not a  # different dtype
        assert ws.num_buffers == 4

    def test_default_dtype_follows_workspace(self):
        ws = Workspace(dtype=np.float32)
        assert ws.buffer("x", (2,)).dtype == np.float32
        assert ws.buffer("y", (2,), dtype=bool).dtype == np.bool_

    def test_shape_normalization(self):
        ws = Workspace()
        a = ws.buffer("a", (np.int64(4), 3))
        assert a is ws.buffer("a", [4, 3])


class TestOwnership:
    def test_owns_only_arena_buffers(self):
        ws = Workspace()
        buf = ws.buffer("x", (3,))
        assert ws.owns(buf)
        assert not ws.owns(np.empty(3))

    def test_clear_forgets_everything(self):
        ws = Workspace()
        buf = ws.buffer("x", (3,))
        ws.clear()
        assert not ws.owns(buf)
        assert ws.num_buffers == 0 and ws.nbytes == 0
        assert ws.hits == 0 and ws.misses == 0


class TestPreallocate:
    def test_warm_buffers_are_steady_state_hits(self):
        ws = Workspace()
        ws.preallocate([("a", (4, 3)), ("m", (4, 3), bool)])
        assert ws.num_buffers == 2
        assert ws.misses == 0  # warming is not a steady-state miss
        ws.buffer("a", (4, 3))
        assert ws.hits == 1 and ws.misses == 0


class TestAttachDetach:
    def test_attach_tags_layers_and_detach_restores(self):
        model = mlp(3, [4], 1, seed=0)
        ws = Workspace()
        model.attach_workspace(ws)
        assert model.workspace is ws
        assert [layer._ws_tag for layer in model.layers] == [0, 1, 2]
        assert all(layer._ws is ws for layer in model.layers)
        model.detach_workspace()
        assert model.workspace is None
        assert all(layer._ws is None for layer in model.layers)

    def test_forward_steady_state_is_allocation_free(self):
        model = mlp(3, [4], 1, seed=0)
        ws = Workspace()
        model.attach_workspace(ws)
        x = np.random.default_rng(0).normal(size=(8, 3))
        model.forward(x)
        ws.hits = ws.misses = 0
        model.forward(x)
        assert ws.misses == 0 and ws.hits > 0
