"""Unit/integration tests for the FCNN reconstructor."""

import numpy as np
import pytest

from repro.core import FCNNReconstructor, PAPER_HIDDEN_LAYERS
from repro.datasets import HurricaneDataset
from repro.grid import UniformGrid, upscaled_grid
from repro.metrics import snr
from repro.sampling import MultiCriteriaSampler


@pytest.fixture(scope="module")
def setup():
    """One small trained model shared across this module's read-only tests."""
    grid = UniformGrid((20, 20, 8))
    data = HurricaneDataset(grid=HurricaneDataset.default_grid().with_resolution((20, 20, 8)))
    field = data.field(t=0)
    sampler = MultiCriteriaSampler(seed=3)
    train = [sampler.sample(field, 0.02), sampler.sample(field, 0.08)]
    model = FCNNReconstructor(hidden_layers=(32, 16, 8), batch_size=1024, seed=0)
    model.train(field, train, epochs=40)
    return data, field, sampler, train, model


class TestConfiguration:
    def test_paper_defaults(self):
        model = FCNNReconstructor()
        assert model.hidden_layers == PAPER_HIDDEN_LAYERS == (512, 256, 128, 64, 16)
        assert model.extractor.num_neighbors == 5
        assert model.learning_rate == pytest.approx(1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            FCNNReconstructor(hidden_layers=())
        with pytest.raises(ValueError):
            FCNNReconstructor(gradient_loss_weight=-0.5)

    def test_untrained_raises(self, sample):
        model = FCNNReconstructor()
        assert not model.is_trained
        with pytest.raises(RuntimeError):
            model.reconstruct(sample)


class TestTraining:
    def test_training_reduces_loss(self, setup):
        *_, model = setup
        hist = model.history
        assert hist.train_loss[-1] < hist.train_loss[0]

    def test_reconstruction_beats_nothing(self, setup):
        data, field, sampler, train, model = setup
        test = sampler.sample(field, 0.03, seed=77)
        out = model.reconstruct(test)
        assert out.shape == field.grid.dims
        assert snr(field.values, out) > 5.0

    def test_sampled_values_exact(self, setup):
        data, field, sampler, train, model = setup
        test = sampler.sample(field, 0.03, seed=77)
        out = model.reconstruct(test).ravel()
        np.testing.assert_allclose(out[test.indices], test.values)

    def test_deterministic_training(self):
        grid = HurricaneDataset.default_grid().with_resolution((10, 10, 6))
        field = HurricaneDataset(grid=grid).field(0)
        sampler = MultiCriteriaSampler(seed=1)
        train = sampler.sample(field, 0.1)
        outs = []
        for _ in range(2):
            m = FCNNReconstructor(hidden_layers=(16, 8), seed=9, batch_size=256)
            m.train(field, train, epochs=5)
            outs.append(m.reconstruct(sampler.sample(field, 0.05, seed=2)))
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_train_fraction_subsamples(self):
        grid = HurricaneDataset.default_grid().with_resolution((10, 10, 6))
        field = HurricaneDataset(grid=grid).field(0)
        train = MultiCriteriaSampler(seed=1).sample(field, 0.1)
        m = FCNNReconstructor(hidden_layers=(16, 8), seed=9, batch_size=256)
        m.train(field, train, epochs=1, train_fraction=0.25)
        # can't observe rows directly, but training must succeed and be fast
        assert m.is_trained

    def test_train_fraction_validation(self, setup):
        data, field, sampler, train, _ = setup
        m = FCNNReconstructor(hidden_layers=(8,))
        with pytest.raises(ValueError):
            m.train(field, train, epochs=1, train_fraction=0.0)

    def test_empty_sample_list(self, setup):
        _, field, *_ = setup
        with pytest.raises(ValueError):
            FCNNReconstructor().train(field, [], epochs=1)


class TestFineTuning:
    def _fresh_model(self, setup):
        import copy

        return copy.deepcopy(setup[4])

    def test_case1_improves_new_timestep(self, setup):
        data, _, sampler, _, _ = setup
        model = self._fresh_model(setup)
        field2 = data.field(t=30)
        test2 = sampler.sample(field2, 0.03, seed=77)
        before = snr(field2.values, model.reconstruct(test2))
        train2 = [sampler.sample(field2, 0.02), sampler.sample(field2, 0.08)]
        model.fine_tune(field2, train2, epochs=10, strategy="full")
        after = snr(field2.values, model.reconstruct(test2))
        assert after > before

    def test_case2_only_touches_last_layers(self, setup):
        data, _, sampler, _, _ = setup
        model = self._fresh_model(setup)
        frozen_before = [l.weight.value.copy() for l in model.model.dense_layers()[:-2]]
        field2 = data.field(t=30)
        train2 = [sampler.sample(field2, 0.05)]
        model.fine_tune(field2, train2, epochs=3, strategy="last", num_trainable=2)
        for before, layer in zip(frozen_before, model.model.dense_layers()[:-2]):
            np.testing.assert_array_equal(before, layer.weight.value)

    def test_case2_updates_last_layers(self, setup):
        data, _, sampler, _, _ = setup
        model = self._fresh_model(setup)
        last_before = model.model.dense_layers()[-1].weight.value.copy()
        field2 = data.field(t=30)
        model.fine_tune(field2, [sampler.sample(field2, 0.05)], epochs=3, strategy="last")
        assert not np.array_equal(last_before, model.model.dense_layers()[-1].weight.value)

    def test_layers_unfrozen_after_finetune(self, setup):
        data, _, sampler, _, _ = setup
        model = self._fresh_model(setup)
        field2 = data.field(t=30)
        model.fine_tune(field2, [sampler.sample(field2, 0.05)], epochs=1, strategy="last")
        assert all(l.trainable for l in model.model.dense_layers())

    def test_invalid_strategy(self, setup):
        data, field, sampler, train, _ = setup
        model = self._fresh_model(setup)
        with pytest.raises(ValueError):
            model.fine_tune(field, train, epochs=1, strategy="middle")

    def test_finetune_untrained_raises(self, setup):
        _, field, _, train, _ = setup
        with pytest.raises(RuntimeError):
            FCNNReconstructor().fine_tune(field, train, epochs=1)


class TestCrossGrid:
    def test_reconstruct_on_target_grid(self, setup):
        data, field, sampler, _, model = setup
        hi = upscaled_grid(field.grid, 2)
        field_hi = data.field(t=0, grid=hi)
        sample_hi = sampler.sample(field_hi, 0.03, seed=5)
        out = model.reconstruct(sample_hi, target_grid=hi)
        assert out.shape == hi.dims
        assert snr(field_hi.values, out) > 3.0

    def test_shifted_domain_defined(self, setup):
        data, field, sampler, _, model = setup
        hi = upscaled_grid(field.grid, 2, shift_fraction=(0.2, 0.1, 0.0))
        field_hi = data.field(t=0, grid=hi)
        sample_hi = sampler.sample(field_hi, 0.03, seed=5)
        out = model.reconstruct(sample_hi, target_grid=hi)
        assert np.isfinite(out).all()

    def test_predict_values_points(self, setup):
        _, field, sampler, _, model = setup
        test = sampler.sample(field, 0.05, seed=8)
        pts = field.grid.points()[:64]
        vals = model.predict_values(test, pts)
        assert vals.shape == (64,)
        assert np.isfinite(vals).all()


class TestCheckpointing:
    def test_save_load_roundtrip(self, setup, tmp_path):
        _, field, sampler, _, model = setup
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = FCNNReconstructor.load(path)
        test = sampler.sample(field, 0.03, seed=12)
        np.testing.assert_allclose(loaded.reconstruct(test), model.reconstruct(test))

    def test_load_preserves_config(self, setup, tmp_path):
        *_, model = setup
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = FCNNReconstructor.load(path)
        assert loaded.hidden_layers == model.hidden_layers
        assert loaded.extractor.num_neighbors == model.extractor.num_neighbors

    def test_partial_checkpoint_graft(self, setup, tmp_path):
        import copy

        data, field, sampler, _, model = setup
        base_path = tmp_path / "base.npz"
        model.save(base_path)

        tuned = copy.deepcopy(model)
        field2 = data.field(t=20)
        tuned.fine_tune(field2, [sampler.sample(field2, 0.05)], epochs=2, strategy="last")
        part_path = tmp_path / "t20.npz"
        tuned.save_partial(part_path, num_layers=2)

        restored = FCNNReconstructor.load(base_path)
        restored.load_partial(part_path)
        test = sampler.sample(field2, 0.03, seed=4)
        np.testing.assert_allclose(restored.reconstruct(test), tuned.reconstruct(test))

    def test_save_untrained_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            FCNNReconstructor().save(tmp_path / "x.npz")
