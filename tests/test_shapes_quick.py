"""Fast qualitative-shape regressions (CI-speed cousins of benchmarks/).

The benchmark suite asserts the paper's shapes at bench scale (minutes);
these tests pin the most robust of those shapes at quick scale (seconds)
so a regression is caught by ``pytest tests/`` alone.
"""

import time

import numpy as np
import pytest

from repro.experiments.config import get_config
from repro.experiments.runner import build_pipeline, build_reconstructor
from repro.experiments.runner import test_samples as draw_test_samples
from repro.interpolation import make_interpolator
from repro.metrics import snr

CFG = get_config(
    "quick",
    dims=(20, 20, 8),
    epochs=40,
    hidden_layers=(48, 24, 12),
    test_fractions=(0.01, 0.05),
    batch_size=2048,
)


@pytest.fixture(scope="module")
def trained_world():
    pipeline = build_pipeline(CFG)
    fcnn = build_reconstructor(CFG)
    pipeline.train_fcnn(fcnn, epochs=CFG.epochs)
    field = pipeline.field(0)
    samples = draw_test_samples(pipeline, field, CFG.test_fractions, CFG)
    return pipeline, fcnn, field, samples


class TestFig9Shape:
    def test_fcnn_beats_weak_baselines_when_sparse(self, trained_world):
        _, fcnn, field, samples = trained_world
        sparse = samples[0.01]
        fcnn_snr = snr(field.values, fcnn.reconstruct(sparse))
        for name in ("nearest", "shepard"):
            baseline = snr(field.values, make_interpolator(name).reconstruct(sparse))
            assert fcnn_snr > baseline, f"fcnn {fcnn_snr:.2f} vs {name} {baseline:.2f}"

    def test_quality_rises_with_sampling_rate(self, trained_world):
        _, fcnn, field, samples = trained_world
        assert snr(field.values, fcnn.reconstruct(samples[0.05])) > snr(
            field.values, fcnn.reconstruct(samples[0.01])
        )

    def test_nearest_is_worst(self, trained_world):
        _, _, field, samples = trained_world
        sparse = samples[0.01]
        scores = {
            name: snr(field.values, make_interpolator(name).reconstruct(sparse))
            for name in ("linear", "natural", "shepard", "nearest")
        }
        assert min(scores, key=scores.get) == "nearest"


class TestFig10Shape:
    def test_naive_linear_slower_than_vectorized(self, trained_world):
        _, _, field, samples = trained_world
        sample = samples[0.05]
        t0 = time.perf_counter()
        make_interpolator("linear").reconstruct(sample)
        fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        make_interpolator("linear-naive").reconstruct(sample)
        slow = time.perf_counter() - t0
        assert slow > 2.0 * fast, f"naive {slow:.3f}s vs vectorized {fast:.3f}s"


class TestFig7Shape:
    def test_union_model_wins_both_ends(self):
        pipeline = build_pipeline(CFG)
        field = pipeline.field(0)
        samples = draw_test_samples(pipeline, field, (0.01, 0.05), CFG)

        def trained_on(fractions):
            m = build_reconstructor(CFG)
            m.train(field, [pipeline.sample(field, f) for f in fractions], epochs=CFG.epochs)
            return m

        m_lo = trained_on((0.01,))
        m_hi = trained_on((0.05,))
        m_mix = trained_on((0.01, 0.05))

        # The union model is at least competitive with each specialist on
        # the specialist's home turf, and strictly better on its away turf.
        assert snr(field.values, m_mix.reconstruct(samples[0.01])) > snr(
            field.values, m_hi.reconstruct(samples[0.01])
        )
        assert snr(field.values, m_mix.reconstruct(samples[0.05])) > snr(
            field.values, m_lo.reconstruct(samples[0.05])
        )


class TestFig11Shape:
    def test_pretrained_degrades_and_finetune_recovers(self):
        import copy

        pipeline = build_pipeline(CFG)
        fcnn = build_reconstructor(CFG)
        pipeline.train_fcnn(fcnn, timestep=0, epochs=CFG.epochs)

        # t=24: far enough for clear degradation, and the quick-scale model
        # recovers within a modest budget (10 paper epochs assume a fully
        # converged pretrain; 25 is this scale's equivalent — the strict
        # 10-epoch claim is asserted at bench scale).
        far = pipeline.field(24)
        test = draw_test_samples(pipeline, far, (0.03,), CFG)[0.03]
        before = snr(far.values, fcnn.reconstruct(test))

        tuned = copy.deepcopy(fcnn)
        train = [pipeline.sample(far, f) for f in CFG.train_fractions]
        tuned.fine_tune(far, train, epochs=25, strategy="full")
        after = snr(far.values, tuned.reconstruct(test))
        assert after > before
