"""Graceful degradation: poisoned models and failing chunks still yield fields."""

import numpy as np
import pytest

from repro.core import FCNNReconstructor
from repro.interpolation import DelaunayLinearInterpolator
from repro.parallel import ParallelExecutor, parallel_reconstruct
from repro.resilience import NumericalHealthError
from repro.resilience.faults import (
    RegionCrashFault,
    RegionNaNFault,
    SimulatedCrash,
    poison_parameters,
)


@pytest.fixture(scope="module")
def module_sample():
    from repro.datasets import HurricaneDataset
    from repro.grid import UniformGrid
    from repro.sampling import MultiCriteriaSampler

    grid = UniformGrid((12, 10, 8), spacing=(1.0, 2.0, 0.5), origin=(-1.0, 3.0, 0.0))
    field = HurricaneDataset(grid=grid, seed=0).field(t=0)
    sample = MultiCriteriaSampler(seed=3).sample(field, 0.05)
    return field, sample


@pytest.fixture(scope="module")
def trained_fcnn(module_sample):
    field, sample = module_sample
    fcnn = FCNNReconstructor(hidden_layers=(16, 8), batch_size=2048, seed=0)
    fcnn.train(field, [sample], epochs=2)
    return fcnn


def region_threshold(grid, frac=0.6, axis=0):
    """Physical coordinate ``frac`` of the way across the grid on ``axis``."""
    return grid.origin[axis] + frac * grid.spacing[axis] * (grid.dims[axis] - 1)


class TestFCNNDegradation:
    def test_poisoned_model_degrades_to_nearest(self, trained_fcnn, module_sample):
        _, sample = module_sample
        poison_parameters(trained_fcnn.model, target="head")
        volume, report = trained_fcnn.reconstruct(sample, return_report=True)
        assert np.all(np.isfinite(volume))
        assert not report.ok
        assert report.degraded_points > 0
        assert 0.0 < report.degraded_fraction < 1.0
        assert "nearest" in report.summary()
        # sampled locations always keep their exact stored values
        np.testing.assert_array_equal(volume.ravel()[sample.indices], sample.values)

    def test_raise_mode_aborts(self, trained_fcnn, module_sample):
        _, sample = module_sample
        poison_parameters(trained_fcnn.model, target="head")
        with pytest.raises(NumericalHealthError, match="non-finite"):
            trained_fcnn.reconstruct(sample, on_nonfinite="raise")

    def test_invalid_mode_rejected(self, trained_fcnn, module_sample):
        _, sample = module_sample
        with pytest.raises(ValueError, match="on_nonfinite"):
            trained_fcnn.reconstruct(sample, on_nonfinite="ignore")


class TestChunkDegradation:
    def test_nan_region_falls_back_per_chunk(self, sample):
        interp = DelaunayLinearInterpolator()
        thr = region_threshold(sample.grid)
        faulty = RegionNaNFault(interp, axis=0, threshold=thr)
        ex = ParallelExecutor(max_workers=1)

        clean = parallel_reconstruct(interp, sample, num_chunks=6, executor=ex)
        volume, report = parallel_reconstruct(
            faulty, sample, num_chunks=6, executor=ex, return_report=True
        )
        assert np.all(np.isfinite(volume))
        assert not report.ok
        flagged = {r.index for r in report.degraded}
        assert 0 < len(flagged) < 6  # some chunks degraded, some untouched
        # points outside the poisoned region are bit-identical to a clean run
        voids = sample.void_indices()
        positions = sample.grid.index_to_position(sample.grid.flat_to_multi(voids))
        outside = voids[positions[:, 0] < thr]
        np.testing.assert_array_equal(
            volume.ravel()[outside], clean.ravel()[outside]
        )

    def test_crashing_chunks_fall_back(self, sample):
        interp = DelaunayLinearInterpolator()
        thr = region_threshold(sample.grid)
        faulty = RegionCrashFault(interp, axis=0, threshold=thr)
        ex = ParallelExecutor(max_workers=1)
        volume, report = parallel_reconstruct(
            faulty, sample, num_chunks=6, executor=ex, return_report=True
        )
        assert np.all(np.isfinite(volume))
        assert report.degraded_points > 0
        assert all(r.method == "nearest" for r in report.degraded)

    def test_strict_mode_reraises(self, sample):
        faulty = RegionCrashFault(
            DelaunayLinearInterpolator(), axis=0, threshold=region_threshold(sample.grid)
        )
        ex = ParallelExecutor(max_workers=1)
        with pytest.raises(SimulatedCrash):
            parallel_reconstruct(faulty, sample, num_chunks=6, executor=ex, fallback=None)

    def test_unknown_fallback_rejected(self, sample):
        with pytest.raises(ValueError, match="fallback"):
            parallel_reconstruct(
                DelaunayLinearInterpolator(), sample, fallback="median"
            )

    def test_clean_run_reports_ok(self, sample):
        ex = ParallelExecutor(max_workers=1)
        volume, report = parallel_reconstruct(
            DelaunayLinearInterpolator(), sample, num_chunks=4, executor=ex,
            return_report=True,
        )
        assert report.ok
        assert report.degraded_points == 0
        assert np.all(np.isfinite(volume))


class TestReportAggregation:
    """flag/summary/merged across multi-chunk, multi-timestep degradation."""

    def _degraded_report(self, sample, fault_cls):
        interp = DelaunayLinearInterpolator()
        thr = region_threshold(sample.grid)
        faulty = fault_cls(interp, axis=0, threshold=thr)
        ex = ParallelExecutor(max_workers=1)
        _, report = parallel_reconstruct(
            faulty, sample, num_chunks=6, executor=ex, return_report=True
        )
        return report

    def test_summary_reports_counts_and_fraction(self, sample):
        report = self._degraded_report(sample, RegionNaNFault)
        text = report.summary()
        assert f"{len(report.degraded)} degraded region(s)" in text
        assert f"{report.degraded_points}/{report.total_points}" in text
        assert "nearest" in text

    def test_summary_of_clean_report(self):
        from repro.resilience import ReconstructionReport

        assert "healthy" in ReconstructionReport(total_points=100).summary()

    def test_merged_across_campaign_timesteps(self, sample):
        from repro.resilience import ReconstructionReport

        clean = ReconstructionReport(total_points=1000)
        nan_report = self._degraded_report(sample, RegionNaNFault)
        crash_report = self._degraded_report(sample, RegionCrashFault)
        merged = ReconstructionReport.merged([clean, nan_report, crash_report])

        assert merged.total_points == (
            1000 + nan_report.total_points + crash_report.total_points
        )
        assert merged.degraded_points == (
            nan_report.degraded_points + crash_report.degraded_points
        )
        assert len(merged.degraded) == (
            len(nan_report.degraded) + len(crash_report.degraded)
        )
        # region ordinals are renumbered in merge order
        assert [r.index for r in merged.degraded] == list(range(len(merged.degraded)))
        # both sources degraded via "nearest", so the merge agrees
        assert merged.fallback_method == "nearest"
        assert not merged.ok
        assert "degraded region(s)" in merged.summary()

    def test_merged_mixed_methods_and_empty_cases(self):
        from repro.resilience import ReconstructionReport

        a = ReconstructionReport(total_points=10, fallback_method="nearest")
        a.flag(0, 4, "nan chunk", "nearest")
        b = ReconstructionReport(total_points=10, fallback_method="linear")
        b.flag(0, 2, "crashed chunk", "linear")
        mixed = ReconstructionReport.merged([a, b])
        assert mixed.fallback_method == "mixed"
        assert mixed.degraded_points == 6

        # clean-only merge: no degradation, no fallback method
        clean = ReconstructionReport.merged(
            [ReconstructionReport(total_points=5), ReconstructionReport(total_points=7)]
        )
        assert clean.ok
        assert clean.fallback_method is None
        assert clean.total_points == 12
        assert ReconstructionReport.merged([]).total_points == 0
