"""Unit tests for full and partial model checkpoints."""

import numpy as np
import pytest

from repro.nn import load_model, load_partial, mlp, save_model, save_partial


@pytest.fixture
def model():
    return mlp(23, [32, 16, 8, 4, 4], 4, seed=1)


class TestFullCheckpoint:
    def test_roundtrip_weights(self, tmp_path, model, rng):
        path = tmp_path / "m.npz"
        save_model(path, model, meta={"note": "hello"})
        loaded, meta = load_model(path)
        assert meta == {"note": "hello"}
        x = rng.normal(size=(6, 23))
        np.testing.assert_allclose(loaded.predict(x), model.predict(x))

    def test_roundtrip_architecture(self, tmp_path, model):
        path = tmp_path / "m.npz"
        save_model(path, model)
        loaded, _ = load_model(path)
        assert loaded.spec() == model.spec()

    def test_meta_defaults_empty(self, tmp_path, model):
        path = tmp_path / "m.npz"
        save_model(path, model)
        _, meta = load_model(path)
        assert meta == {}

    def test_load_rejects_partial(self, tmp_path, model):
        path = tmp_path / "p.npz"
        save_partial(path, model, num_layers=2)
        with pytest.raises(ValueError):
            load_model(path)


class TestPartialCheckpoint:
    def test_partial_smaller_than_full(self, tmp_path):
        model = mlp(23, [256, 128, 64, 32, 16], 4, seed=1)
        full, part = tmp_path / "f.npz", tmp_path / "p.npz"
        save_model(full, model)
        save_partial(part, model, num_layers=2)
        assert part.stat().st_size < 0.5 * full.stat().st_size

    def test_graft_restores_last_layers(self, tmp_path, model, rng):
        path = tmp_path / "p.npz"
        save_partial(path, model, num_layers=2, meta={"t": 5})

        # Perturb everything, then graft: last two layers restored exactly.
        perturbed = mlp(23, [32, 16, 8, 4, 4], 4, seed=99)
        meta = load_partial(path, perturbed)
        assert meta == {"t": 5}
        for mine, theirs in zip(perturbed.dense_layers()[-2:], model.dense_layers()[-2:]):
            np.testing.assert_array_equal(mine.weight.value, theirs.weight.value)
            np.testing.assert_array_equal(mine.bias.value, theirs.bias.value)
        # Earlier layers untouched (still the perturbed weights).
        ref = mlp(23, [32, 16, 8, 4, 4], 4, seed=99)
        np.testing.assert_array_equal(
            perturbed.dense_layers()[0].weight.value, ref.dense_layers()[0].weight.value
        )

    def test_case2_workflow(self, tmp_path, model, rng):
        # Pretrained base + per-timestep partial checkpoint reproduces the
        # fine-tuned model exactly (the paper's Case-2 storage scheme).
        base_path = tmp_path / "base.npz"
        save_model(base_path, model)

        tuned = load_model(base_path)[0]
        for layer in tuned.dense_layers()[-2:]:
            layer.weight.value += 0.1  # stand-in for fine-tuning
        part_path = tmp_path / "t7.npz"
        save_partial(part_path, tuned, num_layers=2)

        restored = load_model(base_path)[0]
        load_partial(part_path, restored)
        x = rng.normal(size=(4, 23))
        np.testing.assert_allclose(restored.predict(x), tuned.predict(x))

    def test_validation(self, tmp_path, model):
        with pytest.raises(ValueError):
            save_partial(tmp_path / "p.npz", model, num_layers=0)
        with pytest.raises(ValueError):
            save_partial(tmp_path / "p.npz", model, num_layers=7)

    def test_graft_rejects_wrong_depth(self, tmp_path, model):
        path = tmp_path / "p.npz"
        save_partial(path, model, num_layers=2)
        other = mlp(23, [32, 16], 4, seed=0)
        with pytest.raises(ValueError):
            load_partial(path, other)

    def test_graft_rejects_wrong_shapes(self, tmp_path, model):
        path = tmp_path / "p.npz"
        save_partial(path, model, num_layers=2)
        other = mlp(23, [32, 16, 8, 4, 8], 4, seed=0)  # last hidden differs
        with pytest.raises(ValueError):
            load_partial(path, other)

    def test_graft_rejects_full_checkpoint(self, tmp_path, model):
        path = tmp_path / "f.npz"
        save_model(path, model)
        with pytest.raises(ValueError):
            load_partial(path, model)
