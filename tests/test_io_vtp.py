"""Unit tests for VTK XML PolyData (.vtp) point-cloud I/O."""

import numpy as np
import pytest

from repro.io import read_vtp, write_vtp


@pytest.fixture
def cloud(rng):
    points = rng.normal(size=(37, 3))
    data = {"scalar": rng.normal(size=37), "flat_index": np.arange(37, dtype=np.int64)}
    return points, data


class TestRoundtrip:
    @pytest.mark.parametrize("binary", [True, False], ids=["binary", "ascii"])
    def test_roundtrip(self, tmp_path, cloud, binary):
        points, data = cloud
        path = tmp_path / "c.vtp"
        write_vtp(path, points, data, binary=binary)
        pts2, data2 = read_vtp(path)
        np.testing.assert_allclose(pts2, points)
        np.testing.assert_allclose(data2["scalar"], data["scalar"])
        np.testing.assert_array_equal(data2["flat_index"], data["flat_index"])

    def test_no_point_data(self, tmp_path, cloud):
        points, _ = cloud
        path = tmp_path / "c.vtp"
        write_vtp(path, points)
        pts2, data2 = read_vtp(path)
        np.testing.assert_allclose(pts2, points)
        assert data2 == {}

    def test_single_point(self, tmp_path):
        path = tmp_path / "c.vtp"
        write_vtp(path, np.array([[1.0, 2.0, 3.0]]), {"scalar": np.array([4.0])})
        pts, data = read_vtp(path)
        assert pts.shape == (1, 3)
        assert data["scalar"][0] == 4.0


class TestValidation:
    def test_rejects_non_3d_points(self, tmp_path):
        with pytest.raises(ValueError):
            write_vtp(tmp_path / "c.vtp", np.zeros((5, 2)))

    def test_rejects_mismatched_data(self, tmp_path):
        with pytest.raises(ValueError):
            write_vtp(tmp_path / "c.vtp", np.zeros((5, 3)), {"v": np.zeros(4)})

    def test_read_rejects_non_vtp(self, tmp_path):
        path = tmp_path / "bad.vtp"
        path.write_text("<VTKFile type='ImageData'><ImageData/></VTKFile>")
        with pytest.raises(ValueError):
            read_vtp(path)


class TestStructure:
    def test_has_vertex_cells(self, tmp_path, cloud):
        points, data = cloud
        path = tmp_path / "c.vtp"
        write_vtp(path, points, data, binary=False)
        text = path.read_text()
        assert f'NumberOfVerts="{len(points)}"' in text
        assert "connectivity" in text and "offsets" in text
