"""Atomic, checksummed checkpoints vs injected on-disk corruption."""

import numpy as np
import pytest

from repro.nn import Adam, Trainer, mlp
from repro.nn.serialization import load_model, save_model
from repro.resilience import (
    CheckpointConfig,
    CheckpointCorruptionError,
    atomic_write_npz,
    load_training_checkpoint,
    read_verified_npz,
    save_training_checkpoint,
)
from repro.resilience.faults import flip_bit, truncate_file


class TestAtomicArchive:
    def test_roundtrip(self, tmp_path, rng):
        arrays = {"a": rng.normal(size=(4, 3)), "b": np.arange(5)}
        path = atomic_write_npz(tmp_path / "state.npz", arrays)
        loaded = read_verified_npz(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], arrays["a"])
        np.testing.assert_array_equal(loaded["b"], arrays["b"])

    def test_appends_npz_suffix(self, tmp_path):
        path = atomic_write_npz(tmp_path / "state", {"a": np.zeros(2)})
        assert path.name == "state.npz"
        assert path.exists()

    def test_reserved_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            atomic_write_npz(tmp_path / "s.npz", {"__checksum__": np.zeros(1)})

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_npz(tmp_path / "state.npz", {"a": np.zeros(8)})
        assert [p.name for p in tmp_path.iterdir()] == ["state.npz"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_verified_npz(tmp_path / "absent.npz")

    def test_truncation_detected(self, tmp_path, rng):
        path = atomic_write_npz(tmp_path / "s.npz", {"a": rng.normal(size=256)})
        truncate_file(path, keep_fraction=0.5)
        with pytest.raises(CheckpointCorruptionError):
            read_verified_npz(path)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_bit_flip_detected(self, tmp_path, rng, seed):
        # compressed=False keeps the payload raw so a flipped bit reaches the
        # checksum comparison instead of always tripping zlib first
        path = atomic_write_npz(
            tmp_path / "s.npz", {"a": rng.normal(size=512)}, compressed=False
        )
        flip_bit(path, seed=seed)
        with pytest.raises(CheckpointCorruptionError):
            read_verified_npz(path)

    def test_legacy_archive_without_checksum_loads(self, tmp_path, rng):
        a = rng.normal(size=(3, 3))
        path = tmp_path / "legacy.npz"
        np.savez(path, a=a)  # pre-checksum writer
        loaded = read_verified_npz(path)
        np.testing.assert_array_equal(loaded["a"], a)

    def test_error_names_path_and_reason(self, tmp_path):
        path = atomic_write_npz(tmp_path / "s.npz", {"a": np.zeros(64)})
        truncate_file(path, keep_fraction=0.3)
        with pytest.raises(CheckpointCorruptionError) as err:
            read_verified_npz(path)
        assert err.value.path == path
        assert str(path) in str(err.value)


class TestCheckpointConfig:
    def test_interval_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointConfig(tmp_path / "c.npz", every=0)

    def test_due_schedule(self, tmp_path):
        config = CheckpointConfig(tmp_path / "c.npz", every=3)
        due = [e for e in range(1, 11) if config.due(e, 10)]
        assert due == [3, 6, 9, 10]  # every third epoch plus the final one


class TestTrainingCheckpoint:
    def _trained(self, rng, epochs=3):
        model = mlp(3, [8], 1, activation="ReLU", seed=0)
        trainer = Trainer(
            model, optimizer=Adam(model.parameters(), lr=1e-2), batch_size=16, seed=0
        )
        x = rng.normal(size=(48, 3))
        y = x.sum(axis=1, keepdims=True)
        trainer.fit(x, y, epochs=epochs)
        return model, trainer

    def test_roundtrip(self, tmp_path, rng):
        model, trainer = self._trained(rng)
        gen = np.random.default_rng(11)
        path = save_training_checkpoint(
            tmp_path / "ck.npz",
            model=model,
            optimizer=trainer.optimizer,
            rng=gen,
            history=trainer.fit(rng.normal(size=(16, 3)), rng.normal(size=(16, 1)), epochs=1),
            epoch=4,
            meta={"rows": 48},
        )
        ckpt = load_training_checkpoint(path)
        assert ckpt.epoch == 4
        assert ckpt.meta == {"rows": 48}
        assert ckpt.rng_state == gen.bit_generator.state
        fresh = mlp(3, [8], 1, activation="ReLU", seed=99)
        fresh_opt = Adam(fresh.parameters(), lr=1.0)
        restored_rng = np.random.default_rng(0)
        ckpt.restore(fresh, fresh_opt, restored_rng)
        for a, b in zip(fresh.parameters(), model.parameters()):
            np.testing.assert_array_equal(a.value, b.value)
        assert fresh_opt.lr == trainer.optimizer.lr
        assert restored_rng.bit_generator.state == gen.bit_generator.state

    def test_missing_state_record(self, tmp_path):
        path = atomic_write_npz(tmp_path / "ck.npz", {"param.layer0.w": np.zeros(2)})
        with pytest.raises(CheckpointCorruptionError, match="training-state"):
            load_training_checkpoint(path)

    def test_architecture_mismatch_rejected(self, tmp_path, rng):
        model, trainer = self._trained(rng)
        path = save_training_checkpoint(
            tmp_path / "ck.npz",
            model=model,
            optimizer=trainer.optimizer,
            rng=np.random.default_rng(0),
            history=trainer.fit(rng.normal(size=(16, 3)), rng.normal(size=(16, 1)), epochs=1),
            epoch=1,
        )
        ckpt = load_training_checkpoint(path)
        other = mlp(3, [5], 1, activation="ReLU", seed=0)
        with pytest.raises(ValueError):
            ckpt.restore(other, Adam(other.parameters()), np.random.default_rng(0))


class TestModelSerialization:
    def _trained_model(self, rng):
        model = mlp(2, [6], 1, activation="ReLU", seed=1)
        trainer = Trainer(
            model, optimizer=Adam(model.parameters(), lr=1e-2), batch_size=8, seed=1
        )
        x = rng.normal(size=(24, 2))
        trainer.fit(x, x.sum(axis=1, keepdims=True), epochs=2)
        return model

    def test_truncated_model_rejected(self, tmp_path, rng):
        model = self._trained_model(rng)
        save_model(tmp_path / "m.npz", model)
        truncate_file(tmp_path / "m.npz", keep_fraction=0.6)
        with pytest.raises(CheckpointCorruptionError):
            load_model(tmp_path / "m.npz")

    def test_bit_flipped_model_never_loads_wrong_weights(self, tmp_path, rng):
        # A flipped bit either breaks the load (archive/checksum error) or
        # hit inert zip metadata — it must never load altered weights.
        model = self._trained_model(rng)
        pristine = tmp_path / "m.npz"
        save_model(pristine, model)
        payload = pristine.read_bytes()
        rejected = 0
        for seed in range(8):
            target = tmp_path / f"m{seed}.npz"
            target.write_bytes(payload)
            flip_bit(target, seed=seed)
            try:
                loaded, _ = load_model(target)
            except CheckpointCorruptionError:
                rejected += 1
            else:
                for a, b in zip(loaded.parameters(), model.parameters()):
                    np.testing.assert_array_equal(a.value, b.value)
        assert rejected > 0

    def test_intact_model_roundtrips(self, tmp_path, rng):
        model = self._trained_model(rng)
        save_model(tmp_path / "m.npz", model)
        loaded, _ = load_model(tmp_path / "m.npz")
        for a, b in zip(loaded.parameters(), model.parameters()):
            np.testing.assert_array_equal(a.value, b.value)
