"""Model registry: manifest durability, cold mmap tier, hot LRU."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import ModelKey, ModelRegistry


@pytest.fixture
def registry(serve_registry):
    return serve_registry


class TestKeys:
    def test_keys_and_len(self, registry):
        keys = registry.keys()
        assert len(keys) == len(registry) == 3
        assert keys == sorted(keys)
        assert all(k.dataset == "combustion" for k in keys)
        assert [k.timestep for k in keys] == [0, 1, 2]

    def test_contains(self, registry):
        key = registry.keys()[0]
        assert key in registry
        assert ModelKey("combustion", 0.06, 99) not in registry
        assert ModelKey("nope", 0.06, 0) not in registry

    def test_namespace_id_is_stable(self):
        assert ModelKey("combustion", 0.06, 3).namespace_id == "combustion-f0.060000"

    def test_unknown_namespace_raises(self, registry):
        with pytest.raises(KeyError, match="no namespace"):
            registry.namespace("nope", 0.5)
        with pytest.raises(KeyError, match="no weights"):
            registry.cold_weights(ModelKey("combustion", 0.06, 99))


class TestColdTier:
    def test_cold_weights_are_memory_mapped(self, registry):
        weights = registry.cold_weights(registry.keys()[0])
        assert isinstance(weights, np.memmap)
        assert not weights.flags.writeable

    def test_cold_values_match_namespace_sites(self, registry):
        ns = registry.namespaces()[0]
        values = registry.cold_values(registry.keys()[0])
        assert values.shape == (ns.indices.size,)


class TestHotTier:
    def test_hot_lru_hits_and_eviction(self, registry):
        # a second handle over the same directory with a tiny hot tier
        small = ModelRegistry(registry.root, hot_capacity=2)
        k0, k1, k2 = small.keys()
        w0, v0 = small.hot(k0)
        assert small.hot(k0)[0] is w0  # hit returns the cached object
        small.hot(k1)
        small.hot(k0)        # refresh k0: k1 is now the LRU entry
        small.hot(k2)        # evicts k1
        stats = small.stats()
        assert stats["hot_entries"] == 2
        assert stats["hot_hits"] == 2
        assert small.hot(k1)[0] is not None  # miss: re-paged from cold
        assert small.stats()["hot_misses"] == 4

    def test_hot_matches_cold_bits(self, registry):
        key = registry.keys()[1]
        weights, values = registry.hot(key)
        assert weights.tobytes() == np.array(registry.cold_weights(key)).tobytes()
        assert values.tobytes() == np.array(registry.cold_values(key)).tobytes()


@pytest.fixture
def scratch_registry(registry, tmp_path):
    """A private on-disk copy: put tests must not mutate the shared fixture."""
    import shutil

    root = tmp_path / "registry-copy"
    shutil.copytree(registry.root, root)
    return ModelRegistry(root)


class TestPut:
    def test_put_new_timestep_and_invalidation(self, scratch_registry):
        other = scratch_registry
        key = other.keys()[0]
        weights, values = other.hot(key)
        new_key = ModelKey(key.dataset, key.fraction, 7)
        other.put(new_key, weights * 2.0, values)
        assert new_key in other
        got, _ = other.hot(new_key)
        assert got.tobytes() == (weights * 2.0).tobytes()
        # re-put with different weights drops the stale hot entry
        other.put(new_key, weights * 3.0, values)
        got2, _ = other.hot(new_key)
        assert got2.tobytes() == (weights * 3.0).tobytes()

    def test_put_validates_value_count(self, scratch_registry):
        other = scratch_registry
        key = other.keys()[0]
        weights, values = other.hot(key)
        with pytest.raises(ValueError, match="sample values"):
            other.put(ModelKey(key.dataset, key.fraction, 8), weights, values[:-1])


class TestDurability:
    def test_reopen_from_manifest(self, registry):
        reopened = ModelRegistry(registry.root)
        assert reopened.keys() == registry.keys()
        ns = reopened.namespaces()[0]
        assert ns.grid.dims == registry.namespaces()[0].grid.dims
        assert ns.base.is_trained

    def test_unsupported_schema_rejected(self, tmp_path):
        (tmp_path / "registry.json").write_text(
            json.dumps({"schema": 99, "namespaces": {}})
        )
        with pytest.raises(ValueError, match="schema"):
            ModelRegistry(tmp_path)

    def test_artifacts_have_no_temp_droppings(self, registry):
        leftovers = list(registry.root.rglob("*.tmp"))
        assert leftovers == []


class TestGeometrySharing:
    def test_namespace_geometry_comes_from_shared_cache(self, registry):
        ns = registry.namespaces()[0]
        geometry = ns.geometry
        assert geometry is ns.geometry  # lazy, computed once
        # the registry's cache (primed by the builder) served the object
        assert len(registry.geometry_cache) >= 1
