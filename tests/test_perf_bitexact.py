"""Fast path vs slow path: bit-identical losses, weights and reconstructions.

The workspace fast path's contract is that with the dtype policy off
(float64 compute) it changes *where* results are written, never what they
are.  These tests run the two paths side by side — including a
killed-and-resumed run reusing the resilience fault fixtures — and demand
exact equality, not tolerances.
"""

import numpy as np
import pytest

from repro.core import FCNNReconstructor
from repro.nn import Adam, MSELoss, Trainer, WeightedMSELoss, mlp
from repro.perf import Workspace
from repro.resilience import CheckpointConfig
from repro.resilience.faults import KillAtEpoch, SimulatedCrash

EPOCHS = 5


def make_data(n=192, seed=5):
    gen = np.random.default_rng(seed)
    x = gen.normal(size=(n, 6))
    y = np.stack([x.sum(axis=1), x[:, 0] * x[:, 1]], axis=1)
    return x, y


def make_trainer(loss=None, seed=0, workspace=None, batch_size=32):
    model = mlp(6, [16, 8], 2, activation="ReLU", seed=seed)
    return Trainer(
        model,
        loss=loss,
        optimizer=Adam(model.parameters(), lr=1e-2),
        batch_size=batch_size,
        seed=seed,
        workspace=workspace,
    )


def assert_same_model(a, b):
    for pa, pb in zip(a.parameters(), b.parameters()):
        np.testing.assert_array_equal(pa.value, pb.value)


class TestTrainingBitExact:
    @pytest.mark.parametrize("loss", [None, WeightedMSELoss([1.0, 0.25])])
    def test_five_epochs_identical_losses_and_weights(self, loss):
        x, y = make_data()
        slow = make_trainer(loss=loss)
        h_slow = slow.fit(x, y, epochs=EPOCHS)
        fast = make_trainer(loss=loss, workspace=Workspace())
        h_fast = fast.fit(x, y, epochs=EPOCHS)
        assert h_slow.train_loss == h_fast.train_loss
        assert_same_model(slow.model, fast.model)

    def test_uneven_final_batch(self):
        x, y = make_data(n=100)  # 100 rows / batch 32 -> remainder batch of 4
        slow = make_trainer()
        fast = make_trainer(workspace=Workspace())
        assert slow.fit(x, y, epochs=3).train_loss == fast.fit(x, y, epochs=3).train_loss
        assert_same_model(slow.model, fast.model)

    def test_validation_path_identical(self):
        x, y = make_data()
        xv, yv = make_data(n=48, seed=9)
        slow = make_trainer()
        fast = make_trainer(workspace=Workspace())
        h_slow = slow.fit(x, y, epochs=3, validation=(xv, yv))
        h_fast = fast.fit(x, y, epochs=3, validation=(xv, yv))
        assert h_slow.val_loss == h_fast.val_loss

    def test_workspace_detached_after_fit(self):
        x, y = make_data()
        trainer = make_trainer(workspace=Workspace())
        trainer.fit(x, y, epochs=1)
        assert trainer.model.workspace is None

    def test_resumed_fast_run_matches_uninterrupted_slow_run(self, tmp_path):
        x, y = make_data()
        ckpt = CheckpointConfig(tmp_path / "run.npz", every=2)

        reference = make_trainer()
        ref_history = reference.fit(x, y, epochs=EPOCHS)

        crashed = make_trainer(workspace=Workspace())
        with pytest.raises(SimulatedCrash):
            crashed.fit(x, y, epochs=EPOCHS, checkpoint=ckpt, callback=KillAtEpoch(2))

        resumed = make_trainer(workspace=Workspace())
        history = resumed.fit(x, y, epochs=EPOCHS, resume_from=ckpt.path)

        assert history.train_loss == ref_history.train_loss
        assert_same_model(resumed.model, reference.model)

    def test_fast_checkpoint_resumes_on_slow_path(self, tmp_path):
        """Checkpoints are path-agnostic: fast writes, slow resumes, same run."""
        x, y = make_data()
        ckpt = CheckpointConfig(tmp_path / "run.npz", every=2)
        reference = make_trainer()
        ref_history = reference.fit(x, y, epochs=EPOCHS)

        crashed = make_trainer(workspace=Workspace())
        with pytest.raises(SimulatedCrash):
            crashed.fit(x, y, epochs=EPOCHS, checkpoint=ckpt, callback=KillAtEpoch(2))

        resumed = make_trainer()  # no workspace: the allocating path
        history = resumed.fit(x, y, epochs=EPOCHS, resume_from=ckpt.path)
        assert history.train_loss == ref_history.train_loss
        assert_same_model(resumed.model, reference.model)


class TestInferenceBitExact:
    def test_predict_matches_detached_predict(self):
        model = mlp(6, [16, 8], 2, seed=1)
        x = np.random.default_rng(2).normal(size=(1000, 6))
        slow = model.predict(x, batch_size=256)
        model.attach_workspace(Workspace())
        fast = model.predict(x, batch_size=256)
        model.detach_workspace()
        np.testing.assert_array_equal(slow, fast)

    def test_reconstruction_identical(self, hurricane_field, sample):
        def build(fast):
            r = FCNNReconstructor(
                hidden_layers=(16, 8), batch_size=256, seed=0, fast_path=fast
            )
            r.train(hurricane_field, sample, epochs=2)
            return r

        f_slow = build(False).reconstruct(sample)
        f_fast = build(True).reconstruct(sample)
        np.testing.assert_array_equal(f_slow, f_fast)

    def test_loss_gradient_out_matches_allocating(self):
        rng = np.random.default_rng(3)
        p, t = rng.normal(size=(32, 4)), rng.normal(size=(32, 4))
        for loss in (MSELoss(), WeightedMSELoss([1.0, 0.1, 0.1, 0.1])):
            assert loss.supports_out
            out = np.empty_like(p)
            np.testing.assert_array_equal(
                loss.gradient(p, t), loss.gradient(p, t, out=out)
            )
