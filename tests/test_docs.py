"""Documentation correctness: links resolve, anchors exist, examples run.

Two gates:

* every relative markdown link (and ``#anchor`` fragment) in the repo's
  documentation points at a real file/heading — including intra-document
  ``#heading`` links and GitHub's ``-1``/``-2`` suffixes for duplicated
  heading slugs;
* every ``python`` code block in ``docs/API.md`` executes cleanly — the
  per-package examples are promises about the public API, so they are run
  verbatim in a scratch directory;
* the ``docs/TRAINING.md`` walkthrough executes cleanly as one continuous
  program — its blocks build on each other, so they run in order in a
  shared namespace and every identity assertion inside them is enforced.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "benchmarks" / "README.md"]
    + list((REPO_ROOT / "docs").glob("*.md"))
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCE_RE = re.compile(r"^```")


def github_anchor(heading: str) -> str:
    """GitHub's heading → fragment slug: lowercase, strip punctuation, dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _strip_code_blocks(text: str) -> str:
    """Remove fenced code blocks so example links aren't treated as real."""
    out, fenced = [], False
    for line in text.splitlines():
        if _FENCE_RE.match(line.strip()):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def anchors_of(path: Path) -> set[str]:
    """Every fragment GitHub would accept for ``path``'s headings.

    Repeated headings get suffixed slugs (``#setup``, ``#setup-1``, ...),
    so a document may validly link to any of them.
    """
    headings = _HEADING_RE.findall(_strip_code_blocks(path.read_text(encoding="utf-8")))
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    for heading in headings:
        slug = github_anchor(heading)
        count = seen.get(slug, 0)
        anchors.add(slug if count == 0 else f"{slug}-{count}")
        seen[slug] = count + 1
    return anchors


def links_of(path: Path) -> list[str]:
    return _LINK_RE.findall(_strip_code_blocks(path.read_text(encoding="utf-8")))


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_markdown_links_resolve(doc):
    problems = []
    for link in links_of(doc):
        if link.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, fragment = link.partition("#")
        target_path = (doc.parent / target).resolve() if target else doc
        if not target_path.exists():
            problems.append(f"{link}: {target_path} does not exist")
            continue
        if fragment and target_path.suffix == ".md":
            if fragment not in anchors_of(target_path):
                problems.append(f"{link}: no heading for anchor #{fragment}")
    assert not problems, f"{doc.name}: broken links:\n  " + "\n  ".join(problems)


def test_docs_cover_observability():
    """The satellite docs are cross-linked the way the docs index promises."""
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/OBSERVABILITY.md" in readme
    assert "docs/API.md" in readme
    resilience = (REPO_ROOT / "docs" / "RESILIENCE.md").read_text(encoding="utf-8")
    assert "OBSERVABILITY.md" in resilience


def test_docs_cover_training():
    """TRAINING.md is indexed and cross-linked with the perf story."""
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/TRAINING.md" in readme
    performance = (REPO_ROOT / "docs" / "PERFORMANCE.md").read_text(encoding="utf-8")
    assert "TRAINING.md" in performance
    training = (REPO_ROOT / "docs" / "TRAINING.md").read_text(encoding="utf-8")
    assert "PERFORMANCE.md" in training and "RESILIENCE.md" in training


def test_anchor_slugs_handle_duplicate_headings(tmp_path):
    """The checker accepts GitHub's -N suffixes and nothing else."""
    doc = tmp_path / "dup.md"
    doc.write_text("# Setup\ntext\n## Setup\n### `Setup`\n", encoding="utf-8")
    assert anchors_of(doc) == {"setup", "setup-1", "setup-2"}


# ----------------------------------------------------------- API.md examples

_API_MD = REPO_ROOT / "docs" / "API.md"


def python_blocks(path: Path) -> list[tuple[str, str]]:
    """``(section, code)`` for every ```python fence, labeled by heading."""
    section = "top"
    blocks: list[tuple[str, str]] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        m = _HEADING_RE.match(line)
        if m:
            section = m.group(1).split("—")[0].strip()
        if line.strip() == "```python":
            j = i + 1
            while j < len(lines) and lines[j].strip() != "```":
                j += 1
            blocks.append((section, "\n".join(lines[i + 1 : j])))
            i = j
        i += 1
    return blocks


_API_BLOCKS = python_blocks(_API_MD)


def test_api_md_documents_every_package():
    """Each repro subpackage gets a section with a runnable example."""
    import repro

    text = _API_MD.read_text(encoding="utf-8")
    documented = {section.replace("repro.", "").split(" ")[0].split("+")[0]
                  for section, _ in _API_BLOCKS}
    missing = [pkg for pkg in repro.__all__ if pkg not in documented]
    assert not missing, f"packages without a runnable API.md example: {missing}"
    for pkg in repro.__all__:
        assert f"repro.{pkg}" in text


@pytest.mark.parametrize(
    ("section", "code"),
    _API_BLOCKS,
    ids=[section for section, _ in _API_BLOCKS],
)
def test_api_md_example_runs(section, code, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # examples may write files; keep them scratch
    exec(compile(code, f"API.md:{section}", "exec"), {"__name__": "__api_example__"})


# ------------------------------------------------- TRAINING.md walkthrough

_TRAINING_MD = REPO_ROOT / "docs" / "TRAINING.md"


def test_training_md_walkthrough_runs(tmp_path, monkeypatch):
    """TRAINING.md's blocks are one continuous program; run them in order.

    The blocks assert the engine's bit-identity guarantees themselves
    (``flat.tobytes() == ...``), so executing them *is* the check that
    the documented contract holds.
    """
    blocks = python_blocks(_TRAINING_MD)
    assert len(blocks) >= 4, "TRAINING.md lost its executed walkthrough"
    monkeypatch.chdir(tmp_path)
    namespace = {"__name__": "__training_example__"}
    for section, code in blocks:
        exec(compile(code, f"TRAINING.md:{section}", "exec"), namespace)
