"""Persistent (pooled) executor lifecycle and its PR 2 recovery semantics.

A ``ParallelExecutor(persistent=True)`` keeps one warm process pool alive
across ``map_outcomes`` calls (the campaign scheduler's reconstruct stage
depends on this); these tests pin down the lifecycle contract: lazy
creation, reuse while healthy, recycling after crashes/timeouts, and
idempotent teardown — with the broken-pool serial-fallback recovery intact.
"""

from __future__ import annotations

import numpy as np

from repro.interpolation import DelaunayLinearInterpolator
from repro.parallel import ParallelExecutor, parallel_reconstruct
from repro.resilience.faults import SlowTask, TransientFaultTask


def _square(payload):
    return payload * payload


class TestLifecycle:
    def test_pool_is_lazy_and_reused_while_healthy(self):
        with ParallelExecutor(max_workers=2, persistent=True) as ex:
            assert ex._pool is None  # nothing spawned until first use
            assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]
            pool = ex._pool
            assert pool is not None
            assert ex.map(_square, [4, 5]) == [16, 25]
            assert ex._pool is pool  # same warm pool, not a new one
        assert ex._pool is None  # context exit closed it

    def test_non_persistent_keeps_no_pool(self):
        ex = ParallelExecutor(max_workers=2)
        assert ex.map(_square, [1, 2]) == [1, 4]
        assert ex._pool is None

    def test_close_is_idempotent_and_reuse_after_close_works(self):
        ex = ParallelExecutor(max_workers=2, persistent=True)
        ex.map(_square, [1])
        ex.close()
        ex.close()  # second close is a no-op
        assert ex._pool is None
        # a closed executor lazily builds a fresh pool on next use
        assert ex.map(_square, [3]) == [9]
        ex.close()

    def test_serial_executor_ignores_persistence(self):
        with ParallelExecutor(max_workers=1, persistent=True) as ex:
            assert ex.map(_square, [2, 3]) == [4, 9]
            assert ex._pool is None

    def test_concurrent_acquire_and_close_strand_no_pool(self, monkeypatch):
        # Regression (THR-family fix): close() racing the lazy check-then-
        # create in _acquire_pool used to be able to leave a freshly made
        # pool unreferenced — its workers leaked.  With the lifecycle lock,
        # every pool ever created is either the current one or shut down.
        import repro.parallel.executor as executor_mod

        created = []

        class FakePool:
            def __init__(self, max_workers=None):
                self.shut = False
                created.append(self)

            def shutdown(self, wait=True, cancel_futures=False):
                self.shut = True

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", FakePool)
        ex = ParallelExecutor(max_workers=2, persistent=True)

        import threading

        stop = threading.Event()

        def churn_acquire():
            while not stop.is_set():
                pool, pooled = ex._acquire_pool(2)
                assert pooled

        def churn_close():
            while not stop.is_set():
                ex.close()

        threads = [threading.Thread(target=churn_acquire) for _ in range(3)]
        threads += [threading.Thread(target=churn_close) for _ in range(2)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        ex.close()
        assert ex._pool is None
        assert created, "stress loop never created a pool"
        assert all(pool.shut for pool in created), "a pool was stranded open"


class TestRecovery:
    def test_broken_persistent_pool_recovers_and_recycles(self, tmp_path):
        # payload 2 kills its worker; the PR 2 semantics must survive
        # persistence: completed results kept, unresolved chunks re-run
        # serially, and the poisoned pool recycled for the next call.
        task = TransientFaultTask(_square, tmp_path, crash_on={2}, mode="exit")
        with ParallelExecutor(max_workers=2, persistent=True) as ex:
            outcomes = ex.map_outcomes(task, [0, 1, 2, 3, 4])
            assert [o.result for o in outcomes] == [0, 1, 4, 9, 16]
            assert any(o.recovered == "serial-fallback" for o in outcomes)
            assert ex._pool is None  # broken pool was not kept warm
            # next call starts healthy on a fresh pool
            assert ex.map(_square, [5, 6]) == [25, 36]
            assert ex._pool is not None

    def test_persistent_retry_recovers_transient_raise(self, tmp_path):
        task = TransientFaultTask(_square, tmp_path, crash_on={3}, mode="raise")
        with ParallelExecutor(max_workers=2, persistent=True, retries=1, backoff=0.0) as ex:
            outcomes = ex.map_outcomes(task, [1, 2, 3])
            assert all(o.ok for o in outcomes)
            assert outcomes[2].recovered == "retry"

    def test_timeout_recycles_persistent_pool(self):
        task = SlowTask(_square, slow_on={1}, delay=10.0)
        with ParallelExecutor(max_workers=2, persistent=True, timeout=0.75) as ex:
            outcomes = ex.map_outcomes(task, [0, 1])
            assert outcomes[0].ok and not outcomes[1].ok
            # a pool with a stuck worker must not be reused
            assert ex._pool is None
            assert ex.map(_square, [7]) == [49]


class TestCallerSuppliedExecutor:
    def test_parallel_reconstruct_reuses_one_warm_pool(self, sample):
        interp = DelaunayLinearInterpolator()
        serial = interp.reconstruct(sample)
        with ParallelExecutor(max_workers=2, persistent=True) as ex:
            first = parallel_reconstruct(interp, sample, executor=ex, num_chunks=4)
            pool = ex._pool
            second = parallel_reconstruct(interp, sample, executor=ex, num_chunks=4)
            assert ex._pool is pool or pool is None  # serial hosts keep no pool
        np.testing.assert_allclose(first, serial)
        assert first.tobytes() == second.tobytes()
