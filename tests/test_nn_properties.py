"""Property-based tests for the nn engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Adam, MSELoss, Trainer, mlp


class TestNetworkProperties:
    @given(
        st.integers(1, 16),     # in features
        st.integers(1, 32),     # hidden width
        st.integers(1, 8),      # out features
        st.integers(1, 64),     # batch size
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_forward_shape(self, fin, hidden, fout, batch, seed):
        model = mlp(fin, [hidden], fout, seed=seed % 1000)
        x = np.random.default_rng(seed).normal(size=(batch, fin))
        assert model.forward(x).shape == (batch, fout)

    @given(st.integers(0, 2**31 - 1), st.integers(1, 50))
    @settings(max_examples=20, deadline=None)
    def test_predict_equals_forward_any_batching(self, seed, batch_size):
        model = mlp(5, [8, 4], 2, seed=0)
        x = np.random.default_rng(seed).normal(size=(37, 5))
        np.testing.assert_allclose(
            model.predict(x, batch_size=batch_size), model.forward(x)
        )

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_frozen_layers_never_move(self, seed):
        rng = np.random.default_rng(seed)
        model = mlp(3, [6, 6, 6], 1, seed=0)
        model.freeze_all_but_last(1)
        frozen_before = [l.weight.value.copy() for l in model.dense_layers()[:-1]]

        trainer = Trainer(model, loss=MSELoss(),
                          optimizer=Adam(model.parameters()), batch_size=8, seed=0)
        trainer.fit(rng.normal(size=(16, 3)), rng.normal(size=(16, 1)), epochs=3)
        for before, layer in zip(frozen_before, model.dense_layers()[:-1]):
            np.testing.assert_array_equal(before, layer.weight.value)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_gradient_accumulation_linear(self, seed):
        # backward(a) then backward(b) accumulates the same grads as
        # backward over the concatenated batch (scaled appropriately).
        rng = np.random.default_rng(seed)
        model = mlp(4, [6], 2, seed=1)
        x1, x2 = rng.normal(size=(3, 4)), rng.normal(size=(5, 4))
        g1, g2 = rng.normal(size=(3, 2)), rng.normal(size=(5, 2))

        model.zero_grad()
        model.forward(x1)
        model.backward(g1)
        model.forward(x2)
        model.backward(g2)
        accumulated = [p.grad.copy() for p in model.parameters()]

        model.zero_grad()
        model.forward(np.concatenate([x1, x2]))
        model.backward(np.concatenate([g1, g2]))
        joint = [p.grad.copy() for p in model.parameters()]
        for a, b in zip(accumulated, joint):
            np.testing.assert_allclose(a, b, atol=1e-10)

    @given(st.floats(1e-5, 1e-1), st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_one_sgd_step_descends_quadratic(self, lr, seed):
        from repro.nn import SGD, Parameter

        rng = np.random.default_rng(seed)
        p = Parameter(rng.normal(size=4))
        target = rng.normal(size=4)
        loss_before = float(np.sum((p.value - target) ** 2))
        p.grad[...] = 2 * (p.value - target)
        SGD([p], lr=lr).step()
        loss_after = float(np.sum((p.value - target) ** 2))
        assert loss_after <= loss_before + 1e-12
