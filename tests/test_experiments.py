"""Tests for the experiment harness: config, reporting, every runner."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, PROFILES
from repro.experiments.config import get_config
from repro.experiments.reporting import format_series, format_table


#: one tiny config reused by all runner smoke tests
TINY = get_config(
    "quick",
    dims=(14, 14, 6),
    epochs=4,
    case2_epochs=6,
    test_fractions=(0.02, 0.05),
    timesteps=(0, 16, 32),
    hidden_layers=(16, 8),
    batch_size=1024,
)


class TestConfig:
    def test_profiles_exist(self):
        assert {"quick", "bench", "paper"} <= set(PROFILES)

    def test_paper_profile_uses_paper_architecture(self):
        assert PROFILES["paper"].hidden_layers == (512, 256, 128, 64, 16)
        assert PROFILES["paper"].epochs == 500

    def test_get_config_overrides(self):
        cfg = get_config("quick", epochs=3)
        assert cfg.epochs == 3 and cfg.profile == "quick"

    def test_get_config_unknown(self):
        with pytest.raises(ValueError):
            get_config("gpu")

    def test_scaled_returns_copy(self):
        cfg = get_config("quick")
        other = cfg.scaled(seed=123)
        assert other.seed == 123 and cfg.seed != 123

    def test_frozen(self):
        with pytest.raises(Exception):
            get_config("quick").epochs = 9  # type: ignore[misc]


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "a" in lines[0] and "b" in lines[0]

    def test_format_table_union_of_keys(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_series(self):
        text = format_series({"curve": [(1, 2.0), (2, 4.0)]}, x_name="frac")
        assert "[curve]" in text and "frac=1" in text

    def test_format_handles_nan(self):
        assert "nan" in format_table([{"v": float("nan")}])


class TestRunners:
    """Smoke tests: every runner executes and returns sane structure."""

    def test_fig6_layers(self):
        from repro.experiments import exp_layers

        res = exp_layers.run(TINY, layer_counts=(1, 2))
        assert len(res.rows) == 2
        assert all(np.isfinite(r["avg_snr"]) for r in res.rows)
        assert res.rows[0]["hidden_layers"] == 1

    def test_fig6_ladder(self):
        from repro.experiments.exp_layers import layer_ladder

        assert layer_ladder(2, (128, 64, 32)) == (128, 64)
        assert layer_ladder(5, (128, 64, 32)) == (128, 64, 32, 32, 32)
        with pytest.raises(ValueError):
            layer_ladder(0, (128,))

    def test_fig7_train_mix(self):
        from repro.experiments import exp_train_mix

        res = exp_train_mix.run(TINY)
        models = {r["model"] for r in res.rows}
        assert len(models) == 3
        assert len(res.rows) == 3 * len(TINY.test_fractions)

    def test_fig8_gradient(self):
        from repro.experiments import exp_gradient_ablation

        res = exp_gradient_ablation.run(TINY)
        assert {r["model"] for r in res.rows} == {"with-gradient", "without-gradient"}

    def test_fig9_quality(self):
        from repro.experiments import exp_sampling_quality

        res = exp_sampling_quality.run(TINY, datasets=("hurricane",))
        methods = {r["method"] for r in res.rows}
        assert {"fcnn", "linear", "natural", "shepard", "nearest"} == methods
        assert all(np.isfinite(r["snr"]) for r in res.rows)

    def test_fig10_time(self):
        from repro.experiments import exp_sampling_time

        res = exp_sampling_time.run(TINY)
        methods = {r["method"] for r in res.rows}
        assert "fcnn" in methods and "linear-naive" in methods and "linear-parallel" in methods
        assert all(r["seconds"] >= 0 for r in res.rows)

    def test_fig11_timesteps(self):
        from repro.experiments import exp_timesteps

        res = exp_timesteps.run(TINY)
        assert len(res.rows) == len(TINY.timesteps)
        for row in res.rows:
            assert {"linear", "fcnn-pre@A", "fcnn-pre@B", "fcnn-ft@A", "fcnn-ft@B"} <= set(row)

    def test_fig12_loss_curves(self):
        from repro.experiments import exp_loss_curves

        res = exp_loss_curves.run(TINY)
        assert len(res.series["full-training"]) == TINY.epochs
        assert len(res.series["fine-tuning"]) >= TINY.finetune_epochs
        # Both phases make progress.  (The paper's "fine-tuning starts
        # already low" shape needs a converged pretrain; the bench-profile
        # benchmark asserts it — at this tiny epoch budget we only require
        # that fine-tuning itself converges.)
        ft = [v for _, v in res.series["fine-tuning"]]
        assert ft[-1] <= ft[0]

    def test_fig13_upscaling(self):
        from repro.experiments import exp_upscaling

        res = exp_upscaling.run(TINY)
        assert res.notes["high_dims"] == tuple(d * TINY.upscale_factor for d in TINY.dims)
        for row in res.rows:
            assert {"linear", "fcnn-full@hi", "fcnn-ft lo->hi"} <= set(row)

    def test_fig14_training_subset(self):
        from repro.experiments import exp_training_subset

        res = exp_training_subset.run(TINY, fractions=(1.0, 0.5))
        assert {r["train_data"] for r in res.rows} == {"100%", "50%"}
        times = dict(res.series["train_seconds"])
        assert times[0.5] < times[1.0]

    def test_tab1_training_time(self):
        from repro.experiments import exp_training_time

        res = exp_training_time.run(TINY)
        assert len(res.rows) == 4
        datasets = [r["dataset"] for r in res.rows]
        assert datasets.count("hurricane") == 2
        # The upscaled hurricane has ~8x the rows and must cost more.
        hur = [r for r in res.rows if r["dataset"] == "hurricane"]
        assert max(h["train_seconds"] for h in hur) > min(h["train_seconds"] for h in hur)

    def test_fig5_finetune_cases(self):
        from repro.experiments import exp_finetune_cases

        res = exp_finetune_cases.run(TINY, case2_budgets=(2, 6))
        cases = {r["case"] for r in res.rows}
        assert {"no-finetune", "case1-full", "case2-last2"} == cases
        assert res.notes["partial_checkpoint_bytes"] < res.notes["full_checkpoint_bytes"]

    def test_result_format_renders(self):
        from repro.experiments import exp_train_mix

        text = exp_train_mix.run(TINY).format()
        assert "fig07-train-mix" in text and "snr" in text


class TestCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "tab1" in out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["fig99"]) == 2

    def test_runs_experiment(self, capsys):
        from repro.cli import main

        code = main(["fig7", "--profile", "quick", "--epochs", "2"])
        assert code == 0
        assert "fig07-train-mix" in capsys.readouterr().out
