"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    CombustionDataset,
    HurricaneDataset,
    IonizationDataset,
    available_datasets,
    make_dataset,
)
from repro.grid import UniformGrid, upscaled_grid

ALL = [HurricaneDataset, CombustionDataset, IonizationDataset]


def small(cls, dims=(16, 16, 8)) -> UniformGrid:
    """Coarse grid spanning the dataset's full reference domain."""
    return cls.default_grid().with_resolution(dims)


@pytest.fixture(params=ALL, ids=[c.name for c in ALL])
def dataset(request):
    cls = request.param
    return cls(grid=cls.default_grid().with_resolution((16, 16, 8)), seed=0)


class TestCommonBehaviour:
    def test_field_shape(self, dataset):
        f = dataset.field(t=0)
        assert f.values.shape == dataset.grid.dims

    def test_finite(self, dataset):
        f = dataset.field(t=0)
        assert np.isfinite(f.values).all()

    def test_deterministic_per_seed(self, dataset):
        other = type(dataset)(grid=dataset.grid, seed=dataset.seed)
        np.testing.assert_array_equal(
            dataset.field(t=3).values, other.field(t=3).values
        )

    def test_seed_changes_field(self, dataset):
        other = type(dataset)(grid=dataset.grid, seed=99)
        assert not np.array_equal(dataset.field(t=0).values, other.field(t=0).values)

    def test_evolves_in_time(self, dataset):
        a = dataset.field(t=0).values
        b = dataset.field(t=dataset.num_timesteps - 1).values
        assert not np.allclose(a, b)

    def test_evolution_is_gradual(self, dataset):
        # Adjacent timesteps differ less than distant ones.
        f0 = dataset.field(t=0).values
        f1 = dataset.field(t=1).values
        f_far = dataset.field(t=dataset.num_timesteps // 2).values
        near = np.abs(f1 - f0).mean()
        far = np.abs(f_far - f0).mean()
        assert near < far

    def test_resolution_consistency(self, dataset):
        # A finer grid samples the same underlying field: coarse values
        # must appear (to numerical precision) at matching positions.
        coarse = dataset.grid
        fine = coarse.with_resolution(tuple(2 * d - 1 for d in coarse.dims))
        fc = dataset.field(t=2, grid=coarse).values
        ff = dataset.field(t=2, grid=fine).values
        np.testing.assert_allclose(fc, ff[::2, ::2, ::2], rtol=1e-10, atol=1e-10)

    def test_evaluate_matches_field(self, dataset):
        pts = dataset.grid.points()[:100]
        direct = dataset.evaluate(pts, t=1)
        via_field = dataset.field(t=1).flat[:100]
        np.testing.assert_allclose(direct, via_field)

    def test_shifted_domain_is_defined(self, dataset):
        hi = upscaled_grid(dataset.grid, 2, shift_fraction=(0.2, 0.2, 0.0))
        f = dataset.field(t=0, grid=hi)
        assert np.isfinite(f.values).all()

    def test_has_spatial_structure(self, dataset):
        f = dataset.field(t=dataset.num_timesteps // 2)
        assert f.values.std() > 1e-3

    def test_time_fraction_bounds(self, dataset):
        assert dataset.time_fraction(0) == 0.0
        assert dataset.time_fraction(dataset.num_timesteps - 1) == pytest.approx(1.0)


class TestHurricane:
    def test_eye_is_minimum_at_surface(self):
        data = HurricaneDataset(grid=HurricaneDataset.default_grid().with_resolution((40, 40, 8)))
        f = data.field(t=24).values  # mid-simulation, strongest storm
        surface = f[:, :, 0]
        eye_idx = np.unravel_index(np.argmin(surface), surface.shape)
        cx, cy = data._eye_center(data.time_fraction(24))
        assert abs(eye_idx[0] / 39 - cx) < 0.12
        assert abs(eye_idx[1] / 39 - cy) < 0.12

    def test_pressure_magnitude_reasonable(self):
        f = HurricaneDataset(grid=small(HurricaneDataset)).field(t=20).values
        assert 850.0 < f.min() < 1010.0
        assert 990.0 < f.max() < 1050.0

    def test_paper_reference_resolution(self):
        assert HurricaneDataset.default_grid().dims == (250, 250, 50)
        assert HurricaneDataset.num_timesteps == 48


class TestCombustion:
    def test_mixfrac_bounded(self):
        f = CombustionDataset(grid=small(CombustionDataset)).field(t=50).values
        assert f.min() >= 0.0 and f.max() <= 1.0

    def test_flame_front_moves_downstream(self):
        data = CombustionDataset(grid=CombustionDataset.default_grid().with_resolution((40, 16, 8)))
        def front_x(t):
            f = data.field(t=t).values
            profile = f.mean(axis=(1, 2))
            return int(np.argmin(np.abs(profile - 0.5)))
        assert front_x(100) > front_x(10)

    def test_paper_reference_resolution(self):
        assert CombustionDataset.default_grid().dims == (240, 360, 60)
        assert CombustionDataset.num_timesteps == 122


class TestIonization:
    def test_front_advances(self):
        data = IonizationDataset(grid=IonizationDataset.default_grid().with_resolution((60, 12, 12)))
        def front_x(t):
            f = data.field(t=t).values
            profile = f.mean(axis=(1, 2))
            return int(np.argmax(np.diff(profile)))
        assert front_x(150) > front_x(20)

    def test_density_contrast(self):
        f = IonizationDataset(grid=small(IonizationDataset)).field(t=100).values
        assert f.min() < 0.3  # ionized region
        assert f.max() > 0.9  # neutral gas / shell

    def test_paper_reference_resolution(self):
        assert IonizationDataset.default_grid().dims == (600, 248, 248)
        assert IonizationDataset.num_timesteps == 200


class TestRegistry:
    def test_available(self):
        assert available_datasets() == ["combustion", "hurricane", "ionization"]

    def test_make_dataset_default(self):
        d = make_dataset("hurricane")
        assert d.grid.dims == (250, 250, 50)

    def test_make_dataset_with_dims_keeps_extent(self):
        d = make_dataset("hurricane", dims=(25, 25, 5))
        ref = HurricaneDataset.default_grid()
        np.testing.assert_allclose(np.asarray(d.grid.extent), np.asarray(ref.extent))

    def test_make_dataset_unknown(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            make_dataset("nope")

    def test_make_dataset_seed(self):
        a = make_dataset("combustion", dims=(8, 8, 4), seed=1)
        b = make_dataset("combustion", dims=(8, 8, 4), seed=2)
        assert not np.array_equal(a.field(0).values, b.field(0).values)
