"""Dtype policy: validation, casting, float64 accumulation guarantees."""

import numpy as np
import pytest

from repro.core import FCNNReconstructor
from repro.nn import MSELoss, mlp
from repro.perf import DtypePolicy, Workspace


class TestPolicy:
    def test_default_is_identity(self):
        policy = DtypePolicy()
        assert not policy.enabled
        assert policy.compute_dtype == np.float64

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError, match="float16"):
            DtypePolicy("float16")

    def test_cast_model_in_place(self):
        model = mlp(3, [4], 1, seed=0)
        params = model.parameters()
        DtypePolicy("float32").cast_model(model)
        assert model.parameters() == params  # same Parameter objects
        assert all(p.value.dtype == np.float32 for p in params)
        assert all(p.grad.dtype == np.float32 for p in params)

    def test_float64_cast_is_noop(self):
        model = mlp(3, [4], 1, seed=0)
        before = [p.value for p in model.parameters()]
        DtypePolicy().cast_model(model)
        assert all(a is b for a, b in zip(before, (p.value for p in model.parameters())))


class TestFloat32Compute:
    def test_loss_value_is_python_float64(self):
        """Accumulation guarantee: float32 predictions, float64 reduction."""
        p = np.ones((8, 2), dtype=np.float32)
        t = np.zeros((8, 2), dtype=np.float32)
        v = MSELoss().value(p, t)
        assert isinstance(v, float) and v == 1.0

    def test_float32_training_tracks_float64(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(256, 3))
        y = x.sum(axis=1, keepdims=True)

        def run(dtype):
            model = mlp(3, [8], 1, seed=0)
            DtypePolicy(dtype).cast_model(model)
            from repro.nn import Adam, Trainer

            trainer = Trainer(
                model,
                optimizer=Adam(model.parameters(), lr=1e-2),
                batch_size=64,
                seed=0,
                workspace=Workspace(dtype=np.dtype(dtype)),
            )
            return trainer.fit(x, y, epochs=3).train_loss

        l64, l32 = run("float64"), run("float32")
        assert np.allclose(l64, l32, rtol=1e-4)
        assert all(np.isfinite(l32))

    def test_reconstructor_float32_close_to_float64(self, hurricane_field, sample):
        def build(dtype):
            r = FCNNReconstructor(
                hidden_layers=(16, 8), batch_size=256, seed=0, dtype_policy=dtype
            )
            r.train(hurricane_field, sample, epochs=2)
            return r.reconstruct(sample)

        f64, f32 = build("float64"), build("float32")
        assert f32.dtype == np.float64  # outputs accumulate/denormalize in float64
        scale = np.max(np.abs(f64)) + 1e-12
        assert np.max(np.abs(f64 - f32)) / scale < 1e-4

    def test_policy_round_trips_through_save(self, hurricane_field, sample, tmp_path):
        r = FCNNReconstructor(
            hidden_layers=(8,), batch_size=256, seed=0, dtype_policy="float32"
        )
        r.train(hurricane_field, sample, epochs=1)
        r.save(tmp_path / "model.npz")
        loaded = FCNNReconstructor.load(tmp_path / "model.npz")
        assert loaded.dtype_policy.compute == "float32"
        assert loaded.fast_path is True
        assert all(p.value.dtype == np.float32 for p in loaded.model.parameters())
