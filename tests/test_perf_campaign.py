"""Streaming campaign scheduler: bit-identity, caches, and fault tolerance.

The contract under test is the PR 5 tentpole: every combination of
``pipeline`` x ``warm_pool`` — and every injected worker failure — must
produce reconstructions **bit-identical** to the plain serial loop, ship
campaign geometry + base weights at most once, and never silently drop a
timestep.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import FCNNReconstructor, ReconstructionPipeline
from repro.datasets import make_dataset
from repro.obs.metrics import MetricsRegistry, activate, deactivate
from repro.perf.campaign import (
    CampaignGeometry,
    CampaignScheduler,
    GeometryCache,
    LocalReconstructionSink,
    WarmReconstructionPool,
    _aligned_chunks,
    geometry_key,
)
from repro.perf.weights import (
    apply_weight_delta,
    restore_weights,
    snapshot_weights,
    weight_delta,
)

DIMS = (12, 12, 6)
TIMESTEPS = (0, 8, 16)


@pytest.fixture
def metrics():
    previous = activate(MetricsRegistry())
    try:
        yield
    finally:
        deactivate(previous)


@pytest.fixture(scope="module")
def campaign_pipeline():
    data = make_dataset("combustion", dims=DIMS, seed=0)
    return ReconstructionPipeline(
        data, train_fractions=(0.02, 0.05), keep_reconstructions=True
    )


@pytest.fixture(scope="module")
def base_model(campaign_pipeline):
    """A small pretrained FCNN; tests must clone() it, never mutate it."""
    model = FCNNReconstructor(hidden_layers=(16, 8), batch_size=1024, seed=7)
    campaign_pipeline.train_fcnn(model, timestep=TIMESTEPS[0], epochs=3)
    return model


# ---------------------------------------------------------------------------
# weight snapshots and bit-exact deltas


class TestWeights:
    def test_snapshot_restore_roundtrip_bitwise(self, base_model):
        model = base_model.clone()
        snap = snapshot_weights(model.model)
        for p in model.model.parameters():
            p.value += 0.125  # perturb every weight
        restore_weights(model.model, snap)
        assert snapshot_weights(model.model).data.tobytes() == snap.data.tobytes()

    def test_bare_vector_restore(self, base_model):
        model = base_model.clone()
        flat = snapshot_weights(model.model).data.copy()
        for p in model.model.parameters():
            p.value *= -1.0
        restore_weights(model.model, flat)
        assert snapshot_weights(model.model).data.tobytes() == flat.tobytes()

    def test_restore_rejects_size_mismatch(self, base_model):
        model = base_model.clone()
        with pytest.raises(ValueError, match="weights"):
            restore_weights(model.model, np.zeros(3))

    def test_delta_roundtrip_special_values(self):
        # signed zeros and NaN payloads survive only a bitwise delta
        base = np.array([0.0, -0.0, np.nan, np.inf, 1.5, -2.25])
        new = np.array([-0.0, 0.0, 2.0, np.nan, 1.5, 3.75])
        delta = weight_delta(base, new)
        assert delta[4] == 0  # unchanged weights XOR to zero
        out = apply_weight_delta(base, delta)
        assert out.tobytes() == new.tobytes()

    def test_delta_decodes_into_scratch(self):
        base = np.linspace(-1.0, 1.0, 7)
        new = base * 3.0
        scratch = np.empty_like(base)
        out = apply_weight_delta(base, weight_delta(base, new), out=scratch)
        assert out is scratch
        assert scratch.tobytes() == new.tobytes()

    def test_delta_rejects_size_mismatch(self):
        with pytest.raises(ValueError, match="size"):
            weight_delta(np.zeros(4), np.zeros(5))

    def test_clone_is_bitwise_equal_and_independent(self, campaign_pipeline, base_model):
        clone = base_model.clone()
        sample = campaign_pipeline.sample(campaign_pipeline.field(TIMESTEPS[0]), 0.05)
        ref = base_model.reconstruct(sample)
        assert clone.reconstruct(sample).tobytes() == ref.tobytes()
        # fine-tuning the clone must not leak into the base model
        field = campaign_pipeline.field(TIMESTEPS[1])
        train = [campaign_pipeline.sample(field, f) for f in (0.02, 0.05)]
        clone.fine_tune(field, train, epochs=1)
        assert base_model.reconstruct(sample).tobytes() == ref.tobytes()

    def test_reconstructor_snapshot_restore_across_finetune(
        self, campaign_pipeline, base_model
    ):
        model = base_model.clone()
        snap = model.snapshot()
        sample = campaign_pipeline.sample(campaign_pipeline.field(TIMESTEPS[0]), 0.05)
        ref = model.reconstruct(sample)
        field = campaign_pipeline.field(TIMESTEPS[1])
        train = [campaign_pipeline.sample(field, f) for f in (0.02, 0.05)]
        model.fine_tune(field, train, epochs=2, strategy="last")
        model.restore(snap)
        assert model.reconstruct(sample).tobytes() == ref.tobytes()


# ---------------------------------------------------------------------------
# chunk alignment (bit-identity depends on block-aligned boundaries)


class TestAlignedChunks:
    def test_covers_range_contiguously(self):
        chunks = _aligned_chunks(100_000, 4, 16384)
        assert chunks[0][0] == 0 and chunks[-1][1] == 100_000
        for (_, stop), (start, _) in zip(chunks, chunks[1:]):
            assert stop == start

    def test_boundaries_are_block_multiples(self):
        for total, n, align in ((100_000, 4, 16384), (50_000, 3, 4096), (16385, 2, 16384)):
            for start, stop in _aligned_chunks(total, n, align)[:-1]:
                assert start % align == 0
                assert stop % align == 0

    def test_small_totals_collapse_to_one_chunk(self):
        assert _aligned_chunks(820, 4, 16384) == [(0, 820)]

    def test_empty_total(self):
        assert _aligned_chunks(0, 4, 16384) == []


# ---------------------------------------------------------------------------
# geometry + cross-timestep caches


class TestGeometry:
    def test_shell_shares_void_caches(self, campaign_pipeline):
        sample = campaign_pipeline.sample(campaign_pipeline.field(0), 0.05)
        geometry = CampaignGeometry.from_sample(sample)
        shell = geometry.shell()
        assert shell.void_indices() is geometry.void_indices
        np.testing.assert_array_equal(shell.indices, np.sort(sample.indices))

    def test_refresh_rewrites_values_in_place(self, campaign_pipeline):
        geometry = CampaignGeometry.from_sample(
            campaign_pipeline.sample(campaign_pipeline.field(0), 0.05)
        )
        shell = geometry.shell()
        buf = shell.values
        field = campaign_pipeline.field(8)
        geometry.refresh(shell, field)
        assert shell.values is buf
        np.testing.assert_array_equal(shell.values, field.values.ravel()[shell.indices])

    def test_geometry_key_discriminates(self, campaign_pipeline):
        field = campaign_pipeline.field(0)
        a = campaign_pipeline.sample(field, 0.05)
        b = campaign_pipeline.sample(field, 0.10)
        assert geometry_key(a.grid, a.indices) == geometry_key(a.grid, a.indices)
        assert geometry_key(a.grid, a.indices) != geometry_key(b.grid, b.indices)

    def test_cache_hits_same_sample_sites(self, campaign_pipeline, metrics):
        from repro.obs import counter

        cache = GeometryCache()
        field = campaign_pipeline.field(0)
        sample = campaign_pipeline.sample(field, 0.05)
        first = cache.get(sample)
        # a later timestep sampled at the same sites reuses the geometry
        again = cache.get(campaign_pipeline.sample(field, 0.05))
        assert again is first
        assert counter("campaign.geometry.hits").value == 1
        assert counter("campaign.geometry.misses").value == 1

    def test_cache_evicts_lru_not_fifo(self, campaign_pipeline):
        cache = GeometryCache(max_entries=2)
        field = campaign_pipeline.field(0)
        first = cache.get(campaign_pipeline.sample(field, 0.04))
        cache.get(campaign_pipeline.sample(field, 0.06))
        # Touch the oldest entry: under LRU it survives the next insert,
        # under the old FIFO it would be the one evicted.
        assert cache.get(campaign_pipeline.sample(field, 0.04)) is first
        cache.get(campaign_pipeline.sample(field, 0.08))
        assert len(cache) == 2
        assert cache.get(campaign_pipeline.sample(field, 0.04)) is first
        # 0.06 was least recently used and evicted: re-get is a rebuild
        misses_before = cache.misses
        cache.get(campaign_pipeline.sample(field, 0.06))
        assert cache.misses == misses_before + 1

    def test_cache_key_includes_dtype_policy(self, campaign_pipeline):
        cache = GeometryCache()
        field = campaign_pipeline.field(0)
        sample = campaign_pipeline.sample(field, 0.05)
        g64 = cache.get(sample, dtype="float64")
        g32 = cache.get(sample, dtype="float32")
        # same sites, different compute dtype: distinct entries, no aliasing
        assert g32 is not g64
        assert len(cache) == 2
        assert cache.get(sample, dtype="float64") is g64
        assert cache.get(sample, dtype="float32") is g32

    def test_cache_hit_miss_gauges(self, campaign_pipeline, metrics):
        from repro.obs import gauge

        cache = GeometryCache()
        field = campaign_pipeline.field(0)
        sample = campaign_pipeline.sample(field, 0.05)
        cache.get(sample)
        cache.get(sample)
        cache.get(sample)
        assert cache.hits == 2
        assert cache.misses == 1
        assert gauge("campaign.geometry.hit_count").value == 2
        assert gauge("campaign.geometry.miss_count").value == 1


# ---------------------------------------------------------------------------
# scheduler semantics (toy stages — no models involved)


class TestScheduler:
    @staticmethod
    def _stages(calls):
        def materialize(t):
            calls.append(("materialize", t))
            return t * 10

        def process(t, item):
            calls.append(("process", t))
            return item + 1

        def emit(t, item):
            calls.append(("emit", t))
            return item * 2

        return materialize, process, emit

    @pytest.mark.parametrize("pipeline", [False, True])
    def test_results_in_timestep_order(self, pipeline):
        calls = []
        scheduler = CampaignScheduler(*self._stages(calls), pipeline=pipeline)
        results = scheduler.run([0, 3, 7, 9])
        assert results == [2, 62, 142, 182]
        # every timestep reaches every stage exactly once, emits in order
        emits = [t for stage, t in calls if stage == "emit"]
        assert emits == [0, 3, 7, 9]
        assert scheduler.stats.pipeline is pipeline
        assert scheduler.stats.timesteps == 4

    def test_process_runs_in_timestep_order_on_caller_thread(self):
        import threading

        seen = []
        main = threading.get_ident()

        def process(t, item):
            seen.append((t, threading.get_ident()))
            return item

        scheduler = CampaignScheduler(lambda t: t, process, pipeline=True)
        scheduler.run([1, 2, 3])
        assert [t for t, _ in seen] == [1, 2, 3]
        assert all(tid == main for _, tid in seen)  # fine-tune never leaves the caller

    @pytest.mark.parametrize("pipeline", [False, True])
    def test_process_error_propagates_original(self, pipeline):
        def process(t, item):
            if t == 2:
                raise ValueError("injected process failure")
            return item

        scheduler = CampaignScheduler(lambda t: t, process, pipeline=pipeline)
        with pytest.raises(ValueError, match="injected process failure"):
            scheduler.run([1, 2, 3])

    def test_materialize_error_propagates(self):
        def materialize(t):
            if t == 5:
                raise RuntimeError("injected materialize failure")
            return t

        scheduler = CampaignScheduler(materialize, lambda t, i: i, pipeline=True)
        with pytest.raises(RuntimeError, match="injected materialize failure"):
            scheduler.run([4, 5, 6])

    def test_emit_error_propagates(self):
        def emit(t, item):
            raise KeyError("injected emit failure")

        scheduler = CampaignScheduler(lambda t: t, lambda t, i: i, emit, pipeline=True)
        with pytest.raises(KeyError, match="injected emit failure"):
            scheduler.run([1, 2])

    def test_stats_and_occupancy_gauges(self, metrics):
        from repro.obs import counter, gauge

        scheduler = CampaignScheduler(lambda t: t, lambda t, i: i, pipeline=True)
        scheduler.run([1, 2, 3])
        stats = scheduler.stats
        assert stats.wall_seconds >= 0.0
        for stage in ("prefetch", "process", "emit"):
            assert 0.0 <= stats.occupancy(stage) <= 1.0
        assert counter("campaign.timesteps").value == 3
        assert gauge("campaign.occupancy.finetune").value is not None

    def test_empty_run(self):
        scheduler = CampaignScheduler(lambda t: t, lambda t, i: i)
        assert scheduler.run([]) == []


# ---------------------------------------------------------------------------
# end-to-end: run_campaign bit-identity across every pipeline x pool combo


@pytest.fixture(scope="module")
def campaign_results(campaign_pipeline, base_model):
    results = {}
    for pipeline in (False, True):
        for warm_pool in (False, True):
            results[(pipeline, warm_pool)] = campaign_pipeline.run_campaign(
                base_model.clone(),
                TIMESTEPS,
                0.05,
                finetune_epochs=2,
                pipeline=pipeline,
                warm_pool=warm_pool,
                max_workers=2,
            )
    return results


class TestRunCampaign:
    def test_serial_reference_is_complete(self, campaign_results):
        ref = campaign_results[(False, False)]
        assert [row["timestep"] for row in ref.rows] == list(TIMESTEPS)
        assert len(ref.reconstructions) == len(TIMESTEPS)
        assert all(np.isfinite(v).all() for v in ref.reconstructions)
        assert all(row["snr"] > 0 for row in ref.rows)
        assert ref.finetune_seconds > 0.0

    @pytest.mark.parametrize("combo", [(False, True), (True, False), (True, True)])
    def test_bit_identical_to_serial(self, campaign_results, combo):
        def scores(result):  # drop the only wall-clock (non-deterministic) column
            return [{k: v for k, v in row.items() if k != "finetune_seconds"} for row in result.rows]

        ref = campaign_results[(False, False)]
        got = campaign_results[combo]
        assert scores(got) == scores(ref)  # scores are floats: equality means bit-equal
        for mine, theirs in zip(got.reconstructions, ref.reconstructions):
            assert mine.tobytes() == theirs.tobytes()

    def test_stats_reflect_mode(self, campaign_results):
        assert campaign_results[(True, True)].stats.pipeline is True
        assert campaign_results[(False, False)].stats.pipeline is False

    def test_requires_trained_model(self, campaign_pipeline):
        with pytest.raises(RuntimeError, match="train"):
            campaign_pipeline.run_campaign(
                FCNNReconstructor(hidden_layers=(8,)), TIMESTEPS, 0.05
            )

    def test_empty_timesteps(self, campaign_pipeline, base_model):
        result = campaign_pipeline.run_campaign(base_model.clone(), [], 0.05)
        assert result.rows == [] and result.stats.timesteps == 0

    def test_warm_pool_ships_geometry_and_weights_once(
        self, campaign_pipeline, base_model, metrics
    ):
        from repro.obs import counter

        campaign_pipeline.run_campaign(
            base_model.clone(),
            TIMESTEPS,
            0.05,
            finetune_epochs=1,
            pipeline=True,
            warm_pool=True,
            max_workers=2,
        )
        created = counter("campaign.shm_bundles_created").value
        if created == 0:  # host without usable shared memory: local fallback
            pytest.skip("shared memory unavailable; warm pool degraded to local sink")
        assert created == 1


# ---------------------------------------------------------------------------
# batched fine-tune: fused multi-model training inside the campaign


class TestFineTuneBatch:
    """repro.nn.batched plumbed through FCNNReconstructor.fine_tune_batch."""

    @pytest.fixture(scope="class")
    def step_data(self, campaign_pipeline):
        fields = [campaign_pipeline.field(t) for t in TIMESTEPS]
        trains = [
            [campaign_pipeline.sample(f, fr) for fr in (0.02, 0.05)] for f in fields
        ]
        return fields, trains

    @pytest.mark.parametrize(
        "strategy,kwargs",
        [("full", {}), ("last", {"prefix_cache": False})],
        ids=["case1-full", "case2-no-cache"],
    )
    def test_bit_identical_to_serial_fine_tune_from_base(
        self, campaign_pipeline, base_model, step_data, strategy, kwargs
    ):
        fields, trains = step_data
        flats, histories = base_model.clone().fine_tune_batch(
            fields, trains, epochs=2, strategy=strategy, **kwargs
        )
        assert len(flats) == len(histories) == len(TIMESTEPS)
        for field, train, flat in zip(fields, trains, flats):
            ref = base_model.clone()
            ref.fine_tune(field, train, epochs=2, strategy=strategy)
            assert flat.tobytes() == snapshot_weights(ref.model).data.tobytes()

    def test_case2_prefix_cache_close_to_exact(self, base_model, step_data):
        fields, trains = step_data
        exact, _ = base_model.clone().fine_tune_batch(
            fields, trains, epochs=2, strategy="last", prefix_cache=False
        )
        fast, _ = base_model.clone().fine_tune_batch(
            fields, trains, epochs=2, strategy="last", prefix_cache=True
        )
        for a, b in zip(exact, fast):
            np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)

    def test_base_model_stays_pristine(self, base_model, step_data):
        fields, trains = step_data
        model = base_model.clone()
        before = snapshot_weights(model.model).data.copy()
        model.fine_tune_batch(fields[:2], trains[:2], epochs=1)
        assert snapshot_weights(model.model).data.tobytes() == before.tobytes()

    def test_validation(self, base_model, step_data):
        fields, trains = step_data
        with pytest.raises(ValueError, match="strategy"):
            base_model.clone().fine_tune_batch(fields, trains, strategy="most")
        with pytest.raises(ValueError, match="sample groups"):
            base_model.clone().fine_tune_batch(fields, trains[:1])
        with pytest.raises(ValueError, match="at least one"):
            base_model.clone().fine_tune_batch([], [])


@pytest.fixture(scope="module")
def batched_results(campaign_pipeline, base_model):
    results = {}
    for name, kw in {
        "serial": dict(pipeline=False, finetune_batch=0),
        "blocks-of-1": dict(pipeline=False, finetune_batch=1),
        "pipelined-blocks-of-2": dict(pipeline=True, finetune_batch=2),
    }.items():
        results[name] = campaign_pipeline.run_campaign(
            base_model.clone(),
            TIMESTEPS,
            0.05,
            finetune_epochs=2,
            batched_finetune=True,
            warm_pool=False,
            **kw,
        )
    return results


class TestBatchedCampaign:
    @staticmethod
    def _scores(result):
        return [
            {k: v for k, v in row.items() if k != "finetune_seconds"}
            for row in result.rows
        ]

    def test_complete_and_finite(self, batched_results):
        ref = batched_results["serial"]
        assert [row["timestep"] for row in ref.rows] == list(TIMESTEPS)
        assert all(np.isfinite(v).all() for v in ref.reconstructions)

    @pytest.mark.parametrize("variant", ["blocks-of-1", "pipelined-blocks-of-2"])
    def test_block_size_and_pipeline_invariant(self, batched_results, variant):
        ref = batched_results["serial"]
        got = batched_results[variant]
        assert self._scores(got) == self._scores(ref)
        for mine, theirs in zip(got.reconstructions, ref.reconstructions):
            assert mine.tobytes() == theirs.tobytes()

    def test_from_base_semantics_differ_from_rolling(
        self, batched_results, campaign_results
    ):
        rolling = campaign_results[(False, False)]
        batched = batched_results["serial"]
        # The first timestep fine-tunes from the base either way...
        assert self._scores(batched)[0] == self._scores(rolling)[0]
        # ...but later ones roll forward serially vs. derive from the base.
        assert self._scores(batched)[1:] != self._scores(rolling)[1:]

    def test_journal_keeps_per_timestep_states_from_base(
        self, campaign_pipeline, base_model, tmp_path
    ):
        from repro.resilience.journal import CampaignJournal

        wal = tmp_path / "journal.jsonl"
        campaign_pipeline.run_campaign(
            base_model.clone(),
            TIMESTEPS,
            0.05,
            finetune_epochs=2,
            batched_finetune=True,
            warm_pool=False,
            journal=wal,
        )
        fields = [campaign_pipeline.field(t) for t in TIMESTEPS]
        trains = [
            [campaign_pipeline.sample(f, fr) for fr in (0.02, 0.05)] for f in fields
        ]
        expected, _ = base_model.clone().fine_tune_batch(
            fields, trains, epochs=2, strategy="full"
        )
        journal = CampaignJournal(wal, resume=True)
        try:
            for t, flat in zip(TIMESTEPS, expected):
                assert journal.load_state(t).tobytes() == flat.tobytes()
        finally:
            journal.close()

    def test_quarantined_block_degrades_to_base_weights(
        self, campaign_pipeline, base_model
    ):
        from repro.resilience import SupervisionPolicy

        model = base_model.clone()

        def exploding_fine_tune_batch(*args, **kwargs):
            raise RuntimeError("optimizer exploded")

        model.fine_tune_batch = exploding_fine_tune_batch
        result = campaign_pipeline.run_campaign(
            model,
            TIMESTEPS,
            0.05,
            finetune_epochs=2,
            batched_finetune=True,
            finetune_batch=2,
            warm_pool=False,
            supervision=SupervisionPolicy(),
        )
        assert [row["timestep"] for row in result.rows] == list(TIMESTEPS)
        assert len(result.quarantined) == len(TIMESTEPS)
        assert all(rec.stage == "fine-tune" for rec in result.quarantined)
        assert all(row["degraded_points"] > 0 for row in result.rows)
        assert all(row["finetune_seconds"] == 0.0 for row in result.rows)


# ---------------------------------------------------------------------------
# warm pool vs local sink, including worker-kill fault injection


class _KillOnceWorker:
    """Picklable campaign worker that kills its process exactly once.

    The marker file makes the "already crashed?" decision deterministic
    across processes, so the executor's serial re-run (and any retry)
    succeeds — modelling a transient worker loss mid-campaign.
    """

    def __init__(self, state_dir) -> None:
        self.state_dir = str(state_dir)
        self.parent_pid = os.getpid()

    def __call__(self, payload):
        from repro.perf.campaign import _campaign_worker

        marker = os.path.join(self.state_dir, "campaign-worker-kill.tripped")
        # only ever kill a *worker* process — on hosts where the executor
        # degraded to in-process serial execution there is nothing to kill
        if os.getpid() != self.parent_pid and not os.path.exists(marker):
            with open(marker, "w", encoding="ascii") as fh:
                fh.write("tripped\n")
            os._exit(23)
        return _campaign_worker(payload)


def _drive_sink(sink, geometry, campaign_pipeline, model, timesteps):
    """Publish + reconstruct each timestep; returns the emitted volumes."""
    shell = geometry.shell()
    volumes = []
    for t in timesteps:
        field = campaign_pipeline.field(t)
        geometry.refresh(shell, field)
        train = [campaign_pipeline.sample(field, f) for f in (0.02, 0.05)]
        model.fine_tune(field, train, epochs=1)
        flat = snapshot_weights(model.model).data
        slot = sink.publish(t, shell.values, {"fcnn": flat})
        volume, report = sink.reconstruct(slot, "fcnn")
        volumes.append(volume)
    return volumes


class TestWarmPool:
    @pytest.fixture
    def geometry(self, campaign_pipeline):
        return CampaignGeometry.from_sample(
            campaign_pipeline.sample(campaign_pipeline.field(TIMESTEPS[0]), 0.05)
        )

    def _local_reference(self, geometry, campaign_pipeline, base_model):
        with LocalReconstructionSink(slots=2) as sink:
            sink.bind(geometry, {"fcnn": base_model.clone()})
            return _drive_sink(
                sink, geometry, campaign_pipeline, base_model.clone(), TIMESTEPS
            )

    def _bound_pool(self, geometry, base_model, **kwargs):
        pool = WarmReconstructionPool(max_workers=2, **kwargs)
        try:
            pool.bind(geometry, {"fcnn": base_model.clone()})
        except OSError:
            pool.close()
            pytest.skip("shared memory unavailable on this host")
        return pool

    def test_pool_matches_local_sink_bitwise(
        self, geometry, campaign_pipeline, base_model
    ):
        ref = self._local_reference(geometry, campaign_pipeline, base_model)
        with self._bound_pool(geometry, base_model) as pool:
            got = _drive_sink(
                pool, geometry, campaign_pipeline, base_model.clone(), TIMESTEPS
            )
        assert [v.tobytes() for v in got] == [v.tobytes() for v in ref]

    def test_worker_kill_degrades_gracefully(
        self, geometry, campaign_pipeline, base_model, tmp_path, metrics
    ):
        from repro.obs import counter

        ref = self._local_reference(geometry, campaign_pipeline, base_model)
        pool = self._bound_pool(
            geometry, base_model, worker_fn=_KillOnceWorker(tmp_path)
        )
        with pool:
            got = _drive_sink(
                pool, geometry, campaign_pipeline, base_model.clone(), TIMESTEPS
            )
        # no timestep dropped, every volume still bit-identical to serial
        assert len(got) == len(TIMESTEPS)
        assert [v.tobytes() for v in got] == [v.tobytes() for v in ref]
        if (tmp_path / "campaign-worker-kill.tripped").exists():
            assert counter("campaign.pool.recovered").value >= 1

    def test_publish_rejects_unknown_tag(self, geometry, base_model):
        with self._bound_pool(geometry, base_model) as pool:
            flat = snapshot_weights(base_model.model).data
            with pytest.raises((KeyError, ValueError)):
                pool.publish(0, np.zeros(geometry.num_samples), {"nope": flat})

    def test_sink_factory_closes_pool_on_unexpected_bind_failure(self, monkeypatch):
        # Regression (THR002-family fix): a non-OSError escaping bind() used
        # to leak the half-bound pool (shm segments + worker pool) because
        # only the OSError fallback path called close().
        from repro.perf import campaign as campaign_mod

        closed = []

        def bad_bind(self, geometry, models):
            raise RuntimeError("bind exploded mid-way")

        def spy_close(self):
            closed.append(self)

        monkeypatch.setattr(campaign_mod.WarmReconstructionPool, "bind", bad_bind)
        monkeypatch.setattr(campaign_mod.WarmReconstructionPool, "close", spy_close)
        with pytest.raises(RuntimeError, match="bind exploded"):
            campaign_mod.make_reconstruction_sink(object(), {"fcnn": object()})
        assert len(closed) == 1

    def test_sink_factory_falls_back_to_local_on_oserror(self, monkeypatch):
        from repro.perf import campaign as campaign_mod

        closed = []

        def no_shm_bind(self, geometry, models):
            raise OSError("no /dev/shm here")

        monkeypatch.setattr(campaign_mod.WarmReconstructionPool, "bind", no_shm_bind)
        monkeypatch.setattr(
            campaign_mod.WarmReconstructionPool,
            "close",
            lambda self: closed.append(self),
        )
        bound = []
        monkeypatch.setattr(
            campaign_mod.LocalReconstructionSink,
            "bind",
            lambda self, geometry, models: bound.append(geometry),
        )
        sink = campaign_mod.make_reconstruction_sink(object(), {"fcnn": object()})
        assert isinstance(sink, campaign_mod.LocalReconstructionSink)
        assert len(closed) == 1 and len(bound) == 1


# ---------------------------------------------------------------------------
# natural-neighbor offset-ball memoization (satellite 3)


class TestOffsetMemo:
    def test_memo_hits_and_results_unchanged(self, dense_sample, metrics):
        from repro.interpolation.natural_neighbor import (
            _OFFSET_CACHE,
            NaturalNeighborInterpolator,
        )
        from repro.obs import counter

        _OFFSET_CACHE.clear()
        interp = NaturalNeighborInterpolator()
        cold = interp.reconstruct(dense_sample)
        misses = counter("interp.natural.offsets.miss").value
        assert misses >= 1
        warm = interp.reconstruct(dense_sample)
        assert counter("interp.natural.offsets.miss").value == misses  # no new misses
        assert counter("interp.natural.offsets.hit").value >= 1
        assert warm.tobytes() == cold.tobytes()


# ---------------------------------------------------------------------------
# in situ campaign writer stays byte-identical when pipelined


class TestInSituPipelined:
    def test_campaign_directories_byte_identical(self, tmp_path):
        import filecmp

        from repro.insitu import InSituWriter
        from repro.sampling import MultiCriteriaSampler

        data = make_dataset("combustion", dims=DIMS, seed=0)
        dirs = {}
        for mode in ("serial", "pipelined"):
            writer = InSituWriter(
                data,
                MultiCriteriaSampler(seed=0),
                0.05,
                train_model=True,
                train_fractions=(0.02,),
                epochs=2,
                finetune_epochs=1,
                model_kwargs={"hidden_layers": (8,), "batch_size": 1024, "seed": 7},
            )
            out = tmp_path / mode
            writer.run(out, TIMESTEPS, pipeline=mode == "pipelined")
            dirs[mode] = out
        names = sorted(p.name for p in dirs["serial"].iterdir())
        assert names == sorted(p.name for p in dirs["pipelined"].iterdir())
        match, mismatch, errors = filecmp.cmpfiles(
            dirs["serial"], dirs["pipelined"], names, shallow=False
        )
        assert mismatch == [] and errors == []
        assert sorted(match) == names

    def test_batched_campaign_block_size_invariant_on_disk(self, tmp_path):
        import filecmp

        from repro.insitu import InSituWriter
        from repro.sampling import MultiCriteriaSampler

        data = make_dataset("combustion", dims=DIMS, seed=0)
        dirs = {}
        for name, kw in {
            "one-block": dict(finetune_batch=0, pipeline=False),
            "blocks-of-1": dict(finetune_batch=1, pipeline=True),
        }.items():
            pipeline = kw.pop("pipeline")
            writer = InSituWriter(
                data,
                MultiCriteriaSampler(seed=0),
                0.05,
                train_model=True,
                train_fractions=(0.02,),
                epochs=2,
                finetune_epochs=1,
                model_kwargs={"hidden_layers": (8,), "batch_size": 1024, "seed": 7},
                batched_finetune=True,
                **kw,
            )
            out = tmp_path / name
            writer.run(out, TIMESTEPS, pipeline=pipeline)
            dirs[name] = out
        names = sorted(p.name for p in dirs["one-block"].iterdir())
        assert names == sorted(p.name for p in dirs["blocks-of-1"].iterdir())
        match, mismatch, errors = filecmp.cmpfiles(
            dirs["one-block"], dirs["blocks-of-1"], names, shallow=False
        )
        assert mismatch == [] and errors == []
        assert sorted(match) == names
