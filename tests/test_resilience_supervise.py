"""Supervision primitives: graceful interrupts, stage deadlines, quarantine."""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.resilience import (
    CampaignInterrupted,
    GracefulInterrupt,
    SupervisionPolicy,
    WorkerSupervisor,
)


# ------------------------------------------------------- GracefulInterrupt
def test_interrupt_installs_and_restores_handlers():
    before = {s: signal.getsignal(s) for s in (signal.SIGTERM, signal.SIGINT)}
    with GracefulInterrupt() as interrupt:
        assert interrupt.installed
        assert not interrupt.triggered
        for sig in (signal.SIGTERM, signal.SIGINT):
            assert signal.getsignal(sig) == interrupt._handle
    for sig, handler in before.items():
        assert signal.getsignal(sig) == handler


def test_interrupt_catches_real_sigterm():
    with GracefulInterrupt() as interrupt:
        os.kill(os.getpid(), signal.SIGTERM)
        deadline = time.monotonic() + 5.0
        while not interrupt.triggered and time.monotonic() < deadline:
            time.sleep(0.01)
        assert interrupt.triggered
        assert interrupt.signum == signal.SIGTERM


def test_interrupt_restores_after_trigger():
    before = signal.getsignal(signal.SIGINT)
    with GracefulInterrupt(signals=(signal.SIGINT,)) as interrupt:
        interrupt.trigger(signal.SIGINT)
    assert signal.getsignal(signal.SIGINT) == before


def test_interrupt_on_signal_callback():
    seen = []
    with GracefulInterrupt(on_signal=seen.append) as interrupt:
        interrupt.trigger(signal.SIGTERM)
    assert seen == [signal.SIGTERM]


def test_interrupt_degrades_to_inert_flag_off_main_thread():
    results = {}

    def worker():
        with GracefulInterrupt() as interrupt:
            results["installed"] = interrupt.installed
            results["triggered"] = interrupt.triggered
            interrupt.trigger()  # explicit trigger still works
            results["after"] = interrupt.triggered

    th = threading.Thread(target=worker)
    th.start()
    th.join()
    assert results == {"installed": False, "triggered": False, "after": True}


def test_campaign_interrupted_carries_resume_coordinates():
    exc = CampaignInterrupted("stopped", completed=(0, 8), next_timestep=16)
    assert exc.completed == (0, 8)
    assert exc.next_timestep == 16
    assert "stopped" in str(exc)


# -------------------------------------------------------- SupervisionPolicy
@pytest.mark.parametrize(
    "kwargs",
    [
        {"stage_deadline": 0.0},
        {"stage_deadline": -1.0},
        {"poll_interval": 0.0},
        {"max_retries": -1},
    ],
)
def test_policy_validation(kwargs):
    with pytest.raises(ValueError):
        SupervisionPolicy(**kwargs)


# --------------------------------------------------------- WorkerSupervisor
def test_supervisor_detects_stalled_stage():
    policy = SupervisionPolicy(stage_deadline=0.05, poll_interval=0.01)
    stalls = []
    with WorkerSupervisor(policy, on_stall=lambda *a: stalls.append(a)) as sup:
        with sup.stage("process", 8):
            deadline = time.monotonic() + 5.0
            while not sup.stalls and time.monotonic() < deadline:
                time.sleep(0.01)
    assert sup.stalls and sup.stalls[0][:2] == ("process", 8)
    assert stalls and stalls[0][:2] == ("process", 8)
    # one stall report per stage instance, not one per poll
    assert len(sup.stalls) == 1


def test_supervisor_fast_stage_never_stalls():
    policy = SupervisionPolicy(stage_deadline=5.0, poll_interval=0.01)
    with WorkerSupervisor(policy) as sup:
        with sup.stage("process", 0):
            time.sleep(0.02)
    assert sup.stalls == []


def test_supervisor_on_stall_errors_do_not_kill_monitor():
    policy = SupervisionPolicy(stage_deadline=0.02, poll_interval=0.01)

    def explode(*args):
        raise RuntimeError("on_stall crashed")

    with WorkerSupervisor(policy, on_stall=explode) as sup:
        for t in (0, 8):
            with sup.stage("process", t):
                deadline = time.monotonic() + 5.0
                while (
                    len(sup.stalls) < (1 if t == 0 else 2)
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
    # The monitor survived the first callback failure and kept watching.
    assert len(sup.stalls) == 2


def test_supervisor_without_deadline_runs_no_monitor():
    sup = WorkerSupervisor(SupervisionPolicy(stage_deadline=None))
    sup.start()
    assert sup._monitor is None
    sup.stop()


def test_attempt_retries_then_reports_failure():
    policy = SupervisionPolicy(max_retries=2)
    sup = WorkerSupervisor(policy)
    calls = []

    def flaky():
        calls.append(1)
        raise OSError("still broken")

    ok, result, attempts = sup.attempt(flaky, stage="reconstruct", timestep=8)
    assert not ok
    assert isinstance(result, OSError)
    assert attempts == 3 and len(calls) == 3


def test_attempt_recovers_on_retry():
    policy = SupervisionPolicy(max_retries=1)
    sup = WorkerSupervisor(policy)
    state = {"calls": 0}

    def flaky_once():
        state["calls"] += 1
        if state["calls"] == 1:
            raise OSError("transient")
        return "value"

    ok, result, attempts = sup.attempt(flaky_once, stage="reconstruct", timestep=8)
    assert ok and result == "value" and attempts == 2


def test_quarantine_records_poison_timestep():
    sup = WorkerSupervisor()
    rec = sup.quarantine(16, "reconstruct", OSError("cursed"), attempts=2)
    assert rec.timestep == 16
    assert rec.stage == "reconstruct"
    assert rec.attempts == 2
    assert "OSError" in rec.error
    assert sup.quarantined == [rec]
    # string errors pass through unchanged
    rec2 = sup.quarantine(24, "fine-tune", "stale weights", attempts=1)
    assert rec2.error == "stale weights"
