"""Engine plumbing: noqa parsing, baselines, discovery, CLI contract."""

from __future__ import annotations

import json
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.checks import (
    Baseline,
    CheckConfig,
    Finding,
    format_json,
    format_text,
    load_baseline,
    migrate_baseline,
    module_name_for,
    parse_noqa,
    run_checks,
    write_baseline,
)
from repro.checks.cli import main as checks_main
from repro.cli import main as repro_main

SRC = str(Path(__file__).resolve().parent.parent / "src")

TRIGGER = "import numpy as np\n\nrng = np.random.default_rng()\n"


# ------------------------------------------------------------------- noqa
def test_noqa_bare_suppresses_everything():
    d = parse_noqa("x = 1  # repro: noqa\n")
    assert d.is_suppressed(1, "RNG001") and d.is_suppressed(1, "DIV001")


def test_noqa_listed_rules_only():
    d = parse_noqa("x = 1  # repro: noqa[RNG001, DIV001]\n")
    assert d.is_suppressed(1, "RNG001")
    assert d.is_suppressed(1, "DIV001")
    assert not d.is_suppressed(1, "DT001")
    assert not d.is_suppressed(2, "RNG001")


def test_noqa_inside_string_is_not_a_directive():
    d = parse_noqa('x = "# repro: noqa[RNG001]"\n')
    assert not d.is_suppressed(1, "RNG001")


def test_noqa_case_insensitive_rule_ids():
    d = parse_noqa("x = 1  # repro: noqa[rng001]\n")
    assert d.is_suppressed(1, "RNG001")


# --------------------------------------------------------------- baseline
def test_baseline_roundtrip_and_split(tmp_path):
    f1 = Finding("a.py", 3, 0, "RNG001", "msg one")
    f2 = Finding("b.py", 9, 4, "DIV001", "msg two")
    path = tmp_path / "baseline.json"
    write_baseline(path, [f1])
    baseline = load_baseline(path)
    new, old = baseline.split([f1, f2])
    assert new == [f2] and old == [f1]


def test_baseline_survives_line_number_drift(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [Finding("a.py", 3, 0, "RNG001", "msg")])
    moved = Finding("a.py", 300, 7, "RNG001", "msg")
    new, old = load_baseline(path).split([moved])
    assert not new and old == [moved]


def test_baseline_entry_consumed_once():
    baseline = Baseline()
    f = Finding("a.py", 1, 0, "RNG001", "msg")
    new, old = baseline.split([f, f])
    assert len(new) == 2 and not old


def test_missing_baseline_file_is_empty(tmp_path):
    assert len(load_baseline(tmp_path / "nope.json")) == 0


def test_baseline_written_as_v2_with_family_and_severity(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [Finding("a.py", 3, 0, "THR001", "msg", severity="error")])
    data = json.loads(path.read_text())
    assert data["version"] == 2
    entry = data["findings"][0]
    assert entry["family"] == "THR" and entry["severity"] == "error"


def test_v1_baseline_loads_with_deprecation_warning(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "findings": [{"path": "a.py", "rule": "RNG001", "message": "msg"}],
    }))
    with pytest.warns(DeprecationWarning, match="deprecated v1 format"):
        baseline = load_baseline(path)
    new, old = baseline.split([Finding("a.py", 5, 0, "RNG001", "msg")])
    assert not new and len(old) == 1  # fingerprints unchanged across formats


def test_migrate_baseline_upgrades_v1_in_place(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "findings": [{"path": "a.py", "rule": "RNG001", "message": "msg"}],
    }))
    assert migrate_baseline(path) is True
    data = json.loads(path.read_text())
    assert data["version"] == 2
    entry = data["findings"][0]
    assert entry["family"] == "RNG" and entry["severity"] == "warning"
    # still matches the same finding, and loads without a warning now
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        baseline = load_baseline(path)
    assert len(baseline) == 1
    # already-current file is a no-op
    assert migrate_baseline(path) is False


def test_future_baseline_version_is_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError, match="version 99"):
        load_baseline(path)


# ----------------------------------------------------------------- engine
def test_module_name_derivation(tmp_path):
    (tmp_path / "pkg" / "sub").mkdir(parents=True)
    (tmp_path / "pkg" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
    (tmp_path / "pkg" / "sub" / "mod.py").write_text("")
    assert module_name_for(tmp_path / "pkg" / "sub" / "mod.py") == "pkg.sub.mod"
    assert module_name_for(tmp_path / "pkg" / "sub" / "__init__.py") == "pkg.sub"


def test_syntax_error_becomes_parse_finding(tmp_path):
    (tmp_path / "bad.py").write_text("def broken(:\n")
    result = run_checks([tmp_path])
    assert [f.rule for f in result.findings] == ["PARSE001"]


def test_select_and_ignore(tmp_path):
    (tmp_path / "mod.py").write_text(TRIGGER)
    assert run_checks([tmp_path], CheckConfig(select=frozenset({"DIV001"}))).ok
    assert run_checks([tmp_path], CheckConfig(ignore=frozenset({"RNG002"}))).ok
    assert not run_checks([tmp_path], CheckConfig(select=frozenset({"RNG002"}))).ok


def test_single_file_path(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(TRIGGER)
    result = run_checks([target])
    assert result.files_checked == 1 and len(result.findings) == 1


# -------------------------------------------------------------------- cli
def test_cli_exit_codes(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(TRIGGER)
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert checks_main([str(clean)]) == 0
    assert checks_main([str(dirty)]) == 1
    assert checks_main([str(tmp_path / "missing_dir")]) == 2
    capsys.readouterr()


def test_cli_json_format(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(TRIGGER)
    assert checks_main([str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "RNG002"


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(TRIGGER)
    baseline = tmp_path / "baseline.json"
    assert checks_main([str(dirty), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert checks_main([str(dirty), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out
    # New finding on top of the baseline still fails.
    dirty.write_text(TRIGGER + "rng2 = np.random.default_rng()\n")
    assert checks_main([str(dirty), "--baseline", str(baseline)]) == 1
    capsys.readouterr()


def test_cli_write_baseline_requires_file(capsys):
    assert checks_main(["--write-baseline"]) == 2
    capsys.readouterr()


def test_cli_rejects_unknown_rule_ids(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert checks_main([str(clean), "--select", "TOTALLY-FAKE"]) == 2
    assert "unknown rule id" in capsys.readouterr().err
    assert checks_main([str(clean), "--ignore", "NOPE123"]) == 2
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert checks_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RNG001", "DIV001", "IMP001", "DEF001",
                    "THR001", "THR004", "ALS001", "ALS002"):
        assert rule_id in out
    assert "error" in out and "warning" in out  # severity column
    assert "[--fix]" in out                     # fixable rules are marked


def test_cli_normalizes_argparse_systemexit(capsys):
    # main() is a pure function of argv: usage errors return 2, --help
    # returns 0, neither raises SystemExit.
    assert checks_main(["--totally-bogus-flag"]) == 2
    assert checks_main(["--help"]) == 0
    assert checks_main(["--format", "nonsense"]) == 2
    capsys.readouterr()


def test_cli_exit_code_is_severity_blind(tmp_path, capsys):
    # A note-severity finding (NOQA001) fails the run exactly like an error.
    target = tmp_path / "m.py"
    target.write_text("x = 1  # repro: noqa[TYPO99]\n")
    assert checks_main([str(tmp_path)]) == 1
    capsys.readouterr()


def test_cli_migrate_baseline(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "version": 1,
        "findings": [{"path": "a.py", "rule": "RNG001", "message": "msg"}],
    }))
    assert checks_main(["--baseline", str(path), "--migrate-baseline"]) == 0
    assert "migrated to v2" in capsys.readouterr().out
    assert json.loads(path.read_text())["version"] == 2
    assert checks_main(["--baseline", str(path), "--migrate-baseline"]) == 0
    assert "already current" in capsys.readouterr().out
    assert checks_main(["--migrate-baseline"]) == 2
    capsys.readouterr()


def test_text_output_includes_severity_summary(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(TRIGGER)
    assert checks_main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "1 finding (1 warning)" in out


def test_repro_cli_check_subcommand(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert repro_main(["check", str(clean)]) == 0
    capsys.readouterr()


def test_python_dash_m_entrypoint(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(TRIGGER)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.checks", str(dirty)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "RNG002" in proc.stdout


# --------------------------------------------------------------- formats
def test_format_text_and_json_shapes():
    f = Finding("a.py", 3, 1, "RNG001", "msg")
    text = format_text([f])
    assert "a.py:3:1: RNG001 msg" in text and "1 finding" in text
    payload = json.loads(format_json([f], baselined=2))
    assert payload["baselined"] == 2 and payload["count"] == 1
