"""Unit tests for losses, optimizers and the Trainer loop."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    MAELoss,
    MSELoss,
    Parameter,
    Trainer,
    WeightedMSELoss,
    mlp,
)


class TestLosses:
    def test_mse_value(self):
        loss = MSELoss()
        assert loss.value(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]])) == pytest.approx(2.5)

    def test_mse_zero_at_target(self, rng):
        y = rng.normal(size=(4, 3))
        assert MSELoss().value(y, y) == 0.0

    def test_mae_value(self):
        assert MAELoss().value(np.array([[2.0, -2.0]]), np.zeros((1, 2))) == pytest.approx(2.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().value(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_empty_batch(self):
        with pytest.raises(ValueError):
            MSELoss().value(np.zeros((0, 2)), np.zeros((0, 2)))

    def test_weighted_mse_reduces_to_mse(self, rng):
        p, t = rng.normal(size=(5, 3)), rng.normal(size=(5, 3))
        assert WeightedMSELoss([1, 1, 1]).value(p, t) == pytest.approx(MSELoss().value(p, t))

    def test_weighted_mse_zero_weight_ignores_column(self, rng):
        p, t = rng.normal(size=(5, 2)), rng.normal(size=(5, 2))
        w = WeightedMSELoss([1.0, 0.0])
        p2 = p.copy()
        p2[:, 1] += 100.0  # must not change the loss
        assert w.value(p, t) == pytest.approx(w.value(p2, t))

    def test_weighted_mse_validation(self):
        with pytest.raises(ValueError):
            WeightedMSELoss([])
        with pytest.raises(ValueError):
            WeightedMSELoss([-1.0, 1.0])
        with pytest.raises(ValueError):
            WeightedMSELoss([1.0]).value(np.zeros((2, 2)), np.zeros((2, 2)))


class TestOptimizers:
    def _quadratic_params(self):
        # minimize sum((w - 3)^2): gradient = 2(w - 3)
        return Parameter(np.zeros(4), name="w")

    def _run(self, optimizer, p, steps=500):
        for _ in range(steps):
            p.grad[...] = 2 * (p.value - 3.0)
            optimizer.step()
        return p.value

    def test_sgd_converges(self):
        p = self._quadratic_params()
        value = self._run(SGD([p], lr=0.1), p, steps=200)
        np.testing.assert_allclose(value, 3.0, atol=1e-6)

    def test_sgd_momentum_converges(self):
        p = self._quadratic_params()
        value = self._run(SGD([p], lr=0.05, momentum=0.9), p, steps=300)
        np.testing.assert_allclose(value, 3.0, atol=1e-4)

    def test_adam_converges(self):
        p = self._quadratic_params()
        value = self._run(Adam([p], lr=0.05), p, steps=800)
        np.testing.assert_allclose(value, 3.0, atol=1e-3)

    def test_frozen_param_not_updated(self):
        p = self._quadratic_params()
        p.trainable = False
        value = self._run(Adam([p], lr=0.1), p, steps=10)
        np.testing.assert_array_equal(value, 0.0)

    def test_validation(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            SGD([p], lr=-1)
        with pytest.raises(ValueError):
            SGD([p], momentum=1.0)
        with pytest.raises(ValueError):
            Adam([p], beta1=1.0)

    def test_zero_grad(self):
        p = Parameter(np.zeros(2))
        p.grad += 5.0
        Adam([p]).zero_grad()
        assert (p.grad == 0).all()

    def test_adam_bias_correction_first_step(self):
        # After one step with constant grad g, Adam moves ~lr * sign(g).
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=0.001)
        p.grad[...] = 10.0
        opt.step()
        assert p.value[0] == pytest.approx(-0.001, rel=1e-6)


class TestTrainer:
    def _toy_problem(self, rng, n=256):
        x = rng.normal(size=(n, 3))
        w = np.array([[1.0], [-2.0], [0.5]])
        y = x @ w + 0.3
        return x, y

    def test_loss_decreases(self, rng):
        x, y = self._toy_problem(rng)
        model = mlp(3, [16], 1, seed=0)
        trainer = Trainer(model, batch_size=32, seed=0)
        history = trainer.fit(x, y, epochs=60)
        assert history.train_loss[-1] < 0.1 * history.train_loss[0]

    def test_learns_linear_map(self, rng):
        x, y = self._toy_problem(rng)
        model = mlp(3, [32, 16], 1, seed=0)
        Trainer(model, batch_size=32, seed=0).fit(x, y, epochs=100)
        pred = model.predict(x)
        assert np.mean((pred - y) ** 2) < 0.01

    def test_history_lengths(self, rng):
        x, y = self._toy_problem(rng, n=64)
        model = mlp(3, [8], 1, seed=0)
        hist = Trainer(model, seed=0).fit(x, y, epochs=5, validation=(x, y))
        assert hist.epochs == 5
        assert len(hist.val_loss) == 5
        assert len(hist.epoch_seconds) == 5
        assert hist.total_seconds > 0

    def test_deterministic(self, rng):
        x, y = self._toy_problem(rng, n=64)
        runs = []
        for _ in range(2):
            model = mlp(3, [8], 1, seed=4)
            hist = Trainer(model, batch_size=16, seed=4).fit(x, y, epochs=3)
            runs.append(hist.train_loss)
        np.testing.assert_allclose(runs[0], runs[1])

    def test_callback_early_stop(self, rng):
        x, y = self._toy_problem(rng, n=64)
        model = mlp(3, [8], 1, seed=0)
        hist = Trainer(model, seed=0).fit(
            x, y, epochs=50, callback=lambda e, h: False if e >= 2 else None
        )
        assert hist.epochs == 3

    def test_validation_input_checks(self, rng):
        model = mlp(3, [8], 1, seed=0)
        trainer = Trainer(model, seed=0)
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 3)), np.zeros((5, 1)), epochs=1)
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 3)), np.zeros((4, 1)), epochs=-1)
        with pytest.raises(ValueError):
            Trainer(model, batch_size=0)

    def test_zero_epochs_noop(self, rng):
        x, y = self._toy_problem(rng, n=16)
        model = mlp(3, [8], 1, seed=0)
        before = model.dense_layers()[0].weight.value.copy()
        hist = Trainer(model, seed=0).fit(x, y, epochs=0)
        assert hist.epochs == 0
        np.testing.assert_array_equal(model.dense_layers()[0].weight.value, before)

    def test_history_extend(self, rng):
        x, y = self._toy_problem(rng, n=32)
        model = mlp(3, [8], 1, seed=0)
        trainer = Trainer(model, seed=0)
        h1 = trainer.fit(x, y, epochs=2)
        h2 = trainer.fit(x, y, epochs=3)
        h1.extend(h2)
        assert h1.epochs == 5
