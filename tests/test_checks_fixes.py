"""Autofixes (``repro check --fix``): DT001, DEF001 and RES001 rewrites."""

from __future__ import annotations

import ast

from repro.checks import CheckConfig, FIXABLE_RULES, fix_source, run_checks
from repro.checks.cli import main as checks_main


def _findings(tmp_path, relpath: str, source: str, rule: str):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return run_checks([tmp_path], CheckConfig(select=frozenset({rule}))).findings


def test_fixable_rules_registry():
    assert FIXABLE_RULES == {"DT001", "DEF001", "RES001"}


# ------------------------------------------------------------------- DT001
def test_dtype_fix_appends_kwarg(tmp_path):
    src = "import numpy as np\ndef f(x):\n    return np.asarray(x)\n"
    findings = _findings(tmp_path, "nn/m.py", src, "DT001")
    fixed, applied = fix_source(src, findings)
    assert applied == 1
    assert "np.asarray(x, dtype=np.float64)" in fixed
    assert not _findings(tmp_path, "nn/m.py", fixed, "DT001")


def test_dtype_fix_handles_multiline_call(tmp_path):
    src = (
        "import numpy as np\n"
        "def f(x):\n"
        "    return np.array(\n"
        "        x\n"
        "    )\n"
    )
    findings = _findings(tmp_path, "nn/m.py", src, "DT001")
    fixed, applied = fix_source(src, findings)
    assert applied == 1
    ast.parse(fixed)  # still valid syntax
    assert not _findings(tmp_path, "nn/m.py", fixed, "DT001")


def test_dtype_fix_multiple_sites_in_one_file(tmp_path):
    src = (
        "import numpy as np\n"
        "def f(x, y):\n"
        "    return np.asarray(x) + np.asarray(y)\n"
    )
    findings = _findings(tmp_path, "nn/m.py", src, "DT001")
    fixed, applied = fix_source(src, findings)
    assert applied == 2
    assert fixed.count("dtype=np.float64") == 2


# ------------------------------------------------------------------ DEF001
def test_mutable_default_fix_rewrites_to_none_guard(tmp_path):
    src = "def collect(x, into=[]):\n    into.append(x)\n    return into\n"
    findings = _findings(tmp_path, "m.py", src, "DEF001")
    fixed, applied = fix_source(src, findings)
    assert applied == 1
    assert "into=None" in fixed
    assert "if into is None:" in fixed
    assert not _findings(tmp_path, "m.py", fixed, "DEF001")
    # the rewritten function actually behaves per-call
    ns: dict = {}
    exec(fixed, ns)
    assert ns["collect"](1) == [1]
    assert ns["collect"](2) == [2]  # no state shared between calls


def test_mutable_default_fix_respects_docstring(tmp_path):
    src = (
        "def collect(x, into={}):\n"
        '    """Docstring stays first."""\n'
        "    into[x] = True\n"
        "    return into\n"
    )
    findings = _findings(tmp_path, "m.py", src, "DEF001")
    fixed, applied = fix_source(src, findings)
    assert applied == 1
    tree = ast.parse(fixed)
    fn = tree.body[0]
    assert isinstance(fn.body[0], ast.Expr)  # docstring still first
    assert isinstance(fn.body[1], ast.If)    # guard right after


def test_mutable_default_fix_kwonly_and_set_call(tmp_path):
    src = "def f(*, seen=set()):\n    return seen\n"
    findings = _findings(tmp_path, "m.py", src, "DEF001")
    fixed, applied = fix_source(src, findings)
    assert applied == 1
    assert "seen=None" in fixed and "seen = set()" in fixed


def test_nonempty_default_is_left_for_a_human(tmp_path):
    src = "def f(x, table={'a': 1}):\n    return table\n"
    findings = _findings(tmp_path, "m.py", src, "DEF001")
    fixed, applied = fix_source(src, findings)
    assert applied == 0 and fixed == src


def test_unfixable_rule_findings_are_ignored(tmp_path):
    src = "import numpy as np\n\nrng = np.random.default_rng()\n"
    findings = _findings(tmp_path, "m.py", src, "RNG002")
    fixed, applied = fix_source(src, findings)
    assert applied == 0 and fixed == src


# ------------------------------------------------------------------ RES001
def test_signal_fix_captures_previous_handler(tmp_path):
    src = (
        "import signal\n"
        "def handler(signum, frame):\n"
        "    pass\n"
        "def install():\n"
        "    signal.signal(signal.SIGTERM, handler)\n"
    )
    findings = _findings(tmp_path, "daemon.py", src, "RES001")
    fixed, applied = fix_source(src, findings)
    assert applied == 1
    assert "_previous_sigterm = signal.signal(signal.SIGTERM, handler)" in fixed
    ast.parse(fixed)
    assert not _findings(tmp_path, "daemon.py", fixed, "RES001")


def test_signal_fix_names_from_bare_signum(tmp_path):
    src = (
        "from signal import SIGINT, signal\n"
        "def install(h):\n"
        "    signal(SIGINT, h)\n"
    )
    findings = _findings(tmp_path, "daemon.py", src, "RES001")
    fixed, applied = fix_source(src, findings)
    assert applied == 1
    assert "_previous_sigint = signal(SIGINT, h)" in fixed


def test_signal_fix_falls_back_to_generic_name(tmp_path):
    src = (
        "import signal\n"
        "def install(num, h):\n"
        "    signal.signal(num, h)\n"
    )
    findings = _findings(tmp_path, "daemon.py", src, "RES001")
    fixed, applied = fix_source(src, findings)
    assert applied == 1
    assert "_previous_handler = signal.signal(num, h)" in fixed


def test_signal_restore_call_is_not_flagged(tmp_path):
    src = (
        "import signal\n"
        "def teardown(previous):\n"
        "    signal.signal(signal.SIGTERM, previous)\n"
        "def table_restore(handlers, sig):\n"
        "    signal.signal(sig, handlers[sig])\n"
    )
    assert not _findings(tmp_path, "daemon.py", src, "RES001")


# --------------------------------------------------------------------- CLI
def test_cli_fix_rewrites_in_place_and_exits_clean(tmp_path, capsys):
    target = tmp_path / "nn" / "m.py"
    target.parent.mkdir()
    target.write_text("import numpy as np\ndef f(x):\n    return np.asarray(x)\n")
    assert checks_main([str(tmp_path), "--select", "DT001", "--fix"]) == 0
    assert "dtype=np.float64" in target.read_text()
    capsys.readouterr()


def test_cli_fix_leaves_unfixable_findings_failing(tmp_path, capsys):
    target = tmp_path / "m.py"
    target.write_text("import numpy as np\n\nrng = np.random.default_rng()\n")
    before = target.read_text()
    assert checks_main([str(tmp_path), "--fix"]) == 1
    assert target.read_text() == before
    capsys.readouterr()
