"""End-to-end integration tests across subsystem boundaries.

Each test walks a complete user workflow through the public API only —
the scenarios README and the paper's Fig 1 describe.
"""

import numpy as np
import pytest

from repro.core import FCNNReconstructor, ReconstructionPipeline
from repro.datasets import make_dataset
from repro.interpolation import make_interpolator
from repro.io import read_vti, write_vti
from repro.metrics import score_reconstruction, snr
from repro.sampling import MultiCriteriaSampler, SampledField


@pytest.fixture(scope="module")
def world():
    """Dataset + pipeline + a modestly trained model, shared read-only."""
    dataset = make_dataset("hurricane", dims=(16, 16, 8), seed=0)
    pipeline = ReconstructionPipeline(
        dataset=dataset,
        sampler=MultiCriteriaSampler(seed=7),
        train_fractions=(0.02, 0.08),
    )
    model = FCNNReconstructor(hidden_layers=(32, 16, 8), batch_size=1024, seed=0)
    pipeline.train_fcnn(model, epochs=30)
    return dataset, pipeline, model


class TestPaperWorkflow:
    """Fig 1: grid data -> sample -> train -> reconstruct -> evaluate."""

    def test_fcnn_beats_nearest_everywhere(self, world):
        dataset, pipeline, model = world
        field = pipeline.field(0)
        nearest = make_interpolator("nearest")
        for fraction in (0.01, 0.03):
            sample = pipeline.sample(field, fraction, seed=999)
            assert snr(field.values, model.reconstruct(sample)) > snr(
                field.values, nearest.reconstruct(sample)
            )

    def test_single_model_covers_all_fractions(self, world):
        dataset, pipeline, model = world
        field = pipeline.field(0)
        values = []
        for fraction in (0.005, 0.02, 0.08):
            sample = pipeline.sample(field, fraction, seed=999)
            values.append(snr(field.values, model.reconstruct(sample)))
        # One trained model reconstructs every rate; quality rises with rate.
        assert values[0] < values[-1]

    def test_roundtrip_through_disk(self, world, tmp_path):
        dataset, pipeline, model = world
        field = pipeline.field(0)
        sample = pipeline.sample(field, 0.05, seed=999)

        # sample -> .vtp -> reload -> reconstruct -> .vti -> reload -> score
        sample.to_vtp(tmp_path / "s.vtp")
        loaded = SampledField.from_vtp(tmp_path / "s.vtp", field.grid, fraction=0.05)
        volume = model.reconstruct(loaded)
        write_vti(tmp_path / "r.vti", field.grid, {"pressure": volume})
        _, data = read_vti(tmp_path / "r.vti")
        score = score_reconstruction(field.values, data["pressure"])
        assert np.isfinite(score.snr)
        direct = score_reconstruction(field.values, volume)
        assert score.snr == pytest.approx(direct.snr, rel=1e-6)

    def test_model_roundtrip_through_disk(self, world, tmp_path):
        dataset, pipeline, model = world
        field = pipeline.field(0)
        sample = pipeline.sample(field, 0.03, seed=12)
        model.save(tmp_path / "m.npz")
        loaded = FCNNReconstructor.load(tmp_path / "m.npz")
        np.testing.assert_allclose(loaded.reconstruct(sample), model.reconstruct(sample))


class TestExperiment2Workflow:
    """Pretrain -> fine-tune at a later timestep -> reconstruct."""

    def test_finetune_then_case2_checkpoint_chain(self, world, tmp_path):
        import copy

        dataset, pipeline, model = world
        base = copy.deepcopy(model)
        base_path = tmp_path / "base.npz"
        base.save(base_path)

        field2 = pipeline.field(24)
        train2 = [pipeline.sample(field2, f) for f in (0.02, 0.08)]
        tuned = copy.deepcopy(base)
        tuned.fine_tune(field2, train2, epochs=5, strategy="last", num_trainable=2)
        tuned.save_partial(tmp_path / "t24.npz", num_layers=2)

        # A fresh consumer restores base + partial and reproduces exactly.
        consumer = FCNNReconstructor.load(base_path)
        consumer.load_partial(tmp_path / "t24.npz")
        test = pipeline.sample(field2, 0.03, seed=4)
        np.testing.assert_allclose(
            consumer.reconstruct(test), tuned.reconstruct(test)
        )


class TestExperiment3Workflow:
    """Upscale: low-res model applied to a finer, shifted grid."""

    def test_cross_resolution_reconstruction(self, world):
        from repro.grid import upscaled_grid

        dataset, pipeline, model = world
        hi = upscaled_grid(dataset.grid, 2, shift_fraction=(0.1, 0.1, 0.0))
        field_hi = dataset.field(t=0, grid=hi)
        sample_hi = pipeline.sampler.sample(field_hi, 0.03, seed=5)
        volume = model.reconstruct(sample_hi, target_grid=hi)
        assert volume.shape == hi.dims
        # Transfer without fine-tuning already beats nearest neighbor.
        nearest = make_interpolator("nearest").reconstruct(sample_hi, target_grid=hi)
        assert snr(field_hi.values, volume) > snr(field_hi.values, nearest) - 1.0


class TestVisualizationConsumers:
    """Reconstruction -> isosurface / projection consumers."""

    def test_isosurface_from_reconstruction(self, world):
        from repro.experiments.exp_feature_preservation import feature_isovalue
        from repro.vis import extract_isosurface, isosurface_iou

        dataset, pipeline, model = world
        field = pipeline.field(0)
        sample = pipeline.sample(field, 0.05, seed=999)
        volume = model.reconstruct(sample)
        isovalue = feature_isovalue(field.values)
        truth = extract_isosurface(field.grid, field.values, isovalue)
        recon = extract_isosurface(field.grid, volume, isovalue)
        if truth.num_triangles > 0:
            assert recon.num_triangles > 0
        assert isosurface_iou(field.values, volume, isovalue) > 0.5

    def test_render_from_reconstruction(self, world, tmp_path):
        from repro.vis import max_intensity_projection, write_pgm

        dataset, pipeline, model = world
        field = pipeline.field(0)
        sample = pipeline.sample(field, 0.05, seed=999)
        image = max_intensity_projection(field.grid, model.reconstruct(sample))
        write_pgm(tmp_path / "mip.pgm", image)
        assert (tmp_path / "mip.pgm").stat().st_size > 0


class TestReductionComparison:
    """Sampling path vs compression path on the same field."""

    def test_both_paths_bounded_and_scored(self, world):
        from repro.compression import SZCompressor

        dataset, pipeline, model = world
        field = pipeline.field(0)
        sample = pipeline.sample(field, 0.05, seed=999)
        sampled_volume = model.reconstruct(sample)

        recon, artifact = SZCompressor(error_bound=1e-3, mode="relative").roundtrip(
            field.grid, field.values
        )
        assert np.isfinite(snr(field.values, sampled_volume))
        span = field.values.max() - field.values.min()
        assert np.abs(recon - field.values).max() <= 1e-3 * span + 1e-12
