"""Property-based tests for the extension subsystems.

Compression error bounds, isosurface invariants, SSIM bounds, Lorenzo
invertibility, analysis bin coverage — each checked over generated inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression import SZCompressor
from repro.compression.szlike import _lorenzo_forward, _lorenzo_inverse
from repro.grid import UniformGrid
from repro.metrics import ssim3d
from repro.vis import extract_isosurface, isosurface_iou

small_dims = st.tuples(st.integers(2, 6), st.integers(2, 6), st.integers(2, 6))


class TestCompressionProperties:
    @given(
        small_dims,
        st.integers(0, 2**31 - 1),
        st.floats(1e-4, 1e-1),
    )
    @settings(max_examples=30, deadline=None)
    def test_absolute_error_bound_always_respected(self, dims, seed, eb):
        grid = UniformGrid(dims)
        rng = np.random.default_rng(seed)
        field = rng.normal(scale=10.0, size=dims)
        recon, _ = SZCompressor(error_bound=eb, mode="absolute").roundtrip(grid, field)
        assert np.abs(recon - field).max() <= eb + 1e-9

    @given(
        small_dims,
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_lorenzo_exactly_invertible(self, dims, seed):
        rng = np.random.default_rng(seed)
        q = rng.integers(-10**6, 10**6, size=dims)
        np.testing.assert_array_equal(_lorenzo_inverse(_lorenzo_forward(q)), q)

    @given(st.integers(0, 2**31 - 1), st.floats(1e-4, 1e-2))
    @settings(max_examples=15, deadline=None)
    def test_relative_bound_scale_invariant(self, seed, eb):
        # Scaling the field scales the absolute error proportionally.
        grid = UniformGrid((5, 5, 5))
        rng = np.random.default_rng(seed)
        field = rng.normal(size=(5, 5, 5))
        comp = SZCompressor(error_bound=eb, mode="relative")
        a1 = comp.compress(grid, field)
        a2 = comp.compress(grid, 100.0 * field)
        assert a2.error_bound == pytest.approx(100.0 * a1.error_bound, rel=1e-9)


class TestIsosurfaceProperties:
    @given(st.integers(0, 10_000), st.floats(0.1, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_vertices_near_level_set_of_linear_field(self, seed, frac):
        # For f = x the isosurface x = c is exact: every vertex sits on it.
        grid = UniformGrid((8, 6, 5))
        x, _, _ = grid.meshgrid()
        iso = float(frac * 7.0)
        surf = extract_isosurface(grid, x, iso)
        if surf.num_vertices:
            np.testing.assert_allclose(surf.vertices[:, 0], iso, atol=1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_area_nonnegative_and_triangles_valid(self, seed):
        grid = UniformGrid((6, 6, 6))
        rng = np.random.default_rng(seed)
        field = rng.normal(size=(6, 6, 6))
        surf = extract_isosurface(grid, field, 0.0)
        assert surf.area() >= 0.0
        if surf.num_triangles:
            assert surf.triangles.max() < surf.num_vertices
            assert surf.triangles.min() >= 0

    @given(st.integers(0, 10_000), st.floats(-0.5, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_iou_symmetric(self, seed, iso):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(5, 5, 5))
        b = rng.normal(size=(5, 5, 5))
        assert isosurface_iou(a, b, iso) == pytest.approx(isosurface_iou(b, a, iso))


class TestSSIMProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_identity_and_bounds(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(7, 7, 7))
        assert ssim3d(a, a.copy()) == pytest.approx(1.0)
        b = rng.normal(size=(7, 7, 7))
        assert -1.0 - 1e-9 <= ssim3d(a, b) <= 1.0 + 1e-9

    @given(st.integers(0, 10_000), st.floats(0.5, 50.0))
    @settings(max_examples=20, deadline=None)
    def test_scale_invariance(self, seed, scale):
        # SSIM with range-derived constants is invariant to joint scaling.
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(6, 6, 6))
        b = a + 0.3 * rng.normal(size=(6, 6, 6))
        assert ssim3d(a, b) == pytest.approx(ssim3d(scale * a, scale * b), rel=1e-9)


class TestAnalysisProperties:
    @given(st.integers(0, 10_000), st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_value_bands_partition_grid(self, seed, bands):
        from repro.analysis import error_by_value_band

        rng = np.random.default_rng(seed)
        a = rng.normal(size=200)
        b = a + rng.normal(size=200)
        rows = error_by_value_band(a, b, num_bands=bands)
        assert sum(r["count"] for r in rows) == 200

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_worst_regions_sorted(self, seed):
        from repro.analysis import worst_regions

        grid = UniformGrid((8, 8, 4))
        rng = np.random.default_rng(seed)
        a = rng.normal(size=grid.dims)
        b = rng.normal(size=grid.dims)
        rows = worst_regions(grid, a, b, top_k=10)
        rmses = [r["rmse"] for r in rows]
        assert rmses == sorted(rmses, reverse=True)
