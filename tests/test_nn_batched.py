"""Identity + correctness suite for the batched multi-model engine.

The load-bearing claims, in order:

1. Training a K-member :class:`ModelStack` is **bit-identical** to K
   serial :class:`repro.nn.Trainer` runs sharing a shuffle seed — weights,
   per-epoch losses, everything, to the ulp (``==``, not ``allclose``).
2. The Case-2 frozen-prefix trajectory (prefix cache disabled) is
   bit-identical to the serial Case-2 run.
3. The Case-2 *fast path* (prefix cache enabled) computes correct
   gradients — checked against central finite differences — and is
   K-invariant (K members give each member the same bits as K=1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, MSELoss, Trainer, mlp
from repro.nn.batched import BatchedAdam, BatchedTrainer, ModelStack, batched_loss_gradient
from repro.nn.losses_weighted import WeightedMSELoss
from repro.perf import Workspace
from repro.perf.weights import restore_weights, snapshot_weights

IN, HIDDEN, OUT = 7, (16, 8), 3


def _slabs(k: int, n: int, seed: int = 42) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(k, n, IN))
    y = rng.normal(size=(k, n, OUT))
    return x, y


def _serial_reference(
    x: np.ndarray,
    y: np.ndarray,
    epochs: int,
    loss_factory,
    seed: int,
    strategy: str = "full",
    batch_size: int = 32,
) -> tuple[list[np.ndarray], list[list[float]]]:
    """K independent serial fast-path runs from the same base network."""
    flats, losses = [], []
    for k in range(len(x)):
        net = mlp(IN, list(HIDDEN), OUT, seed=0)
        if strategy == "last":
            net.freeze_all_but_last(2)
        trainer = Trainer(
            net,
            loss=loss_factory(),
            optimizer=Adam(net.parameters(), lr=1e-3),
            batch_size=batch_size,
            seed=seed,
            workspace=Workspace(),
        )
        history = trainer.fit(x[k], y[k], epochs=epochs)
        flats.append(snapshot_weights(net).data)
        losses.append(list(history.train_loss))
    return flats, losses


def _batched_run(
    x: np.ndarray,
    y: np.ndarray,
    epochs: int,
    loss_factory,
    seed: int,
    strategy: str = "full",
    batch_size: int = 32,
    workspace: Workspace | None = None,
    case2_prefix_cache: bool = True,
):
    base = mlp(IN, list(HIDDEN), OUT, seed=0)
    stack = ModelStack.from_network(base, k=len(x))
    if strategy == "last":
        stack.freeze_all_but_last(2)
    trainer = BatchedTrainer(
        stack,
        loss=loss_factory(),
        optimizer=BatchedAdam(stack.parameters(), lr=1e-3),
        batch_size=batch_size,
        seed=seed,
        workspace=workspace,
        case2_prefix_cache=case2_prefix_cache,
    )
    histories = trainer.fit(x, y, epochs=epochs)
    return stack, histories


# ---------------------------------------------------------------- identity


@pytest.mark.parametrize("loss_factory", [MSELoss, lambda: WeightedMSELoss([1.0, 0.1, 0.1])])
@pytest.mark.parametrize("k", [1, 3])
def test_batched_full_training_bit_identical_to_serial(k, loss_factory):
    x, y = _slabs(k, n=100)
    ref_flats, ref_losses = _serial_reference(x, y, epochs=3, loss_factory=loss_factory, seed=5)
    stack, histories = _batched_run(
        x, y, epochs=3, loss_factory=loss_factory, seed=5, workspace=Workspace()
    )
    for member in range(k):
        assert np.array_equal(stack.member_weights(member), ref_flats[member])
        assert histories[member].train_loss == ref_losses[member]


def test_batched_case2_no_cache_bit_identical_to_serial_case2():
    k = 3
    x, y = _slabs(k, n=90, seed=3)
    ref_flats, ref_losses = _serial_reference(
        x, y, epochs=4, loss_factory=MSELoss, seed=11, strategy="last"
    )
    stack, histories = _batched_run(
        x, y, epochs=4, loss_factory=MSELoss, seed=11, strategy="last",
        workspace=Workspace(), case2_prefix_cache=False,
    )
    for member in range(k):
        assert np.array_equal(stack.member_weights(member), ref_flats[member])
        assert histories[member].train_loss == ref_losses[member]


def test_batched_allocating_path_matches_workspace_path():
    x, y = _slabs(2, n=64, seed=9)
    with_ws, _ = _batched_run(x, y, epochs=2, loss_factory=MSELoss, seed=1, workspace=Workspace())
    without_ws, _ = _batched_run(x, y, epochs=2, loss_factory=MSELoss, seed=1, workspace=None)
    for member in range(2):
        assert np.array_equal(
            with_ws.member_weights(member), without_ws.member_weights(member)
        )


def test_case2_fast_path_is_k_invariant():
    """Member bits do not depend on how many members ride along."""
    k = 4
    x, y = _slabs(k, n=120, seed=21)
    wide, _ = _batched_run(
        x, y, epochs=3, loss_factory=MSELoss, seed=2, strategy="last", workspace=Workspace()
    )
    for member in range(k):
        solo, _ = _batched_run(
            x[member : member + 1], y[member : member + 1],
            epochs=3, loss_factory=MSELoss, seed=2, strategy="last", workspace=Workspace(),
        )
        assert np.array_equal(wide.member_weights(member), solo.member_weights(0))


def test_case2_fast_path_close_to_serial_case2():
    """The prefix cache changes matmul blocking, not the math: same run to
    rounding error (exactness is deliberately not claimed — see TRAINING.md)."""
    k = 2
    x, y = _slabs(k, n=80, seed=33)
    ref_flats, _ = _serial_reference(
        x, y, epochs=3, loss_factory=MSELoss, seed=4, strategy="last"
    )
    stack, _ = _batched_run(
        x, y, epochs=3, loss_factory=MSELoss, seed=4, strategy="last", workspace=Workspace()
    )
    for member in range(k):
        np.testing.assert_allclose(
            stack.member_weights(member), ref_flats[member], rtol=1e-9, atol=1e-12
        )


# ------------------------------------------------------------- gradients


def test_case2_frozen_prefix_gradients_match_finite_differences():
    """Suffix gradients through the cached prefix vs central differences."""
    k, n = 2, 24
    rng = np.random.default_rng(7)
    x = rng.normal(size=(k, n, IN))
    y = rng.normal(size=(k, n, OUT))
    base = mlp(IN, list(HIDDEN), OUT, seed=0)
    stack = ModelStack.from_network(base, k=k)
    stack.freeze_all_but_last(2)
    cut = stack.trainable_cut()
    loss = MSELoss()

    z = stack.forward(x, stop=cut)

    def stack_loss() -> float:
        pred = stack.forward(z, start=cut)
        return float(sum(loss.value(pred[m], y[m]) for m in range(k)))

    # Analytic gradients via the engine's own backward.
    pred = stack.forward(z, start=cut)
    stack.zero_grad()
    gbuf = np.empty(pred.shape)
    stack.backward(batched_loss_gradient(loss, pred, y, out=gbuf), stop=cut)

    eps = 1e-6
    for p in stack.parameters():
        if not p.trainable:
            assert not p.grad.any()
            continue
        flat = p.value.reshape(-1)
        grad = p.grad.reshape(-1)
        for i in rng.choice(flat.size, size=min(8, flat.size), replace=False):
            keep = flat[i]
            flat[i] = keep + eps
            up = stack_loss()
            flat[i] = keep - eps
            down = stack_loss()
            flat[i] = keep
            numeric = (up - down) / (2 * eps)
            assert abs(numeric - grad[i]) <= 1e-6 * max(1.0, abs(numeric)), (
                f"{p.name}[{i}]: analytic {grad[i]} vs numeric {numeric}"
            )


def test_frozen_prefix_grads_stay_zero_and_untouched():
    k = 2
    x, y = _slabs(k, n=40, seed=50)
    base = mlp(IN, list(HIDDEN), OUT, seed=0)
    before = snapshot_weights(base).data
    stack, _ = _batched_run(x, y, epochs=2, loss_factory=MSELoss, seed=8, strategy="last")
    cut = stack.trainable_cut()
    for layer in stack.layers[:cut]:
        for p in layer.parameters():
            assert not p.grad.any()
    # Frozen prefix weights are byte-identical to the base in every member.
    n_frozen = sum(p.size // stack.k for layer in stack.layers[:cut] for p in layer.parameters())
    for member in range(k):
        assert np.array_equal(stack.member_weights(member)[:n_frozen], before[:n_frozen])


# ------------------------------------------------------------- plumbing


def test_member_weights_layout_matches_snapshot_weights():
    base = mlp(IN, list(HIDDEN), OUT, seed=0)
    stack = ModelStack.from_network(base, k=3)
    ref = snapshot_weights(base).data
    for member in range(3):
        assert np.array_equal(stack.member_weights(member), ref)
    # and restore_weights round-trips a member back into a Sequential
    target = mlp(IN, list(HIDDEN), OUT, seed=1)
    restore_weights(target, stack.member_weights(1))
    assert np.array_equal(snapshot_weights(target).data, ref)


def test_stack_rejects_unsupported_layers():
    from repro.nn.layers import Tanh
    from repro.nn.network import Sequential
    from repro.nn.layers import Dense

    net = Sequential([Dense(4, 4), Tanh()])
    with pytest.raises(TypeError, match="cannot stack"):
        ModelStack.from_network(net, k=2)


def test_stack_validation_errors():
    base = mlp(IN, list(HIDDEN), OUT, seed=0)
    with pytest.raises(ValueError, match="at least one member"):
        ModelStack.from_network(base, k=0)
    stack = ModelStack.from_network(base, k=2)
    with pytest.raises(IndexError):
        stack.member_weights(2)
    with pytest.raises(ValueError, match="num_trainable"):
        stack.freeze_all_but_last(99)
    stack.set_all_trainable(False)
    with pytest.raises(ValueError, match="every layer is frozen"):
        stack.trainable_cut()
    # non-prefix freeze patterns are rejected
    stack.set_all_trainable(True)
    stack.dense_layers()[-1].set_trainable(False)
    with pytest.raises(ValueError, match="contiguous frozen prefix"):
        stack.trainable_cut()


def test_trainer_input_validation():
    base = mlp(IN, list(HIDDEN), OUT, seed=0)
    stack = ModelStack.from_network(base, k=2)
    trainer = BatchedTrainer(stack)
    x, y = _slabs(2, n=10)
    with pytest.raises(ValueError, match="3D"):
        trainer.fit(x[0], y[0], epochs=1)
    with pytest.raises(ValueError, match="K=2"):
        trainer.fit(x[:1], y[:1], epochs=1)
    with pytest.raises(ValueError, match="row counts"):
        trainer.fit(x, y[:, :5], epochs=1)
    with pytest.raises(ValueError, match="empty"):
        trainer.fit(x[:, :0], y[:, :0], epochs=1)
    with pytest.raises(ValueError, match="epochs"):
        trainer.fit(x, y, epochs=-1)
    with pytest.raises(ValueError, match="batch_size"):
        BatchedTrainer(stack, batch_size=0)
