"""Unit tests for the end-to-end reconstruction pipeline."""

import numpy as np
import pytest

from repro.core import FCNNReconstructor, ReconstructionPipeline
from repro.datasets import HurricaneDataset
from repro.interpolation import NearestNeighborInterpolator, make_interpolator
from repro.sampling import MultiCriteriaSampler


@pytest.fixture
def pipeline():
    data = HurricaneDataset(
        grid=HurricaneDataset.default_grid().with_resolution((14, 14, 6))
    )
    return ReconstructionPipeline(
        dataset=data,
        sampler=MultiCriteriaSampler(seed=2),
        train_fractions=(0.02, 0.08),
    )


class TestPipeline:
    def test_field_and_sample(self, pipeline):
        field = pipeline.field(0)
        sample = pipeline.sample(field, 0.05)
        assert sample.num_samples == int(round(0.05 * field.grid.num_points))

    def test_sample_seed_override(self, pipeline):
        field = pipeline.field(0)
        a = pipeline.sample(field, 0.05)
        b = pipeline.sample(field, 0.05, seed=99)
        assert not np.array_equal(a.indices, b.indices)

    def test_train_fcnn_default(self, pipeline):
        model = pipeline.train_fcnn(
            FCNNReconstructor(hidden_layers=(16, 8), batch_size=512), epochs=3
        )
        assert model.is_trained

    def test_run_method_result(self, pipeline):
        field = pipeline.field(0)
        sample = pipeline.sample(field, 0.1)
        res = pipeline.run_method(NearestNeighborInterpolator(), sample, field)
        assert res.method == "nearest"
        assert res.fraction == 0.1
        assert res.reconstruct_seconds > 0
        assert res.num_samples == sample.num_samples
        assert res.reconstruction is None  # keep_reconstructions off

    def test_keep_reconstructions(self, pipeline):
        pipeline.keep_reconstructions = True
        field = pipeline.field(0)
        sample = pipeline.sample(field, 0.1)
        res = pipeline.run_method(NearestNeighborInterpolator(), sample, field)
        assert res.reconstruction is not None
        assert res.reconstruction.shape == field.grid.dims

    def test_result_as_row(self, pipeline):
        field = pipeline.field(0)
        sample = pipeline.sample(field, 0.1)
        row = pipeline.run_method(NearestNeighborInterpolator(), sample, field).as_row()
        assert {"method", "fraction", "snr", "rmse", "seconds"} <= set(row)

    def test_compare_cross_product(self, pipeline):
        methods = [make_interpolator("nearest"), make_interpolator("shepard")]
        results = pipeline.compare(methods, fractions=(0.05, 0.1))
        assert len(results) == 4
        labels = {(r.method, r.fraction) for r in results}
        assert labels == {
            ("nearest", 0.05), ("nearest", 0.1), ("shepard", 0.05), ("shepard", 0.1)
        }
