"""Unit tests for feature extraction and normalization (paper Fig 4)."""

import numpy as np
import pytest

from repro.core import FeatureExtractor, Normalizer
from repro.datasets.base import TimestepField
from repro.grid import UniformGrid, field_gradients


@pytest.fixture
def extractor():
    return FeatureExtractor(num_neighbors=5)


@pytest.fixture
def normalizer(sample, hurricane_field):
    return FeatureExtractor().fit_normalizer(sample, field=hurricane_field)


class TestNormalizer:
    def test_coords_map_to_unit_cube(self, grid):
        n = Normalizer.fit(grid, np.array([1.0, 2.0]))
        corners = np.array([
            [grid.origin[0], grid.origin[1], grid.origin[2]],
            [grid.extent[0][1], grid.extent[1][1], grid.extent[2][1]],
        ])
        u = n.normalize_coords(corners)
        np.testing.assert_allclose(u[0], [0, 0, 0], atol=1e-12)
        np.testing.assert_allclose(u[1], [1, 1, 1], atol=1e-12)

    def test_outside_domain_allowed(self, grid):
        n = Normalizer.fit(grid, np.array([1.0, 2.0]))
        u = n.normalize_coords(np.array([[1e6, 0.0, 0.0]]))
        assert u[0, 0] > 1.0  # no clamping — Fig 13 relies on this

    def test_value_roundtrip(self, grid, rng):
        values = rng.normal(loc=100, scale=30, size=500)
        n = Normalizer.fit(grid, values)
        z = n.normalize_values(values)
        assert abs(z.mean()) < 1e-9 and z.std() == pytest.approx(1.0)
        np.testing.assert_allclose(n.denormalize_values(z), values)

    def test_constant_values_no_divzero(self, grid):
        n = Normalizer.fit(grid, np.full(10, 7.0))
        assert n.value_std == 1.0
        np.testing.assert_allclose(n.normalize_values(np.array([7.0])), [0.0])

    def test_gradient_roundtrip(self, grid, rng):
        grads = rng.normal(size=(100, 3)) * [1.0, 10.0, 0.1]
        n = Normalizer.fit(grid, rng.normal(size=100), gradients=grads)
        np.testing.assert_allclose(n.denormalize_gradients(n.normalize_gradients(grads)), grads)

    def test_gradient_scale_shared_across_axes(self, grid, rng):
        grads = rng.normal(size=(100, 3)) * [1.0, 10.0, 0.1]
        n = Normalizer.fit(grid, rng.normal(size=100), gradients=grads)
        assert n.gradient_std[0] == n.gradient_std[1] == n.gradient_std[2]

    def test_dict_roundtrip(self, grid, rng):
        n = Normalizer.fit(grid, rng.normal(size=50), gradients=rng.normal(size=(50, 3)))
        n2 = Normalizer.from_dict(n.as_dict())
        np.testing.assert_allclose(n2.origin, n.origin)
        np.testing.assert_allclose(n2.span, n.span)
        assert n2.value_mean == n.value_mean and n2.value_std == n.value_std
        np.testing.assert_allclose(n2.gradient_std, n.gradient_std)


class TestFeatureVector:
    def test_paper_dimensions(self, extractor):
        # 5 neighbors x (x, y, z, value) + void (x, y, z) = 23 (Sec III-D).
        assert extractor.feature_size == 23
        assert extractor.target_size == 4

    def test_no_gradient_target_size(self):
        assert FeatureExtractor(include_gradients=False).target_size == 1

    def test_features_shape(self, extractor, sample, normalizer):
        q = sample.void_points()[:50]
        x = extractor.features(sample, q, normalizer)
        assert x.shape == (50, 23)

    def test_feature_layout(self, sample, normalizer):
        # The last 3 entries are the void location's own coordinates.
        extractor = FeatureExtractor(num_neighbors=5)
        q = sample.void_points()[:10]
        x = extractor.features(sample, q, normalizer)
        np.testing.assert_allclose(x[:, 20:], normalizer.normalize_coords(q))

    def test_neighbors_are_nearest(self, sample, normalizer):
        from scipy.spatial import cKDTree

        extractor = FeatureExtractor(num_neighbors=5)
        q = sample.void_points()[:20]
        x = extractor.features(sample, q, normalizer)
        tree = cKDTree(sample.points)
        _, idx = tree.query(q, k=5)
        expected = normalizer.normalize_coords(sample.points[idx[:, 0]])
        np.testing.assert_allclose(x[:, 0:3], expected)

    def test_neighbor_values_standardized(self, sample, normalizer):
        extractor = FeatureExtractor(num_neighbors=5)
        q = sample.void_points()[:1000]
        x = extractor.features(sample, q, normalizer)
        vals = x[:, 3::4][:, :5]  # value slots of the 5 neighbors
        assert np.abs(vals.mean()) < 1.0  # standardized scale

    def test_fewer_samples_than_k_pads(self, grid, hurricane_field, normalizer):
        from repro.sampling.base import SampledField

        tiny = SampledField(
            grid, np.array([0, 50, 100]), hurricane_field.flat[[0, 50, 100]], 0.01
        )
        extractor = FeatureExtractor(num_neighbors=5)
        x = extractor.features(tiny, grid.points()[:10], normalizer)
        assert x.shape == (10, 23)
        assert np.isfinite(x).all()

    def test_k_validation(self):
        with pytest.raises(ValueError):
            FeatureExtractor(num_neighbors=0)


class TestTargets:
    def test_targets_with_gradients(self, extractor, hurricane_field, sample, normalizer):
        void = sample.void_indices()[:40]
        y = extractor.targets(hurricane_field, void, normalizer)
        assert y.shape == (40, 4)
        expected_scalar = normalizer.normalize_values(hurricane_field.flat[void])
        np.testing.assert_allclose(y[:, 0], expected_scalar)

    def test_targets_gradient_columns(self, extractor, hurricane_field, sample, normalizer):
        void = sample.void_indices()[:40]
        y = extractor.targets(hurricane_field, void, normalizer)
        grads = field_gradients(hurricane_field.grid, hurricane_field.values)[void]
        np.testing.assert_allclose(y[:, 1:], normalizer.normalize_gradients(grads))

    def test_training_data_covers_voids(self, extractor, hurricane_field, sample, normalizer):
        x, y = extractor.training_data(hurricane_field, sample, normalizer)
        n_void = sample.void_indices().size
        assert x.shape == (n_void, 23) and y.shape == (n_void, 4)

    def test_training_data_grid_mismatch(self, extractor, hurricane_field, normalizer):
        from repro.datasets import HurricaneDataset
        from repro.sampling import RandomSampler

        other_grid = UniformGrid((6, 6, 6))
        other_field = HurricaneDataset(grid=other_grid).field(0)
        other_sample = RandomSampler(seed=0).sample(other_field, 0.2)
        with pytest.raises(ValueError):
            extractor.training_data(hurricane_field, other_sample, normalizer)

    def test_fit_normalizer_without_field(self, extractor, sample):
        n = extractor.fit_normalizer(sample)
        assert n.value_std > 0
