"""Unit tests for the error-analysis diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    error_by_value_band,
    error_field,
    error_summary,
    error_vs_sample_distance,
    worst_regions,
)
from repro.interpolation import NearestNeighborInterpolator


class TestErrorField:
    def test_signed(self, rng):
        a = rng.normal(size=(4, 4, 4))
        np.testing.assert_allclose(error_field(a, a + 2.0), 2.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_field(np.zeros(3), np.zeros(4))


class TestErrorSummary:
    def test_known_values(self):
        a = np.zeros(100)
        b = np.full(100, 3.0)
        s = error_summary(a, b)
        assert s.mean == 3.0 and s.std == 0.0 and s.rmse == 3.0
        assert s.mae == 3.0 and s.max_abs == 3.0 and s.p95_abs == 3.0

    def test_unbiased_noise(self, rng):
        a = np.zeros(10_000)
        b = rng.normal(scale=2.0, size=10_000)
        s = error_summary(a, b)
        assert abs(s.mean) < 0.1
        assert s.std == pytest.approx(2.0, rel=0.05)
        assert s.rmse >= s.mae

    def test_as_dict_keys(self, rng):
        s = error_summary(rng.normal(size=10), rng.normal(size=10))
        assert set(s.as_dict()) == {"mean", "std", "rmse", "mae", "p95_abs", "max_abs"}

    def test_empty(self):
        with pytest.raises(ValueError):
            error_summary(np.array([]), np.array([]))


class TestErrorVsDistance:
    def test_rule_based_error_grows_with_void_depth(self, hurricane_field, sample):
        recon = NearestNeighborInterpolator().reconstruct(sample)
        rows = error_vs_sample_distance(hurricane_field.values, recon, sample, num_bins=5)
        assert len(rows) >= 3
        # Nearest bin (contains sampled points) far lower error than the farthest.
        assert rows[0]["rmse"] < rows[-1]["rmse"]

    def test_counts_cover_grid(self, hurricane_field, sample):
        recon = NearestNeighborInterpolator().reconstruct(sample)
        rows = error_vs_sample_distance(hurricane_field.values, recon, sample, num_bins=6)
        assert sum(r["count"] for r in rows) == hurricane_field.grid.num_points

    def test_validation(self, hurricane_field, sample):
        with pytest.raises(ValueError):
            error_vs_sample_distance(hurricane_field.values, hurricane_field.values, sample, num_bins=1)


class TestErrorByValueBand:
    def test_bands_cover_grid(self, hurricane_field, sample):
        recon = NearestNeighborInterpolator().reconstruct(sample)
        rows = error_by_value_band(hurricane_field.values, recon, num_bands=6)
        assert sum(r["count"] for r in rows) == hurricane_field.grid.num_points

    def test_band_edges_ordered(self, hurricane_field, sample):
        recon = NearestNeighborInterpolator().reconstruct(sample)
        rows = error_by_value_band(hurricane_field.values, recon, num_bands=4)
        for row in rows:
            assert row["value_lo"] < row["value_hi"]

    def test_localized_error_lands_in_right_band(self):
        # Corrupt only the large-value half: its bands must carry the error.
        a = np.linspace(0, 1, 1000)
        b = a.copy()
        b[a > 0.5] += 1.0
        rows = error_by_value_band(a, b, num_bands=2)
        assert rows[0]["rmse"] == pytest.approx(0.0)
        assert rows[1]["rmse"] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            error_by_value_band(np.zeros(4), np.zeros(4), num_bands=1)


class TestWorstRegions:
    def test_finds_corrupted_block(self, grid, hurricane_field):
        recon = hurricane_field.values.copy()
        recon[:3, :3, :2] += 50.0  # corrupt one corner
        rows = worst_regions(grid, hurricane_field.values, recon, blocks=(4, 4, 2), top_k=3)
        top = rows[0]
        assert top["x"][0] == 0 and top["y"][0] == 0 and top["z"][0] == 0
        assert top["rmse"] > rows[-1]["rmse"] or len(rows) == 1

    def test_perfect_reconstruction_all_zero(self, grid, hurricane_field):
        rows = worst_regions(grid, hurricane_field.values, hurricane_field.values.copy())
        assert all(r["rmse"] == 0.0 for r in rows)

    def test_top_k_limit(self, grid, hurricane_field):
        rows = worst_regions(grid, hurricane_field.values, hurricane_field.values, top_k=2)
        assert len(rows) == 2

    def test_validation(self, grid, hurricane_field):
        with pytest.raises(ValueError):
            worst_regions(grid, hurricane_field.values, hurricane_field.values, top_k=0)
