"""Unit tests for LR schedules and regularization utilities."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    ConstantSchedule,
    CosineAnnealingSchedule,
    Dropout,
    EarlyStopping,
    ExponentialDecaySchedule,
    Parameter,
    StepDecaySchedule,
    Trainer,
    WarmupSchedule,
    add_l2_gradients,
    apply_schedule,
    clip_gradients,
    l2_penalty,
    mlp,
)


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule(0.01)
        assert s(0) == s(500) == 0.01

    def test_step_decay(self):
        s = StepDecaySchedule(lr=1.0, step_size=10, factor=0.5)
        assert s(0) == 1.0
        assert s(10) == 0.5
        assert s(25) == 0.25

    def test_exponential(self):
        s = ExponentialDecaySchedule(lr=1.0, decay=0.9)
        assert s(2) == pytest.approx(0.81)

    def test_cosine_endpoints(self):
        s = CosineAnnealingSchedule(lr=1.0, total_epochs=100, lr_min=0.1)
        assert s(0) == pytest.approx(1.0)
        assert s(100) == pytest.approx(0.1)
        assert s(200) == pytest.approx(0.1)  # clamped past the horizon
        assert 0.1 < s(50) < 1.0

    def test_warmup(self):
        s = WarmupSchedule(ConstantSchedule(1.0), warmup_epochs=4)
        assert s(0) == pytest.approx(0.25)
        assert s(3) == pytest.approx(1.0)
        assert s(10) == 1.0

    def test_monotone_decay(self):
        for s in (StepDecaySchedule(), ExponentialDecaySchedule(), CosineAnnealingSchedule()):
            rates = [s(e) for e in range(0, 400, 7)]
            assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)
        with pytest.raises(ValueError):
            StepDecaySchedule(factor=0.0)
        with pytest.raises(ValueError):
            ExponentialDecaySchedule(decay=1.5)
        with pytest.raises(ValueError):
            CosineAnnealingSchedule(lr=1e-3, lr_min=1.0)
        with pytest.raises(ValueError):
            WarmupSchedule(ConstantSchedule(), warmup_epochs=0)

    def test_apply_schedule_updates_optimizer(self, rng):
        model = mlp(2, [4], 1, seed=0)
        opt = Adam(model.parameters(), lr=1.0)
        trainer = Trainer(model, optimizer=opt, seed=0)
        schedule = ExponentialDecaySchedule(lr=1.0, decay=0.5)
        x, y = rng.normal(size=(16, 2)), rng.normal(size=(16, 1))
        trainer.fit(x, y, epochs=3, callback=apply_schedule(opt, schedule))
        assert opt.lr == pytest.approx(schedule(3))


class TestDropout:
    def test_identity_in_eval_mode(self, rng):
        layer = Dropout(rate=0.5, seed=0)
        layer.training = False
        x = rng.normal(size=(4, 8))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_zero_rate_identity(self, rng):
        layer = Dropout(rate=0.0)
        x = rng.normal(size=(4, 8))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_preserves_expectation(self, rng):
        layer = Dropout(rate=0.3, seed=1)
        x = np.ones((200, 200))
        out = layer.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(rate=0.5, seed=2)
        x = rng.normal(size=(10, 10))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        # Zeroed activations get zeroed gradients; kept ones are scaled.
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Dropout(rate=1.0)

    def test_spec(self):
        assert Dropout(rate=0.25).spec() == {"kind": "Dropout", "rate": 0.25}

    def test_from_spec_roundtrip(self):
        from repro.nn.network import from_spec

        net = from_spec([{"kind": "Dropout", "rate": 0.25}])
        assert net.layers[0].rate == 0.25


class TestL2:
    def test_penalty_value(self):
        p = Parameter(np.array([[1.0, 2.0], [0.0, 1.0]]))
        b = Parameter(np.array([5.0]))  # bias excluded
        assert l2_penalty([p, b], 0.1) == pytest.approx(0.1 * 6.0)

    def test_gradient_added(self):
        p = Parameter(np.array([[2.0]]))
        add_l2_gradients([p], 0.5)
        assert p.grad[0, 0] == pytest.approx(2.0)

    def test_frozen_skipped(self):
        p = Parameter(np.array([[2.0]]))
        p.trainable = False
        add_l2_gradients([p], 0.5)
        assert p.grad[0, 0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            l2_penalty([], -1.0)
        with pytest.raises(ValueError):
            add_l2_gradients([], -1.0)


class TestClipGradients:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.grad[...] = [1.0, 0.0, 0.0]
        norm = clip_gradients([p], max_norm=2.0)
        assert norm == pytest.approx(1.0)
        np.testing.assert_allclose(p.grad, [1.0, 0.0, 0.0])

    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(2))
        p.grad[...] = [3.0, 4.0]
        clip_gradients([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_global_norm_across_parameters(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad[...] = [3.0]
        b.grad[...] = [4.0]
        norm = clip_gradients([a, b], max_norm=10.0)
        assert norm == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_gradients([], max_norm=0.0)


class TestEarlyStopping:
    def test_stops_on_plateau(self, rng):
        model = mlp(2, [4], 1, seed=0)
        trainer = Trainer(model, seed=0)
        x, y = rng.normal(size=(32, 2)), rng.normal(size=(32, 1))
        # min_delta makes micro-improvements count as a plateau, so the
        # stopper must fire long before the epoch budget runs out.
        stopper = EarlyStopping(patience=5, min_delta=1e-3)
        hist = trainer.fit(x, y, epochs=500, validation=(x, y), callback=stopper)
        assert hist.epochs < 500
        assert stopper.stopped_epoch is not None

    def test_requires_validation(self, rng):
        model = mlp(2, [4], 1, seed=0)
        trainer = Trainer(model, seed=0)
        x, y = rng.normal(size=(8, 2)), rng.normal(size=(8, 1))
        with pytest.raises(RuntimeError):
            trainer.fit(x, y, epochs=3, callback=EarlyStopping())

    def test_validation_params(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(min_delta=-1.0)


class TestDropoutEvalMode:
    def test_predict_disables_dropout(self, rng):
        from repro.nn import Dense, Sequential
        from repro.nn.regularization import Dropout

        net = Sequential([
            Dense(4, 4, rng=np.random.default_rng(0)),
            Dropout(rate=0.5, seed=1),
        ])
        x = rng.normal(size=(8, 4))
        a = net.predict(x)
        b = net.predict(x)
        # Deterministic in eval mode (no dropout noise)...
        np.testing.assert_array_equal(a, b)
        # ...and train mode restored afterwards.
        assert net.layers[1].training is True
        out1 = net.forward(x)
        out2 = net.forward(x)
        assert not np.array_equal(out1, out2)
