"""Concurrent ``fine_tune_batch`` submissions sharing one Workspace arena.

``fine_tune_batch`` routes all K members through its instance's single
:class:`repro.perf.Workspace`, whose buffers are keyed by tag rather
than by caller — two interleaved submissions would overwrite each
other's arenas.  The documented contract is **single-writer**: an
internal per-instance lock serializes concurrent submissions (results
identical to running them back to back), and true parallelism requires
per-thread :meth:`~repro.core.FCNNReconstructor.clone`\\ s.  These tests
prove both sides of that contract, plus an ALS002-rule regression for
the hazard class the lock guards (arena state escaping its call).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.reconstructor import FCNNReconstructor
from repro.datasets.registry import make_dataset
from repro.sampling import MultiCriteriaSampler


@pytest.fixture(scope="module")
def tuned_setup():
    """A small trained base plus two timesteps' fine-tune inputs."""
    data = make_dataset("combustion", dims=(10, 10, 5), seed=0)
    sampler = MultiCriteriaSampler(seed=0)
    field0 = data.field(0)
    recon = FCNNReconstructor(hidden_layers=(16, 8), seed=0)
    recon.train(field0, [sampler.sample(field0, f) for f in (0.02, 0.05)], epochs=5)
    fields = [data.field(t) for t in (1, 2)]
    trains = [[sampler.sample(fld, 0.05)] for fld in fields]
    return recon, fields, trains


def _flats(recon, fields, trains):
    flats, _ = recon.fine_tune_batch(fields, trains, epochs=2)
    return flats


class TestSingleWriterLock:
    def test_concurrent_submissions_match_serial_bitwise(self, tuned_setup):
        """N threads on ONE instance: every result equals the serial one."""
        recon, fields, trains = tuned_setup
        reference = _flats(recon, fields, trains)
        results: list = [None] * 4
        errors: list = []

        def work(i: int) -> None:
            try:
                results[i] = _flats(recon, fields, trains)
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for flats in results:
            assert flats is not None
            for got, want in zip(flats, reference):
                assert got.tobytes() == want.tobytes()

    def test_lock_serializes_overlapping_calls(self, tuned_setup):
        """While one submission holds the arena, a second one blocks."""
        recon, fields, trains = tuned_setup
        started = threading.Event()
        finished = threading.Event()

        def work() -> None:
            started.set()
            _flats(recon, fields, trains)
            finished.set()

        with recon._ft_lock:  # simulate an in-flight submission
            t = threading.Thread(target=work)
            t.start()
            assert started.wait(5.0)
            assert not finished.wait(0.3)  # blocked on the single-writer lock
        assert finished.wait(30.0)
        t.join()

    def test_clones_give_true_parallelism_with_identical_bits(self, tuned_setup):
        """Per-thread clones (the documented parallel idiom) agree bitwise."""
        recon, fields, trains = tuned_setup
        reference = _flats(recon, fields, trains)
        results: list = [None] * 3
        errors: list = []

        def work(i: int, clone: FCNNReconstructor) -> None:
            try:
                results[i] = _flats(clone, fields, trains)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i, recon.clone())) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for flats in results:
            for got, want in zip(flats, reference):
                assert got.tobytes() == want.tobytes()


def test_als002_still_flags_escaping_arena_state(tmp_path):
    """Regression: the rule backing the single-writer contract stays armed.

    The lock exists because arena buffers are keyed by tag, not caller;
    the matching static guard is ALS002 (arena state persisted beyond
    its call).  If this trigger stops firing, the contract has lost its
    automated enforcement.
    """
    from repro.checks import CheckConfig, run_checks

    target = tmp_path / "nn" / "tuner_fixture.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "import numpy as np\n"
        "class Tuner:\n"
        "    def fine_tune_batch(self, x, ws):\n"
        "        feat = ws.buffer('feat', x.shape)\n"
        "        np.multiply(x, 2.0, out=feat)\n"
        "        self._feat = feat\n"
        "        return feat\n"
    )
    result = run_checks([tmp_path], config=CheckConfig(select=frozenset({"ALS002"})))
    assert result.findings
    assert all(f.rule == "ALS002" for f in result.findings)
