"""Property tests for :mod:`repro.shard` plans, index maps and seam proofs.

The load-bearing invariants of the spatial decomposition:

* shard interiors are a **partition of unity** over the grid (the
  stitcher's correctness precondition);
* extended boxes contain their interiors and stay inside the grid, with
  the halo clipped only at grid edges;
* the global<->local index maps are strictly increasing bijections over
  the extended box (canonical kNN tie-breaking relies on order
  preservation);
* :meth:`ShardedCampaignGeometry.seam_check` is exact for
  stencil-covering halos and monotone in the halo width.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import TIE_BREAK_PAD
from repro.grid import UniformGrid
from repro.perf.campaign import CampaignGeometry
from repro.shard import (
    ShardPlan,
    ShardedCampaignGeometry,
    parse_shards,
    suggest_halo,
)
from repro.shard.pool import _shard_chunks

dims_st = st.tuples(st.integers(2, 9), st.integers(2, 8), st.integers(1, 6))
counts_st = st.tuples(st.integers(1, 3), st.integers(1, 3), st.integers(1, 2))
halo_st = st.integers(0, 4)


def make_plan(dims, counts, halo):
    counts = tuple(min(c, d) for c, d in zip(counts, dims))
    grid = UniformGrid(dims=dims, spacing=(0.5, 1.0, 2.0), origin=(-1.0, 0.0, 3.0))
    return ShardPlan.create(grid, counts, halo)


# ------------------------------------------------------------------ parsing
class TestParseShards:
    def test_axbxc_and_single_count(self):
        assert parse_shards("2x3x1") == (2, 3, 1)
        assert parse_shards("4") == (4, 1, 1)
        assert parse_shards(4) == (4, 1, 1)

    def test_sequences_pass_through(self):
        assert parse_shards((1, 2, 3)) == (1, 2, 3)
        assert parse_shards([2, 2, 1]) == (2, 2, 1)
        assert parse_shards((5,)) == (5, 1, 1)

    def test_unicode_times_sign(self):
        assert parse_shards("2×2×1") == (2, 2, 1)

    @pytest.mark.parametrize("bad", ["axb", "2x2x2x2", "0x1x1", "", (0, 1, 1), (1, 2)])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_shards(bad)


class TestSuggestHalo:
    def test_positive_and_monotone(self):
        halos = [suggest_halo(5, f) for f in (0.01, 0.03, 0.05, 0.2)]
        assert all(h >= 1 for h in halos)
        assert halos == sorted(halos, reverse=True)  # denser sampling, thinner halo
        assert suggest_halo(10, 0.05) >= suggest_halo(2, 0.05)

    def test_covers_padded_stencil_on_uniform_grid(self):
        # A halo ball of the suggested radius must hold k + pad samples at
        # the assumed density (the safety factor makes this comfortably so).
        k, fraction = 5, 0.05
        r = suggest_halo(k, fraction)
        assert fraction * 4.0 / 3.0 * np.pi * r**3 >= k + TIE_BREAK_PAD

    def test_validation(self):
        with pytest.raises(ValueError, match="num_neighbors"):
            suggest_halo(0, 0.05)
        with pytest.raises(ValueError, match="fraction"):
            suggest_halo(5, 0.0)


# ----------------------------------------------------------- plan invariants
class TestShardPlanProperties:
    @given(dims=dims_st, counts=counts_st, halo=halo_st)
    @settings(max_examples=60, deadline=None)
    def test_interiors_are_partition_of_unity(self, dims, counts, halo):
        plan = make_plan(dims, counts, halo)
        all_interior = np.concatenate([s.interior_indices for s in plan.shards])
        assert np.array_equal(
            np.sort(all_interior), np.arange(plan.grid.num_points, dtype=np.int64)
        )

    @given(dims=dims_st, counts=counts_st, halo=halo_st)
    @settings(max_examples=60, deadline=None)
    def test_halo_containment(self, dims, counts, halo):
        plan = make_plan(dims, counts, halo)
        for s in plan.shards:
            for axis in range(3):
                assert 0 <= s.ext_lo[axis] <= s.lo[axis]
                assert s.hi[axis] <= s.ext_hi[axis] <= dims[axis]
                # The halo is exactly `halo` wide unless clipped by the edge.
                assert s.lo[axis] - s.ext_lo[axis] == min(halo, s.lo[axis])
                assert s.ext_hi[axis] - s.hi[axis] == min(halo, dims[axis] - s.hi[axis])
            interior = set(map(int, s.interior_indices))
            assert interior <= set(map(int, s.ext_indices))

    @given(dims=dims_st, counts=counts_st, halo=halo_st)
    @settings(max_examples=40, deadline=None)
    def test_index_maps_are_increasing_bijections(self, dims, counts, halo):
        plan = make_plan(dims, counts, halo)
        for s in plan.shards:
            ext = s.ext_indices
            assert np.all(np.diff(ext) > 0)
            local = s.global_to_local(ext)
            # C-order enumeration of the box in its own frame: 0..num_ext-1
            assert np.array_equal(local, np.arange(s.num_ext, dtype=np.int64))
            assert np.array_equal(s.local_to_global(local), ext)
            # Strictly increasing on any sorted subset.
            subset = ext[::3]
            assert np.all(np.diff(s.global_to_local(subset)) > 0)

    @given(dims=dims_st, counts=counts_st)
    @settings(max_examples=40, deadline=None)
    def test_shard_of_matches_interior_membership(self, dims, counts):
        plan = make_plan(dims, counts, 1)
        owner = plan.shard_of(np.arange(plan.grid.num_points))
        for s in plan.shards:
            assert np.all(owner[s.interior_indices] == s.index)

    def test_index_map_rejects_outside_indices(self):
        plan = make_plan((6, 6, 4), (2, 1, 1), 0)
        with pytest.raises(ValueError, match="extended box"):
            plan.shards[0].global_to_local(plan.shards[1].interior_indices[-1:])
        with pytest.raises(ValueError, match="out of range"):
            plan.shards[0].local_to_global(np.array([plan.shards[0].num_ext]))

    def test_neighbors_symmetric_and_irreflexive(self):
        plan = make_plan((8, 8, 4), (2, 2, 2), 1)
        for s in plan.shards:
            nbrs = plan.neighbors(s.index)
            assert s.index not in nbrs
            for other in nbrs:
                assert s.index in plan.neighbors(other)
        # 2x2x2 lattice: every shard touches every other one.
        assert all(len(plan.neighbors(i)) == 7 for i in range(plan.num_shards))

    def test_open_faces_and_margin(self):
        plan = make_plan((8, 4, 4), (2, 1, 1), 1)
        left, right = plan.shards
        # Only the seam faces are open; grid-edge faces are closed.
        assert left.open_faces == ((0, +1),)
        assert right.open_faces == ((0, -1),)
        # One shard covering everything has no open face: infinite margin.
        whole = make_plan((4, 4, 4), (1, 1, 1), 0).shards[0]
        assert whole.open_faces == ()
        assert np.isinf(whole.margin(np.zeros((3, 3)))).all()
        # Margin is the distance to the first *excluded* plane.
        grid = plan.grid
        pts = grid.index_to_position(grid.flat_to_multi(left.interior_indices))
        excluded_plane = grid.origin[0] + left.ext_hi[0] * grid.spacing[0]
        assert np.allclose(left.margin(pts), excluded_plane - pts[:, 0])

    def test_create_validation(self):
        grid = UniformGrid(dims=(4, 4, 2), spacing=(1, 1, 1), origin=(0, 0, 0))
        with pytest.raises(ValueError, match="halo"):
            ShardPlan.create(grid, (2, 1, 1), -1)
        with pytest.raises(ValueError, match="axis 2"):
            ShardPlan.create(grid, (1, 1, 3), 0)


# ----------------------------------------------------------- chunking guard
class TestShardChunks:
    @given(
        n=st.integers(0, 200),
        num_chunks=st.integers(1, 5),
        block=st.sampled_from([3, 4, 16]),
    )
    @settings(max_examples=120, deadline=None)
    def test_partition_without_single_row_tail(self, n, num_chunks, block):
        # block >= 3 mirrors production (block >= 16384): with block == 2
        # an odd segment cannot avoid a 1-row trailing matmul at all.
        chunks = _shard_chunks(n, num_chunks, block)
        # Contiguous cover of [0, n).
        assert [c[0] for c in chunks[1:]] == [c[1] for c in chunks[:-1]]
        if n == 0:
            assert chunks == []
        else:
            assert chunks[0][0] == 0 and chunks[-1][1] == n
        # No chunk's trailing predict block is a single row (gemv), except
        # the irreducible n == 1 segment.
        for start, stop in chunks:
            if n > 1:
                assert (stop - start) % block != 1, (n, num_chunks, block, chunks)

    def test_single_void_segment_stays(self):
        assert _shard_chunks(1, 4, 16) == [(0, 1)]


# ------------------------------------------------------- geometry + seams
def _geometry(dims=(12, 10, 8), fraction=0.12, seed=0):
    rng = np.random.default_rng(seed)
    grid = UniformGrid(dims=dims, spacing=(1.0, 1.0, 1.0), origin=(0.0, 0.0, 0.0))
    n = max(8, int(fraction * grid.num_points))
    indices = np.sort(rng.choice(grid.num_points, size=n, replace=False))
    return CampaignGeometry(grid, indices.astype(np.int64), fraction)


class TestShardedCampaignGeometry:
    def test_void_order_is_permutation_and_offsets_consistent(self):
        geometry = _geometry()
        plan = ShardPlan.create(geometry.grid, (2, 2, 1), 2)
        sharded = ShardedCampaignGeometry(plan, geometry)
        assert np.array_equal(
            np.sort(sharded.void_order), np.arange(geometry.num_voids)
        )
        for s, sg in enumerate(sharded.shards):
            lo, hi = sharded.void_offsets[s], sharded.void_offsets[s + 1]
            assert hi - lo == sg.num_voids
            lo, hi = sharded.sample_offsets[s], sharded.sample_offsets[s + 1]
            segment = sharded.sample_order[lo:hi]
            assert np.array_equal(segment, sg.sample_sel)
            assert np.all(np.diff(segment) > 0)  # ascending: order-preserving

    def test_halo_imports_counted(self):
        geometry = _geometry()
        plan = ShardPlan.create(geometry.grid, (2, 1, 1), 3)
        sharded = ShardedCampaignGeometry(plan, geometry)
        imports = sharded.halo_imports()
        assert len(imports) == 2 and all(i > 0 for i in imports)
        # halo=0 imports nothing.
        bare = ShardedCampaignGeometry(
            ShardPlan.create(geometry.grid, (2, 1, 1), 0), geometry
        )
        assert bare.halo_imports() == [0, 0]

    def test_empty_shard_rejected(self):
        grid = UniformGrid(dims=(8, 4, 4), spacing=(1, 1, 1), origin=(0, 0, 0))
        # Every sample in the left half: the right shard sees none.
        indices = np.arange(8, dtype=np.int64)
        geometry = CampaignGeometry(grid, indices, 0.05)
        plan = ShardPlan.create(grid, (2, 1, 1), 0)
        with pytest.raises(ValueError, match="no samples"):
            ShardedCampaignGeometry(plan, geometry)

    def test_grid_mismatch_rejected(self):
        geometry = _geometry()
        other = UniformGrid(dims=(6, 6, 6), spacing=(1, 1, 1), origin=(0, 0, 0))
        plan = ShardPlan.create(other, (2, 1, 1), 1)
        with pytest.raises(ValueError, match="grid"):
            ShardedCampaignGeometry(plan, geometry)

    def test_seam_check_exact_when_halo_covers_stencil(self):
        geometry = _geometry()
        plan = ShardPlan.create(geometry.grid, (2, 2, 1), 8)
        report = ShardedCampaignGeometry(plan, geometry).seam_check(num_neighbors=5)
        assert report.exact
        assert report.total_unsafe == 0
        assert report.total_queries == geometry.num_voids
        assert "exact" in report.summary()

    def test_seam_check_monotone_in_halo(self):
        geometry = _geometry()
        unsafe = []
        for halo in (0, 1, 2, 4, 8):
            plan = ShardPlan.create(geometry.grid, (2, 2, 1), halo)
            report = ShardedCampaignGeometry(plan, geometry).seam_check(5)
            unsafe.append(report.total_unsafe)
            assert report.halo == halo
        assert unsafe == sorted(unsafe, reverse=True)
        assert unsafe[0] > 0  # halo=0 cannot be provably exact here
        assert unsafe[-1] == 0

    def test_seam_check_flags_undersized_candidate_lists(self):
        # A shard whose extended box holds fewer than k + pad samples
        # cannot materialize the global candidate list: all unsafe.
        grid = UniformGrid(dims=(10, 4, 4), spacing=(1, 1, 1), origin=(0, 0, 0))
        rng = np.random.default_rng(3)
        indices = np.sort(rng.choice(grid.num_points, size=30, replace=False))
        geometry = CampaignGeometry(grid, indices.astype(np.int64), 0.2)
        plan = ShardPlan.create(grid, (2, 1, 1), 0)
        report = ShardedCampaignGeometry(plan, geometry).seam_check(5)
        assert not report.exact
        assert "may cross" in report.summary()
