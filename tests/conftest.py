"""Shared fixtures: small grids/fields/samples sized for fast tests.

Also wires the runtime sanitizers (``repro.checks.sanitizers``) into the
suite: ``pytest --sanitize`` wraps every test in the lock-order, shm-leak
and array-aliasing sanitizers, so latent deadlocks, stranded ``/dev/shm``
segments and aliased ``out=`` kernels fail the owning test instead of
poisoning the session.  Tests that violate an invariant *on purpose*
(the sanitizers' own trigger tests) opt out with
``@pytest.mark.no_sanitize``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import HurricaneDataset
from repro.grid import UniformGrid
from repro.sampling import MultiCriteriaSampler, RandomSampler


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="wrap every test in the repro.checks runtime sanitizers "
        "(lock order, shm leaks, out= aliasing)",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "no_sanitize: disable the runtime sanitizers for this test "
        "(for tests that deliberately violate a sanitized invariant)",
    )


@pytest.fixture(autouse=True)
def _runtime_sanitizers(request: pytest.FixtureRequest):
    if not request.config.getoption("--sanitize") or request.node.get_closest_marker(
        "no_sanitize"
    ):
        yield
        return
    from repro.checks.sanitizers import sanitize

    with sanitize():
        yield


@pytest.fixture
def grid() -> UniformGrid:
    """A small anisotropic grid (distinct dims expose axis-order bugs)."""
    return UniformGrid((12, 10, 8), spacing=(1.0, 2.0, 0.5), origin=(-1.0, 3.0, 0.0))


@pytest.fixture
def unit_grid() -> UniformGrid:
    return UniformGrid((8, 8, 8))


@pytest.fixture
def hurricane_field(grid):
    """Hurricane field materialized on the small test grid."""
    data = HurricaneDataset(grid=grid, seed=0)
    return data.field(t=0)


@pytest.fixture
def sample(hurricane_field):
    """A 5% multi-criteria sample of the hurricane test field."""
    return MultiCriteriaSampler(seed=3).sample(hurricane_field, 0.05)


@pytest.fixture
def dense_sample(hurricane_field):
    """A 20% random sample (dense enough for tight interpolation checks)."""
    return RandomSampler(seed=5).sample(hurricane_field, 0.20)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def serve_registry(tmp_path_factory):
    """A small populated model registry (trained once per session).

    Three fine-tuned timesteps of one combustion namespace — shared by
    the ``repro.serve`` suites, which treat it as read-only.
    """
    from repro.serve import build_registry

    root = tmp_path_factory.mktemp("serve-registry")
    return build_registry(
        root,
        dims=(10, 10, 5),
        fraction=0.06,
        timesteps=(0, 1, 2),
        epochs=6,
        finetune_epochs=2,
        hidden=(16, 8),
    )
