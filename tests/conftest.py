"""Shared fixtures: small grids/fields/samples sized for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import HurricaneDataset
from repro.grid import UniformGrid
from repro.sampling import MultiCriteriaSampler, RandomSampler


@pytest.fixture
def grid() -> UniformGrid:
    """A small anisotropic grid (distinct dims expose axis-order bugs)."""
    return UniformGrid((12, 10, 8), spacing=(1.0, 2.0, 0.5), origin=(-1.0, 3.0, 0.0))


@pytest.fixture
def unit_grid() -> UniformGrid:
    return UniformGrid((8, 8, 8))


@pytest.fixture
def hurricane_field(grid):
    """Hurricane field materialized on the small test grid."""
    data = HurricaneDataset(grid=grid, seed=0)
    return data.field(t=0)


@pytest.fixture
def sample(hurricane_field):
    """A 5% multi-criteria sample of the hurricane test field."""
    return MultiCriteriaSampler(seed=3).sample(hurricane_field, 0.05)


@pytest.fixture
def dense_sample(hurricane_field):
    """A 20% random sample (dense enough for tight interpolation checks)."""
    return RandomSampler(seed=5).sample(hurricane_field, 0.20)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
