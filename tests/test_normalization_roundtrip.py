"""Normalizer transform/inverse_transform round-trips and into-variants."""

import numpy as np
import pytest

from repro.core.normalization import Normalizer
from repro.grid import UniformGrid


@pytest.fixture
def normalizer(grid):
    rng = np.random.default_rng(1)
    return Normalizer.fit(grid, rng.normal(loc=3.0, scale=2.0, size=200))


class TestRoundTrip:
    def test_inverse_transform_round_trips(self, grid, normalizer):
        rng = np.random.default_rng(2)
        points = grid.points()[rng.choice(grid.num_points, size=50, replace=False)]
        values = rng.normal(size=50)
        coords, norm_values = normalizer.transform(points, values)
        back_points, back_values = normalizer.inverse_transform(coords, norm_values)
        np.testing.assert_allclose(back_points, points, rtol=0, atol=1e-12)
        np.testing.assert_allclose(back_values, values, rtol=1e-12)

    def test_transform_is_idempotent_on_fixed_stats(self, normalizer):
        """Applying transform twice equals composing the affine map twice —
        the stats do not drift with the data passed through."""
        rng = np.random.default_rng(3)
        values = rng.normal(size=20)
        once = normalizer.normalize_values(values)
        twice = normalizer.normalize_values(once)
        np.testing.assert_allclose(
            twice, (once - normalizer.value_mean) / normalizer.value_std
        )

    def test_degenerate_stats_round_trip(self, grid):
        flat = Normalizer.fit(grid, np.full(10, 4.2))  # zero variance -> std 1.0
        values = np.array([4.2, 5.0, -1.0])
        back = flat.denormalize_values(flat.normalize_values(values))
        np.testing.assert_allclose(back, values, rtol=1e-12)


class TestIntoVariants:
    def test_denormalize_values_into_bit_identical(self, normalizer):
        rng = np.random.default_rng(4)
        values = rng.normal(size=64)
        out = np.empty(64)
        result = normalizer.denormalize_values_into(values, out)
        assert result is out
        np.testing.assert_array_equal(out, normalizer.denormalize_values(values))

    def test_into_strided_view(self, normalizer):
        rng = np.random.default_rng(5)
        values = rng.normal(size=16)
        backing = np.zeros(32)
        normalizer.denormalize_values_into(values, backing[1:32:2])
        np.testing.assert_array_equal(
            backing[1:32:2], normalizer.denormalize_values(values)
        )
        assert (backing[0:32:2] == 0).all()
