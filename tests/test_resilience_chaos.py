"""End-to-end chaos: kill campaigns anywhere, resume bit-identically.

The PR's acceptance criteria live here:

* a campaign crashed (fault or SIGTERM) mid-run and restarted with resume
  produces output **byte-identical** to an uninterrupted run;
* a poison timestep (permanent injected fault) is quarantined — the
  campaign completes with reported degradation instead of aborting.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

import repro.resilience.chaos as chaos
from repro.core import FCNNReconstructor, ReconstructionPipeline
from repro.core import pipeline as pipeline_mod
from repro.datasets import make_dataset
from repro.insitu import InSituWriter
from repro.interpolation import NearestNeighborInterpolator
from repro.obs.metrics import MetricsRegistry, activate, deactivate
from repro.parallel import ParallelExecutor, parallel_reconstruct
from repro.perf.campaign import (
    CampaignGeometry,
    LocalReconstructionSink,
    WarmReconstructionPool,
    make_reconstruction_sink,
)
from repro.perf.weights import snapshot_weights
from repro.resilience import GracefulInterrupt, SupervisionPolicy
from repro.resilience.chaos import ChaosSink, Fault, FaultSchedule
from repro.resilience.faults import ShmUnavailableFault, SimulatedCrash
from repro.resilience.supervise import CampaignInterrupted
from repro.sampling import MultiCriteriaSampler

DIMS = (12, 12, 6)
TIMESTEPS = (0, 8, 16)


@pytest.fixture
def metrics():
    previous = activate(MetricsRegistry())
    try:
        yield
    finally:
        deactivate(previous)


@pytest.fixture(scope="module")
def campaign_pipeline():
    data = make_dataset("combustion", dims=DIMS, seed=0)
    return ReconstructionPipeline(
        data, train_fractions=(0.02, 0.05), keep_reconstructions=True
    )


@pytest.fixture(scope="module")
def base_model(campaign_pipeline):
    model = FCNNReconstructor(hidden_layers=(16, 8), batch_size=1024, seed=7)
    campaign_pipeline.train_fcnn(model, timestep=TIMESTEPS[0], epochs=3)
    return model


def _strip_timing(rows):
    """finetune_seconds is wall-clock; everything else must be bit-equal."""
    return [{k: v for k, v in row.items() if k != "finetune_seconds"} for row in rows]


# ----------------------------------------------------------- fault schedule
class TestFaultSchedule:
    def test_budget_and_coordinates(self):
        fault = Fault("process", timestep=8, times=2)
        assert fault.matches("process", 8)
        assert not fault.matches("process", 16)
        assert not fault.matches("emit", 8)
        fault.fired = 2
        assert not fault.matches("process", 8)

    def test_unlimited_budget(self):
        fault = Fault("reconstruct", times=-1)
        fault.fired = 10 ** 6
        assert fault.matches("reconstruct", 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Fault("process", kind="explode")

    def test_fire_raises_and_logs(self):
        schedule = FaultSchedule([Fault("process", timestep=8)])
        schedule.fire("process", 0)  # no match, no effect
        with pytest.raises(SimulatedCrash):
            schedule.fire("process", 8)
        schedule.fire("process", 8)  # budget spent: inert
        assert schedule.fired == [("process", 8, "raise")]

    def test_sigterm_kind_signals_own_process(self, monkeypatch):
        kills = []
        monkeypatch.setattr(os, "kill", lambda pid, sig: kills.append((pid, sig)))
        FaultSchedule([Fault("process", kind="sigterm")]).fire("process", 0)
        assert kills == [(os.getpid(), signal.SIGTERM)]

    def test_chaos_sink_targets_timesteps(self):
        class _Inner:
            def __init__(self):
                self.closed = False
                self.slots = 0

            def publish(self, timestep, values, weights):
                self.slots += 1
                return self.slots - 1

            def reconstruct(self, slot, tag):
                return ("volume", slot)

            def close(self):
                self.closed = True

        inner = _Inner()
        schedule = FaultSchedule([Fault("reconstruct", timestep=8, times=-1)])
        sink = ChaosSink(inner, schedule)
        slot0 = sink.publish(0, None, None)
        slot8 = sink.publish(8, None, None)
        assert sink.reconstruct(slot0, "fcnn") == ("volume", slot0)
        with pytest.raises(SimulatedCrash):
            sink.reconstruct(slot8, "fcnn")
        sink.close()
        assert inner.closed
        assert schedule.fired == [("reconstruct", 8, "raise")]


# ------------------------------------------- run_campaign: crash and resume
class TestRunCampaignResume:
    def _run(self, campaign_pipeline, base_model, journal_path, **kwargs):
        kwargs.setdefault("warm_pool", False)
        return campaign_pipeline.run_campaign(
            base_model.clone(),
            TIMESTEPS,
            0.05,
            finetune_epochs=2,
            journal=journal_path,
            **kwargs,
        )

    def test_crash_mid_campaign_then_resume_bit_identical(
        self, campaign_pipeline, base_model, tmp_path
    ):
        full = self._run(
            campaign_pipeline, base_model, tmp_path / "full" / "journal.jsonl"
        )

        wal = tmp_path / "crashed" / "journal.jsonl"
        schedule = FaultSchedule([Fault("process", timestep=TIMESTEPS[-1])])
        with pytest.raises(SimulatedCrash):
            # serial mode: earlier timesteps are fully emitted (journaled)
            # before the poison stage runs, like a campaign dying mid-stream
            self._run(
                campaign_pipeline,
                base_model,
                wal,
                pipeline=False,
                on_stage=schedule.fire,
            )
        assert schedule.fired  # the crash actually happened

        resumed = self._run(campaign_pipeline, base_model, wal, resume=True)
        assert resumed.resumed == len(TIMESTEPS) - 1
        assert _strip_timing(resumed.rows) == _strip_timing(full.rows)
        # Skipped timesteps contribute no volume; recomputed ones are
        # bitwise identical to the uninterrupted run's.
        for i, volume in enumerate(resumed.reconstructions):
            if i < resumed.resumed:
                assert volume is None
            else:
                assert volume.tobytes() == full.reconstructions[i].tobytes()

    def test_resume_of_untouched_journal_runs_everything(
        self, campaign_pipeline, base_model, tmp_path
    ):
        wal = tmp_path / "journal.jsonl"
        result = self._run(campaign_pipeline, base_model, wal, resume=True)
        assert result.resumed == 0
        assert len(result.rows) == len(TIMESTEPS)

    def test_resume_of_completed_campaign_replays_all_rows(
        self, campaign_pipeline, base_model, tmp_path
    ):
        wal = tmp_path / "journal.jsonl"
        full = self._run(campaign_pipeline, base_model, wal)
        resumed = self._run(campaign_pipeline, base_model, wal, resume=True)
        assert resumed.resumed == len(TIMESTEPS)
        assert _strip_timing(resumed.rows) == _strip_timing(full.rows)

    def test_torn_journal_tail_resumes_bit_identically(
        self, campaign_pipeline, base_model, tmp_path
    ):
        full = self._run(
            campaign_pipeline, base_model, tmp_path / "full" / "journal.jsonl"
        )
        wal = tmp_path / "torn" / "journal.jsonl"
        self._run(campaign_pipeline, base_model, wal)
        # Crash-truncate the journal: the last timestep's terminal records
        # are torn away, so resume must redo exactly that timestep.
        assert chaos.torn_tail(wal, drop_records=3) > 0
        resumed = self._run(campaign_pipeline, base_model, wal, resume=True)
        assert 0 < resumed.resumed < len(TIMESTEPS)
        assert _strip_timing(resumed.rows) == _strip_timing(full.rows)
        for i in range(resumed.resumed, len(TIMESTEPS)):
            assert (
                resumed.reconstructions[i].tobytes()
                == full.reconstructions[i].tobytes()
            )


# ------------------------------- batched fine-tune: crash, resume, journal
class TestBatchedResume:
    def _run(self, campaign_pipeline, base_model, journal_path, **kwargs):
        kwargs.setdefault("warm_pool", False)
        kwargs.setdefault("pipeline", False)
        return campaign_pipeline.run_campaign(
            base_model.clone(),
            TIMESTEPS,
            0.05,
            finetune_epochs=2,
            batched_finetune=True,
            journal=journal_path,
            **kwargs,
        )

    def test_crash_then_resume_with_other_block_size_bit_identical(
        self, campaign_pipeline, base_model, tmp_path
    ):
        """Resume may regroup the remaining timesteps into different fused
        blocks — block-size invariance keeps the output bit-identical."""
        full = self._run(
            campaign_pipeline, base_model, tmp_path / "full" / "journal.jsonl"
        )

        wal = tmp_path / "crashed" / "journal.jsonl"
        schedule = FaultSchedule([Fault("process", timestep=TIMESTEPS[-1])])
        with pytest.raises(SimulatedCrash):
            self._run(
                campaign_pipeline,
                base_model,
                wal,
                finetune_batch=1,
                on_stage=schedule.fire,
            )
        assert schedule.fired

        resumed = self._run(
            campaign_pipeline, base_model, wal, finetune_batch=0, resume=True
        )
        assert resumed.resumed == len(TIMESTEPS) - 1
        assert _strip_timing(resumed.rows) == _strip_timing(full.rows)
        for i, volume in enumerate(resumed.reconstructions):
            if i < resumed.resumed:
                assert volume is None
            else:
                assert volume.tobytes() == full.reconstructions[i].tobytes()

    def test_serial_journal_rejected_by_batched_resume(
        self, campaign_pipeline, base_model, tmp_path
    ):
        from repro.resilience.journal import JournalCorruptionError

        wal = tmp_path / "journal.jsonl"
        campaign_pipeline.run_campaign(
            base_model.clone(), TIMESTEPS, 0.05, finetune_epochs=2,
            warm_pool=False, pipeline=False, journal=wal,
        )
        with pytest.raises(JournalCorruptionError, match="config"):
            self._run(campaign_pipeline, base_model, wal, resume=True)

    def test_insitu_sigterm_then_resume_byte_identical(self, tmp_path):
        data = make_dataset("combustion", dims=DIMS, seed=0)

        def writer(**kw):
            return InSituWriter(
                dataset=data,
                sampler=MultiCriteriaSampler(seed=5),
                fraction=0.05,
                train_model=True,
                train_fractions=(0.02, 0.05),
                epochs=3,
                finetune_epochs=2,
                batched_finetune=True,
                **kw,
            )

        full_dir = tmp_path / "full"
        writer().run(full_dir, TIMESTEPS, journal=True)
        reference = chaos.directory_digest(full_dir)

        target = tmp_path / "campaign"
        schedule = FaultSchedule(
            [Fault("process", timestep=TIMESTEPS[1], kind="sigterm")]
        )
        with GracefulInterrupt() as interrupt:
            with pytest.raises(CampaignInterrupted) as excinfo:
                writer(finetune_batch=1).run(
                    target,
                    TIMESTEPS,
                    journal=True,
                    interrupt=interrupt,
                    on_stage=schedule.fire,
                )
        assert schedule.fired == [("process", TIMESTEPS[1], "sigterm")]
        assert excinfo.value.next_timestep in TIMESTEPS
        # Resume with a different block size: byte-identical regardless.
        writer(finetune_batch=2).run(target, TIMESTEPS, resume=True)
        assert chaos.directory_digest(target) == reference

    def test_sharded_insitu_sigterm_then_resume_byte_identical(self, tmp_path):
        """Kill -> resume of a *sharded* campaign: per-(timestep, shard)
        checkpoints and the shard-aware journal replay stay byte-identical
        to an uninterrupted sharded run."""
        data = make_dataset("combustion", dims=DIMS, seed=0)

        def writer(**kw):
            return InSituWriter(
                dataset=data,
                sampler=MultiCriteriaSampler(seed=5),
                fraction=0.05,
                train_model=True,
                train_fractions=(0.02, 0.05),
                epochs=3,
                finetune_epochs=2,
                shards="2x1x1",
                halo=4,
                **kw,
            )

        full_dir = tmp_path / "full"
        writer().run(full_dir, TIMESTEPS, journal=True)
        reference = chaos.directory_digest(full_dir)

        target = tmp_path / "campaign"
        schedule = FaultSchedule(
            [Fault("process", timestep=TIMESTEPS[1], kind="sigterm")]
        )
        with GracefulInterrupt() as interrupt:
            with pytest.raises(CampaignInterrupted) as excinfo:
                writer().run(
                    target,
                    TIMESTEPS,
                    journal=True,
                    interrupt=interrupt,
                    on_stage=schedule.fire,
                )
        assert schedule.fired == [("process", TIMESTEPS[1], "sigterm")]
        assert excinfo.value.next_timestep in TIMESTEPS
        writer().run(target, TIMESTEPS, resume=True)
        assert chaos.directory_digest(target) == reference
        # The journal pins the shard geometry: an unsharded writer (or a
        # different decomposition) must refuse to resume this campaign.
        from repro.resilience.journal import JournalCorruptionError

        plain = InSituWriter(
            dataset=data,
            sampler=MultiCriteriaSampler(seed=5),
            fraction=0.05,
            train_model=True,
            train_fractions=(0.02, 0.05),
            epochs=3,
            finetune_epochs=2,
        )
        with pytest.raises(JournalCorruptionError, match="config"):
            plain.run(target, TIMESTEPS, resume=True)


# -------------------------------------------------- poison-timestep quarantine
class TestQuarantine:
    def test_permanent_reconstruct_fault_is_quarantined(
        self, campaign_pipeline, base_model, monkeypatch, metrics
    ):
        schedule = FaultSchedule([Fault("reconstruct", timestep=8, times=-1)])
        real_factory = make_reconstruction_sink
        monkeypatch.setattr(
            pipeline_mod,
            "make_reconstruction_sink",
            lambda *a, **k: ChaosSink(real_factory(*a, **k), schedule),
        )
        result = campaign_pipeline.run_campaign(
            base_model.clone(),
            TIMESTEPS,
            0.05,
            finetune_epochs=2,
            warm_pool=False,
            supervision=SupervisionPolicy(max_retries=1),
        )
        # The campaign completed: nothing raised, every timestep present.
        assert [row["timestep"] for row in result.rows] == list(TIMESTEPS)
        assert len(result.quarantined) == 1
        rec = result.quarantined[0]
        assert rec.timestep == 8 and rec.stage == "reconstruct"
        assert rec.attempts == 2  # max_retries=1 -> two tries before giving up
        # The degraded timestep is reported, finite, and the others clean.
        by_t = {row["timestep"]: row for row in result.rows}
        assert by_t[8]["degraded_points"] > 0
        assert by_t[0]["degraded_points"] == 0
        assert by_t[16]["degraded_points"] == 0
        assert np.isfinite(result.reconstructions[1]).all()

    def test_finetune_failure_rolls_back_and_continues(
        self, campaign_pipeline, base_model
    ):
        model = base_model.clone()
        real_fine_tune = model.fine_tune
        calls = {"n": 0}

        def flaky_fine_tune(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:  # the second timestep's fine-tune
                raise RuntimeError("optimizer exploded")
            return real_fine_tune(*args, **kwargs)

        model.fine_tune = flaky_fine_tune
        result = campaign_pipeline.run_campaign(
            model,
            TIMESTEPS,
            0.05,
            finetune_epochs=2,
            warm_pool=False,
            supervision=SupervisionPolicy(),
        )
        assert [row["timestep"] for row in result.rows] == list(TIMESTEPS)
        assert len(result.quarantined) == 1
        rec = result.quarantined[0]
        assert rec.timestep == 8 and rec.stage == "fine-tune"
        # Stale-weights degradation covers the reconstructed voids.
        by_t = {row["timestep"]: row for row in result.rows}
        assert by_t[8]["degraded_points"] > 0
        assert by_t[8]["finetune_seconds"] == 0.0

    def test_quarantine_disabled_propagates(
        self, campaign_pipeline, base_model, monkeypatch
    ):
        schedule = FaultSchedule([Fault("reconstruct", timestep=8, times=-1)])
        real_factory = make_reconstruction_sink
        monkeypatch.setattr(
            pipeline_mod,
            "make_reconstruction_sink",
            lambda *a, **k: ChaosSink(real_factory(*a, **k), schedule),
        )
        with pytest.raises(SimulatedCrash):
            campaign_pipeline.run_campaign(
                base_model.clone(),
                TIMESTEPS,
                0.05,
                finetune_epochs=2,
                warm_pool=False,
                supervision=SupervisionPolicy(max_retries=0, quarantine=False),
            )


# ------------------------------------- in situ campaigns: SIGTERM and resume
class TestInSituResume:
    @pytest.fixture(scope="class")
    def writer(self):
        data = make_dataset("combustion", dims=DIMS, seed=0)
        return InSituWriter(
            dataset=data,
            sampler=MultiCriteriaSampler(seed=5),
            fraction=0.05,
            train_model=True,
            train_fractions=(0.02, 0.05),
            epochs=3,
            finetune_epochs=2,
        )

    @pytest.fixture(scope="class")
    def reference_digest(self, writer, tmp_path_factory):
        full_dir = tmp_path_factory.mktemp("insitu-full")
        writer.run(full_dir, TIMESTEPS, journal=True)
        return chaos.directory_digest(full_dir)

    def test_sigterm_then_resume_byte_identical(
        self, writer, reference_digest, tmp_path
    ):
        target = tmp_path / "campaign"
        schedule = FaultSchedule(
            [Fault("process", timestep=TIMESTEPS[1], kind="sigterm")]
        )
        with GracefulInterrupt() as interrupt:
            with pytest.raises(CampaignInterrupted) as excinfo:
                writer.run(
                    target,
                    TIMESTEPS,
                    journal=True,
                    interrupt=interrupt,
                    on_stage=schedule.fire,
                )
        assert schedule.fired == [("process", TIMESTEPS[1], "sigterm")]
        assert excinfo.value.next_timestep in TIMESTEPS
        # The interruption left a readable partial campaign + resume manifest.
        assert (target / "manifest.json").exists()
        manifest = (target / ".wal" / "resume-manifest.json").read_text()
        assert "interrupted" in manifest

        writer.run(target, TIMESTEPS, resume=True)
        assert chaos.directory_digest(target) == reference_digest

    def test_torn_journal_then_resume_byte_identical(
        self, writer, reference_digest, tmp_path
    ):
        target = tmp_path / "campaign"
        writer.run(target, TIMESTEPS, journal=True)
        assert chaos.torn_tail(target / ".wal" / "journal.jsonl", drop_records=2) > 0
        writer.run(target, TIMESTEPS, resume=True)
        assert chaos.directory_digest(target) == reference_digest

    def test_resume_with_nothing_to_do_keeps_directory_identical(
        self, writer, reference_digest, tmp_path
    ):
        target = tmp_path / "campaign"
        writer.run(target, TIMESTEPS, journal=True)
        writer.run(target, TIMESTEPS, resume=True)
        assert chaos.directory_digest(target) == reference_digest

    def test_tampered_emitted_file_is_redone_on_resume(
        self, writer, reference_digest, tmp_path
    ):
        # The resume verifier re-hashes emitted files: a corrupted artifact
        # ends the skippable prefix and the campaign rewrites it.
        target = tmp_path / "campaign"
        writer.run(target, TIMESTEPS, journal=True)
        cloud = target / f"t{TIMESTEPS[1]:04d}.vtp"
        cloud.write_bytes(cloud.read_bytes()[:-7])
        writer.run(target, TIMESTEPS, resume=True)
        assert chaos.directory_digest(target) == reference_digest


# --------------------------------------------------- process-level shm chaos
class TestProcessFaults:
    @pytest.fixture
    def geometry(self, campaign_pipeline):
        return CampaignGeometry.from_sample(
            campaign_pipeline.sample(campaign_pipeline.field(TIMESTEPS[0]), 0.05)
        )

    def test_worker_kill_fault_recovers_bit_identically(
        self, geometry, campaign_pipeline, base_model, tmp_path
    ):
        def drive(sink):
            shell = geometry.shell()
            model = base_model.clone()
            volumes = []
            for t in TIMESTEPS:
                field = campaign_pipeline.field(t)
                geometry.refresh(shell, field)
                train = [campaign_pipeline.sample(field, f) for f in (0.02, 0.05)]
                model.fine_tune(field, train, epochs=1)
                flat = snapshot_weights(model.model).data
                slot = sink.publish(t, shell.values, {"fcnn": flat})
                volume, _report = sink.reconstruct(slot, "fcnn")
                volumes.append(volume)
            return volumes

        with LocalReconstructionSink(slots=2) as local:
            local.bind(geometry, {"fcnn": base_model.clone()})
            ref = drive(local)

        fault = chaos.WorkerKillFault(tmp_path)
        pool = WarmReconstructionPool(max_workers=2, worker_fn=fault)
        try:
            pool.bind(geometry, {"fcnn": base_model.clone()})
        except OSError:
            pool.close()
            pytest.skip("shared memory unavailable on this host")
        with pool:
            got = drive(pool)
        assert len(got) == len(TIMESTEPS)
        assert [v.tobytes() for v in got] == [v.tobytes() for v in ref]

    def test_shm_create_fault_degrades_sink_to_local(self, geometry, base_model):
        with ShmUnavailableFault(mode="create") as fault:
            sink = make_reconstruction_sink(
                geometry, {"fcnn": base_model.clone()}, warm_pool=True
            )
            try:
                assert isinstance(sink, LocalReconstructionSink)
            finally:
                sink.close()
        assert fault.fires >= 1

    def test_shm_create_fault_transport_auto_falls_back(self, campaign_pipeline):
        field = campaign_pipeline.field(TIMESTEPS[0])
        sample = campaign_pipeline.sample(field, 0.05)
        with ParallelExecutor(max_workers=2) as executor:
            ref = parallel_reconstruct(
                NearestNeighborInterpolator(), sample, executor=executor
            )
            with ShmUnavailableFault(mode="create") as fault:
                got = parallel_reconstruct(
                    NearestNeighborInterpolator(), sample, executor=executor
                )
            assert fault.fires >= 1
        assert got.tobytes() == ref.tobytes()

    def test_shm_attach_fault_hits_current_process_only(self):
        from repro.perf import shm as shm_mod

        original = shm_mod._attach
        with ShmUnavailableFault(mode="attach") as fault:
            with pytest.raises(OSError, match="injected"):
                shm_mod._attach("repro-nonexistent")
            assert fault.fires == 1
        assert shm_mod._attach is original


# ----------------------------------------------------- telemetry for gating
class TestResumeTelemetry:
    def test_resume_spans_and_counters_emitted(
        self, campaign_pipeline, base_model, tmp_path, metrics
    ):
        from repro.obs import counter
        from repro.obs import timing as obs_timing

        closed = []
        tracker = obs_timing.SpanTracker(on_close=lambda s: closed.append(s.name))
        previous = obs_timing.activate(tracker)
        try:
            wal = tmp_path / "journal.jsonl"
            campaign_pipeline.run_campaign(
                base_model.clone(), TIMESTEPS, 0.05, finetune_epochs=2,
                warm_pool=False, journal=wal,
            )
            # Fresh journaled runs already emit the plan span, so
            # resume-vs-full telemetry diffs have spans on both sides.
            assert closed.count("campaign.resume.plan") == 1
            assert counter("journal.records").value >= 4 * len(TIMESTEPS)

            campaign_pipeline.run_campaign(
                base_model.clone(), TIMESTEPS, 0.05, finetune_epochs=2,
                warm_pool=False, journal=wal, resume=True,
            )
        finally:
            obs_timing.deactivate(previous)
        assert closed.count("campaign.resume.plan") == 2
        assert counter("campaign.resume.skipped").value == len(TIMESTEPS)
