"""Unit tests for repro.grid.domain (windows, upscaling)."""

import numpy as np
import pytest

from repro.grid import DomainWindow, UniformGrid, upscaled_grid


class TestDomainWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            DomainWindow((0.5, 0, 0), (0.5, 1, 1))  # lo == hi
        with pytest.raises(ValueError):
            DomainWindow((-0.1, 0, 0), (1, 1, 1))
        with pytest.raises(ValueError):
            DomainWindow((0, 0, 0), (1, 1, 1.2))

    def test_apply_full_window_preserves_extent(self):
        g = UniformGrid((11, 11, 11), spacing=(1, 1, 1), origin=(5, 5, 5))
        w = DomainWindow((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        sub = w.apply(g, (21, 21, 21))
        assert sub.extent == g.extent
        assert sub.dims == (21, 21, 21)

    def test_apply_half_window(self):
        g = UniformGrid((11, 11, 11))  # extent 0..10 per axis
        w = DomainWindow((0.25, 0.0, 0.0), (0.75, 1.0, 1.0))
        sub = w.apply(g, (6, 11, 11))
        assert sub.extent[0] == (2.5, 7.5)

    def test_apply_single_point_axis(self):
        g = UniformGrid((11, 11, 11))
        w = DomainWindow((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        sub = w.apply(g, (1, 11, 11))
        assert sub.dims[0] == 1


class TestUpscaledGrid:
    def test_doubles_points(self):
        g = UniformGrid((10, 12, 6))
        hi = upscaled_grid(g, 2)
        assert hi.dims == (20, 24, 12)

    def test_preserves_extent_without_shift(self):
        g = UniformGrid((10, 10, 10), spacing=(1, 1, 1), origin=(3, 3, 3))
        hi = upscaled_grid(g, 2)
        np.testing.assert_allclose(np.asarray(hi.extent), np.asarray(g.extent))

    def test_shift_moves_origin(self):
        g = UniformGrid((11, 11, 11))  # extent span 10
        hi = upscaled_grid(g, 2, shift_fraction=(0.1, 0.0, 0.0))
        assert hi.origin[0] == pytest.approx(1.0)
        assert hi.origin[1] == 0.0

    def test_per_axis_factor(self):
        g = UniformGrid((4, 4, 4))
        hi = upscaled_grid(g, (2, 3, 1))
        assert hi.dims == (8, 12, 4)

    def test_rejects_factor_below_one(self):
        with pytest.raises(ValueError):
            upscaled_grid(UniformGrid((4, 4, 4)), 0)

    def test_shifted_grid_overlaps_reference(self):
        # The Fig 13 setup: the shifted high-res grid must still overlap
        # the training domain so transfer is meaningful.
        g = UniformGrid((10, 10, 10))
        hi = upscaled_grid(g, 2, shift_fraction=(0.15, 0.15, 0.0))
        lo_ext = np.asarray(g.extent)
        hi_ext = np.asarray(hi.extent)
        overlap = np.minimum(lo_ext[:, 1], hi_ext[:, 1]) - np.maximum(lo_ext[:, 0], hi_ext[:, 0])
        assert (overlap > 0).all()
