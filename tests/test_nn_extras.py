"""Tests for the extra nn pieces: HuberLoss, RMSProp, LayerNorm."""

import numpy as np
import pytest

from repro.nn import Dense, HuberLoss, LayerNorm, MSELoss, Parameter, RMSProp, Sequential
from repro.nn.network import from_spec


class TestHuberLoss:
    def test_quadratic_inside_delta(self, rng):
        loss = HuberLoss(delta=10.0)  # everything inside: behaves like 0.5*MSE
        p, t = rng.normal(size=(5, 3)), rng.normal(size=(5, 3))
        assert loss.value(p, t) == pytest.approx(0.5 * MSELoss().value(p, t))

    def test_linear_outside_delta(self):
        loss = HuberLoss(delta=1.0)
        p = np.array([[10.0]])
        t = np.array([[0.0]])
        assert loss.value(p, t) == pytest.approx(1.0 * (10.0 - 0.5))

    def test_gradient_clipped(self):
        loss = HuberLoss(delta=1.0)
        p = np.array([[100.0, -100.0, 0.5]])
        t = np.zeros((1, 3))
        g = loss.gradient(p, t) * p.size
        np.testing.assert_allclose(g, [[1.0, -1.0, 0.5]])

    def test_gradient_matches_finite_difference(self, rng):
        loss = HuberLoss(delta=0.7)
        p = rng.normal(size=(4, 2))
        t = rng.normal(size=(4, 2))
        g = loss.gradient(p, t)
        eps = 1e-6
        num = np.zeros_like(p)
        for i in range(p.size):
            pp = p.copy().ravel(); pp[i] += eps
            pm = p.copy().ravel(); pm[i] -= eps
            num.ravel()[i] = (loss.value(pp.reshape(p.shape), t) - loss.value(pm.reshape(p.shape), t)) / (2 * eps)
        np.testing.assert_allclose(g, num, atol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)


class TestRMSProp:
    def test_converges(self):
        p = Parameter(np.zeros(4))
        opt = RMSProp([p], lr=0.05)
        for _ in range(600):
            p.grad[...] = 2 * (p.value - 3.0)
            opt.step()
        np.testing.assert_allclose(p.value, 3.0, atol=1e-3)

    def test_skips_frozen(self):
        p = Parameter(np.zeros(1))
        p.trainable = False
        opt = RMSProp([p])
        p.grad[...] = 5.0
        opt.step()
        assert p.value[0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RMSProp([Parameter(np.zeros(1))], rho=1.0)


class TestLayerNorm:
    def test_normalizes_rows(self, rng):
        ln = LayerNorm(8)
        out = ln.forward(rng.normal(loc=5, scale=3, size=(10, 8)))
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-3)

    def test_gain_bias_applied(self, rng):
        ln = LayerNorm(4)
        ln.gain.value[...] = 2.0
        ln.bias.value[...] = 1.0
        out = ln.forward(rng.normal(size=(6, 4)))
        np.testing.assert_allclose(out.mean(axis=1), 1.0, atol=1e-10)

    def test_gradcheck_parameters(self, rng):
        ln = LayerNorm(5)
        loss = MSELoss()
        x = rng.normal(size=(3, 5))
        t = rng.normal(size=(3, 5))
        out = ln.forward(x)
        ln.backward(loss.gradient(out, t))
        eps = 1e-6
        for p in ln.parameters():
            numeric = np.zeros_like(p.value)
            for i in range(p.value.size):
                p.value.ravel()[i] += eps
                up = loss.value(ln.forward(x), t)
                p.value.ravel()[i] -= 2 * eps
                dn = loss.value(ln.forward(x), t)
                p.value.ravel()[i] += eps
                numeric.ravel()[i] = (up - dn) / (2 * eps)
            np.testing.assert_allclose(p.grad, numeric, atol=1e-7)

    def test_gradcheck_input(self, rng):
        ln = LayerNorm(5)
        loss = MSELoss()
        x = rng.normal(size=(3, 5))
        t = rng.normal(size=(3, 5))
        dx = ln.backward(loss.gradient(ln.forward(x), t))
        eps = 1e-6
        num = np.zeros_like(x)
        for i in range(x.size):
            xp = x.copy().ravel(); xp[i] += eps
            xm = x.copy().ravel(); xm[i] -= eps
            num.ravel()[i] = (
                loss.value(ln.forward(xp.reshape(x.shape)), t)
                - loss.value(ln.forward(xm.reshape(x.shape)), t)
            ) / (2 * eps)
        np.testing.assert_allclose(dx, num, atol=1e-7)

    def test_shape_check(self, rng):
        with pytest.raises(ValueError):
            LayerNorm(4).forward(rng.normal(size=(2, 5)))
        with pytest.raises(ValueError):
            LayerNorm(0)

    def test_spec_roundtrip(self, rng):
        net = Sequential([
            Dense(4, 6, rng=np.random.default_rng(1)),
            LayerNorm(6),
            Dense(6, 2, rng=np.random.default_rng(2)),
        ])
        rebuilt = from_spec(net.spec())
        assert rebuilt.layers[1].features == 6

    def test_checkpoint_includes_layernorm_params(self, rng, tmp_path):
        from repro.nn import load_model, save_model

        net = Sequential([
            Dense(4, 6, rng=np.random.default_rng(1)),
            LayerNorm(6),
            Dense(6, 2, rng=np.random.default_rng(2)),
        ])
        net.layers[1].gain.value[...] = rng.normal(size=6)
        path = tmp_path / "ln.npz"
        save_model(path, net)
        loaded, _ = load_model(path)
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(loaded.forward(x), net.forward(x))
