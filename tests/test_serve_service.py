"""ReconstructionServer: coalescing, stacking, backpressure, streaming."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    ModelKey,
    ReconstructionServer,
    ServeError,
    ServeRequest,
    ServerConfig,
    StaleResultError,
    TokenBucket,
)


@pytest.fixture
def keys(serve_registry):
    return serve_registry.keys()


def make_server(registry, **overrides) -> ReconstructionServer:
    defaults = dict(transport="local")
    defaults.update(overrides)
    return ReconstructionServer(registry, ServerConfig(**defaults))


class TestBasics:
    def test_serve_full_field_and_chunks(self, serve_registry, keys):
        with make_server(serve_registry) as server:
            field = server.serve(ServeRequest(key=keys[0]), timeout=60)
            ns = serve_registry.namespace(keys[0].dataset, keys[0].fraction)
            assert field.values.shape == (ns.geometry.num_samples,)
            assert field.predictions.shape == (ns.geometry.num_voids,)
            volume = field.assemble()
            assert volume.shape == ns.grid.dims
            # streamed chunks tile the predictions exactly
            streamed = np.concatenate([block for _, _, block in field.chunks()])
            assert streamed.tobytes() == field.predictions.tobytes()

    def test_chunk_request(self, serve_registry, keys):
        with make_server(serve_registry) as server:
            chunk = server.serve(ServeRequest(key=keys[0], kind="chunk", chunk=0), timeout=60)
            field = server.serve(ServeRequest(key=keys[0]), timeout=60)
            assert chunk.array().tobytes() == field.predictions[chunk.start:chunk.stop].tobytes()

    def test_served_bits_match_offline_campaign_sink(self, serve_registry, keys):
        """Acceptance: served output == the run_campaign reconstruct path."""
        from repro.perf.campaign import make_reconstruction_sink

        ns = serve_registry.namespace(keys[0].dataset, keys[0].fraction)
        sink = make_reconstruction_sink(
            ns.geometry, {"fcnn": ns.base.clone()}, warm_pool=False
        )
        try:
            with make_server(serve_registry) as server:
                for key in keys:
                    weights, values = serve_registry.hot(key)
                    slot = sink.publish(key.timestep, values, {"fcnn": weights})
                    offline, _ = sink.reconstruct(slot, "fcnn")
                    served = server.serve(ServeRequest(key=key), timeout=60)
                    assert served.assemble().tobytes() == offline.tobytes()
        finally:
            sink.close()

    def test_unknown_key_errors_the_ticket(self, serve_registry):
        with make_server(serve_registry) as server:
            ticket = server.submit(ServeRequest(key=ModelKey("nope", 0.5, 0)))
            with pytest.raises(KeyError):
                ticket.result(timeout=60)
            assert ticket.status == "error"

    def test_unknown_timestep_errors_only_that_key(self, serve_registry, keys):
        with make_server(serve_registry) as server:
            bad = server.submit(ServeRequest(key=ModelKey("combustion", 0.06, 99)))
            good = server.submit(ServeRequest(key=keys[0]))
            assert good.result(timeout=60) is not None
            with pytest.raises(KeyError):
                bad.result(timeout=60)

    def test_invalid_chunk_index_errors(self, serve_registry, keys):
        with make_server(serve_registry) as server:
            ticket = server.submit(ServeRequest(key=keys[0], kind="chunk", chunk=99))
            with pytest.raises(IndexError):
                ticket.result(timeout=60)

    def test_invalid_kind_rejected_at_construction(self, keys):
        with pytest.raises(ValueError, match="kind"):
            ServeRequest(key=keys[0], kind="firehose")


class TestCoalescingAndStacking:
    def test_same_key_requests_coalesce_into_one_eval(self, serve_registry, keys):
        with make_server(serve_registry, batch_window=0.25) as server:
            tickets = [server.submit(ServeRequest(key=keys[0])) for _ in range(6)]
            for ticket in tickets:
                assert ticket.result(timeout=60) is not None
            stats = server.stats()
            assert stats["evals"] == 1
            assert stats["coalesced"] == 5

    def test_distinct_timesteps_stack_into_one_fused_eval(self, serve_registry, keys):
        with make_server(serve_registry, batch_window=0.25) as server:
            tickets = [server.submit(ServeRequest(key=key)) for key in keys]
            for ticket in tickets:
                assert ticket.result(timeout=60) is not None
            stats = server.stats()
            assert stats["evals"] == 1
            assert stats["mean_stack_k"] == len(keys)

    def test_max_batch_splits_oversized_stacks(self, serve_registry, keys):
        with make_server(serve_registry, batch_window=0.25, max_batch=2) as server:
            tickets = [server.submit(ServeRequest(key=key)) for key in keys]
            for ticket in tickets:
                ticket.result(timeout=60)
            assert server.stats()["evals"] == 2  # 3 keys -> stacks of 2 + 1

    def test_cache_hits_complete_synchronously(self, serve_registry, keys):
        with make_server(serve_registry) as server:
            server.serve(ServeRequest(key=keys[0]), timeout=60)
            ticket = server.submit(ServeRequest(key=keys[0]))
            assert ticket.done()  # no queue round-trip
            assert ticket.status == "ok"
            assert server.stats()["hits"] == 1


class TestBackpressure:
    def test_token_bucket(self):
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: clock[0])
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()  # burst exhausted
        clock[0] += 1.0
        assert bucket.try_take()  # refilled at 1 token/s

    def test_tenant_throttling(self, serve_registry, keys):
        with make_server(
            serve_registry, tenant_rate=0.001, tenant_burst=1
        ) as server:
            first = server.submit(ServeRequest(key=keys[0], tenant="alice"))
            second = server.submit(ServeRequest(key=keys[0], tenant="alice"))
            other = server.submit(ServeRequest(key=keys[0], tenant="bob"))
            assert second.status == "throttled"
            with pytest.raises(ServeError, match="throttled"):
                second.result()
            assert first.result(timeout=60) is not None
            assert other.result(timeout=60) is not None  # per-tenant buckets

    def test_queue_bound_rejects(self, serve_registry, keys):
        with make_server(serve_registry, max_queue=1, batch_window=0.5) as server:
            tickets = [server.submit(ServeRequest(key=key)) for key in keys]
            statuses = sorted(t.status for t in tickets)
            assert "rejected" in statuses
            for ticket in tickets:
                if ticket.status != "rejected":
                    ticket.wait(60)

    def test_deadline_shedding(self, serve_registry, keys):
        with make_server(serve_registry, batch_window=0.4) as server:
            doomed = server.submit(ServeRequest(key=keys[0], deadline=0.01))
            patient = server.submit(ServeRequest(key=keys[1], deadline=60.0))
            assert patient.result(timeout=60) is not None
            doomed.wait(60)
            assert doomed.status == "shed"
            with pytest.raises(ServeError, match="shed"):
                doomed.result()
            assert server.stats()["shed"] == 1


class TestResultRing:
    def test_slot_recycling_raises_stale(self, serve_registry, keys):
        with make_server(serve_registry, cache_slots=1) as server:
            first = server.serve(ServeRequest(key=keys[0]), timeout=60)
            first.predictions  # valid while the slot is live
            server.serve(ServeRequest(key=keys[1]), timeout=60)  # recycles the slot
            with pytest.raises(StaleResultError):
                first.predictions
            with pytest.raises(StaleResultError):
                list(first.chunks())
            # re-requesting re-materializes the same bits
            again = server.serve(ServeRequest(key=keys[0]), timeout=60)
            assert again.predictions.shape[0] > 0

    def test_shm_transport_when_available(self, serve_registry, keys):
        import os

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm")
        with make_server(serve_registry, transport="shm") as server:
            field = server.serve(ServeRequest(key=keys[0]), timeout=60)
            assert np.isfinite(field.predictions).all()
            assert server.stats()["transports"] == {keys[0].namespace_id: "shm"}

    def test_local_and_shm_transports_agree_bitwise(self, serve_registry, keys):
        import os

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm")
        with make_server(serve_registry, transport="local") as server:
            local = server.serve(ServeRequest(key=keys[0]), timeout=60).assemble()
        with make_server(serve_registry, transport="shm") as server:
            shm = server.serve(ServeRequest(key=keys[0]), timeout=60).assemble()
        assert local.tobytes() == shm.tobytes()


class TestLifecycle:
    def test_close_drains_pending_tickets(self, serve_registry, keys):
        server = make_server(serve_registry, batch_window=0.2)
        tickets = [server.submit(ServeRequest(key=key)) for key in keys]
        server.close()
        for ticket in tickets:
            assert ticket.done()

    def test_submit_after_close_raises(self, serve_registry, keys):
        server = make_server(serve_registry)
        server.close()
        with pytest.raises(ServeError, match="closed"):
            server.submit(ServeRequest(key=keys[0]))

    def test_close_is_idempotent(self, serve_registry):
        server = make_server(serve_registry)
        server.close()
        server.close()

    def test_ticket_latency_recorded(self, serve_registry, keys):
        with make_server(serve_registry) as server:
            ticket = server.submit(ServeRequest(key=keys[0]))
            ticket.result(timeout=60)
            assert ticket.latency is not None
            assert ticket.latency >= 0.0
