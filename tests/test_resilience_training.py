"""Fault-injected training: bit-exact resume and NaN/Inf recovery policies."""

import numpy as np
import pytest

from repro.nn import Adam, MSELoss, Trainer, mlp
from repro.resilience import (
    CheckpointConfig,
    CheckpointCorruptionError,
    HealthGuard,
    NumericalHealthError,
)
from repro.resilience.faults import (
    KillAtEpoch,
    NaNGradientFault,
    SimulatedCrash,
    flip_bit,
)


def make_data(n=64, seed=5):
    gen = np.random.default_rng(seed)
    x = gen.normal(size=(n, 3))
    y = x.sum(axis=1, keepdims=True)
    return x, y


def make_trainer(loss=None, batch_size=16, lr=1e-2, seed=0):
    model = mlp(3, [8], 1, activation="ReLU", seed=seed)
    return Trainer(
        model,
        loss=loss,
        optimizer=Adam(model.parameters(), lr=lr),
        batch_size=batch_size,
        seed=seed,
    )


class TestResume:
    def test_killed_run_resumes_bit_exactly(self, tmp_path):
        x, y = make_data()
        epochs = 8
        ckpt = CheckpointConfig(tmp_path / "run.npz", every=3)

        reference = make_trainer()
        ref_history = reference.fit(x, y, epochs=epochs)

        crashed = make_trainer()
        with pytest.raises(SimulatedCrash):
            crashed.fit(x, y, epochs=epochs, checkpoint=ckpt, callback=KillAtEpoch(4))

        resumed = make_trainer()
        history = resumed.fit(x, y, epochs=epochs, resume_from=ckpt.path)

        # the resumed run must be indistinguishable from the uninterrupted one
        assert history.train_loss == ref_history.train_loss
        for a, b in zip(resumed.model.parameters(), reference.model.parameters()):
            np.testing.assert_array_equal(a.value, b.value)

    def test_resume_covers_full_history(self, tmp_path):
        x, y = make_data()
        ckpt = CheckpointConfig(tmp_path / "run.npz", every=2)
        first = make_trainer()
        first.fit(x, y, epochs=4, checkpoint=ckpt)
        resumed = make_trainer()
        history = resumed.fit(x, y, epochs=6, resume_from=ckpt.path)
        assert history.epochs == 6

    def test_corrupted_checkpoint_refused(self, tmp_path):
        x, y = make_data()
        ckpt = CheckpointConfig(tmp_path / "run.npz", every=1)
        make_trainer().fit(x, y, epochs=2, checkpoint=ckpt)
        flip_bit(ckpt.path, seed=1)
        with pytest.raises(CheckpointCorruptionError):
            make_trainer().fit(x, y, epochs=4, resume_from=ckpt.path)

    def test_mismatched_training_set_refused(self, tmp_path):
        x, y = make_data()
        ckpt = CheckpointConfig(tmp_path / "run.npz", every=1)
        make_trainer().fit(x, y, epochs=2, checkpoint=ckpt)
        with pytest.raises(ValueError, match="rows"):
            make_trainer().fit(x[:32], y[:32], epochs=4, resume_from=ckpt.path)

    def test_mismatched_batching_refused(self, tmp_path):
        x, y = make_data()
        ckpt = CheckpointConfig(tmp_path / "run.npz", every=1)
        make_trainer().fit(x, y, epochs=2, checkpoint=ckpt)
        with pytest.raises(ValueError, match="batch_size"):
            make_trainer(batch_size=8).fit(x, y, epochs=4, resume_from=ckpt.path)

    def test_overshooting_checkpoint_refused(self, tmp_path):
        x, y = make_data()
        ckpt = CheckpointConfig(tmp_path / "run.npz", every=1)
        make_trainer().fit(x, y, epochs=4, checkpoint=ckpt)
        with pytest.raises(ValueError, match="epochs"):
            make_trainer().fit(x, y, epochs=2, resume_from=ckpt.path)


class TestHealthPolicies:
    def test_raise_policy_aborts(self):
        x, y = make_data()
        trainer = make_trainer(loss=NaNGradientFault(MSELoss(), at_calls=(0,)))
        with pytest.raises(NumericalHealthError, match="gradient"):
            trainer.fit(x, y, epochs=2, health=HealthGuard("raise"))

    def test_skip_batch_completes(self):
        x, y = make_data()
        guard = HealthGuard("skip_batch")
        trainer = make_trainer(loss=NaNGradientFault(MSELoss(), at_calls=(0,)))
        history = trainer.fit(x, y, epochs=3, health=guard)
        assert history.epochs == 3
        assert [e.action for e in guard.events] == ["skip_batch"]
        for p in trainer.model.parameters():
            assert np.all(np.isfinite(p.value))

    def test_rollback_recovers_and_halves_lr(self):
        x, y = make_data()  # 64 rows / batch 16 -> 4 gradient calls per epoch
        guard = HealthGuard("rollback")
        trainer = make_trainer(loss=NaNGradientFault(MSELoss(), at_calls=(5,)))
        lr0 = trainer.optimizer.lr
        history = trainer.fit(x, y, epochs=4, health=guard)
        assert history.epochs == 4
        assert guard.rollbacks_used == 1
        assert trainer.optimizer.lr == pytest.approx(lr0 * guard.lr_factor)
        assert any(e.kind == "rollback" for e in guard.events)
        for p in trainer.model.parameters():
            assert np.all(np.isfinite(p.value))

    def test_rollback_budget_exhausts(self):
        x, y = make_data()
        guard = HealthGuard("rollback", max_retries=2)
        trainer = make_trainer(loss=NaNGradientFault(MSELoss(), at_calls=None))
        with pytest.raises(NumericalHealthError, match="exhausted"):
            trainer.fit(x, y, epochs=4, health=guard)
        assert guard.rollbacks_used == 2

    def test_guard_validation(self):
        with pytest.raises(ValueError):
            HealthGuard("explode")
        with pytest.raises(ValueError):
            HealthGuard("rollback", max_retries=-1)
        with pytest.raises(ValueError):
            HealthGuard("rollback", lr_factor=0.0)


class TestTrainerValidation:
    def test_batch_size(self):
        model = mlp(3, [4], 1, activation="ReLU", seed=0)
        with pytest.raises(ValueError, match="batch_size"):
            Trainer(model, batch_size=0)

    def test_empty_training_set(self):
        trainer = make_trainer()
        with pytest.raises(ValueError, match="empty"):
            trainer.fit(np.zeros((0, 3)), np.zeros((0, 1)), epochs=1)

    def test_mismatched_rows_name_shapes(self):
        trainer = make_trainer()
        with pytest.raises(ValueError, match=r"\(5, 3\).*\(4, 1\)"):
            trainer.fit(np.zeros((5, 3)), np.zeros((4, 1)), epochs=1)

    def test_non_2d_rejected(self):
        trainer = make_trainer()
        with pytest.raises(ValueError):
            trainer.fit(np.zeros(5), np.zeros(5), epochs=1)

    def test_negative_epochs_rejected(self):
        x, y = make_data(8)
        with pytest.raises(ValueError, match="epochs"):
            make_trainer(batch_size=4).fit(x, y, epochs=-1)
