"""The gate: ``src/repro`` must be clean against the committed baseline.

This is the test-suite mirror of the CI ``static-checks`` job — a rule
violation anywhere in the library fails the build here too, so the
invariants hold even for contributors who never run the workflow.
"""

from __future__ import annotations

from pathlib import Path

from repro.checks import run_checks, load_baseline

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / ".repro-checks-baseline.json"


def test_library_tree_is_clean():
    assert SRC_REPRO.is_dir(), f"unexpected layout: {SRC_REPRO} missing"
    result = run_checks([SRC_REPRO], baseline=load_baseline(BASELINE))
    assert result.files_checked > 50, "suspiciously few files scanned"
    formatted = "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
    )
    assert result.ok, f"repro.checks findings in src/repro:\n{formatted}"


def test_committed_baseline_stays_empty():
    # The baseline exists so CI can grandfather findings in an emergency,
    # but the policy is to fix or suppress instead; keep it empty.
    baseline = load_baseline(BASELINE)
    assert len(baseline) == 0, "new findings must be fixed or noqa'd, not baselined"
