"""Unit tests for repro.grid.gradients."""

import numpy as np
import pytest

from repro.grid import UniformGrid, field_gradients, gradient_magnitude


class TestFieldGradients:
    def test_linear_field_exact(self):
        g = UniformGrid((6, 5, 4), spacing=(1.0, 2.0, 0.5))
        x, y, z = g.meshgrid()
        field = 2.0 * x - 3.0 * y + 4.0 * z
        grads = field_gradients(g, field)
        np.testing.assert_allclose(grads[:, 0], 2.0)
        np.testing.assert_allclose(grads[:, 1], -3.0)
        np.testing.assert_allclose(grads[:, 2], 4.0)

    def test_constant_field_zero(self, grid):
        grads = field_gradients(grid, np.full(grid.dims, 5.0))
        np.testing.assert_allclose(grads, 0.0)

    def test_quadratic_interior(self):
        # Central differences are exact for quadratics at interior points.
        g = UniformGrid((7, 7, 7))
        x, _, _ = g.meshgrid()
        field = x**2
        grads = field_gradients(g, field).reshape(7, 7, 7, 3)
        interior = grads[1:-1, :, :, 0]
        expected = (2.0 * x)[1:-1]
        np.testing.assert_allclose(interior, expected)

    def test_accepts_flat_field(self, grid):
        x, _, _ = grid.meshgrid()
        flat = x.ravel()
        grads = field_gradients(grid, flat)
        np.testing.assert_allclose(grads[:, 0], 1.0)

    def test_single_point_axis_gets_zero(self):
        g = UniformGrid((5, 5, 1))
        x, y, _ = g.meshgrid()
        grads = field_gradients(g, x + y)
        np.testing.assert_allclose(grads[:, 2], 0.0)
        np.testing.assert_allclose(grads[:, 0], 1.0)

    def test_spacing_respected(self):
        # Same values, doubled spacing → halved gradient.
        f = np.random.default_rng(0).normal(size=(6, 6, 6))
        g1 = UniformGrid((6, 6, 6), spacing=(1, 1, 1))
        g2 = UniformGrid((6, 6, 6), spacing=(2, 2, 2))
        np.testing.assert_allclose(
            field_gradients(g1, f), 2.0 * field_gradients(g2, f)
        )

    def test_shape(self, grid, hurricane_field):
        grads = field_gradients(grid, hurricane_field.values)
        assert grads.shape == (grid.num_points, 3)

    def test_rejects_wrong_shape(self, grid):
        with pytest.raises(ValueError):
            field_gradients(grid, np.zeros((3, 3, 3)))


class TestGradientMagnitude:
    def test_magnitude_of_linear_field(self):
        g = UniformGrid((5, 5, 5))
        x, y, z = g.meshgrid()
        mag = gradient_magnitude(g, 3.0 * x + 4.0 * y)
        np.testing.assert_allclose(mag, 5.0)

    def test_non_negative(self, grid, hurricane_field):
        mag = gradient_magnitude(grid, hurricane_field.values)
        assert (mag >= 0).all()

    def test_highlights_front(self):
        # A step-like field has its largest gradient at the step.
        g = UniformGrid((20, 4, 4))
        x, _, _ = g.meshgrid()
        field = np.tanh((x - 10.0) / 1.5)
        mag = gradient_magnitude(g, field).reshape(g.dims)
        peak_x = np.unravel_index(np.argmax(mag), g.dims)[0]
        assert 8 <= peak_x <= 12
