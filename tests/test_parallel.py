"""Unit tests for domain decomposition and parallel reconstruction."""

import numpy as np
import pytest

from repro.grid import UniformGrid
from repro.interpolation import DelaunayLinearInterpolator, NearestNeighborInterpolator
from repro.parallel import ParallelExecutor, chunk_indices, parallel_reconstruct, split_grid


class TestChunkIndices:
    def test_covers_range(self):
        chunks = chunk_indices(100, 7)
        joined = np.concatenate(chunks)
        np.testing.assert_array_equal(joined, np.arange(100))

    def test_balanced(self):
        chunks = chunk_indices(100, 7)
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        chunks = chunk_indices(3, 10)
        assert sum(len(c) for c in chunks) == 3
        assert all(len(c) > 0 for c in chunks)

    def test_empty(self):
        assert chunk_indices(0, 4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_indices(10, 0)
        with pytest.raises(ValueError):
            chunk_indices(-1, 2)


class TestSplitGrid:
    def test_partitions_all_points(self, grid):
        chunks = split_grid(grid, 4)
        joined = np.sort(np.concatenate([c.flat_indices for c in chunks]))
        np.testing.assert_array_equal(joined, np.arange(grid.num_points))

    def test_default_axis_is_longest(self, grid):
        chunks = split_grid(grid, 2)
        assert chunks[0].axis == int(np.argmax(grid.dims))

    def test_explicit_axis(self, grid):
        chunks = split_grid(grid, 2, axis=2)
        assert all(c.axis == 2 for c in chunks)

    def test_slabs_are_contiguous(self, grid):
        chunks = split_grid(grid, 3, axis=0)
        stops = [c.stop for c in chunks]
        starts = [c.start for c in chunks]
        assert starts[0] == 0 and stops[-1] == grid.dims[0]
        assert starts[1:] == stops[:-1]

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            split_grid(grid, 0)
        with pytest.raises(ValueError):
            split_grid(grid, 2, axis=5)


class TestParallelExecutor:
    def test_serial_map(self):
        ex = ParallelExecutor(max_workers=1)
        assert ex.map(lambda v: v * 2, [1, 2, 3]) == [2, 4, 6]

    def test_empty(self):
        assert ParallelExecutor().map(len, []) == []

    def test_order_preserved(self):
        ex = ParallelExecutor(max_workers=2)
        out = ex.map(_square, list(range(20)))
        assert out == [v * v for v in range(20)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=0)


def _square(v):
    return v * v


class TestParallelReconstruct:
    def test_matches_serial(self, sample):
        interp = DelaunayLinearInterpolator()
        serial = interp.reconstruct(sample)
        chunked = parallel_reconstruct(
            interp, sample, executor=ParallelExecutor(max_workers=1), num_chunks=4
        )
        np.testing.assert_allclose(chunked, serial)

    def test_nearest_matches_serial_multichunk(self, sample):
        interp = NearestNeighborInterpolator()
        serial = interp.reconstruct(sample)
        chunked = parallel_reconstruct(
            interp, sample, executor=ParallelExecutor(max_workers=1), num_chunks=7
        )
        np.testing.assert_allclose(chunked, serial)

    def test_target_grid(self, sample):
        target = sample.grid.with_resolution((6, 6, 4))
        out = parallel_reconstruct(
            NearestNeighborInterpolator(),
            sample,
            target_grid=target,
            executor=ParallelExecutor(max_workers=1),
        )
        assert out.shape == (6, 6, 4)
        assert np.isfinite(out).all()

    def test_sampled_points_exact(self, sample):
        out = parallel_reconstruct(
            NearestNeighborInterpolator(), sample, executor=ParallelExecutor(max_workers=1)
        ).ravel()
        np.testing.assert_allclose(out[sample.indices], sample.values)
