"""Tests for the datasets' additional physical attributes."""

import numpy as np
import pytest

from repro.datasets import CombustionDataset, HurricaneDataset, IonizationDataset


def small(cls, dims=(20, 20, 8)):
    return cls(grid=cls.default_grid().with_resolution(dims), seed=0)


class TestAttributeContract:
    @pytest.mark.parametrize("cls", [HurricaneDataset, CombustionDataset, IonizationDataset])
    def test_all_attributes_evaluate(self, cls):
        data = small(cls)
        for a in data.attributes:
            f = data.field(t=5, attribute=a)
            assert f.values.shape == data.grid.dims
            assert np.isfinite(f.values).all()
            assert f.name == a

    @pytest.mark.parametrize("cls", [HurricaneDataset, CombustionDataset, IonizationDataset])
    def test_default_attribute_first(self, cls):
        assert cls.attribute == cls.attributes[0]

    @pytest.mark.parametrize("cls", [HurricaneDataset, CombustionDataset, IonizationDataset])
    def test_unknown_attribute_rejected(self, cls):
        data = small(cls)
        with pytest.raises(ValueError, match="no attribute"):
            data.field(t=0, attribute="entropy")

    @pytest.mark.parametrize("cls", [HurricaneDataset, CombustionDataset, IonizationDataset])
    def test_attributes_are_distinct_fields(self, cls):
        data = small(cls)
        fields = [data.field(t=10, attribute=a).values for a in data.attributes]
        for i in range(len(fields)):
            for j in range(i + 1, len(fields)):
                assert not np.allclose(fields[i], fields[j])


class TestHurricaneAttributes:
    def test_warm_core_at_eye(self):
        data = small(HurricaneDataset, dims=(40, 40, 8))
        t = 24
        temp = data.field(t=t, attribute="temperature").values
        cx, cy = data._eye_center(data.time_fraction(t))
        ix, iy = int(round(cx * 39)), int(round(cy * 39))
        mid = temp.shape[2] // 2
        eye_temp = temp[ix, iy, mid]
        ambient = np.median(temp[:, :, mid])
        assert eye_temp > ambient + 1.0  # warm core

    def test_calm_eye_windy_ring(self):
        data = small(HurricaneDataset, dims=(40, 40, 8))
        t = 24
        wind = data.field(t=t, attribute="wind_speed").values[:, :, 0]
        cx, cy = data._eye_center(data.time_fraction(t))
        ix, iy = int(round(cx * 39)), int(round(cy * 39))
        assert wind.max() > wind[ix, iy] + 15.0  # ring of max winds >> eye

    def test_temperature_decreases_with_altitude(self):
        data = small(HurricaneDataset)
        temp = data.field(t=0, attribute="temperature").values
        assert temp[:, :, 0].mean() > temp[:, :, -1].mean()


class TestCombustionAttributes:
    def test_flame_temperature_range(self):
        data = small(CombustionDataset)
        temp = data.field(t=60, attribute="temperature").values
        assert temp.min() >= 300.0 - 1e-9
        assert 1800.0 < temp.max() <= 2200.0 + 1e-9

    def test_temperature_peaks_at_stoichiometric(self):
        data = small(CombustionDataset)
        mix = data.field(t=60, attribute="mixfrac").values
        temp = data.field(t=60, attribute="temperature").values
        hottest = np.unravel_index(np.argmax(temp), temp.shape)
        assert abs(mix[hottest] - 0.4) < 0.1

    def test_product_bounded(self):
        data = small(CombustionDataset)
        prod = data.field(t=60, attribute="product").values
        assert prod.min() >= 0.0 and prod.max() <= 1.0


class TestIonizationAttributes:
    def test_ionization_fraction_bounds(self):
        data = small(IonizationDataset)
        ion = data.field(t=100, attribute="ionization_fraction").values
        assert -1e-9 <= ion.min() and ion.max() <= 1.0 + 1e-9

    def test_ionized_region_hot(self):
        data = small(IonizationDataset, dims=(40, 12, 12))
        t = 100
        ion = data.field(t=t, attribute="ionization_fraction").values
        temp = data.field(t=t, attribute="temperature").values
        hot = temp[ion > 0.9]
        cold = temp[ion < 0.1]
        # Cold side includes the shock-heated shell, so compare to 10x
        # rather than the raw photoheating contrast (~100x).
        assert hot.mean() > 10 * cold.mean()

    def test_fraction_anticorrelates_with_density(self):
        data = small(IonizationDataset, dims=(40, 12, 12))
        ion = data.field(t=100, attribute="ionization_fraction").flat
        dens = data.field(t=100, attribute="density").flat
        assert np.corrcoef(ion, dens)[0, 1] < -0.5
