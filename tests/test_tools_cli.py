"""Tests for the file-based tools and their CLI plumbing."""

import numpy as np
import pytest

from repro.cli import main
from repro.io import read_vti, read_vtp
from repro import tools


@pytest.fixture
def volume_file(tmp_path):
    path = tmp_path / "vol.vti"
    tools.cmd_generate("hurricane", str(path), dims=(14, 14, 6), timestep=0, seed=0)
    return path


@pytest.fixture
def cloud_file(tmp_path, volume_file):
    path = tmp_path / "cloud.vtp"
    tools.cmd_sample(str(volume_file), str(path), fraction=0.08)
    return path


class TestGenerate:
    def test_writes_volume(self, volume_file):
        grid, data = read_vti(volume_file)
        assert grid.dims == (14, 14, 6)
        assert "pressure" in data

    def test_unknown_dataset(self, tmp_path):
        with pytest.raises(ValueError):
            tools.cmd_generate("tsunami", str(tmp_path / "x.vti"))


class TestSample:
    def test_writes_cloud(self, cloud_file, volume_file):
        grid, _ = read_vti(volume_file)
        points, data = read_vtp(cloud_file)
        assert len(points) == int(round(0.08 * grid.num_points))
        assert "scalar" in data and "flat_index" in data

    def test_each_sampler(self, tmp_path, volume_file):
        for name in tools.SAMPLERS:
            out = tmp_path / f"{name}.vtp"
            msg = tools.cmd_sample(str(volume_file), str(out), fraction=0.05, sampler=name)
            assert out.exists(), msg

    def test_unknown_sampler(self, tmp_path, volume_file):
        with pytest.raises(ValueError):
            tools.cmd_sample(str(volume_file), str(tmp_path / "x.vtp"), 0.05, sampler="magic")

    def test_unknown_array(self, tmp_path, volume_file):
        with pytest.raises(ValueError):
            tools.cmd_sample(str(volume_file), str(tmp_path / "x.vtp"), 0.05, array="nope")


class TestReconstructEvaluate:
    def test_linear_roundtrip(self, tmp_path, volume_file, cloud_file):
        out = tmp_path / "recon.vti"
        tools.cmd_reconstruct(str(cloud_file), str(volume_file), str(out), method="linear")
        grid, data = read_vti(out)
        assert "scalar" in data
        msg = tools.cmd_evaluate(str(volume_file), str(out))
        assert "snr=" in msg

    def test_fcnn_requires_model(self, tmp_path, volume_file, cloud_file):
        with pytest.raises(ValueError):
            tools.cmd_reconstruct(
                str(cloud_file), str(volume_file), str(tmp_path / "r.vti"), method="fcnn"
            )

    def test_train_then_fcnn_reconstruct(self, tmp_path, volume_file, cloud_file):
        model = tmp_path / "m.npz"
        tools.cmd_train(str(volume_file), str(model), epochs=4, hidden=(16, 8),
                        fractions=(0.05, 0.10))
        out = tmp_path / "r.vti"
        msg = tools.cmd_reconstruct(
            str(cloud_file), str(volume_file), str(out), method="fcnn", model=str(model)
        )
        assert out.exists(), msg

    def test_evaluate_grid_mismatch(self, tmp_path, volume_file):
        other = tmp_path / "other.vti"
        tools.cmd_generate("hurricane", str(other), dims=(10, 10, 4))
        with pytest.raises(ValueError):
            tools.cmd_evaluate(str(volume_file), str(other))


class TestRender:
    @pytest.mark.parametrize("mode", ["mip", "mean", "slice"])
    def test_modes(self, tmp_path, volume_file, mode):
        out = tmp_path / f"{mode}.pgm"
        tools.cmd_render(str(volume_file), str(out), mode=mode)
        assert out.read_bytes().startswith(b"P5\n")

    def test_bad_mode(self, tmp_path, volume_file):
        with pytest.raises(ValueError):
            tools.cmd_render(str(volume_file), str(tmp_path / "x.pgm"), mode="raytrace")


class TestCLIDispatch:
    def test_generate_via_cli(self, tmp_path, capsys):
        out = tmp_path / "v.vti"
        code = main(["generate", "hurricane", str(out), "--dims", "10", "10", "4"])
        assert code == 0 and out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_full_cli_workflow(self, tmp_path, capsys):
        vol = tmp_path / "v.vti"
        cloud = tmp_path / "c.vtp"
        recon = tmp_path / "r.vti"
        assert main(["generate", "hurricane", str(vol), "--dims", "10", "10", "4"]) == 0
        assert main(["sample", str(vol), str(cloud), "--fraction", "0.1"]) == 0
        assert main(["reconstruct", str(cloud), str(vol), str(recon)]) == 0
        assert main(["evaluate", str(vol), str(recon)]) == 0
        out = capsys.readouterr().out
        assert "snr=" in out

    def test_cli_error_exit_code(self, tmp_path, capsys):
        code = main(["sample", str(tmp_path / "missing.vti"), "x.vtp", "--fraction", "0.1"])
        assert code == 1

    def test_experiments_still_routed(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ext-uncertainty" in out
