"""Unit tests for the 3D SSIM metric."""

import numpy as np
import pytest

from repro.metrics import ssim3d
from repro.metrics.ssim import _box_mean


class TestBoxMean:
    def test_matches_direct_convolution(self, rng):
        v = rng.normal(size=(6, 7, 8))
        bm = _box_mean(v, 3)
        pad = np.pad(v, 1, mode="edge")
        direct = np.empty_like(v)
        for i in range(6):
            for j in range(7):
                for k in range(8):
                    direct[i, j, k] = pad[i : i + 3, j : j + 3, k : k + 3].mean()
        np.testing.assert_allclose(bm, direct, atol=1e-12)

    def test_window_one_is_identity(self, rng):
        v = rng.normal(size=(4, 4, 4))
        np.testing.assert_allclose(_box_mean(v, 1), v)

    def test_constant_volume(self):
        v = np.full((5, 5, 5), 3.0)
        np.testing.assert_allclose(_box_mean(v, 3), 3.0)


class TestSSIM:
    def test_identical_is_one(self, rng):
        v = rng.normal(size=(8, 8, 8))
        assert ssim3d(v, v.copy()) == pytest.approx(1.0)

    def test_decreases_with_noise(self, rng):
        v = rng.normal(size=(10, 10, 10))
        low = ssim3d(v, v + 0.05 * rng.normal(size=v.shape))
        high = ssim3d(v, v + 1.0 * rng.normal(size=v.shape))
        assert low > high

    def test_unrelated_near_zero(self, rng):
        a = rng.normal(size=(10, 10, 10))
        b = rng.normal(size=(10, 10, 10))
        assert abs(ssim3d(a, b)) < 0.2

    def test_constant_fields_equal(self):
        a = np.full((6, 6, 6), 4.0)
        assert ssim3d(a, a.copy()) == pytest.approx(1.0)

    def test_blur_penalized(self, rng):
        # SSIM must penalize structure loss even at matched means.
        v = rng.normal(size=(12, 12, 12))
        blurred = _box_mean(v, 5)
        assert ssim3d(v, blurred) < 0.9

    def test_validation(self, rng):
        v = rng.normal(size=(6, 6, 6))
        with pytest.raises(ValueError):
            ssim3d(v, v[:-1])
        with pytest.raises(ValueError):
            ssim3d(v.ravel(), v.ravel())
        with pytest.raises(ValueError):
            ssim3d(v, v, window=4)
        with pytest.raises(ValueError):
            ssim3d(v, v, window=7)  # larger than the volume

    def test_bounded(self, rng):
        a = rng.normal(size=(8, 8, 8))
        b = -a
        s = ssim3d(a, b)
        assert -1.0 - 1e-9 <= s <= 1.0 + 1e-9
