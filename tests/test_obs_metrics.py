"""Counter/gauge/histogram semantics and the snapshot/reset registry API."""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics as metrics_mod
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    activate,
    active_registry,
    counter,
    deactivate,
    gauge,
    histogram,
)


@pytest.fixture(autouse=True)
def _clean_registry_state():
    assert active_registry() is None
    yield
    deactivate(None)


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError, match="negative"):
            c.inc(-1)

    def test_gauge_last_value_wins(self):
        g = Gauge("loss")
        assert g.value is None
        g.set(0.5)
        g.set(0.25)
        assert g.value == 0.25

    def test_histogram_streaming_summary(self):
        h = Histogram("seconds")
        assert h.mean is None
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.summary() == {"count": 3, "total": 6.0, "mean": 2.0, "min": 1.0, "max": 3.0}


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a") is not reg.counter("b")

    def test_separate_namespaces_per_kind(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.gauge("x").set(2.0)
        reg.histogram("x").observe(3.0)
        snap = reg.snapshot()
        assert snap["counters"]["x"] == 1
        assert snap["gauges"]["x"] == 2.0
        assert snap["histograms"]["x"]["count"] == 1

    def test_snapshot_is_json_able_and_sorted(self):
        reg = MetricsRegistry()
        for name in ("zebra", "alpha"):
            reg.counter(name).inc()
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["counters"]) == ["alpha", "zebra"]

    def test_reset_zeroes_in_place(self):
        reg = MetricsRegistry()
        held_counter = reg.counter("kept")
        held_hist = reg.histogram("kept")
        held_counter.inc(7)
        held_hist.observe(1.5)
        reg.reset()
        # same objects, zeroed, still registered
        assert held_counter.value == 0
        assert held_hist.count == 0 and held_hist.min is None
        assert reg.counter("kept") is held_counter
        held_counter.inc()
        assert reg.snapshot()["counters"]["kept"] == 1


class TestModuleHelpers:
    def test_disabled_helpers_share_one_noop(self):
        assert counter("a") is counter("b") is gauge("c") is histogram("d")
        # and the no-op absorbs every instrument method
        counter("a").inc(5)
        gauge("c").set(1.0)
        histogram("d").observe(2.0)

    def test_active_registry_receives_writes(self):
        reg = MetricsRegistry()
        previous = activate(reg)
        try:
            counter("train.batches").inc(3)
            gauge("train.loss").set(0.125)
            histogram("epoch.seconds").observe(0.5)
        finally:
            deactivate(previous)
        snap = reg.snapshot()
        assert snap["counters"]["train.batches"] == 3
        assert snap["gauges"]["train.loss"] == 0.125
        assert snap["histograms"]["epoch.seconds"]["count"] == 1
        # after deactivation, writes go nowhere
        counter("train.batches").inc(100)
        assert reg.snapshot()["counters"]["train.batches"] == 3

    def test_noop_is_shared_singleton(self):
        assert counter("anything") is metrics_mod._NULL
