"""SARIF 2.1.0 output: structure, levels, fingerprints, CLI integration."""

from __future__ import annotations

import json

from repro.checks import ALL_RULES, Finding, format_sarif, sarif_report
from repro.checks.cli import main as checks_main

FINDINGS = [
    Finding("src/a.py", 3, 4, "THR001", "unlocked write", symbol="worker",
            severity="error"),
    Finding("src/b.py", 9, 0, "ALS002", "arena escape", severity="warning"),
    Finding("src/c.py", 1, 0, "NOQA001", "unknown code", severity="note"),
]


def test_report_toplevel_shape():
    log = sarif_report(FINDINGS, ALL_RULES)
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    assert len(log["runs"]) == 1
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-checks"
    assert len(run["results"]) == len(FINDINGS)


def test_every_battery_rule_is_described():
    run = sarif_report([], ALL_RULES)["runs"][0]
    described = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert described == {cls.id for cls in ALL_RULES}
    for descriptor in run["tool"]["driver"]["rules"]:
        assert descriptor["shortDescription"]["text"]
        assert descriptor["defaultConfiguration"]["level"] in (
            "error", "warning", "note",
        )


def test_severity_maps_to_sarif_level():
    results = sarif_report(FINDINGS, ALL_RULES)["runs"][0]["results"]
    by_rule = {r["ruleId"]: r for r in results}
    assert by_rule["THR001"]["level"] == "error"
    assert by_rule["ALS002"]["level"] == "warning"
    assert by_rule["NOQA001"]["level"] == "note"


def test_locations_are_one_based():
    result = sarif_report(FINDINGS, ALL_RULES)["runs"][0]["results"][0]
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 3
    assert region["startColumn"] == 5  # finding col 4 is 0-based


def test_pseudo_rules_get_synthesized_descriptors():
    # NOQA001 is not in the battery, but its result's ruleId must resolve.
    run = sarif_report(FINDINGS, ALL_RULES)["runs"][0]
    described = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "NOQA001" in described


def test_fingerprint_is_stable_across_line_drift():
    a = Finding("src/a.py", 3, 4, "THR001", "unlocked write", severity="error")
    b = Finding("src/a.py", 300, 0, "THR001", "unlocked write", severity="error")
    fp = lambda f: sarif_report([f])["runs"][0]["results"][0]["partialFingerprints"]
    assert fp(a) == fp(b)


def test_cli_sarif_format(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import numpy as np\n\nrng = np.random.default_rng()\n")
    assert checks_main([str(dirty), "--format", "sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    results = log["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["RNG002"]


def test_cli_sarif_clean_run_has_empty_results(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert checks_main([str(clean), "--format", "sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["runs"][0]["results"] == []


def test_format_sarif_is_valid_json():
    parsed = json.loads(format_sarif(FINDINGS, ALL_RULES))
    assert parsed == sarif_report(FINDINGS, ALL_RULES)
