"""Duplicate-registration guards on the interpolator and dataset registries."""

from __future__ import annotations

import pytest

from repro.datasets import registry as dataset_registry
from repro.datasets.base import AnalyticDataset
from repro.interpolation import registry as interp_registry
from repro.interpolation.nearest import NearestNeighborInterpolator


def test_register_interpolator_duplicate_names_both_entries():
    with pytest.raises(ValueError) as exc:
        interp_registry.register_interpolator("nearest", NearestNeighborInterpolator)
    msg = str(exc.value)
    assert "'nearest'" in msg
    assert "already registered" in msg
    # Both colliding factories are identifiable from the message alone.
    assert msg.count("NearestNeighborInterpolator") >= 2


def test_register_interpolator_new_name_roundtrips():
    name = "test-only-nearest"
    assert name not in interp_registry.INTERPOLATORS
    try:
        interp_registry.register_interpolator(name, NearestNeighborInterpolator)
        assert name in interp_registry.available_interpolators()
        made = interp_registry.make_interpolator(name)
        assert isinstance(made, NearestNeighborInterpolator)
    finally:
        interp_registry.INTERPOLATORS.pop(name, None)


def test_register_dataset_duplicate_names_both_entries():
    class FakeHurricane(AnalyticDataset):
        name = "hurricane"

    with pytest.raises(ValueError) as exc:
        dataset_registry.register_dataset(FakeHurricane)
    msg = str(exc.value)
    assert "'hurricane'" in msg
    assert "already registered" in msg
    assert "HurricaneDataset" in msg and "FakeHurricane" in msg


def test_register_dataset_acts_as_decorator():
    try:

        @dataset_registry.register_dataset
        class TestOnlyDataset(AnalyticDataset):
            name = "test-only-dataset"

        assert dataset_registry.DATASETS["test-only-dataset"] is TestOnlyDataset
        assert "test-only-dataset" in dataset_registry.available_datasets()
    finally:
        dataset_registry.DATASETS.pop("test-only-dataset", None)


def test_seeded_registries_are_intact():
    assert set(dataset_registry.available_datasets()) >= {
        "hurricane",
        "combustion",
        "ionization",
    }
    assert set(interp_registry.available_interpolators()) >= {
        "nearest",
        "shepard",
        "linear",
        "natural",
        "rbf",
    }
