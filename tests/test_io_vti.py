"""Unit tests for VTK XML ImageData (.vti) I/O."""

import numpy as np
import pytest

from repro.grid import UniformGrid
from repro.io import read_vti, write_vti


@pytest.fixture
def vti_grid():
    return UniformGrid((5, 4, 3), spacing=(0.5, 1.0, 2.0), origin=(1.0, -2.0, 3.0))


@pytest.fixture
def field(vti_grid, rng):
    return rng.normal(size=vti_grid.dims)


class TestRoundtrip:
    @pytest.mark.parametrize("binary", [True, False], ids=["binary", "ascii"])
    def test_scalar_roundtrip(self, tmp_path, vti_grid, field, binary):
        path = tmp_path / "f.vti"
        write_vti(path, vti_grid, {"pressure": field}, binary=binary)
        grid2, data = read_vti(path)
        assert grid2 == vti_grid
        np.testing.assert_allclose(data["pressure"], field)

    def test_flat_field_accepted(self, tmp_path, vti_grid, field):
        path = tmp_path / "f.vti"
        write_vti(path, vti_grid, {"v": field.ravel()})
        _, data = read_vti(path)
        np.testing.assert_allclose(data["v"], field)

    def test_multiple_arrays(self, tmp_path, vti_grid, field):
        path = tmp_path / "f.vti"
        write_vti(path, vti_grid, {"a": field, "b": field * 2})
        _, data = read_vti(path)
        assert set(data) == {"a", "b"}
        np.testing.assert_allclose(data["b"], 2 * field)

    def test_vector_array_roundtrip(self, tmp_path, vti_grid, rng):
        vec = rng.normal(size=(vti_grid.num_points, 3))
        path = tmp_path / "f.vti"
        write_vti(path, vti_grid, {"grad": vec})
        _, data = read_vti(path)
        np.testing.assert_allclose(data["grad"], vec)

    def test_float32_preserved(self, tmp_path, vti_grid, field):
        path = tmp_path / "f.vti"
        write_vti(path, vti_grid, {"v": field.astype(np.float32)})
        _, data = read_vti(path)
        assert data["v"].dtype == np.float32

    def test_integer_array(self, tmp_path, vti_grid):
        ints = np.arange(vti_grid.num_points, dtype=np.int64).reshape(vti_grid.dims)
        path = tmp_path / "f.vti"
        write_vti(path, vti_grid, {"ids": ints})
        _, data = read_vti(path)
        np.testing.assert_array_equal(data["ids"], ints)

    def test_empty_point_data(self, tmp_path, vti_grid):
        path = tmp_path / "f.vti"
        write_vti(path, vti_grid, {})
        grid2, data = read_vti(path)
        assert grid2 == vti_grid and data == {}


class TestFormat:
    def test_is_valid_xml_with_vtk_header(self, tmp_path, vti_grid, field):
        path = tmp_path / "f.vti"
        write_vti(path, vti_grid, {"v": field})
        text = path.read_text()
        assert "<VTKFile" in text and 'type="ImageData"' in text

    def test_point_order_is_x_fastest(self, tmp_path):
        # VTK convention: x varies fastest in the serialized stream.
        grid = UniformGrid((2, 2, 2))
        vol = np.arange(8, dtype=np.float64).reshape(2, 2, 2)  # C order, z fastest
        path = tmp_path / "f.vti"
        write_vti(path, grid, {"v": vol}, binary=False)
        text = path.read_text()
        line = [l for l in text.splitlines() if 'Name="v"' in l][0]
        # After transpose: first two serialized values step in x: vol[0,0,0], vol[1,0,0]
        values = [float(tok) for tok in line.split(">")[1].split("<")[0].split()]
        assert values[0] == vol[0, 0, 0] and values[1] == vol[1, 0, 0]

    def test_read_rejects_non_vti(self, tmp_path):
        path = tmp_path / "bad.vti"
        path.write_text("<VTKFile type='PolyData'><PolyData/></VTKFile>")
        with pytest.raises(ValueError):
            read_vti(path)

    def test_rejects_mismatched_field(self, tmp_path, vti_grid):
        with pytest.raises(ValueError):
            write_vti(tmp_path / "f.vti", vti_grid, {"v": np.zeros((2, 2, 2))})
