"""Tests for experiment-runner plumbing not covered elsewhere."""

import numpy as np
import pytest

from repro.experiments.config import get_config
from repro.experiments.runner import (
    ExperimentResult,
    build_pipeline,
    build_reconstructor,
    test_samples as draw_test_samples,
    timed,
)

CFG = get_config("quick", dims=(10, 10, 4))


class TestBuilders:
    def test_build_pipeline_uses_config(self):
        pipeline = build_pipeline(CFG)
        assert pipeline.dataset.grid.dims == (10, 10, 4)
        assert pipeline.train_fractions == CFG.train_fractions

    def test_build_pipeline_dataset_override(self):
        pipeline = build_pipeline(CFG, dataset="combustion")
        assert pipeline.dataset.name == "combustion"

    def test_build_reconstructor_overrides(self):
        fcnn = build_reconstructor(CFG, hidden_layers=(4,), include_gradients=False)
        assert fcnn.hidden_layers == (4,)
        assert not fcnn.extractor.include_gradients

    def test_test_samples_independent_of_training_draws(self):
        pipeline = build_pipeline(CFG)
        field = pipeline.field(0)
        train = pipeline.sample(field, 0.05)
        test = draw_test_samples(pipeline, field, (0.05,), CFG)[0.05]
        assert not np.array_equal(train.indices, test.indices)

    def test_timed(self):
        value, seconds = timed(sum, [1, 2, 3])
        assert value == 6 and seconds >= 0.0


class TestExperimentResult:
    def test_format_includes_notes_and_rows(self):
        res = ExperimentResult(
            experiment="demo",
            rows=[{"a": 1.0, "b": 2}],
            notes={"profile": "quick"},
        )
        text = res.format()
        assert "demo" in text and "profile: quick" in text and "a" in text

    def test_format_without_rows(self):
        res = ExperimentResult(experiment="empty")
        assert "empty" in res.format()


class TestCLIExperimentPath:
    def test_dataset_and_seed_overrides(self, capsys):
        from repro.cli import main

        code = main([
            "fig7", "--profile", "quick", "--epochs", "2",
            "--dataset", "combustion", "--seed", "11",
        ])
        assert code == 0
        assert "fig07-train-mix" in capsys.readouterr().out
