"""Span trees, the @timed decorator, and the disabled-mode no-op guarantees."""

from __future__ import annotations

import time

import pytest

from repro.obs import timing
from repro.obs.timing import SpanTracker, activate, active_tracker, deactivate, span, timed


@pytest.fixture(autouse=True)
def _clean_tracker_state():
    """Every test starts and ends with observability off."""
    assert active_tracker() is None
    yield
    deactivate(None)


class TestSpanTracker:
    def test_nested_spans_build_a_tree(self):
        tracker = SpanTracker()
        previous = activate(tracker)
        try:
            with span("outer", size=3) as outer:
                with span("inner.a"):
                    pass
                with span("inner.b"):
                    pass
        finally:
            deactivate(previous)

        assert [root.name for root in tracker.roots] == ["outer"]
        assert [child.name for child in outer.children] == ["inner.a", "inner.b"]
        assert outer.attrs == {"size": 3}
        assert all(child.parent_id == outer.id for child in outer.children)
        assert outer.closed and all(c.closed for c in outer.children)
        # children's time is contained in the parent's
        assert outer.wall >= max(c.wall for c in outer.children)
        assert tracker.depth == 0

    def test_sibling_spans_after_close_become_new_roots(self):
        tracker = SpanTracker()
        with tracker.span("first"):
            pass
        with tracker.span("second"):
            pass
        assert [r.name for r in tracker.roots] == ["first", "second"]

    def test_wall_and_cpu_clocks_recorded(self):
        tracker = SpanTracker()
        with tracker.span("sleepy"):
            time.sleep(0.01)
        node = tracker.roots[0]
        assert node.wall >= 0.01
        assert node.cpu >= 0.0  # sleep burns no CPU; must still be filled in

    def test_out_of_order_close_raises(self):
        tracker = SpanTracker()
        first = tracker.open("first")
        tracker.open("second")
        with pytest.raises(RuntimeError, match="out of order"):
            tracker.close(first)

    def test_exception_marks_span_and_propagates(self):
        tracker = SpanTracker()
        previous = activate(tracker)
        try:
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        finally:
            deactivate(previous)
        node = tracker.roots[0]
        assert node.closed
        assert node.attrs["error"] == "ValueError"

    def test_open_close_callbacks_stream(self):
        opened, closed = [], []
        tracker = SpanTracker(on_open=lambda s: opened.append(s.name),
                              on_close=lambda s: closed.append(s.name))
        with tracker.span("a"):
            with tracker.span("b"):
                pass
        assert opened == ["a", "b"]
        assert closed == ["b", "a"]  # LIFO


class TestTimedDecorator:
    def test_defaults_to_qualname(self):
        @timed()
        def compute(x):
            return x * 2

        tracker = SpanTracker()
        previous = activate(tracker)
        try:
            assert compute(21) == 42
        finally:
            deactivate(previous)
        assert len(tracker.roots) == 1
        assert "compute" in tracker.roots[0].name

    def test_explicit_name_and_no_tracker_bypass(self):
        calls = []

        @timed("custom.op")
        def work():
            calls.append(active_tracker())
            return "ok"

        # disabled: the function runs with no span machinery at all
        assert work() == "ok"
        assert calls == [None]

        tracker = SpanTracker()
        previous = activate(tracker)
        try:
            work()
        finally:
            deactivate(previous)
        assert tracker.roots[0].name == "custom.op"


class TestDisabledMode:
    def test_span_returns_shared_noop(self):
        assert span("anything") is span("something.else")
        assert span("x") is timing._NULL_SPAN
        with span("nothing") as handle:
            assert handle is None

    def test_activate_returns_previous(self):
        a, b = SpanTracker(), SpanTracker()
        assert activate(a) is None
        assert activate(b) is a
        deactivate(a)
        assert active_tracker() is a
        deactivate(None)

    def test_disabled_spans_are_cheap(self):
        """Off-by-default-cheap guard: 50k disabled spans in well under 1s.

        An accidental allocation, clock read or dict lookup per disabled
        call shows up here as an order-of-magnitude slowdown.
        """
        n = 50_000
        t0 = time.perf_counter()
        for _ in range(n):
            with span("hot.loop"):
                pass
        elapsed = time.perf_counter() - t0
        assert elapsed < 1.0, f"{n} disabled spans took {elapsed:.3f}s"
