"""Unit tests for Sequential composition, the mlp factory and freezing."""

import numpy as np
import pytest

from repro.nn import Dense, ReLU, Sequential, mlp
from repro.nn.network import from_spec


class TestSequential:
    def test_forward_composes(self, rng):
        gen = np.random.default_rng(0)
        model = Sequential([Dense(2, 3, rng=gen), ReLU(), Dense(3, 1, rng=gen)])
        out = model.forward(rng.normal(size=(5, 2)))
        assert out.shape == (5, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_predict_matches_forward(self, rng):
        model = mlp(4, [8], 2, seed=1)
        x = rng.normal(size=(10, 4))
        np.testing.assert_allclose(model.predict(x), model.forward(x))

    def test_predict_batches(self, rng):
        model = mlp(4, [8], 2, seed=1)
        x = rng.normal(size=(100, 4))
        np.testing.assert_allclose(model.predict(x, batch_size=7), model.forward(x))

    def test_num_parameters(self):
        model = mlp(23, [512, 256, 128, 64, 16], 4, seed=0)
        expected = (23 * 512 + 512) + (512 * 256 + 256) + (256 * 128 + 128) \
            + (128 * 64 + 64) + (64 * 16 + 16) + (16 * 4 + 4)
        assert model.num_parameters() == expected

    def test_zero_grad(self, rng):
        model = mlp(2, [4], 1, seed=0)
        x = rng.normal(size=(3, 2))
        model.forward(x)
        model.backward(np.ones((3, 1)))
        model.zero_grad()
        assert all((p.grad == 0).all() for p in model.parameters())

    def test_dense_layers(self):
        model = mlp(2, [4, 4], 1, seed=0)
        assert len(model.dense_layers()) == 3


class TestFreezing:
    def test_freeze_all_but_last(self):
        model = mlp(23, [512, 256, 128, 64, 16], 4, seed=0)
        model.freeze_all_but_last(2)
        dense = model.dense_layers()
        assert [l.trainable for l in dense] == [False, False, False, False, True, True]

    def test_freeze_validation(self):
        model = mlp(2, [4], 1, seed=0)
        with pytest.raises(ValueError):
            model.freeze_all_but_last(0)
        with pytest.raises(ValueError):
            model.freeze_all_but_last(3)

    def test_set_all_trainable(self):
        model = mlp(2, [4, 4], 1, seed=0)
        model.freeze_all_but_last(1)
        model.set_all_trainable(True)
        assert all(l.trainable for l in model.dense_layers())

    def test_frozen_params_flagged(self):
        model = mlp(2, [4, 4], 1, seed=0)
        model.freeze_all_but_last(1)
        frozen = [p for layer in model.dense_layers()[:-1] for p in layer.parameters()]
        assert all(not p.trainable for p in frozen)


class TestSpecRoundtrip:
    def test_spec_structure(self):
        model = mlp(23, [16, 8], 4, seed=0)
        spec = model.spec()
        kinds = [s["kind"] for s in spec]
        assert kinds == ["Dense", "ReLU", "Dense", "ReLU", "Dense"]

    def test_from_spec_same_architecture(self, rng):
        model = mlp(5, [7, 3], 2, seed=0)
        rebuilt = from_spec(model.spec(), rng=np.random.default_rng(1))
        assert [l.spec() for l in rebuilt.layers] == [l.spec() for l in model.layers]

    def test_from_spec_unknown_kind(self):
        with pytest.raises(ValueError):
            from_spec([{"kind": "Conv3D"}])

    def test_clone_architecture_fresh_weights(self):
        model = mlp(3, [4], 1, seed=0)
        clone = model.clone_architecture(rng=np.random.default_rng(99))
        assert not np.allclose(
            model.dense_layers()[0].weight.value, clone.dense_layers()[0].weight.value
        )


class TestMlpFactory:
    def test_paper_architecture(self):
        model = mlp(23, [512, 256, 128, 64, 16], 4, seed=0)
        widths = [(l.in_features, l.out_features) for l in model.dense_layers()]
        assert widths == [(23, 512), (512, 256), (256, 128), (128, 64), (64, 16), (16, 4)]

    def test_seed_reproducible(self):
        a = mlp(4, [8], 2, seed=42)
        b = mlp(4, [8], 2, seed=42)
        np.testing.assert_array_equal(
            a.dense_layers()[0].weight.value, b.dense_layers()[0].weight.value
        )

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            mlp(4, [8], 2, activation="Swish")
