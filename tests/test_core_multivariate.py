"""Tests for shared-location multivariate sampling and reconstruction."""

import numpy as np
import pytest

from repro.core import MultivariateReconstructor, sample_multivariate
from repro.datasets import HurricaneDataset
from repro.metrics import snr
from repro.sampling import MultiCriteriaSampler


@pytest.fixture(scope="module")
def setup():
    data = HurricaneDataset(
        grid=HurricaneDataset.default_grid().with_resolution((14, 14, 6)), seed=0
    )
    sampler = MultiCriteriaSampler(seed=3)
    return data, sampler


class TestSampleMultivariate:
    def test_shared_indices(self, setup):
        data, sampler = setup
        samples = sample_multivariate(data, sampler, 0.05)
        assert set(samples) == set(data.attributes)
        base = samples[data.attribute].indices
        for s in samples.values():
            np.testing.assert_array_equal(s.indices, base)

    def test_values_match_each_attribute(self, setup):
        data, sampler = setup
        samples = sample_multivariate(data, sampler, 0.05, timestep=10)
        for a, s in samples.items():
            field = data.field(t=10, attribute=a)
            np.testing.assert_allclose(s.values, field.flat[s.indices])

    def test_attribute_subset(self, setup):
        data, sampler = setup
        samples = sample_multivariate(
            data, sampler, 0.05, attributes=("pressure", "wind_speed")
        )
        assert set(samples) == {"pressure", "wind_speed"}

    def test_unknown_attribute(self, setup):
        data, sampler = setup
        with pytest.raises(ValueError):
            sample_multivariate(data, sampler, 0.05, attributes=("vorticity",))

    def test_driver_changes_selection(self, setup):
        data, sampler = setup
        a = sample_multivariate(data, sampler, 0.05, driver="pressure")
        b = sample_multivariate(data, sampler, 0.05, driver="wind_speed")
        assert not np.array_equal(
            a["pressure"].indices, b["pressure"].indices
        )


class TestMultivariateReconstructor:
    @pytest.fixture(scope="class")
    def trained(self, setup):
        data, sampler = setup
        attrs = ("pressure", "wind_speed")
        fields = {a: data.field(t=0, attribute=a) for a in attrs}
        samples = {
            a: [s]
            for a, s in sample_multivariate(
                data, sampler, 0.10, attributes=attrs
            ).items()
        }
        model = MultivariateReconstructor(
            attrs, hidden_layers=(24, 12), batch_size=1024, seed=0
        )
        model.train(fields, samples, epochs=15)
        test = sample_multivariate(data, sampler, 0.05, attributes=attrs, seed=99)
        return data, model, fields, test

    def test_reconstructs_all_attributes(self, trained):
        data, model, fields, test = trained
        volumes = model.reconstruct(test)
        assert set(volumes) == {"pressure", "wind_speed"}
        for a, vol in volumes.items():
            assert vol.shape == data.grid.dims
            assert snr(fields[a].values, vol) > 0

    def test_is_trained(self, trained):
        _, model, *_ = trained
        assert model.is_trained

    def test_missing_attribute_rejected(self, trained):
        _, model, fields, test = trained
        with pytest.raises(ValueError, match="missing attributes"):
            model.reconstruct({"pressure": test["pressure"]})

    def test_save_load_roundtrip(self, trained, tmp_path):
        data, model, fields, test = trained
        model.save(tmp_path / "mv")
        loaded = MultivariateReconstructor.load(tmp_path / "mv")
        assert set(loaded.attributes) == set(model.attributes)
        a = model.reconstruct(test)["pressure"]
        b = loaded.reconstruct(test)["pressure"]
        np.testing.assert_allclose(a, b)

    def test_load_empty_dir(self, tmp_path):
        (tmp_path / "nothing").mkdir()
        with pytest.raises(ValueError):
            MultivariateReconstructor.load(tmp_path / "nothing")

    def test_validation(self):
        with pytest.raises(ValueError):
            MultivariateReconstructor(())

    def test_fine_tune_all(self, trained, setup):
        import copy

        data, model, fields, test = trained
        _, sampler = setup
        tuned = copy.deepcopy(model)
        attrs = tuple(model.attributes)
        fields2 = {a: data.field(t=30, attribute=a) for a in attrs}
        samples2 = {
            a: s for a, s in sample_multivariate(data, sampler, 0.10, timestep=30,
                                                 attributes=attrs).items()
        }
        histories = tuned.fine_tune(fields2, samples2, epochs=3)
        assert set(histories) == set(attrs)
