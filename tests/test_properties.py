"""Property-based tests (hypothesis) on core invariants.

Covers: grid index mappings, sampler budget/uniqueness invariants,
acceptance-probability water-filling, metric identities, normalizer
round-trips, interpolator exactness properties and VTK roundtrips.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.datasets.base import TimestepField
from repro.grid import UniformGrid
from repro.metrics import mae, rmse, snr
from repro.core import Normalizer
from repro.sampling import MultiCriteriaSampler, RandomSampler, acceptance_probabilities

# Shared strategies -----------------------------------------------------------

dims_strategy = st.tuples(
    st.integers(2, 8), st.integers(2, 8), st.integers(2, 8)
)
spacing_strategy = st.tuples(
    st.floats(0.1, 10.0), st.floats(0.1, 10.0), st.floats(0.1, 10.0)
)
origin_strategy = st.tuples(
    st.floats(-100, 100), st.floats(-100, 100), st.floats(-100, 100)
)


@st.composite
def grids(draw):
    return UniformGrid(draw(dims_strategy), draw(spacing_strategy), draw(origin_strategy))


@st.composite
def fields(draw):
    grid = draw(grids())
    values = draw(
        hnp.arrays(
            np.float64,
            grid.dims,
            elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
        )
    )
    return TimestepField(grid, values, timestep=0)


class TestGridProperties:
    @given(grids())
    @settings(max_examples=50, deadline=None)
    def test_flat_multi_roundtrip(self, grid):
        flat = np.arange(grid.num_points)
        np.testing.assert_array_equal(grid.multi_to_flat(grid.flat_to_multi(flat)), flat)

    @given(grids())
    @settings(max_examples=50, deadline=None)
    def test_position_index_roundtrip(self, grid):
        multi = grid.flat_to_multi(np.arange(grid.num_points))
        pos = grid.index_to_position(multi)
        np.testing.assert_array_equal(grid.position_to_index(pos), multi)

    @given(grids())
    @settings(max_examples=50, deadline=None)
    def test_all_grid_points_contained(self, grid):
        assert grid.contains(grid.points()).all()

    @given(grids(), st.tuples(st.integers(2, 6), st.integers(2, 6), st.integers(2, 6)))
    @settings(max_examples=30, deadline=None)
    def test_with_resolution_preserves_extent(self, grid, new_dims):
        other = grid.with_resolution(new_dims)
        np.testing.assert_allclose(
            np.asarray(other.extent), np.asarray(grid.extent), rtol=1e-9, atol=1e-9
        )


class TestSamplerProperties:
    @given(fields(), st.floats(0.05, 1.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_sampler_budget_and_uniqueness(self, field, fraction, seed):
        budget = int(round(fraction * field.grid.num_points))
        if budget < 1:
            return
        s = RandomSampler(seed=0).sample(field, fraction, seed=seed)
        assert s.num_samples == budget
        assert len(np.unique(s.indices)) == s.num_samples
        np.testing.assert_allclose(s.values, field.flat[s.indices])

    @given(fields(), st.floats(0.1, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_multicriteria_budget(self, field, fraction):
        budget = int(round(fraction * field.grid.num_points))
        if budget < 1:
            return
        s = MultiCriteriaSampler(seed=1).sample(field, fraction)
        assert s.num_samples == budget

    @given(
        hnp.arrays(np.float64, st.integers(2, 300), elements=st.floats(0, 1e6)),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_acceptance_probability_invariants(self, importance, data):
        budget = data.draw(st.integers(1, len(importance)))
        p = acceptance_probabilities(importance, budget)
        assert (p >= 0).all() and (p <= 1.0 + 1e-12).all()
        assert p.sum() == pytest.approx(budget, rel=1e-6, abs=1e-6)


class TestMetricProperties:
    arrays = hnp.arrays(
        np.float64, st.integers(2, 200), elements=st.floats(-1e3, 1e3, width=64)
    )

    @given(arrays)
    @settings(max_examples=50, deadline=None)
    def test_perfect_reconstruction(self, a):
        assert snr(a, a.copy()) == float("inf")
        assert rmse(a, a.copy()) == 0.0
        assert mae(a, a.copy()) == 0.0

    @given(arrays, arrays)
    @settings(max_examples=50, deadline=None)
    def test_rmse_dominates_mae(self, a, b):
        if a.shape != b.shape:
            return
        assert rmse(a, b) >= mae(a, b) - 1e-12

    @given(arrays, st.floats(0.1, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_snr_scale_invariant(self, a, scale):
        # Scaling both fields by the same factor keeps SNR unchanged.
        # Skip (near-)constant inputs: their std is pure rounding noise and
        # flips between 0 and ~1e-17 under scaling.
        if a.std() <= 1e-6 * (np.abs(a).max() + 1.0):
            return
        noisy = a + 0.5
        noisy[::2] -= 1.0
        if (a - noisy).std() == 0:
            return
        assert snr(a, noisy) == pytest.approx(snr(scale * a, scale * noisy), rel=1e-6)


class TestNormalizerProperties:
    @given(
        grids(),
        hnp.arrays(np.float64, st.integers(2, 100), elements=st.floats(-1e4, 1e4)),
    )
    @settings(max_examples=40, deadline=None)
    def test_value_roundtrip(self, grid, values):
        n = Normalizer.fit(grid, values)
        np.testing.assert_allclose(
            n.denormalize_values(n.normalize_values(values)), values, rtol=1e-9, atol=1e-6
        )

    @given(grids())
    @settings(max_examples=40, deadline=None)
    def test_grid_corners_map_to_unit_cube(self, grid):
        n = Normalizer.fit(grid, np.array([0.0, 1.0]))
        u = n.normalize_coords(grid.points())
        assert u.min() >= -1e-9
        assert u.max() <= 1.0 + 1e-9


class TestInterpolatorProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_nearest_predictions_come_from_samples(self, seed):
        from repro.interpolation import NearestNeighborInterpolator

        grid = UniformGrid((6, 6, 6))
        rng = np.random.default_rng(seed)
        field = TimestepField(grid, rng.normal(size=grid.dims), timestep=0)
        s = RandomSampler(seed=0).sample(field, 0.2, seed=seed)
        out = NearestNeighborInterpolator().reconstruct(s)
        assert np.isin(out.ravel(), s.values).all()

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_shepard_bounded_by_sample_range(self, seed):
        from repro.interpolation import ModifiedShepardInterpolator

        grid = UniformGrid((6, 6, 6))
        rng = np.random.default_rng(seed)
        field = TimestepField(grid, rng.normal(size=grid.dims), timestep=0)
        s = RandomSampler(seed=0).sample(field, 0.3, seed=seed)
        out = ModifiedShepardInterpolator().reconstruct(s)
        assert out.min() >= s.values.min() - 1e-9
        assert out.max() <= s.values.max() + 1e-9


class TestVTKRoundtripProperties:
    @given(
        dims_strategy,
        st.integers(0, 2**31 - 1),
        st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_vti_roundtrip(self, dims, seed, binary):
        # hypothesis forbids pytest's per-test tmp fixtures inside @given,
        # so manage a temp dir per example explicitly.
        import tempfile
        from pathlib import Path

        from repro.io import read_vti, write_vti

        grid = UniformGrid(dims)
        rng = np.random.default_rng(seed)
        field = rng.normal(size=dims)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "f.vti"
            write_vti(path, grid, {"v": field}, binary=binary)
            grid2, data = read_vti(path)
        assert grid2 == grid
        np.testing.assert_allclose(data["v"], field)
