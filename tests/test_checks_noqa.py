"""noqa directive edge cases: multi-code lists, continuation lines,
unknown-code ``NOQA001`` validation."""

from __future__ import annotations

from repro.checks import CheckConfig, parse_noqa, run_checks
from repro.checks.engine import NOQA_RULE_ID


# ----------------------------------------------------------- parsing edges
def test_multi_code_suppression_covers_each_listed_rule():
    d = parse_noqa("x = risky()  # repro: noqa[RNG001,DT002, DIV001]\n")
    for rule in ("RNG001", "DT002", "DIV001"):
        assert d.is_suppressed(1, rule)
    assert not d.is_suppressed(1, "THR001")


def test_two_directives_on_same_line_union():
    # tokenize yields one comment per line; union behavior is exercised via
    # repeated _collect on split scanning of un-tokenizable source.
    src = "def broken(:\n    pass  # repro: noqa[RNG001] # repro: noqa[DIV001]\n"
    d = parse_noqa(src)
    assert d.is_suppressed(2, "RNG001")


def test_empty_bracket_list_means_suppress_all():
    d = parse_noqa("x = 1  # repro: noqa[]\n")
    assert d.is_suppressed(1, "RNG001") and d.is_suppressed(1, "ZZZ999")


def test_directive_on_continuation_line_does_not_cover_statement_start():
    # Findings anchor at the node's lineno; a directive on a later physical
    # line of the same statement must not silently suppress them.
    src = (
        "import numpy as np\n"
        "rng = np.random.default_rng(\n"
        ")  # repro: noqa[RNG002]\n"
    )
    d = parse_noqa(src)
    assert d.is_suppressed(3, "RNG002")
    assert not d.is_suppressed(2, "RNG002")


def test_directive_must_anchor_on_reported_line(tmp_path):
    target = tmp_path / "m.py"
    target.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng(\n"
        ")  # repro: noqa[RNG002]\n"
    )
    result = run_checks([tmp_path], CheckConfig(select=frozenset({"RNG002"})))
    assert [f.rule for f in result.findings] == ["RNG002"]  # NOT suppressed

    target.write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng(  # repro: noqa[RNG002]\n"
        ")\n"
    )
    result = run_checks([tmp_path], CheckConfig(select=frozenset({"RNG002"})))
    assert not result.findings and result.suppressed == 1


def test_whitespace_variants():
    for text in (
        "x=1 #repro:noqa[RNG001]\n",
        "x=1  #  repro:  noqa[ RNG001 ]\n",
        "x=1  # repro: noqa[RNG001,]\n",
    ):
        assert parse_noqa(text).is_suppressed(1, "RNG001"), text


def test_listed_codes_enumeration():
    d = parse_noqa(
        "a = 1  # repro: noqa[RNG001, DIV001]\n"
        "b = 2  # repro: noqa\n"
        "c = 3  # repro: noqa[THR001]\n"
    )
    assert list(d.listed_codes()) == [
        (1, "DIV001"),
        (1, "RNG001"),
        (3, "THR001"),
    ]  # blanket directives name no codes


# ------------------------------------------------------- NOQA001 validation
def test_unknown_code_in_directive_is_reported(tmp_path):
    (tmp_path / "m.py").write_text("x = 1  # repro: noqa[RNG01]\n")  # typo
    result = run_checks([tmp_path])
    assert [f.rule for f in result.findings] == [NOQA_RULE_ID]
    finding = result.findings[0]
    assert finding.severity == "note"
    assert "RNG01" in finding.message and finding.line == 1


def test_known_codes_produce_no_noqa_findings(tmp_path):
    (tmp_path / "m.py").write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # repro: noqa[RNG002]\n"
    )
    result = run_checks([tmp_path])
    assert not result.findings and result.suppressed == 1


def test_unknown_code_alongside_known_suppression(tmp_path):
    (tmp_path / "m.py").write_text(
        "import numpy as np\n"
        "rng = np.random.default_rng()  # repro: noqa[RNG002, BOGUS9]\n"
    )
    result = run_checks([tmp_path])
    # RNG002 is still suppressed; the bogus code is still reported.
    assert result.suppressed == 1
    assert [f.rule for f in result.findings] == [NOQA_RULE_ID]
    assert "BOGUS9" in result.findings[0].message
