"""Unit tests for the SZ-style error-bounded compressor."""

import numpy as np
import pytest

from repro.compression import SZCompressor, compression_ratio
from repro.compression.szlike import _lorenzo_forward, _lorenzo_inverse
from repro.grid import UniformGrid


class TestLorenzoTransform:
    def test_exact_inverse(self, rng):
        q = rng.integers(-1000, 1000, size=(7, 6, 5))
        np.testing.assert_array_equal(_lorenzo_inverse(_lorenzo_forward(q)), q)

    def test_constant_field_one_nonzero(self):
        q = np.full((4, 4, 4), 9, dtype=np.int64)
        d = _lorenzo_forward(q)
        assert d[0, 0, 0] == 9
        assert np.count_nonzero(d) == 1

    def test_smooth_field_small_deltas(self):
        g = UniformGrid((16, 16, 16))
        x, y, z = g.meshgrid()
        q = (x + 2 * y + 3 * z).astype(np.int64)
        d = _lorenzo_forward(q)
        # Linear integer fields have deltas only on the boundary planes.
        assert np.abs(d[1:, 1:, 1:]).max() == 0


class TestErrorBound:
    @pytest.mark.parametrize("eb", [1e-1, 1e-2, 1e-3])
    def test_absolute_bound_respected(self, hurricane_field, eb):
        comp = SZCompressor(error_bound=eb, mode="absolute")
        recon, _ = comp.roundtrip(hurricane_field.grid, hurricane_field.values)
        assert np.abs(recon - hurricane_field.values).max() <= eb + 1e-12

    def test_relative_bound_respected(self, hurricane_field):
        comp = SZCompressor(error_bound=1e-3, mode="relative")
        recon, art = comp.roundtrip(hurricane_field.grid, hurricane_field.values)
        span = hurricane_field.values.max() - hurricane_field.values.min()
        assert np.abs(recon - hurricane_field.values).max() <= 1e-3 * span + 1e-12

    def test_constant_field(self, grid):
        comp = SZCompressor(error_bound=1e-3)
        recon, art = comp.roundtrip(grid, np.full(grid.dims, 7.0))
        np.testing.assert_allclose(recon, 7.0, atol=1e-3)

    def test_rejects_nan(self, grid):
        comp = SZCompressor()
        bad = np.zeros(grid.dims)
        bad[0, 0, 0] = np.nan
        with pytest.raises(ValueError):
            comp.compress(grid, bad)

    def test_validation(self):
        with pytest.raises(ValueError):
            SZCompressor(error_bound=0.0)
        with pytest.raises(ValueError):
            SZCompressor(mode="percentile")


class TestCompressionQuality:
    def test_smooth_field_compresses_well(self, hurricane_field):
        comp = SZCompressor(error_bound=1e-3, mode="relative")
        art = comp.compress(hurricane_field.grid, hurricane_field.values)
        ratio = compression_ratio(hurricane_field.grid, art)
        assert ratio > 4.0  # smooth data at 1e-3 relative: easily > 4x

    def test_looser_bound_smaller_payload(self, hurricane_field):
        tight = SZCompressor(error_bound=1e-4, mode="relative").compress(
            hurricane_field.grid, hurricane_field.values
        )
        loose = SZCompressor(error_bound=1e-2, mode="relative").compress(
            hurricane_field.grid, hurricane_field.values
        )
        assert loose.nbytes < tight.nbytes

    def test_noise_compresses_poorly(self, grid, rng):
        noise = rng.normal(size=grid.dims)
        art = SZCompressor(error_bound=1e-5, mode="relative").compress(grid, noise)
        smooth_art = SZCompressor(error_bound=1e-5, mode="relative").compress(
            grid, np.zeros(grid.dims)
        )
        assert art.nbytes > 5 * smooth_art.nbytes

    def test_dims_roundtrip(self, hurricane_field):
        comp = SZCompressor(error_bound=1e-3)
        _, art = comp.roundtrip(hurricane_field.grid, hurricane_field.values)
        assert art.dims == hurricane_field.grid.dims
        assert art.decompress().shape == hurricane_field.grid.dims

    def test_reconstruction_snr_tracks_bound(self, hurricane_field):
        from repro.metrics import snr

        comp_tight = SZCompressor(error_bound=1e-4, mode="relative")
        comp_loose = SZCompressor(error_bound=1e-2, mode="relative")
        r_tight, _ = comp_tight.roundtrip(hurricane_field.grid, hurricane_field.values)
        r_loose, _ = comp_loose.roundtrip(hurricane_field.grid, hurricane_field.values)
        assert snr(hurricane_field.values, r_tight) > snr(hurricane_field.values, r_loose)
