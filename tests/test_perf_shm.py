"""Shared-memory transport: bundle lifecycle, worker attach, parallel parity."""

import numpy as np
import pytest

from repro.interpolation.nearest import NearestNeighborInterpolator
from repro.parallel import parallel_reconstruct
from repro.parallel.executor import ParallelExecutor
from repro.perf import SharedArrayBundle, SharedArraySpec, attached_arrays


class BoomInterpolator(NearestNeighborInterpolator):
    """Always-failing interpolator (module-level so workers can unpickle it)."""

    name = "boom"

    def interpolate(self, points, values, query, grid):
        raise RuntimeError("kaboom")


class TestBundle:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        arrays = {
            "points": rng.normal(size=(64, 3)),
            "values": rng.normal(size=64),
        }
        with SharedArrayBundle.create(arrays) as bundle:
            for name, arr in arrays.items():
                np.testing.assert_array_equal(bundle.view(name), arr)
            specs = bundle.specs
            assert set(specs) == {"points", "values"}
            assert specs["points"].shape == (64, 3)
            assert bundle.nbytes == sum(a.nbytes for a in arrays.values())

    def test_attach_sees_parent_writes_and_parent_sees_worker_writes(self):
        with SharedArrayBundle.create({"out": np.zeros(8)}) as bundle:
            with attached_arrays(bundle.specs) as arrays:
                arrays["out"][:4] = 7.0
            np.testing.assert_array_equal(
                bundle.view("out"), [7, 7, 7, 7, 0, 0, 0, 0]
            )

    def test_close_is_idempotent_and_invalidates_specs(self):
        bundle = SharedArrayBundle.create({"a": np.arange(3.0)})
        specs = bundle.specs
        bundle.close()
        bundle.close()  # safe to call twice
        with pytest.raises(FileNotFoundError):
            with attached_arrays(specs):
                pass

    def test_empty_array_supported(self):
        with SharedArrayBundle.create({"empty": np.empty((0, 3))}) as bundle:
            with attached_arrays(bundle.specs) as arrays:
                assert arrays["empty"].shape == (0, 3)

    def test_spec_nbytes(self):
        spec = SharedArraySpec("name", (4, 3), "<f8")
        assert spec.nbytes == 4 * 3 * 8


class TestParallelTransport:
    @pytest.mark.parametrize("transport", ["shm", "pickle", "auto"])
    def test_transports_agree(self, sample, transport):
        interp = NearestNeighborInterpolator()
        serial = interp.reconstruct(sample)
        field = parallel_reconstruct(
            interp,
            sample,
            executor=ParallelExecutor(max_workers=2),
            num_chunks=3,
            transport=transport,
        )
        np.testing.assert_array_equal(serial, field)

    def test_invalid_transport_rejected(self, sample):
        with pytest.raises(ValueError, match="transport"):
            parallel_reconstruct(
                NearestNeighborInterpolator(), sample, transport="carrier-pigeon"
            )

    def test_shm_failed_chunks_fall_back(self, sample):
        field, report = parallel_reconstruct(
            BoomInterpolator(),
            sample,
            executor=ParallelExecutor(max_workers=2),
            num_chunks=3,
            transport="shm",
            return_report=True,
        )
        assert len(report.degraded) == 3
        assert np.isfinite(field).all()

    def test_shm_strict_mode_raises(self, sample):
        with pytest.raises(RuntimeError):
            parallel_reconstruct(
                BoomInterpolator(), sample, fallback=None, transport="shm",
                executor=ParallelExecutor(max_workers=2), num_chunks=2,
            )

    def test_no_segments_leak(self, sample, tmp_path):
        import multiprocessing.shared_memory as sm
        import os

        before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else None
        parallel_reconstruct(
            NearestNeighborInterpolator(),
            sample,
            executor=ParallelExecutor(max_workers=2),
            num_chunks=2,
            transport="shm",
        )
        if before is not None:
            leaked = set(os.listdir("/dev/shm")) - before
            assert not {n for n in leaked if n.startswith("psm_")}
