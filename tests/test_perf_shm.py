"""Shared-memory transport: bundle lifecycle, worker attach, parallel parity."""

import numpy as np
import pytest

from repro.interpolation.nearest import NearestNeighborInterpolator
from repro.parallel import parallel_reconstruct
from repro.parallel.executor import ParallelExecutor
from repro.perf import SharedArrayBundle, SharedArraySpec, attached_arrays


class BoomInterpolator(NearestNeighborInterpolator):
    """Always-failing interpolator (module-level so workers can unpickle it)."""

    name = "boom"

    def interpolate(self, points, values, query, grid):
        raise RuntimeError("kaboom")


class TestBundle:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        arrays = {
            "points": rng.normal(size=(64, 3)),
            "values": rng.normal(size=64),
        }
        with SharedArrayBundle.create(arrays) as bundle:
            for name, arr in arrays.items():
                np.testing.assert_array_equal(bundle.view(name), arr)
            specs = bundle.specs
            assert set(specs) == {"points", "values"}
            assert specs["points"].shape == (64, 3)
            assert bundle.nbytes == sum(a.nbytes for a in arrays.values())

    def test_attach_sees_parent_writes_and_parent_sees_worker_writes(self):
        with SharedArrayBundle.create({"out": np.zeros(8)}) as bundle:
            with attached_arrays(bundle.specs) as arrays:
                arrays["out"][:4] = 7.0
            np.testing.assert_array_equal(
                bundle.view("out"), [7, 7, 7, 7, 0, 0, 0, 0]
            )

    def test_close_is_idempotent_and_invalidates_specs(self):
        bundle = SharedArrayBundle.create({"a": np.arange(3.0)})
        specs = bundle.specs
        bundle.close()
        bundle.close()  # safe to call twice
        with pytest.raises(FileNotFoundError):
            with attached_arrays(specs):
                pass

    def test_close_releases_views_before_closing_segments(self, monkeypatch):
        """close() must drop each numpy view before SharedMemory.close().

        The old teardown iterated the segment dict, so the (shm, view)
        tuples stayed alive through their dict entries and every close
        raised a silently-swallowed BufferError, deferring the real unmap
        to garbage collection.
        """
        import multiprocessing.shared_memory as sm

        buffer_errors = []
        real_close = sm.SharedMemory.close

        def checked_close(self):
            try:
                real_close(self)
            except BufferError as exc:  # pragma: no cover - the regression
                buffer_errors.append(exc)
                raise

        monkeypatch.setattr(sm.SharedMemory, "close", checked_close)
        bundle = SharedArrayBundle.create(
            {"a": np.arange(16.0), "b": np.ones((4, 4))}
        )
        bundle.close()
        assert buffer_errors == []

    def test_worker_attach_failure_closes_opened_handles(self, monkeypatch):
        """A crash between attach and first read must not leak open handles."""
        from repro.grid import UniformGrid
        from repro.perf import campaign as campaign_mod

        opened = []
        real_attach = campaign_mod._shm._attach

        def tracking_attach(name):
            shm = real_attach(name)
            opened.append(shm)
            return shm

        monkeypatch.setattr(campaign_mod._shm, "_attach", tracking_attach)
        with SharedArrayBundle.create(
            {"indices": np.arange(4, dtype=np.int64)}
        ) as bundle:
            specs = dict(bundle.specs)
            # second attach in the loop fails: the first, already-mapped
            # segment must be closed before the error propagates
            specs["missing"] = SharedArraySpec("psm_repro_never_created", (4,), "<f8")
            payload = {
                "init": {
                    "specs": specs,
                    "grid": UniformGrid((4, 1, 1)),
                    "fraction": 1.0,
                    "tags": [],
                    "models": {},
                }
            }
            with pytest.raises(FileNotFoundError):
                campaign_mod._WorkerState(payload)
        assert len(opened) == 1
        assert opened[0].buf is None  # closed, not leaked

    def test_empty_array_supported(self):
        with SharedArrayBundle.create({"empty": np.empty((0, 3))}) as bundle:
            with attached_arrays(bundle.specs) as arrays:
                assert arrays["empty"].shape == (0, 3)

    def test_spec_nbytes(self):
        spec = SharedArraySpec("name", (4, 3), "<f8")
        assert spec.nbytes == 4 * 3 * 8


class TestParallelTransport:
    @pytest.mark.parametrize("transport", ["shm", "pickle", "auto"])
    def test_transports_agree(self, sample, transport):
        interp = NearestNeighborInterpolator()
        serial = interp.reconstruct(sample)
        field = parallel_reconstruct(
            interp,
            sample,
            executor=ParallelExecutor(max_workers=2),
            num_chunks=3,
            transport=transport,
        )
        np.testing.assert_array_equal(serial, field)

    def test_invalid_transport_rejected(self, sample):
        with pytest.raises(ValueError, match="transport"):
            parallel_reconstruct(
                NearestNeighborInterpolator(), sample, transport="carrier-pigeon"
            )

    def test_shm_failed_chunks_fall_back(self, sample):
        field, report = parallel_reconstruct(
            BoomInterpolator(),
            sample,
            executor=ParallelExecutor(max_workers=2),
            num_chunks=3,
            transport="shm",
            return_report=True,
        )
        assert len(report.degraded) == 3
        assert np.isfinite(field).all()

    def test_shm_strict_mode_raises(self, sample):
        with pytest.raises(RuntimeError):
            parallel_reconstruct(
                BoomInterpolator(), sample, fallback=None, transport="shm",
                executor=ParallelExecutor(max_workers=2), num_chunks=2,
            )

    def test_no_segments_leak(self, sample, tmp_path):
        import multiprocessing.shared_memory as sm
        import os

        before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else None
        parallel_reconstruct(
            NearestNeighborInterpolator(),
            sample,
            executor=ParallelExecutor(max_workers=2),
            num_chunks=2,
            transport="shm",
        )
        if before is not None:
            leaked = set(os.listdir("/dev/shm")) - before
            assert not {n for n in leaked if n.startswith("psm_")}
