"""Report rendering, run diffing, and the ``repro obs report`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import main as obs_main
from repro.obs.report import (
    build_span_tree,
    collapse_spans,
    diff_runs,
    format_diff,
    format_report,
    load_run,
    read_events,
)


def write_run(run_dir, span_walls, counters=None, status="completed"):
    """Synthesize a run directory with given per-name span wall times."""
    run_dir.mkdir(parents=True)
    events = [{"seq": 0, "t": 0.0, "kind": "run_start", "run_id": run_dir.name,
               "schema": 1, "pid": 1, "meta": {}}]
    seq = 1
    for i, (name, wall) in enumerate(span_walls):
        events.append({"seq": seq, "t": 0.0, "kind": "span_open",
                       "id": i, "parent": None, "name": name, "attrs": {}})
        seq += 1
        events.append({"seq": seq, "t": 0.0, "kind": "span_close",
                       "id": i, "name": name, "wall": wall, "cpu": wall, "attrs": {}})
        seq += 1
    snapshot = {"counters": counters or {}, "gauges": {}, "histograms": {}}
    events.append({"seq": seq, "t": 0.0, "kind": "metrics", "snapshot": snapshot})
    events.append({"seq": seq + 1, "t": 0.0, "kind": "run_end", "status": status,
                   "wall": sum(w for _, w in span_walls)})
    with open(run_dir / "events.jsonl", "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")
    manifest = {"schema": 1, "run_id": run_dir.name, "status": status,
                "wall_seconds": sum(w for _, w in span_walls),
                "config_hash": "deadbeefdeadbeef", "metrics": snapshot,
                "seed": 0}
    (run_dir / "run.json").write_text(json.dumps(manifest))
    return run_dir


class TestReportViews:
    def test_collapse_groups_siblings_by_name(self, tmp_path):
        run = write_run(tmp_path / "r", [("epoch", 0.1), ("epoch", 0.3), ("other", 0.2)])
        record = load_run(run)
        groups = {g.name: g for g in collapse_spans(record.roots)}
        assert groups["epoch"].count == 2
        assert groups["epoch"].wall == pytest.approx(0.4)
        assert groups["other"].count == 1

    def test_format_report_renders_spans_and_counters(self, tmp_path):
        run = write_run(tmp_path / "r", [("train.fit", 1.5)], counters={"train.epochs": 5})
        text = format_report(load_run(run))
        assert "[completed]" in text
        assert "train.fit" in text
        assert "train.epochs" in text and "5" in text
        assert "config deadbeefdeadbeef" in text

    def test_open_span_reported_as_never_closed(self, tmp_path):
        run_dir = tmp_path / "open"
        run_dir.mkdir()
        events = [
            {"seq": 0, "t": 0.0, "kind": "run_start", "run_id": "open", "schema": 1,
             "pid": 1, "meta": {}},
            {"seq": 1, "t": 0.0, "kind": "span_open", "id": 0, "parent": None,
             "name": "train.fit", "attrs": {}},
        ]
        (run_dir / "events.jsonl").write_text(
            "".join(json.dumps(e) + "\n" for e in events))
        record = load_run(run_dir)
        assert record.status == "incomplete"
        assert not record.roots[0].closed
        assert "never closed" in format_report(record)

    def test_corrupt_middle_line_raises(self, tmp_path):
        run_dir = tmp_path / "corrupt"
        run_dir.mkdir()
        (run_dir / "events.jsonl").write_text('{"seq": 0}\nnot json\n{"seq": 2}\n')
        with pytest.raises(ValueError, match="corrupt event line"):
            read_events(run_dir)

    def test_span_tree_rebuilds_nesting(self):
        events = [
            {"kind": "span_open", "id": 0, "parent": None, "name": "a", "attrs": {}},
            {"kind": "span_open", "id": 1, "parent": 0, "name": "b", "attrs": {}},
            {"kind": "span_close", "id": 1, "name": "b", "wall": 0.1, "cpu": 0.1},
            {"kind": "span_close", "id": 0, "name": "a", "wall": 0.2, "cpu": 0.2},
        ]
        roots = build_span_tree(events)
        assert [r.name for r in roots] == ["a"]
        assert [c.name for c in roots[0].children] == ["b"]


class TestDiff:
    def test_regression_detection_honors_threshold(self, tmp_path):
        a = load_run(write_run(tmp_path / "a", [("fast", 0.1), ("slow", 0.1)]))
        b = load_run(write_run(tmp_path / "b", [("fast", 0.11), ("slow", 0.5)]))
        entries = {e.name: e for e in diff_runs(a, b, threshold=0.2)}
        assert not entries["fast"].regressed    # +10% is under the 20% bar
        assert entries["slow"].regressed        # 5x is not
        assert "REGRESSED" in format_diff(list(entries.values()))

    def test_counter_changes_flagged(self, tmp_path):
        a = load_run(write_run(tmp_path / "a", [], counters={"fallbacks": 0}))
        b = load_run(write_run(tmp_path / "b", [], counters={"fallbacks": 3}))
        entries = [e for e in diff_runs(a, b) if e.kind == "counter"]
        assert entries[0].regressed
        assert "CHANGED" in format_diff(entries)

    def test_names_missing_from_one_run_default_to_zero(self, tmp_path):
        a = load_run(write_run(tmp_path / "a", [("only_in_a", 0.2)]))
        b = load_run(write_run(tmp_path / "b", [("only_in_b", 0.2)]))
        entries = {e.name: (e.a, e.b) for e in diff_runs(a, b) if e.kind == "span"}
        assert entries["only_in_a"] == (0.2, 0.0)
        assert entries["only_in_b"] == (0.0, 0.2)


class TestCli:
    def test_report_exit_zero(self, tmp_path, capsys):
        run = write_run(tmp_path / "run", [("train.fit", 1.0)], counters={"n": 1})
        assert obs_main(["report", str(run)]) == 0
        out = capsys.readouterr().out
        assert "train.fit" in out and "counters:" in out

    def test_no_metrics_flag(self, tmp_path, capsys):
        run = write_run(tmp_path / "run", [("s", 1.0)], counters={"n": 1})
        assert obs_main(["report", str(run), "--no-metrics"]) == 0
        assert "counters:" not in capsys.readouterr().out

    def test_diff_exit_codes(self, tmp_path, capsys):
        a = write_run(tmp_path / "a", [("s", 0.1)])
        b = write_run(tmp_path / "b", [("s", 0.5)])
        assert obs_main(["report", str(a), "--diff", str(b)]) == 0
        assert "REGRESSED" in capsys.readouterr().out
        assert obs_main(["report", str(a), "--diff", str(b),
                         "--fail-on-regression"]) == 1
        # with a generous threshold the same pair passes
        assert obs_main(["report", str(a), "--diff", str(b),
                         "--threshold", "10", "--fail-on-regression"]) == 0

    def test_only_filters_gated_names(self, tmp_path, capsys):
        # campaign.reconstruct regresses (overlap dilates it); train.fit does
        # not — gating --only 'train.*' must ignore the dilated span
        a = write_run(tmp_path / "a", [("train.fit", 1.0), ("campaign.reconstruct", 0.1)],
                      counters={"train.epochs": 5, "campaign.timesteps": 3})
        b = write_run(tmp_path / "b", [("train.fit", 1.05), ("campaign.reconstruct", 0.5)],
                      counters={"train.epochs": 5, "campaign.timesteps": 3})
        assert obs_main(["report", str(a), "--diff", str(b),
                         "--fail-on-regression"]) == 1
        assert obs_main(["report", str(a), "--diff", str(b), "--only", "train.*",
                         "--fail-on-regression"]) == 0
        out = capsys.readouterr().out
        assert "campaign.reconstruct" not in out.rsplit("A: ", 1)[-1]
        # repeatable: two globs widen the selection back to a failure
        assert obs_main(["report", str(a), "--diff", str(b), "--only", "train.*",
                         "--only", "campaign.*", "--fail-on-regression"]) == 1

    def test_missing_run_dir_exit_two(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_main_cli_dispatches_obs(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        run = write_run(tmp_path / "run", [("s", 1.0)])
        assert repro_main(["obs", "report", str(run)]) == 0
        assert "s" in capsys.readouterr().out
