"""The project-wide semantic model: symbols, summaries, call graph.

These tests build :class:`~repro.checks.analysis.ProjectModel` directly
from in-memory modules, asserting the layer the THR/ALS rules stand on:
import resolution (absolute, aliased, relative, re-exported), qualified
names for methods and closures, function summaries (captured writes,
lock tracking, shm creations, out= flows) and bounded call-graph
reachability.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.checks.analysis import build_model
from repro.checks.rules.base import ModuleContext, ProjectContext


def _project(tree: dict[str, str], root: Path) -> ProjectContext:
    """Build a ProjectContext from {dotted_module: source} without disk IO."""
    project = ProjectContext()
    for module, source in tree.items():
        rel = module.replace(".", "/")
        path = root / (f"{rel}/__init__.py" if source.startswith("#pkg") else f"{rel}.py")
        project.modules.append(
            ModuleContext.from_source(
                source, path=path, display_path=path.as_posix(), module=module
            )
        )
    return project


WORKER = """
import threading

COUNTS = {}

def bump(key):
    COUNTS[key] = COUNTS.get(key, 0) + 1

def bump_locked(key, lock):
    with lock:
        COUNTS[key] = COUNTS.get(key, 0) + 1
"""

SPAWNER = """
import threading
from app.worker import bump

def launch():
    t = threading.Thread(target=bump, args=("a",))
    t.start()
    t.join()
"""


def test_functions_and_methods_get_qualified_names(tmp_path):
    src = """
class Box:
    def get(self):
        return self._v

def top():
    def inner():
        return 1
    return inner
"""
    model = build_model(_project({"m": src}, tmp_path))
    assert "m.Box.get" in model.functions
    assert "m.top" in model.functions
    assert "m.top.<locals>.inner" in model.functions
    assert model.functions["m.top.<locals>.inner"].parent == "m.top"


def test_import_table_resolves_aliases_and_relatives(tmp_path):
    tree = {
        "app": "#pkg\nfrom app.worker import bump\n",
        "app.worker": WORKER,
        "app.spawn": "from . import bump\nimport app.worker as w\n",
    }
    model = build_model(_project(tree, tmp_path))
    assert model.imports["app.spawn"]["bump"] == "app.bump"
    assert model.imports["app.spawn"]["w"] == "app.worker"
    # resolve() follows the app re-export to the defining module
    info = model.functions["app.worker.bump"]
    spawn_ctx = next(m for m in model.modules.values() if m.module == "app.spawn")
    assert info.module == "app.worker"


def test_resolve_follows_reexport_chain(tmp_path):
    tree = {
        "app": "#pkg\nfrom app.worker import bump\n",
        "app.worker": WORKER,
        "app.caller": "from app import bump\n\ndef go():\n    bump('x')\n",
    }
    model = build_model(_project(tree, tmp_path))
    caller = model.functions["app.caller.go"]
    assert model.resolve("bump", caller) == "app.worker.bump"


def test_summary_captures_unlocked_and_locked_writes(tmp_path):
    model = build_model(_project({"app.worker": WORKER}, tmp_path))
    unlocked = model.summary("app.worker.bump")
    assert any(w.name == "COUNTS" and not w.locked for w in unlocked.captured_writes)
    locked = model.summary("app.worker.bump_locked")
    assert all(w.locked for w in locked.captured_writes if w.name == "COUNTS")


def test_summary_ignores_purely_local_writes(tmp_path):
    src = "def f():\n    acc = {}\n    acc['k'] = 1\n    return acc\n"
    model = build_model(_project({"m": src}, tmp_path))
    assert not model.summary("m.f").captured_writes


def test_thread_spawn_and_reachability_cross_module(tmp_path):
    tree = {
        "app": "#pkg\n",
        "app.worker": WORKER,
        "app.spawn": SPAWNER,
    }
    model = build_model(_project(tree, tmp_path))
    launch = model.summary("app.spawn.launch")
    assert len(launch.thread_spawns) == 1
    target = model.resolve(
        launch.thread_spawns[0].target, model.functions["app.spawn.launch"]
    )
    assert target == "app.worker.bump"
    assert "app.worker.bump" in model.reachable_from(target, depth=1)


def test_reachability_is_depth_bounded(tmp_path):
    chain = "\n".join(
        f"def f{i}():\n    f{i + 1}()" for i in range(5)
    ) + "\ndef f5():\n    pass\n"
    model = build_model(_project({"m": chain}, tmp_path))
    shallow = model.reachable_from("m.f0", depth=2)
    assert "m.f2" in shallow and "m.f4" not in shallow


def test_resolve_self_method_from_nested_closure(tmp_path):
    src = """
class Sched:
    def work(self, t):
        return t

    def run(self):
        def loop():
            self.work(1)
        return loop
"""
    model = build_model(_project({"m": src}, tmp_path))
    loop = model.functions["m.Sched.run.<locals>.loop"]
    assert model.resolve("self.work", loop) == "m.Sched.work"


def test_summary_records_shm_creation_and_escape(tmp_path):
    src = """
from multiprocessing.shared_memory import SharedMemory

def local_leak():
    shm = SharedMemory(create=True, size=8)
    return 1

def stored(registry):
    registry['seg'] = SharedMemory(create=True, size=8)
"""
    model = build_model(_project({"m": src}, tmp_path))
    leak = model.summary("m.local_leak").shm_creations
    assert len(leak) == 1 and leak[0].assigned_to == "shm" and not leak[0].escapes
    # attach-only (create=False / default) is not a creation
    attach = "from multiprocessing.shared_memory import SharedMemory\n" \
             "def attach(name):\n    return SharedMemory(name=name)\n"
    model2 = build_model(_project({"m2": attach}, tmp_path))
    assert not model2.summary("m2.attach").shm_creations


def test_summary_records_out_flow_through_params(tmp_path):
    src = """
import numpy as np

def fused(x, w, out):
    np.matmul(x, w, out=out)
    return out
"""
    model = build_model(_project({"m": src}, tmp_path))
    flows = model.summary("m.fused").out_flows
    assert {(f.in_param, f.out_param, f.op) for f in flows} == {
        ("x", "out", "matmul"),
        ("w", "out", "matmul"),
    }


def test_model_is_cached_per_project(tmp_path):
    project = _project({"m": "def f():\n    pass\n"}, tmp_path)
    assert build_model(project) is build_model(project)
    assert project.model() is build_model(project)
