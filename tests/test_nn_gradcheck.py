"""Finite-difference verification of every backward pass.

The analytic gradient of the loss with respect to each parameter and to the
network input must match central finite differences — the canonical
correctness test for a hand-written autodiff.
"""

import numpy as np
import pytest

from repro.nn import Dense, MSELoss, ReLU, Sequential, Sigmoid, Tanh, WeightedMSELoss, mlp
from repro.nn.losses import MAELoss

EPS = 1e-6
TOL = 1e-5


def numeric_param_grad(model, loss, x, y, param) -> np.ndarray:
    """Central finite differences of loss wrt one parameter tensor."""
    grad = np.zeros_like(param.value)
    flat = param.value.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        up = loss.value(model.forward(x), y)
        flat[i] = orig - EPS
        down = loss.value(model.forward(x), y)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * EPS)
    return grad


def analytic_grads(model, loss, x, y):
    model.zero_grad()
    pred = model.forward(x)
    model.backward(loss.gradient(pred, y))


@pytest.fixture
def data(rng):
    x = rng.normal(size=(7, 4))
    y = rng.normal(size=(7, 2))
    return x, y


def small_net(activation_cls, rng):
    gen = np.random.default_rng(3)
    return Sequential([
        Dense(4, 5, rng=gen),
        activation_cls(),
        Dense(5, 2, rng=gen),
    ])


class TestParameterGradients:
    @pytest.mark.parametrize("activation", [ReLU, Tanh, Sigmoid])
    def test_all_parameters(self, activation, data, rng):
        x, y = data
        # Shift inputs away from ReLU kinks so finite differences are valid.
        x = x + 0.05
        model = small_net(activation, rng)
        loss = MSELoss()
        analytic_grads(model, loss, x, y)
        for p in model.parameters():
            numeric = numeric_param_grad(model, loss, x, y, p)
            np.testing.assert_allclose(p.grad, numeric, rtol=TOL, atol=TOL)

    def test_weighted_mse(self, data, rng):
        x, y = data
        model = small_net(Tanh, rng)
        loss = WeightedMSELoss([1.0, 0.25])
        analytic_grads(model, loss, x, y)
        for p in model.parameters():
            numeric = numeric_param_grad(model, loss, x, y, p)
            np.testing.assert_allclose(p.grad, numeric, rtol=TOL, atol=TOL)

    def test_mae(self, data, rng):
        x, y = data
        model = small_net(Tanh, rng)
        loss = MAELoss()
        analytic_grads(model, loss, x, y)
        for p in model.parameters():
            numeric = numeric_param_grad(model, loss, x, y, p)
            np.testing.assert_allclose(p.grad, numeric, rtol=1e-4, atol=1e-4)

    def test_deep_paper_shape_network(self, rng):
        # The actual architecture (scaled down): 23 -> ladder -> 4.
        model = mlp(23, [32, 16, 8], 4, seed=5)
        x = rng.normal(size=(5, 23))
        y = rng.normal(size=(5, 4))
        loss = MSELoss()
        analytic_grads(model, loss, x, y)
        # Spot-check the first and last Dense layers (full check is O(n^2)).
        for p in model.dense_layers()[0].parameters() + model.dense_layers()[-1].parameters():
            numeric = numeric_param_grad(model, loss, x, y, p)
            np.testing.assert_allclose(p.grad, numeric, rtol=1e-4, atol=1e-5)


class TestInputGradient:
    def test_input_gradient_matches(self, rng):
        model = small_net(Tanh, rng)
        loss = MSELoss()
        x = rng.normal(size=(3, 4))
        y = rng.normal(size=(3, 2))
        model.zero_grad()
        pred = model.forward(x)
        dx = model.backward(loss.gradient(pred, y))

        numeric = np.zeros_like(x)
        for i in range(x.size):
            xp = x.copy().ravel()
            xp[i] += EPS
            up = loss.value(model.forward(xp.reshape(x.shape)), y)
            xm = x.copy().ravel()
            xm[i] -= EPS
            down = loss.value(model.forward(xm.reshape(x.shape)), y)
            numeric.ravel()[i] = (up - down) / (2 * EPS)
        np.testing.assert_allclose(dx, numeric, rtol=TOL, atol=TOL)
