"""Integration tests for the in situ campaign writer/reader."""

import json

import numpy as np
import pytest

from repro.datasets import HurricaneDataset
from repro.insitu import CampaignManifest, CampaignReader, InSituWriter
from repro.interpolation import NearestNeighborInterpolator
from repro.metrics import snr
from repro.sampling import MultiCriteriaSampler


@pytest.fixture
def dataset():
    grid = HurricaneDataset.default_grid().with_resolution((12, 12, 6))
    return HurricaneDataset(grid=grid, seed=0)


@pytest.fixture
def writer(dataset):
    return InSituWriter(
        dataset=dataset,
        sampler=MultiCriteriaSampler(seed=5),
        fraction=0.05,
    )


class TestManifest:
    def test_json_roundtrip(self):
        m = CampaignManifest(
            dataset="hurricane",
            attribute="pressure",
            dims=(4, 4, 4),
            spacing=(1, 1, 1),
            origin=(0, 0, 0),
            fraction=0.05,
            timesteps=[0, 8],
            cloud_files={"0": "t0000.vtp", "8": "t0008.vtp"},
        )
        m2 = CampaignManifest.from_json(m.to_json())
        assert m2 == m

    def test_grid_property(self):
        m = CampaignManifest("d", "a", (3, 4, 5), (1, 2, 3), (0, 0, 0), 0.1)
        assert m.grid.dims == (3, 4, 5)


class TestWriterReader:
    def test_writes_clouds_and_manifest(self, writer, tmp_path):
        manifest = writer.run(tmp_path / "camp", timesteps=[0, 10, 20])
        assert manifest.timesteps == [0, 10, 20]
        assert (tmp_path / "camp" / "manifest.json").exists()
        for t in (0, 10, 20):
            assert (tmp_path / "camp" / f"t{t:04d}.vtp").exists()

    def test_reader_loads_samples(self, writer, dataset, tmp_path):
        writer.run(tmp_path / "camp", timesteps=[0, 10])
        reader = CampaignReader(tmp_path / "camp")
        assert reader.timesteps == [0, 10]
        sample = reader.load_sample(10)
        field = dataset.field(t=10)
        np.testing.assert_allclose(sample.values, field.flat[sample.indices])
        assert sample.timestep == 10

    def test_reader_reconstructs_with_method(self, writer, dataset, tmp_path):
        writer.run(tmp_path / "camp", timesteps=[0])
        reader = CampaignReader(tmp_path / "camp")
        volume = reader.reconstruct(0, method=NearestNeighborInterpolator())
        field = dataset.field(t=0)
        assert volume.shape == field.grid.dims
        assert snr(field.values, volume) > 0

    def test_reader_missing_timestep(self, writer, tmp_path):
        writer.run(tmp_path / "camp", timesteps=[0])
        reader = CampaignReader(tmp_path / "camp")
        with pytest.raises(KeyError):
            reader.load_sample(99)

    def test_reader_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CampaignReader(tmp_path)

    def test_validation(self, dataset, writer, tmp_path):
        with pytest.raises(ValueError):
            InSituWriter(dataset, MultiCriteriaSampler(), fraction=0.0)
        with pytest.raises(ValueError):
            writer.run(tmp_path / "c", timesteps=[])


class TestInSituTraining:
    def test_trained_campaign(self, dataset, tmp_path):
        writer = InSituWriter(
            dataset=dataset,
            sampler=MultiCriteriaSampler(seed=5),
            fraction=0.05,
            train_model=True,
            train_fractions=(0.03, 0.10),
            epochs=15,
            finetune_epochs=4,
            model_kwargs={"hidden_layers": (24, 12, 8), "batch_size": 512},
        )
        manifest = writer.run(tmp_path / "camp", timesteps=[0, 16, 32])
        assert manifest.base_model_file is not None
        assert set(manifest.model_files) == {"0", "16", "32"}

        reader = CampaignReader(tmp_path / "camp")
        # Reconstruct with the timestep-specialized model.
        field = dataset.field(t=32)
        volume = reader.reconstruct(32)
        assert snr(field.values, volume) > 0

        # Partial checkpoints are much smaller than the base model.
        base_size = (tmp_path / "camp" / manifest.base_model_file).stat().st_size
        part_size = (tmp_path / "camp" / manifest.model_files["32"]).stat().st_size
        assert part_size < base_size

    def test_load_model_without_training_raises(self, writer, tmp_path):
        writer.run(tmp_path / "camp", timesteps=[0])
        reader = CampaignReader(tmp_path / "camp")
        with pytest.raises(ValueError):
            reader.load_model()

    def test_specialized_vs_base_model_differ(self, dataset, tmp_path):
        writer = InSituWriter(
            dataset=dataset,
            sampler=MultiCriteriaSampler(seed=5),
            fraction=0.05,
            train_model=True,
            train_fractions=(0.05,),
            epochs=10,
            finetune_epochs=4,
            model_kwargs={"hidden_layers": (16, 8), "batch_size": 512},
        )
        writer.run(tmp_path / "camp", timesteps=[0, 24])
        reader = CampaignReader(tmp_path / "camp")
        base = reader.load_model()
        spec = reader.load_model(24)
        w_base = base.model.dense_layers()[-1].weight.value
        w_spec = spec.model.dense_layers()[-1].weight.value
        assert not np.array_equal(w_base, w_spec)
