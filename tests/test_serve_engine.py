"""Fused StackEvaluator: bit-identity to the serial path, stack reuse, chunks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf import DtypePolicy
from repro.perf.weights import restore_weights
from repro.resilience.health import NumericalHealthError
from repro.serve import StackEvaluator


@pytest.fixture
def namespace(serve_registry):
    return serve_registry.namespace("combustion", 0.06)


@pytest.fixture
def serial_rows(serve_registry, namespace):
    """Per-key serial (predict_values, reconstruct) references."""
    base = namespace.base.clone()
    shell = namespace.geometry.shell()
    out = {}
    for key in serve_registry.keys():
        weights, values = serve_registry.hot(key)
        restore_weights(base.model, weights)
        shell.values[...] = values
        out[key] = (
            base.predict_values(shell, namespace.geometry.void_points).copy(),
            base.reconstruct(shell).copy(),
        )
    return out


class TestBitIdentity:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_fused_rows_match_serial_predict_bitwise(
        self, serve_registry, namespace, serial_rows, k
    ):
        evaluator = StackEvaluator(namespace.base, namespace.geometry)
        keys = serve_registry.keys()[:k]
        rows = [serve_registry.hot(key) for key in keys]
        pred, reports = evaluator.evaluate([w for w, _ in rows], [v for _, v in rows])
        assert pred.shape == (k, namespace.geometry.num_voids)
        assert len(reports) == k
        for member, key in enumerate(keys):
            assert pred[member].tobytes() == serial_rows[key][0].tobytes()

    def test_repeated_evaluations_are_stable(self, serve_registry, namespace):
        evaluator = StackEvaluator(namespace.base, namespace.geometry)
        keys = serve_registry.keys()
        rows = [serve_registry.hot(key) for key in keys]
        first, _ = evaluator.evaluate([w for w, _ in rows], [v for _, v in rows])
        # reversed member order through the (reused) warm stack
        second, _ = evaluator.evaluate(
            [w for w, _ in reversed(rows)], [v for _, v in reversed(rows)]
        )
        assert first.tobytes() == second[::-1].copy().tobytes()

    def test_assemble_matches_serial_reconstruct(
        self, serve_registry, namespace, serial_rows
    ):
        evaluator = StackEvaluator(namespace.base, namespace.geometry)
        key = serve_registry.keys()[0]
        weights, values = serve_registry.hot(key)
        pred, _ = evaluator.evaluate([weights], [values])
        volume = evaluator.assemble(values, pred[0])
        assert volume.tobytes() == serial_rows[key][1].tobytes()


class TestStacks:
    def test_stack_reused_per_member_count(self, serve_registry, namespace):
        evaluator = StackEvaluator(namespace.base, namespace.geometry, max_stacks=2)
        rows = [serve_registry.hot(key) for key in serve_registry.keys()[:2]]
        evaluator.evaluate([rows[0][0]], [rows[0][1]])
        one = evaluator._stacks[1]
        evaluator.evaluate([rows[1][0]], [rows[1][1]])
        assert evaluator._stacks[1] is one  # K=1 stack reused, not rebuilt
        evaluator.evaluate([w for w, _ in rows], [v for _, v in rows])
        assert set(evaluator._stacks) == {1, 2}

    def test_stack_lru_bounded(self, serve_registry, namespace):
        evaluator = StackEvaluator(namespace.base, namespace.geometry, max_stacks=1)
        rows = [serve_registry.hot(key) for key in serve_registry.keys()]
        for k in (1, 2, 3):
            evaluator.evaluate([w for w, _ in rows[:k]], [v for _, v in rows[:k]])
            assert list(evaluator._stacks) == [k]

    def test_mismatched_rows_rejected(self, serve_registry, namespace):
        evaluator = StackEvaluator(namespace.base, namespace.geometry)
        weights, values = serve_registry.hot(serve_registry.keys()[0])
        with pytest.raises(ValueError, match="matching"):
            evaluator.evaluate([weights], [values, values])
        with pytest.raises(ValueError, match="matching"):
            evaluator.evaluate([], [])


class TestChunks:
    def test_chunk_bounds_tile_the_voids(self, namespace):
        evaluator = StackEvaluator(namespace.base, namespace.geometry)
        bounds = [evaluator.chunk_bounds(c) for c in range(evaluator.num_chunks())]
        assert bounds[0][0] == 0
        assert bounds[-1][1] == namespace.geometry.num_voids
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start

    def test_chunk_out_of_range(self, namespace):
        evaluator = StackEvaluator(namespace.base, namespace.geometry)
        with pytest.raises(IndexError, match="chunk"):
            evaluator.chunk_bounds(evaluator.num_chunks())
        with pytest.raises(IndexError, match="chunk"):
            evaluator.chunk_bounds(-1)


class TestGuards:
    def test_float32_base_rejected(self, namespace):
        impostor = namespace.base.clone()
        impostor.dtype_policy = DtypePolicy("float32")
        with pytest.raises(ValueError, match="float64"):
            StackEvaluator(impostor, namespace.geometry)

    def test_nonfinite_fallback_and_raise(self, serve_registry, namespace):
        evaluator = StackEvaluator(namespace.base, namespace.geometry)
        weights, values = serve_registry.hot(serve_registry.keys()[0])
        poisoned = np.array(weights, copy=True)
        poisoned[:] = np.nan
        pred, reports = evaluator.evaluate([poisoned], [values], on_nonfinite="fallback")
        assert np.isfinite(pred).all()  # degraded to nearest-neighbor values
        assert reports[0].degraded_points > 0
        with pytest.raises(NumericalHealthError):
            evaluator.evaluate([poisoned], [values], on_nonfinite="raise")

    def test_invalid_on_nonfinite(self, serve_registry, namespace):
        evaluator = StackEvaluator(namespace.base, namespace.geometry)
        weights, values = serve_registry.hot(serve_registry.keys()[0])
        with pytest.raises(ValueError, match="on_nonfinite"):
            evaluator.evaluate([weights], [values], on_nonfinite="shrug")
