"""Runtime sanitizers: each catches a deliberately seeded violation.

Every trigger test is marked ``no_sanitize`` so the conftest-level
``--sanitize`` wiring (which wraps all tests) does not trip over the
intentional violations; the marker plus the ``--sanitize`` flag are
themselves exercised at the bottom via pytester.
"""

from __future__ import annotations

import threading
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.checks.sanitizers import (
    AliasGuard,
    AliasingViolation,
    LockOrderSanitizer,
    LockOrderViolation,
    ShmLeakError,
    ShmLeakTracker,
    sanitize,
)

pytest_plugins = ("pytester",)

pytestmark = pytest.mark.no_sanitize


# ----------------------------------------------------------------- lock order
def test_lock_order_inversion_detected():
    with pytest.raises(LockOrderViolation, match="cyclic lock-acquisition"):
        with LockOrderSanitizer():
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with b:
                with a:  # inversion: b -> a after a -> b
                    pass


def test_lock_order_consistent_nesting_is_clean():
    with LockOrderSanitizer():
        a = threading.Lock()
        b = threading.Lock()
        for _ in range(3):
            with a:
                with b:
                    pass


def test_lock_order_detects_inversion_across_threads():
    with pytest.raises(LockOrderViolation):
        with LockOrderSanitizer():
            a = threading.Lock()
            b = threading.Lock()

            def forward():
                with a:
                    with b:
                        pass

            def backward():
                with b:
                    with a:
                        pass

            t1 = threading.Thread(target=forward)
            t1.start()
            t1.join()
            t2 = threading.Thread(target=backward)
            t2.start()
            t2.join()


def test_lock_order_rlock_reentry_is_not_an_edge():
    with LockOrderSanitizer():
        r = threading.RLock()
        with r:
            with r:  # re-entrant acquire of the same lock: no self-edge
                pass


def test_lock_order_restores_threading_factories():
    original = threading.Lock
    with LockOrderSanitizer():
        assert threading.Lock is not original
    assert threading.Lock is original


def test_lock_proxy_supports_blocking_protocol():
    with LockOrderSanitizer():
        lock = threading.Lock()
        assert lock.acquire(timeout=1.0)
        assert lock.locked()
        assert not lock.acquire(blocking=False)  # failed acquire: no record
        lock.release()
        assert not lock.locked()


# ------------------------------------------------------------------ shm leaks
def test_shm_leak_detected_and_cleaned():
    leaked_name = None
    with pytest.raises(ShmLeakError, match="never unlinked"):
        with ShmLeakTracker(cleanup=True):
            seg = shared_memory.SharedMemory(create=True, size=64)
            leaked_name = seg.name
            seg.close()  # close() alone does not release the segment
    # cleanup=True unlinked the stranded segment before raising
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=leaked_name)


def test_shm_balanced_lifecycle_is_clean():
    with ShmLeakTracker():
        seg = shared_memory.SharedMemory(create=True, size=64)
        seg.buf[0] = 7
        seg.close()
        seg.unlink()


def test_shm_attach_is_not_a_creation():
    outer = shared_memory.SharedMemory(create=True, size=64)
    try:
        with ShmLeakTracker():
            view = shared_memory.SharedMemory(name=outer.name)
            view.close()  # attach-only: tracker must not demand unlink
    finally:
        outer.close()
        outer.unlink()


def test_shm_bundle_lifecycle_is_clean_under_tracker():
    """SharedArrayBundle.close() releases and unlinks deterministically."""
    from repro.perf import SharedArrayBundle

    with ShmLeakTracker():
        bundle = SharedArrayBundle.create({"a": np.arange(8.0)})
        bundle.close()


def test_shm_worker_crash_between_attach_and_read_is_clean():
    """A worker dying right after attach must not strand the segment.

    The parent's close() is the sole unlink authority; the tracker
    verifies that a crash inside the attach window leaves nothing behind
    once the parent tears the bundle down.
    """
    from repro.perf import SharedArrayBundle, attached_arrays

    with ShmLeakTracker():
        bundle = SharedArrayBundle.create({"a": np.arange(8.0)})
        with pytest.raises(RuntimeError, match="between attach"):
            with attached_arrays(bundle.specs):
                raise RuntimeError("crash between attach and first read")
        bundle.close()


def test_shm_tracker_restores_patches():
    orig_init = shared_memory.SharedMemory.__init__
    orig_unlink = shared_memory.SharedMemory.unlink
    with ShmLeakTracker():
        assert shared_memory.SharedMemory.__init__ is not orig_init
    assert shared_memory.SharedMemory.__init__ is orig_init
    assert shared_memory.SharedMemory.unlink is orig_unlink


# ------------------------------------------------------------------- aliasing
def test_alias_guard_catches_matmul_out_aliasing_input():
    with AliasGuard():
        x = np.eye(4)
        w = np.ones((4, 4))
        with pytest.raises(AliasingViolation, match="shares memory"):
            np.matmul(x, w, out=x)


def test_alias_guard_catches_overlapping_views():
    with AliasGuard():
        buf = np.zeros((8, 8))
        with pytest.raises(AliasingViolation):
            np.matmul(buf[:4], np.ones((8, 4)), out=buf[2:6, :4])


def test_alias_guard_passes_disjoint_out():
    with AliasGuard():
        x = np.arange(16.0).reshape(4, 4)
        w = np.eye(4)
        out = np.empty((4, 4))
        np.matmul(x, w, out=out)
        np.testing.assert_array_equal(out, x)


def test_alias_guard_leaves_elementwise_inplace_alone():
    with AliasGuard():
        x = np.arange(4.0)
        np.multiply(x, 2.0, out=x)  # elementwise in-place is well-defined
        np.testing.assert_array_equal(x, [0.0, 2.0, 4.0, 6.0])


def test_alias_guard_restores_numpy():
    orig = np.matmul
    with AliasGuard():
        assert np.matmul is not orig
    assert np.matmul is orig


# ------------------------------------------------------------ combined + flag
def test_sanitize_stacks_all_three():
    with sanitize():
        lock = threading.Lock()
        with lock:
            pass
        seg = shared_memory.SharedMemory(create=True, size=32)
        seg.close()
        seg.unlink()
        out = np.empty(3)
        np.dot(np.eye(3), np.ones(3), out=out)


def test_pytest_sanitize_flag_fails_seeded_leak(pytester: pytest.Pytester):
    pytester.makeconftest(
        """
import pytest

def pytest_addoption(parser):
    parser.addoption("--sanitize", action="store_true", default=False)

def pytest_configure(config):
    config.addinivalue_line("markers", "no_sanitize: disable sanitizers")

@pytest.fixture(autouse=True)
def _runtime_sanitizers(request):
    if not request.config.getoption("--sanitize") or request.node.get_closest_marker(
        "no_sanitize"
    ):
        yield
        return
    from repro.checks.sanitizers import sanitize
    with sanitize():
        yield
"""
    )
    pytester.makepyfile(
        """
import pathlib
from multiprocessing import shared_memory

def test_leaks_a_segment():
    seg = shared_memory.SharedMemory(create=True, size=16)
    pathlib.Path("leaked_name.txt").write_text(seg.name)
    seg.close()  # deliberately never unlinked
"""
    )
    assert pytester.runpytest().ret == 0  # without the flag: passes
    # tidy up the genuinely leaked segment from the unflagged run
    name = (pytester.path / "leaked_name.txt").read_text()
    seg = shared_memory.SharedMemory(name=name)
    seg.close()
    seg.unlink()
    result = pytester.runpytest("--sanitize")
    result.assert_outcomes(passed=1, errors=1)
    result.stdout.fnmatch_lines(["*ShmLeakError*"])


def test_pytest_no_sanitize_marker_opts_out(pytester: pytest.Pytester):
    pytester.makeconftest(
        """
import pytest

def pytest_addoption(parser):
    parser.addoption("--sanitize", action="store_true", default=False)

def pytest_configure(config):
    config.addinivalue_line("markers", "no_sanitize: disable sanitizers")

@pytest.fixture(autouse=True)
def _runtime_sanitizers(request):
    if not request.config.getoption("--sanitize") or request.node.get_closest_marker(
        "no_sanitize"
    ):
        yield
        return
    from repro.checks.sanitizers import sanitize
    with sanitize():
        yield
"""
    )
    pytester.makepyfile(
        """
import pytest
from multiprocessing import shared_memory

@pytest.mark.no_sanitize
def test_marker_disables_tracking():
    seg = shared_memory.SharedMemory(create=True, size=16)
    seg.close()
"""
    )
    pytester.runpytest("--sanitize").assert_outcomes(passed=1)
