"""Unit tests for .pvd collection files."""

import pytest

from repro.io import read_pvd, write_pvd


class TestPVD:
    def test_roundtrip(self, tmp_path):
        entries = [(0.0, "t0000.vtp"), (8.0, "t0008.vtp"), (16.0, "t0016.vtp")]
        path = tmp_path / "c.pvd"
        write_pvd(path, entries)
        assert read_pvd(path) == entries

    def test_is_collection_xml(self, tmp_path):
        path = tmp_path / "c.pvd"
        write_pvd(path, [(0.0, "a.vti")])
        text = path.read_text()
        assert 'type="Collection"' in text and "DataSet" in text

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_pvd(tmp_path / "c.pvd", [])

    def test_read_rejects_other_vtk(self, tmp_path):
        path = tmp_path / "x.pvd"
        path.write_text("<VTKFile type='ImageData'/>")
        with pytest.raises(ValueError):
            read_pvd(path)

    def test_campaign_writes_pvd(self, tmp_path):
        from repro.datasets import HurricaneDataset
        from repro.insitu import InSituWriter
        from repro.sampling import RandomSampler

        data = HurricaneDataset(
            grid=HurricaneDataset.default_grid().with_resolution((8, 8, 4))
        )
        InSituWriter(data, RandomSampler(seed=0), fraction=0.1).run(
            tmp_path / "camp", timesteps=[0, 10]
        )
        entries = read_pvd(tmp_path / "camp" / "campaign.pvd")
        assert [t for t, _ in entries] == [0.0, 10.0]
        for _, fname in entries:
            assert (tmp_path / "camp" / fname).exists()
