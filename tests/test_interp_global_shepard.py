"""Unit tests for the classic (global) Shepard interpolator."""

import numpy as np
import pytest

from repro.datasets.base import TimestepField
from repro.interpolation import GlobalShepardInterpolator, ModifiedShepardInterpolator
from repro.metrics import snr
from repro.sampling import RandomSampler


class TestGlobalShepard:
    def test_reconstruct_shape_and_finite(self, sample):
        out = GlobalShepardInterpolator().reconstruct(sample)
        assert out.shape == sample.grid.dims
        assert np.isfinite(out).all()

    def test_exact_at_samples(self, sample):
        out = GlobalShepardInterpolator().reconstruct(sample).ravel()
        np.testing.assert_allclose(out[sample.indices], sample.values)

    def test_constant_field_exact(self, grid):
        field = TimestepField(grid, np.full(grid.dims, 3.5), timestep=0)
        s = RandomSampler(seed=0).sample(field, 0.1)
        out = GlobalShepardInterpolator().reconstruct(s)
        np.testing.assert_allclose(out, 3.5, rtol=1e-9)

    def test_bounded_by_sample_range(self, dense_sample):
        out = GlobalShepardInterpolator().reconstruct(dense_sample)
        assert out.min() >= dense_sample.values.min() - 1e-9
        assert out.max() <= dense_sample.values.max() + 1e-9

    def test_chunking_invariant(self, sample):
        big = GlobalShepardInterpolator(chunk_rows=10_000).reconstruct(sample)
        small = GlobalShepardInterpolator(chunk_rows=7).reconstruct(sample)
        np.testing.assert_allclose(big, small)

    def test_modified_variant_is_better(self, hurricane_field, sample):
        # The paper calls the modified method "an improvement over the
        # original Shepard's method" — verify, don't assume.
        classic = GlobalShepardInterpolator().reconstruct(sample)
        modified = ModifiedShepardInterpolator().reconstruct(sample)
        assert snr(hurricane_field.values, modified) > snr(hurricane_field.values, classic)

    def test_validation(self):
        with pytest.raises(ValueError):
            GlobalShepardInterpolator(power=0.0)
        with pytest.raises(ValueError):
            GlobalShepardInterpolator(chunk_rows=0)

    def test_registered(self):
        from repro.interpolation import available_interpolators

        assert "shepard-global" in available_interpolators()
