"""Unit tests for repro.grid.uniform.UniformGrid."""

import numpy as np
import pytest

from repro.grid import UniformGrid


class TestConstruction:
    def test_basic_properties(self):
        g = UniformGrid((4, 5, 6), spacing=(1.0, 2.0, 3.0), origin=(10.0, 20.0, 30.0))
        assert g.num_points == 120
        assert g.shape == (4, 5, 6)

    def test_extent(self):
        g = UniformGrid((3, 2, 5), spacing=(1.0, 4.0, 0.5), origin=(0.0, 1.0, -1.0))
        assert g.extent == ((0.0, 2.0), (1.0, 5.0), (-1.0, 1.0))

    def test_defaults(self):
        g = UniformGrid((2, 2, 2))
        assert g.spacing == (1.0, 1.0, 1.0)
        assert g.origin == (0.0, 0.0, 0.0)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            UniformGrid((0, 2, 2))
        with pytest.raises(ValueError):
            UniformGrid((2, 2))  # type: ignore[arg-type]

    def test_rejects_bad_spacing(self):
        with pytest.raises(ValueError):
            UniformGrid((2, 2, 2), spacing=(1.0, 0.0, 1.0))
        with pytest.raises(ValueError):
            UniformGrid((2, 2, 2), spacing=(1.0, -1.0, 1.0))

    def test_frozen_and_hashable(self):
        g = UniformGrid((2, 2, 2))
        assert hash(g) == hash(UniformGrid((2, 2, 2)))
        with pytest.raises(Exception):
            g.dims = (3, 3, 3)  # type: ignore[misc]

    def test_equality(self):
        a = UniformGrid((2, 3, 4), spacing=(1, 1, 1))
        b = UniformGrid((2, 3, 4), spacing=(1, 1, 1))
        c = UniformGrid((2, 3, 4), spacing=(2, 1, 1))
        assert a == b and a != c

    def test_coerces_types(self):
        g = UniformGrid((np.int64(2), 3, 4))
        assert isinstance(g.dims[0], int)


class TestCoordinates:
    def test_axis_coordinates(self):
        g = UniformGrid((3, 2, 2), spacing=(0.5, 1, 1), origin=(1.0, 0, 0))
        np.testing.assert_allclose(g.axis_coordinates(0), [1.0, 1.5, 2.0])

    def test_axis_coordinates_bad_axis(self):
        with pytest.raises(ValueError):
            UniformGrid((2, 2, 2)).axis_coordinates(3)

    def test_points_shape_and_order(self):
        g = UniformGrid((2, 3, 4))
        pts = g.points()
        assert pts.shape == (24, 3)
        # C order: z fastest
        np.testing.assert_allclose(pts[0], [0, 0, 0])
        np.testing.assert_allclose(pts[1], [0, 0, 1])
        np.testing.assert_allclose(pts[4], [0, 1, 0])
        np.testing.assert_allclose(pts[12], [1, 0, 0])

    def test_points_match_flat_field_order(self, grid):
        x, y, z = grid.meshgrid()
        field = 2 * x + 3 * y - z
        pts = grid.points()
        recomputed = 2 * pts[:, 0] + 3 * pts[:, 1] - pts[:, 2]
        np.testing.assert_allclose(recomputed, field.ravel())


class TestIndexing:
    def test_flat_multi_roundtrip(self, grid):
        flat = np.arange(grid.num_points)
        multi = grid.flat_to_multi(flat)
        np.testing.assert_array_equal(grid.multi_to_flat(multi), flat)

    def test_index_to_position(self):
        g = UniformGrid((4, 4, 4), spacing=(2, 2, 2), origin=(1, 1, 1))
        pos = g.index_to_position(np.array([[1, 2, 3]]))
        np.testing.assert_allclose(pos, [[3.0, 5.0, 7.0]])

    def test_position_to_index_rounds_to_nearest(self):
        g = UniformGrid((4, 4, 4))
        idx = g.position_to_index(np.array([[0.4, 1.6, 2.5]]))
        assert idx[0, 0] == 0 and idx[0, 1] == 2

    def test_position_to_index_clamps(self):
        g = UniformGrid((4, 4, 4))
        idx = g.position_to_index(np.array([[-5.0, 10.0, 1.0]]))
        np.testing.assert_array_equal(idx[0], [0, 3, 1])

    def test_contains(self):
        g = UniformGrid((3, 3, 3), spacing=(1, 1, 1), origin=(0, 0, 0))
        inside = g.contains(np.array([[0, 0, 0], [2, 2, 2], [1, 1, 1]]))
        outside = g.contains(np.array([[-0.5, 0, 0], [0, 0, 2.5]]))
        assert inside.all()
        assert not outside.any()


class TestFields:
    def test_validate_field_flat(self, grid):
        flat = np.zeros(grid.num_points)
        assert grid.validate_field(flat).shape == grid.dims

    def test_validate_field_3d(self, grid):
        vol = np.zeros(grid.dims)
        assert grid.validate_field(vol) is vol

    def test_validate_field_rejects_wrong_shape(self, grid):
        with pytest.raises(ValueError):
            grid.validate_field(np.zeros(grid.num_points + 1))

    def test_empty_field(self, grid):
        f = grid.empty_field()
        assert f.shape == grid.dims and np.isnan(f).all()

    def test_empty_field_fill(self, grid):
        f = grid.empty_field(fill=7.0)
        assert (f == 7.0).all()


class TestResolution:
    def test_with_resolution_preserves_extent(self):
        g = UniformGrid((5, 5, 5), spacing=(1, 1, 1))
        fine = g.with_resolution((9, 9, 9))
        assert fine.extent == g.extent
        assert fine.spacing == (0.5, 0.5, 0.5)

    def test_with_resolution_single_point_axis(self):
        g = UniformGrid((5, 5, 1))
        fine = g.with_resolution((9, 9, 1))
        assert fine.spacing[2] == g.spacing[2]

    def test_with_resolution_rejects_zero(self):
        with pytest.raises(ValueError):
            UniformGrid((5, 5, 5)).with_resolution((0, 5, 5))

    def test_describe_mentions_dims(self, grid):
        text = grid.describe()
        assert "12x10x8" in text
