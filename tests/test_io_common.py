"""Unit tests for the shared VTK XML encode/decode layer."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.io.common import (
    DTYPE_TO_VTK_TYPE,
    VTK_TYPE_TO_DTYPE,
    decode_data_array,
    encode_data_array,
)


def roundtrip(array, binary):
    parent = ET.Element("PointData")
    encode_data_array(parent, "x", array, binary=binary)
    return decode_data_array(parent.find("DataArray"))


class TestEncodeDecode:
    @pytest.mark.parametrize("binary", [True, False])
    @pytest.mark.parametrize(
        "dtype", [np.float64, np.float32, np.int64, np.int32, np.uint8]
    )
    def test_roundtrip_dtypes(self, binary, dtype, rng):
        if np.issubdtype(dtype, np.floating):
            arr = rng.normal(size=17).astype(dtype)
        else:
            arr = rng.integers(0, 100, size=17).astype(dtype)
        out = roundtrip(arr, binary)
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == np.dtype(dtype).newbyteorder("<") or out.dtype == dtype

    @pytest.mark.parametrize("binary", [True, False])
    def test_roundtrip_2d_components(self, binary, rng):
        arr = rng.normal(size=(9, 3))
        out = roundtrip(arr, binary)
        assert out.shape == (9, 3)
        np.testing.assert_allclose(out, arr)

    def test_ascii_float_full_precision(self):
        # repr-based ASCII encoding must not lose bits.
        arr = np.array([1 / 3, np.pi, 1e-300])
        out = roundtrip(arr, binary=False)
        np.testing.assert_array_equal(out, arr)

    def test_empty_array(self):
        out = roundtrip(np.array([], dtype=np.float64), binary=False)
        assert out.size == 0

    def test_rejects_3d(self):
        parent = ET.Element("PointData")
        with pytest.raises(ValueError):
            encode_data_array(parent, "x", np.zeros((2, 2, 2)), binary=False)

    def test_rejects_unsupported_dtype(self):
        parent = ET.Element("PointData")
        with pytest.raises(TypeError):
            encode_data_array(parent, "x", np.zeros(3, dtype=np.complex128), binary=False)

    def test_decode_rejects_unknown_type(self):
        el = ET.Element("DataArray", {"type": "Float128", "format": "ascii"})
        with pytest.raises(ValueError):
            decode_data_array(el)

    def test_decode_rejects_appended_format(self):
        el = ET.Element("DataArray", {"type": "Float64", "format": "appended"})
        with pytest.raises(ValueError):
            decode_data_array(el)

    def test_type_maps_consistent(self):
        for name, dt in VTK_TYPE_TO_DTYPE.items():
            assert DTYPE_TO_VTK_TYPE[str(dt)] == name
