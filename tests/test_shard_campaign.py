"""Shard-parallel campaigns: bit-identity, SNR parity, journal refusal.

The tentpole contract under test:

* ``shard_scope="global"`` with a stencil-covering halo is **bit-identical**
  to the unsharded campaign — through the in-process sink, the shm pool,
  and ``run_campaign`` itself (serial and batched fine-tune alike);
* ``shard_scope="local"`` (one model per (timestep, shard)) holds SNR
  parity (<= 0.1 dB) with the unsharded batched campaign;
* a sharded journal refuses an unsharded resume and vice versa (and any
  shard-geometry mismatch), exactly like the serial<->batched guard;
* sharded in situ campaigns write per-shard Case-2 checkpoints the reader
  stitches back into a global field.

Every test in this file runs clean under ``--sanitize`` (no ``no_sanitize``
markers): the sharded reconstruction path is part of the sanitized CI job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FCNNReconstructor, ReconstructionPipeline
from repro.datasets import make_dataset
from repro.insitu import CampaignReader, InSituWriter
from repro.metrics import score_reconstruction
from repro.perf.campaign import CampaignGeometry, LocalReconstructionSink
from repro.perf.weights import snapshot_weights
from repro.resilience.journal import JournalCorruptionError
from repro.sampling import MultiCriteriaSampler
from repro.shard import (
    LocalShardSink,
    ShardPlan,
    ShardReconstructionPool,
    ShardedCampaignGeometry,
    fine_tune_shards,
    make_shard_sink,
    shard_field,
    shard_sample,
)

DIMS = (12, 12, 8)
TIMESTEPS = (0, 2, 4)
FRACTION = 0.15
#: covers the whole grid from any shard on these dims: provably exact seams
BIG_HALO = 12


@pytest.fixture(scope="module")
def campaign_pipeline():
    data = make_dataset("combustion", dims=DIMS, seed=0)
    return ReconstructionPipeline(
        data, train_fractions=(0.02, 0.05), keep_reconstructions=True
    )


@pytest.fixture(scope="module")
def base_model(campaign_pipeline):
    model = FCNNReconstructor(hidden_layers=(16, 8), batch_size=1024, seed=7)
    campaign_pipeline.train_fcnn(model, timestep=TIMESTEPS[0], epochs=3)
    return model


def _strip_timing(rows):
    return [{k: v for k, v in row.items() if k != "finetune_seconds"} for row in rows]


def _snr(campaign_pipeline, t, volume):
    field = campaign_pipeline.field(t)
    return score_reconstruction(field.values, volume).snr


# ------------------------------------------------------------ sink parity
class TestShardSinks:
    def _drive(self, sink, campaign_pipeline, base_model, geometry):
        shell = geometry.shell()
        model = base_model.clone()
        volumes = []
        for t in TIMESTEPS:
            field = campaign_pipeline.field(t)
            geometry.refresh(shell, field)
            train = [campaign_pipeline.sample(field, f) for f in (0.02, 0.05)]
            model.fine_tune(field, train, epochs=1)
            flat = snapshot_weights(model.model).data
            slot = sink.publish(t, shell.values, {"fcnn": flat})
            volume, report = sink.reconstruct(slot, "fcnn")
            assert report.ok
            volumes.append(volume)
        return volumes

    @pytest.fixture(scope="class")
    def geometry(self, campaign_pipeline):
        return CampaignGeometry.from_sample(
            campaign_pipeline.sample(campaign_pipeline.field(TIMESTEPS[0]), FRACTION)
        )

    @pytest.fixture(scope="class")
    def reference(self, geometry, campaign_pipeline, base_model):
        with LocalReconstructionSink(slots=2) as sink:
            sink.bind(geometry, {"fcnn": base_model.clone()})
            return self._drive(sink, campaign_pipeline, base_model, geometry)

    def test_local_shard_sink_bit_identical_to_unsharded(
        self, geometry, campaign_pipeline, base_model, reference
    ):
        plan = ShardPlan.create(geometry.grid, (2, 2, 1), BIG_HALO)
        sharded = ShardedCampaignGeometry(plan, geometry)
        assert sharded.seam_check(base_model.extractor.num_neighbors).exact
        with LocalShardSink(slots=2) as sink:
            sink.bind(sharded, {"fcnn": base_model.clone()})
            got = self._drive(sink, campaign_pipeline, base_model, geometry)
        assert [v.tobytes() for v in got] == [v.tobytes() for v in reference]

    def test_shard_pool_bit_identical_over_shm(
        self, geometry, campaign_pipeline, base_model, reference
    ):
        plan = ShardPlan.create(geometry.grid, (2, 2, 1), BIG_HALO)
        sharded = ShardedCampaignGeometry(plan, geometry)
        pool = ShardReconstructionPool(max_workers=2)
        try:
            pool.bind(sharded, {"fcnn": base_model.clone()})
        except OSError:
            pool.close()
            pytest.skip("shared memory unavailable on this host")
        with pool:
            got = self._drive(pool, campaign_pipeline, base_model, geometry)
        assert [v.tobytes() for v in got] == [v.tobytes() for v in reference]

    def test_make_shard_sink_falls_back_to_local(self, geometry, base_model):
        from repro.resilience.faults import ShmUnavailableFault

        plan = ShardPlan.create(geometry.grid, (2, 1, 1), BIG_HALO)
        sharded = ShardedCampaignGeometry(plan, geometry)
        with ShmUnavailableFault(mode="create") as fault:
            sink = make_shard_sink(sharded, {"fcnn": base_model.clone()})
            try:
                assert isinstance(sink, LocalShardSink)
            finally:
                sink.close()
        assert fault.fires >= 1


# ----------------------------------------------------- run_campaign wiring
class TestRunCampaignSharded:
    def _run(self, campaign_pipeline, base_model, **kwargs):
        kwargs.setdefault("warm_pool", False)
        kwargs.setdefault("pipeline", False)
        return campaign_pipeline.run_campaign(
            base_model.clone(), TIMESTEPS, FRACTION, finetune_epochs=2, **kwargs
        )

    @pytest.fixture(scope="class")
    def serial_reference(self, campaign_pipeline, base_model):
        return self._run(campaign_pipeline, base_model)

    @pytest.fixture(scope="class")
    def batched_reference(self, campaign_pipeline, base_model):
        return self._run(campaign_pipeline, base_model, batched_finetune=True)

    def test_result_records_shard_geometry(
        self, campaign_pipeline, base_model, serial_reference
    ):
        result = self._run(
            campaign_pipeline, base_model, shards="2x2x1", halo=BIG_HALO
        )
        assert result.shards == (2, 2, 1)
        assert result.halo == BIG_HALO
        assert serial_reference.shards is None and serial_reference.halo is None

    def test_global_scope_bit_identical_serial(
        self, campaign_pipeline, base_model, serial_reference
    ):
        sharded = self._run(
            campaign_pipeline, base_model, shards=(2, 2, 1), halo=BIG_HALO
        )
        assert _strip_timing(sharded.rows) == _strip_timing(serial_reference.rows)
        for mine, theirs in zip(
            sharded.reconstructions, serial_reference.reconstructions
        ):
            assert mine.tobytes() == theirs.tobytes()

    def test_global_scope_bit_identical_batched(
        self, campaign_pipeline, base_model, batched_reference
    ):
        sharded = self._run(
            campaign_pipeline,
            base_model,
            batched_finetune=True,
            shards="4",
            halo=BIG_HALO,
        )
        assert _strip_timing(sharded.rows) == _strip_timing(batched_reference.rows)
        for mine, theirs in zip(
            sharded.reconstructions, batched_reference.reconstructions
        ):
            assert mine.tobytes() == theirs.tobytes()

    def test_local_scope_snr_parity(
        self, campaign_pipeline, base_model, batched_reference
    ):
        sharded = self._run(
            campaign_pipeline,
            base_model,
            batched_finetune=True,
            shards=(2, 1, 1),
            halo=6,
            shard_scope="local",
        )
        assert all(np.isfinite(v).all() for v in sharded.reconstructions)
        for mine, theirs in zip(sharded.rows, batched_reference.rows):
            assert abs(mine["snr"] - theirs["snr"]) <= 0.1, (
                f"t={mine['timestep']}: local-scope SNR {mine['snr']:.4f} vs "
                f"unsharded {theirs['snr']:.4f}"
            )

    def test_small_halo_keeps_samples_exact_and_snr_parity(
        self, campaign_pipeline, base_model, serial_reference
    ):
        # halo=1 is far below the padded stencil: seams may move neighbor
        # selections, but samples stay exact and quality holds parity.
        sharded = self._run(campaign_pipeline, base_model, shards=(2, 2, 1), halo=1)
        sample = campaign_pipeline.sample(
            campaign_pipeline.field(TIMESTEPS[0]), FRACTION
        )
        for t, mine, theirs in zip(
            TIMESTEPS, sharded.reconstructions, serial_reference.reconstructions
        ):
            assert np.isfinite(mine).all()
            field = campaign_pipeline.field(t)
            assert np.array_equal(
                mine.ravel()[sample.indices], field.values.ravel()[sample.indices]
            )
            snr_mine = _snr(campaign_pipeline, t, mine)
            snr_ref = _snr(campaign_pipeline, t, theirs)
            assert abs(snr_mine - snr_ref) <= 0.1

    def test_validation(self, campaign_pipeline, base_model):
        with pytest.raises(ValueError, match="halo requires shards"):
            self._run(campaign_pipeline, base_model, halo=2)
        with pytest.raises(ValueError, match="shard_scope"):
            self._run(
                campaign_pipeline, base_model, shards="2", shard_scope="sideways"
            )
        with pytest.raises(ValueError, match="batched"):
            self._run(campaign_pipeline, base_model, shards="2", shard_scope="local")


# ------------------------------------------------- journal geometry guard
class TestShardJournal:
    def _run(self, campaign_pipeline, base_model, wal, **kwargs):
        kwargs.setdefault("warm_pool", False)
        kwargs.setdefault("pipeline", False)
        return campaign_pipeline.run_campaign(
            base_model.clone(),
            TIMESTEPS,
            FRACTION,
            finetune_epochs=2,
            journal=wal,
            **kwargs,
        )

    def test_sharded_journal_refuses_unsharded_resume(
        self, campaign_pipeline, base_model, tmp_path
    ):
        wal = tmp_path / "journal.jsonl"
        self._run(campaign_pipeline, base_model, wal, shards=(2, 1, 1), halo=4)
        with pytest.raises(JournalCorruptionError, match="config"):
            self._run(campaign_pipeline, base_model, wal, resume=True)

    def test_unsharded_journal_refuses_sharded_resume(
        self, campaign_pipeline, base_model, tmp_path
    ):
        wal = tmp_path / "journal.jsonl"
        self._run(campaign_pipeline, base_model, wal)
        with pytest.raises(JournalCorruptionError, match="config"):
            self._run(
                campaign_pipeline, base_model, wal,
                shards=(2, 1, 1), halo=4, resume=True,
            )

    def test_shard_geometry_mismatch_refused(
        self, campaign_pipeline, base_model, tmp_path
    ):
        wal = tmp_path / "journal.jsonl"
        self._run(campaign_pipeline, base_model, wal, shards=(2, 1, 1), halo=4)
        with pytest.raises(JournalCorruptionError, match="config"):
            self._run(
                campaign_pipeline, base_model, wal,
                shards=(2, 2, 1), halo=4, resume=True,
            )
        with pytest.raises(JournalCorruptionError, match="config"):
            self._run(
                campaign_pipeline, base_model, wal,
                shards=(2, 1, 1), halo=5, resume=True,
            )

    def test_sharded_resume_completes_bit_identically(
        self, campaign_pipeline, base_model, tmp_path
    ):
        import repro.resilience.chaos as chaos

        kwargs = dict(shards=(2, 1, 1), halo=BIG_HALO)
        full = self._run(
            campaign_pipeline, base_model, tmp_path / "full.jsonl", **kwargs
        )
        wal = tmp_path / "torn.jsonl"
        self._run(campaign_pipeline, base_model, wal, **kwargs)
        assert chaos.torn_tail(wal, drop_records=3) > 0
        resumed = self._run(
            campaign_pipeline, base_model, wal, resume=True, **kwargs
        )
        assert 0 < resumed.resumed < len(TIMESTEPS)
        assert _strip_timing(resumed.rows) == _strip_timing(full.rows)
        for i in range(resumed.resumed, len(TIMESTEPS)):
            assert (
                resumed.reconstructions[i].tobytes()
                == full.reconstructions[i].tobytes()
            )


# ------------------------------------------------- per-shard fine-tuning
class TestFineTuneShards:
    def test_shard_field_and_sample_restriction(self, campaign_pipeline):
        field = campaign_pipeline.field(TIMESTEPS[0])
        plan = ShardPlan.create(field.grid, (2, 1, 1), 2)
        shard = plan.shards[0]
        local = shard_field(shard, field)
        assert local.grid == shard.local_grid
        assert np.array_equal(
            local.values, field.values[: shard.ext_hi[0], :, :]
        )
        sample = campaign_pipeline.sample(field, FRACTION)
        restricted = shard_sample(shard, sample)
        assert restricted.grid == shard.local_grid
        # Restriction keeps values paired with their (relocated) indices.
        back = shard.local_to_global(restricted.indices)
        lookup = dict(zip(sample.indices.tolist(), sample.values.tolist()))
        assert all(
            lookup[int(g)] == float(v)
            for g, v in zip(back, restricted.values)
        )

    def test_empty_shard_sample_rejected(self, campaign_pipeline):
        field = campaign_pipeline.field(TIMESTEPS[0])
        plan = ShardPlan.create(field.grid, (2, 1, 1), 0)
        sample = campaign_pipeline.sample(field, FRACTION)
        left = sample.indices[
            plan.shards[0].contains(field.grid.flat_to_multi(sample.indices))
        ]
        from repro.sampling import SampledField

        left_only = SampledField(
            grid=field.grid,
            indices=left,
            values=field.values.ravel()[left],
            fraction=FRACTION,
        )
        with pytest.raises(ValueError, match="no training samples"):
            shard_sample(plan.shards[1], left_only)

    def test_fine_tune_shards_stacks(self, campaign_pipeline, base_model):
        fields = [campaign_pipeline.field(t) for t in TIMESTEPS[:2]]
        trains = [
            [campaign_pipeline.sample(f, fr) for fr in (0.02, 0.05)] for f in fields
        ]
        plan = ShardPlan.create(fields[0].grid, (2, 1, 1), 4)
        before = snapshot_weights(base_model.model).data.copy()
        stacks, histories = fine_tune_shards(
            base_model, fields, trains, plan, epochs=1
        )
        assert len(stacks) == len(histories) == 2
        for stack in stacks:
            assert stack.shape == (2, before.size)
        # The base model is never mutated, and shards actually diverge.
        assert snapshot_weights(base_model.model).data.tobytes() == before.tobytes()
        assert stacks[0][0].tobytes() != stacks[0][1].tobytes()


# --------------------------------------------------- sharded in situ + CLI
class TestShardedInSitu:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_dataset("combustion", dims=DIMS, seed=0)

    def _writer(self, dataset, **kw):
        return InSituWriter(
            dataset=dataset,
            sampler=MultiCriteriaSampler(seed=5),
            fraction=FRACTION,
            train_model=True,
            train_fractions=(0.02, 0.05),
            epochs=3,
            finetune_epochs=2,
            model_kwargs={"hidden_layers": (16, 8), "seed": 7},
            **kw,
        )

    def test_sharded_campaign_roundtrip(self, dataset, tmp_path):
        target = tmp_path / "campaign"
        manifest = self._writer(dataset, shards="2x1x1", halo=4).run(
            target, TIMESTEPS
        )
        assert manifest.shards == (2, 1, 1) and manifest.halo == 4
        for t in TIMESTEPS[1:]:
            assert len(manifest.shard_model_files[str(t)]) == 2
        reader = CampaignReader(target)
        assert reader.shard_plan.counts == (2, 1, 1)
        t = TIMESTEPS[1]
        volume = reader.reconstruct(t)
        field = dataset.field(t=t)
        assert volume.shape == field.values.shape
        assert np.isfinite(volume).all()
        sample = reader.load_sample(t)
        assert np.array_equal(volume.ravel()[sample.indices], sample.values)
        # Stitched quality stays in the same band as an unsharded campaign.
        plain = tmp_path / "plain"
        self._writer(dataset).run(plain, TIMESTEPS)
        ref = CampaignReader(plain).reconstruct(t)
        delta = abs(
            score_reconstruction(field.values, volume).snr
            - score_reconstruction(field.values, ref).snr
        )
        assert delta <= 1.0

    def test_per_shard_model_access(self, dataset, tmp_path):
        target = tmp_path / "campaign"
        self._writer(dataset, shards=(2, 1, 1), halo=4).run(target, TIMESTEPS)
        reader = CampaignReader(target)
        t = TIMESTEPS[1]
        assert reader.load_model(t, shard=1) is not None
        with pytest.raises(KeyError, match="per-shard"):
            reader.load_model(t)
        with pytest.raises(IndexError, match="out of range"):
            reader.load_model(t, shard=9)
        # The base timestep trains globally: no shard argument needed.
        assert reader.load_model(TIMESTEPS[0]) is not None

    def test_manifest_backward_compatible(self, dataset, tmp_path):
        from repro.insitu.campaign import CampaignManifest

        target = tmp_path / "plain"
        manifest = self._writer(dataset).run(target, TIMESTEPS[:2])
        text = manifest.to_json()
        assert "shard_model_files" not in text  # old readers see old schema
        again = CampaignManifest.from_json(text)
        assert again.shards is None and again.shard_model_files == {}

    def test_shards_require_training(self, dataset):
        with pytest.raises(ValueError, match="train_model"):
            InSituWriter(
                dataset, MultiCriteriaSampler(seed=5), FRACTION, shards="2"
            )
        with pytest.raises(ValueError, match="halo requires shards"):
            InSituWriter(
                dataset,
                MultiCriteriaSampler(seed=5),
                FRACTION,
                train_model=True,
                halo=3,
            )

    def test_cli_campaign_with_shards(self, tmp_path):
        from repro import tools

        out = tmp_path / "cli-campaign"
        msg = tools.cmd_campaign(
            str(out),
            dims=DIMS,
            timesteps=TIMESTEPS,
            fraction=FRACTION,
            train=True,
            fractions=(0.02, 0.05),
            epochs=3,
            finetune_epochs=2,
            shards="2",
            halo=4,
        )
        assert "shards 2x1x1 halo 4" in msg
        reader = CampaignReader(out)
        assert reader.shard_plan is not None
        assert np.isfinite(reader.reconstruct(TIMESTEPS[1])).all()
