"""Replay harness: trace determinism, stats, naive baseline, CLI round trips."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import (
    ReconstructionServer,
    RequestTrace,
    ServerConfig,
    naive_throughput,
    replay,
    synthetic_trace,
)


@pytest.fixture
def keys(serve_registry):
    return serve_registry.keys()


class TestSyntheticTrace:
    def test_deterministic_for_a_seed(self, keys):
        a = synthetic_trace(keys, 500, seed=7)
        b = synthetic_trace(keys, 500, seed=7)
        assert a.key_idx.tobytes() == b.key_idx.tobytes()
        assert a.tenant_idx.tobytes() == b.tenant_idx.tobytes()
        c = synthetic_trace(keys, 500, seed=8)
        assert a.key_idx.tobytes() != c.key_idx.tobytes()

    def test_zipf_skew_concentrates_on_a_hot_key(self, keys):
        trace = synthetic_trace(keys, 2000, seed=0, skew=1.5)
        counts = np.bincount(trace.key_idx, minlength=len(keys))
        assert counts.max() > trace.num_requests // 2  # one hot key dominates
        assert (counts > 0).all()  # but the tail is still exercised

    def test_chunk_fraction_and_deadline_columns(self, keys):
        trace = synthetic_trace(keys, 1000, seed=0, chunk_fraction=0.25, deadline=9.0)
        frac = trace.kinds.mean()
        assert 0.15 < frac < 0.35
        req = trace.request(int(np.argmax(trace.kinds)))
        assert req.kind == "chunk"
        assert req.deadline == 9.0

    def test_validation(self, keys):
        with pytest.raises(ValueError, match="at least one key"):
            synthetic_trace([], 10)
        with pytest.raises(ValueError, match="num_requests"):
            synthetic_trace(keys, 0)
        with pytest.raises(ValueError, match="column"):
            RequestTrace(
                keys=list(keys),
                key_idx=np.zeros(3, dtype=np.int32),
                tenants=["default"],
                tenant_idx=np.zeros(2, dtype=np.int32),
                kinds=np.zeros(3, dtype=np.uint8),
                chunks=np.zeros(3, dtype=np.int32),
                deadlines=np.full(3, np.nan),
            )

    def test_save_load_round_trip(self, keys, tmp_path):
        trace = synthetic_trace(keys, 300, tenants=("a", "b"), seed=3, chunk_fraction=0.1)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = RequestTrace.load(path)
        assert loaded.keys == trace.keys
        assert loaded.tenants == trace.tenants
        assert loaded.key_idx.tobytes() == trace.key_idx.tobytes()
        assert loaded.kinds.tobytes() == trace.kinds.tobytes()
        for i in (0, 150, 299):
            assert loaded.request(i) == trace.request(i)


class TestReplay:
    def test_replay_reports_sane_stats(self, serve_registry, keys):
        trace = synthetic_trace(keys, 3000, tenants=("a", "b"), seed=1)
        with ReconstructionServer(serve_registry, ServerConfig(transport="local")) as server:
            stats = replay(server, trace)
        assert stats.requests == 3000
        assert stats.statuses == {"ok": 3000}
        assert stats.rps > 0
        assert 0 <= stats.p50_ms <= stats.p99_ms
        assert stats.cache_hit_rate > 0.9  # 3 keys, 16 slots: nearly all hits
        assert stats.server["requests"] == 3000
        payload = stats.to_dict()
        json.dumps(payload)  # JSON-serializable end to end
        assert payload["requests"] == 3000

    def test_replay_validates_in_flight_window(self, serve_registry, keys):
        trace = synthetic_trace(keys, 10)
        with ReconstructionServer(serve_registry, ServerConfig(transport="local")) as server:
            with pytest.raises(ValueError, match="max_in_flight"):
                replay(server, trace, max_in_flight=0)

    def test_naive_throughput_baseline(self, serve_registry, keys):
        trace = synthetic_trace(keys, 50, seed=0)
        rps, duration = naive_throughput(serve_registry, trace, limit=20)
        assert rps > 0
        assert duration > 0
        with pytest.raises(ValueError, match="at least one"):
            naive_throughput(serve_registry, trace, limit=0)


class TestCli:
    @pytest.fixture(scope="class")
    def built(self, tmp_path_factory):
        """A registry built through the real CLI entry point."""
        from repro.cli import main

        root = tmp_path_factory.mktemp("cli-registry") / "reg"
        rc = main(
            [
                "serve", "build", str(root),
                "--dims", "10", "10", "5",
                "--fraction", "0.06",
                "--timesteps", "0", "1",
                "--epochs", "4",
                "--finetune-epochs", "2",
                "--hidden", "12", "6",
                "--fractions", "0.03", "0.06",
            ]
        )
        assert rc == 0
        return root

    def test_serve_ls(self, built, capsys):
        from repro.cli import main

        assert main(["serve", "ls", str(built)]) == 0
        out = capsys.readouterr().out
        assert "combustion-f0.060000" in out
        assert "timesteps=[0, 1]" in out

    def test_replay_reports_json(self, built, tmp_path, capsys):
        from repro.cli import main

        report = tmp_path / "stats.json"
        rc = main(
            [
                "replay", str(built),
                "--requests", "500",
                "--transport", "local",
                "--report", str(report),
            ]
        )
        assert rc == 0
        printed = json.loads(capsys.readouterr().out)
        saved = json.loads(report.read_text())
        assert printed == saved
        assert saved["requests"] == 500
        assert saved["statuses"] == {"ok": 500}

    def test_replay_record_then_trace(self, built, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.npz"
        rc = main(
            [
                "replay", str(built),
                "--requests", "200",
                "--transport", "local",
                "--record", str(trace_path),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        rc = main(["replay", str(built), "--trace", str(trace_path), "--transport", "local"])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["requests"] == 200

    def test_replay_no_batching_degrades_occupancy(self, built, capsys):
        from repro.cli import main

        rc = main(
            [
                "replay", str(built),
                "--requests", "300",
                "--transport", "local",
                "--no-batching",
            ]
        )
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["requests"] == 300
        assert stats["server"]["config"]["max_batch"] == 1
        assert stats["server"]["config"]["cache_slots"] == 1

    def test_replay_obs_telemetry(self, built, tmp_path, capsys):
        from repro.cli import main
        from repro.obs import load_run

        obs_dir = tmp_path / "obs-run"
        rc = main(
            [
                "replay", str(built),
                "--requests", "300",
                "--transport", "local",
                "--obs", str(obs_dir),
            ]
        )
        assert rc == 0
        record = load_run(obs_dir)
        metrics = record.metrics
        assert metrics["counters"]["serve.requests"] == 300
        assert "serve.latency_ms" in metrics["histograms"]
        span_names = {e.get("name") for e in record.events if e.get("kind") == "span_open"}
        assert "serve.batch" in span_names

    def test_empty_registry_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "registry.json").write_text(
            json.dumps({"schema": 1, "namespaces": {}})
        )
        assert main(["replay", str(tmp_path)]) == 1
        assert "no keys" in capsys.readouterr().err
