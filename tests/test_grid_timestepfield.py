"""Tests for the TimestepField container and misc dataset plumbing."""

import numpy as np
import pytest

from repro.datasets.base import TimestepField
from repro.grid import UniformGrid


class TestTimestepField:
    def test_accepts_flat_values(self, grid):
        f = TimestepField(grid, np.arange(grid.num_points, dtype=float), timestep=0)
        assert f.values.shape == grid.dims

    def test_accepts_3d_values(self, grid):
        vol = np.zeros(grid.dims)
        f = TimestepField(grid, vol, timestep=0)
        assert f.values.shape == grid.dims

    def test_rejects_wrong_shape(self, grid):
        with pytest.raises(ValueError):
            TimestepField(grid, np.zeros(7), timestep=0)

    def test_flat_matches_c_order(self, grid):
        vol = np.arange(grid.num_points, dtype=float).reshape(grid.dims)
        f = TimestepField(grid, vol, timestep=0)
        np.testing.assert_array_equal(f.flat, vol.ravel())

    def test_frozen(self, grid):
        f = TimestepField(grid, np.zeros(grid.dims), timestep=0)
        with pytest.raises(Exception):
            f.timestep = 5  # type: ignore[misc]

    def test_name_defaults(self, grid):
        f = TimestepField(grid, np.zeros(grid.dims), timestep=0)
        assert f.name == "field"


class TestDatasetPlumbing:
    def test_fields_iterator(self):
        from repro.datasets import HurricaneDataset

        data = HurricaneDataset(
            grid=HurricaneDataset.default_grid().with_resolution((6, 6, 4))
        )
        fields = list(data.fields([0, 5, 10]))
        assert [f.timestep for f in fields] == [0, 5, 10]

    def test_normalized_reference_domain(self):
        from repro.datasets import HurricaneDataset

        data = HurricaneDataset()
        ref = HurricaneDataset.default_grid()
        corners = np.array([ref.origin,
                            [e[1] for e in ref.extent]])
        u = data.normalized(corners)
        np.testing.assert_allclose(u[0], [0, 0, 0], atol=1e-12)
        np.testing.assert_allclose(u[1], [1, 1, 1], atol=1e-12)

    def test_grid_property(self):
        from repro.datasets import HurricaneDataset

        g = HurricaneDataset.default_grid().with_resolution((5, 5, 5))
        assert HurricaneDataset(grid=g).grid == g
