"""Unit tests for reconstruction metrics (paper Sec IV definition)."""

import numpy as np
import pytest

from repro.metrics import (
    mae,
    max_abs_error,
    psnr,
    rmse,
    score_reconstruction,
    snr,
)


@pytest.fixture
def original(rng):
    return rng.normal(loc=5.0, scale=2.0, size=(6, 6, 6))


class TestSNR:
    def test_perfect_reconstruction_is_inf(self, original):
        assert snr(original, original.copy()) == float("inf")

    def test_matches_paper_formula(self, original, rng):
        noise = rng.normal(scale=0.1, size=original.shape)
        recon = original + noise
        expected = 20 * np.log10(original.std() / (original - recon).std())
        assert snr(original, recon) == pytest.approx(expected)

    def test_lower_noise_higher_snr(self, original, rng):
        n = rng.normal(size=original.shape)
        assert snr(original, original + 0.01 * n) > snr(original, original + 0.5 * n)

    def test_constant_original_with_error(self):
        const = np.full(10, 3.0)
        assert snr(const, const + 1e-3 * np.arange(10)) == float("-inf")

    def test_constant_offset_is_near_infinite_snr(self, original):
        # A constant-offset error has (numerically almost) zero std, so the
        # paper's SNR is unboundedly large — rounding may leave ulp-level
        # noise, hence ">= 200 dB" rather than exactly inf.
        assert snr(original, original + 10.0) >= 200.0

    def test_shape_mismatch(self, original):
        with pytest.raises(ValueError):
            snr(original, original[:-1])

    def test_flattens_any_shape(self, original):
        assert snr(original, original * 1.01) == pytest.approx(
            snr(original.ravel(), original.ravel() * 1.01)
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            snr(np.array([]), np.array([]))


class TestOtherMetrics:
    def test_rmse_known_value(self):
        a = np.zeros(4)
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert rmse(a, b) == pytest.approx(1.0)

    def test_mae_known_value(self):
        a = np.zeros(4)
        b = np.array([1.0, -3.0, 0.0, 0.0])
        assert mae(a, b) == pytest.approx(1.0)

    def test_max_abs_error(self):
        a = np.zeros(4)
        b = np.array([0.1, -2.5, 0.3, 0.0])
        assert max_abs_error(a, b) == pytest.approx(2.5)

    def test_psnr_perfect_is_inf(self, original):
        assert psnr(original, original) == float("inf")

    def test_psnr_decreases_with_noise(self, original, rng):
        n = rng.normal(size=original.shape)
        assert psnr(original, original + 0.01 * n) > psnr(original, original + n)

    def test_rmse_mae_inequality(self, original, rng):
        recon = original + rng.normal(size=original.shape)
        assert rmse(original, recon) >= mae(original, recon)


class TestScoreBundle:
    def test_contains_all_metrics(self, original, rng):
        recon = original + 0.1 * rng.normal(size=original.shape)
        score = score_reconstruction(original, recon)
        d = score.as_dict()
        assert set(d) == {"snr", "psnr", "rmse", "mae", "max_abs_error"}
        assert d["snr"] == pytest.approx(snr(original, recon))
        assert d["rmse"] == pytest.approx(rmse(original, recon))

    def test_frozen(self, original):
        score = score_reconstruction(original, original)
        with pytest.raises(Exception):
            score.snr = 0.0  # type: ignore[misc]
