"""Tests for uncertainty-driven adaptive sampling."""

import numpy as np
import pytest

from repro.core.ensemble import DeepEnsembleReconstructor
from repro.datasets import HurricaneDataset
from repro.insitu import AdaptiveSampler, run_adaptive_campaign
from repro.sampling import MultiCriteriaSampler


@pytest.fixture
def dataset():
    return HurricaneDataset(
        grid=HurricaneDataset.default_grid().with_resolution((12, 12, 6)), seed=0
    )


class TestAdaptiveSampler:
    def test_no_prior_matches_base(self, dataset):
        field = dataset.field(0)
        base = MultiCriteriaSampler(seed=4)
        adaptive = AdaptiveSampler(seed=4, base=MultiCriteriaSampler(seed=4))
        a = adaptive.sample(field, 0.05)
        b = base.sample(field, 0.05)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_prior_biases_selection(self, dataset):
        field = dataset.field(0)
        n = field.grid.num_points
        adaptive = AdaptiveSampler(seed=4, uncertainty_weight=50.0)
        # A prior concentrated on the first 10% of flat indices.
        prior = np.zeros(n)
        hot = np.arange(n // 10)
        prior[hot] = 1.0
        adaptive.set_uncertainty(prior)
        s = adaptive.sample(field, 0.05)
        hit_rate = np.isin(s.indices, hot).mean()
        assert hit_rate > 0.5  # hot region is only 10% of the grid

    def test_clear_prior(self, dataset):
        field = dataset.field(0)
        adaptive = AdaptiveSampler(seed=4)
        adaptive.set_uncertainty(np.ones(field.grid.num_points))
        adaptive.set_uncertainty(None)
        base = MultiCriteriaSampler(seed=4)
        np.testing.assert_array_equal(
            adaptive.sample(field, 0.05).indices, base.sample(field, 0.05).indices
        )

    def test_prior_size_checked(self, dataset):
        field = dataset.field(0)
        adaptive = AdaptiveSampler(seed=4)
        adaptive.set_uncertainty(np.ones(7))
        with pytest.raises(ValueError):
            adaptive.sample(field, 0.05)

    def test_prior_validation(self):
        adaptive = AdaptiveSampler()
        with pytest.raises(ValueError):
            adaptive.set_uncertainty(np.array([-1.0]))
        with pytest.raises(ValueError):
            adaptive.set_uncertainty(np.array([np.nan]))
        with pytest.raises(ValueError):
            AdaptiveSampler(uncertainty_weight=-1.0)


class TestAdaptiveCampaign:
    def test_campaign_records(self, dataset):
        ensemble = DeepEnsembleReconstructor(
            num_members=2, base_seed=0, hidden_layers=(16, 8), batch_size=512
        )
        records = run_adaptive_campaign(
            dataset,
            timesteps=(0, 16),
            fraction=0.05,
            ensemble=ensemble,
            train_fractions=(0.03, 0.10),
            pretrain_epochs=10,
            finetune_epochs=3,
        )
        assert [r["timestep"] for r in records] == [0, 16]
        for r in records:
            assert np.isfinite(r["snr_static"]) and np.isfinite(r["snr_adaptive"])
            assert r["mean_uncertainty"] >= 0.0
            assert r["max_uncertainty"] >= r["mean_uncertainty"]

    def test_empty_timesteps(self, dataset):
        ensemble = DeepEnsembleReconstructor(num_members=2, hidden_layers=(8,))
        with pytest.raises(ValueError):
            run_adaptive_campaign(dataset, (), 0.05, ensemble)
