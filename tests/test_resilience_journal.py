"""Durable campaign journal: record/replay, torn tails, corruption, plans."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.resilience import (
    CampaignJournal,
    JournalCorruptionError,
    ResumePlan,
)
from repro.resilience.checkpoint import CheckpointCorruptionError
from repro.resilience.faults import flip_bit
from repro.resilience.journal import STAGES, TERMINAL_STAGE, content_hash
import repro.resilience.chaos as chaos


def _journal(tmp_path, **kwargs):
    return CampaignJournal(tmp_path / ".wal" / "journal.jsonl", **kwargs)


def _complete(journal, timestep, **payload):
    for stage in STAGES[:-1]:
        journal.record(timestep, stage)
    return journal.record(timestep, TERMINAL_STAGE, **payload)


# ------------------------------------------------------------- record/reload
def test_records_survive_reload(tmp_path):
    with _journal(tmp_path, config={"kind": "demo"}) as journal:
        _complete(journal, 0, row={"snr": 12.5})
        _complete(journal, 8, row={"snr": 11.0})
        journal.record(16, "sampled", field_sha="abc")

    reloaded = _journal(tmp_path, resume=True)
    assert reloaded.config == {"kind": "demo"}
    assert not reloaded.torn_tail
    assert reloaded.completed(0) and reloaded.completed(8)
    assert not reloaded.completed(16)
    assert reloaded.stage_payload(0, TERMINAL_STAGE) == {"row": {"snr": 12.5}}
    assert reloaded.stage_payload(16, "sampled") == {"field_sha": "abc"}
    reloaded.close()


def test_fresh_open_truncates_stale_journal(tmp_path):
    with _journal(tmp_path) as journal:
        _complete(journal, 0)
    with _journal(tmp_path) as journal:  # fresh run, not resume
        assert not journal.completed(0)
        assert journal.entries == []


def test_unknown_stage_rejected(tmp_path):
    with _journal(tmp_path) as journal:
        with pytest.raises(ValueError, match="unknown stage"):
            journal.record(0, "uploaded")


def test_every_record_line_is_checksummed(tmp_path):
    with _journal(tmp_path, config={"kind": "demo"}) as journal:
        _complete(journal, 0, row={"snr": 1.0})
        path = journal.path
    for line in path.read_text().splitlines():
        obj = json.loads(line)
        assert set(obj) == {"payload", "seq", "sha", "stage", "t"}


# ------------------------------------------------------------------ torn tail
def test_torn_tail_is_dropped_silently(tmp_path):
    with _journal(tmp_path, config={"kind": "demo"}) as journal:
        _complete(journal, 0)
        _complete(journal, 8)
        path = journal.path

    removed = chaos.torn_tail(path, drop_records=2, partial=True)
    assert removed > 0

    reloaded = _journal(tmp_path, resume=True, config={"kind": "demo"})
    assert reloaded.torn_tail
    assert reloaded.completed(0)
    assert not reloaded.completed(8)  # its terminal record was torn away
    # The durable prefix was rewritten: the file parses cleanly again and
    # appending continues from the right sequence number.
    _complete(reloaded, 8)
    reloaded.close()
    final = _journal(tmp_path, resume=True)
    assert not final.torn_tail
    assert final.completed(8)
    seqs = [e.seq for e in final.entries]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    final.close()


def test_interior_corruption_refuses_to_resume(tmp_path):
    with _journal(tmp_path, config={"kind": "demo"}) as journal:
        for t in (0, 8, 16):
            _complete(journal, t)
        path = journal.path
    # Flip one bit somewhere in the middle of the file: records after the
    # damaged line stay intact, so this is corruption, not a torn tail.
    flip_bit(path, seed=3)
    with pytest.raises((JournalCorruptionError, json.JSONDecodeError)):
        # A flipped bit usually breaks a mid-file record (corruption error);
        # if it lands in the final record the loader treats it as torn.
        reloaded = _journal(tmp_path, resume=True)
        if reloaded.torn_tail:
            reloaded.close()
            raise JournalCorruptionError(path, "tail flip: treated as torn")


def test_config_mismatch_refuses_to_resume(tmp_path):
    with _journal(tmp_path, config={"fraction": 0.05}) as journal:
        _complete(journal, 0)
    with pytest.raises(JournalCorruptionError, match="config"):
        _journal(tmp_path, resume=True, config={"fraction": 0.10})


# ----------------------------------------------------------------- planning
def test_plan_skips_contiguous_completed_prefix(tmp_path):
    with _journal(tmp_path) as journal:
        _complete(journal, 0, row={"t": 0})
        _complete(journal, 8, row={"t": 8})
        plan = journal.plan((0, 8, 16, 24))
        assert plan.completed == (0, 8)
        assert plan.remaining == (16, 24)
        assert [p["row"]["t"] for p in plan.payloads] == [0, 8]
        assert not plan.fresh


def test_plan_gap_ends_the_prefix(tmp_path):
    with _journal(tmp_path) as journal:
        _complete(journal, 0)
        _complete(journal, 16)  # 8 missing: model state is sequential
        plan = journal.plan((0, 8, 16))
        assert plan.completed == (0,)
        assert plan.remaining == (8, 16)


def test_plan_verify_callback_ends_prefix_on_failure(tmp_path):
    with _journal(tmp_path) as journal:
        _complete(journal, 0, ok=True)
        _complete(journal, 8, ok=False)
        _complete(journal, 16, ok=True)
        plan = journal.plan((0, 8, 16), verify=lambda t, p: p["ok"])
        assert plan.completed == (0,)
        assert plan.remaining == (8, 16)


def test_plan_on_empty_journal_is_fresh(tmp_path):
    with _journal(tmp_path) as journal:
        plan = journal.plan((0, 8))
        assert plan == ResumePlan((), (0, 8), ())
        assert plan.fresh


# ------------------------------------------------------------- state sidecar
def test_state_sidecar_roundtrip(tmp_path):
    flat = np.linspace(-1.0, 1.0, 257)
    with _journal(tmp_path) as journal:
        path = journal.save_state(8, flat)
        assert path.name == "state_t000008.npz"
        np.testing.assert_array_equal(journal.load_state(8), flat)


def test_state_sidecar_corruption_detected(tmp_path):
    with _journal(tmp_path) as journal:
        journal.save_state(0, np.zeros(64))
        flip_bit(journal.state_path(0), seed=1)
        with pytest.raises(CheckpointCorruptionError):
            journal.load_state(0)


# ---------------------------------------------------------------- manifest
def test_manifest_written_atomically_with_plan(tmp_path):
    with _journal(tmp_path, config={"kind": "demo"}) as journal:
        path = journal.write_manifest(
            reason="interrupted (signal 15)", completed=[0, 8], remaining=[16]
        )
        manifest = json.loads(path.read_text())
        assert manifest["completed"] == [0, 8]
        assert manifest["remaining"] == [16]
        assert manifest["config"] == {"kind": "demo"}
        assert "resume" in manifest
        assert not path.with_name(path.name + ".tmp").exists()


# ------------------------------------------------------------ thread safety
def test_concurrent_records_from_scheduler_threads(tmp_path):
    with _journal(tmp_path) as journal:
        timesteps = list(range(24))

        def emit(ts):
            for t in ts:
                _complete(journal, t, row={"t": t})

        threads = [
            threading.Thread(target=emit, args=(timesteps[i::3],)) for i in range(3)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()

    reloaded = _journal(tmp_path, resume=True)
    plan = reloaded.plan(timesteps)
    assert plan.completed == tuple(timesteps)
    reloaded.close()


def test_content_hash_distinguishes_arrays():
    a = np.arange(10, dtype=np.float64)
    b = a.copy()
    b[3] += 1e-12
    assert content_hash(a) == content_hash(a.copy())
    assert content_hash(a) != content_hash(b)
    assert content_hash(b"bytes") == content_hash(b"bytes")
