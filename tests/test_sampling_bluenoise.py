"""Unit tests for the Poisson-disk (blue-noise) sampler."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.sampling import PoissonDiskSampler, RandomSampler


class TestPoissonDisk:
    def test_exact_budget(self, hurricane_field):
        s = PoissonDiskSampler(seed=0).sample(hurricane_field, 0.05)
        assert s.num_samples == int(round(0.05 * hurricane_field.grid.num_points))

    def test_deterministic(self, hurricane_field):
        a = PoissonDiskSampler(seed=0).sample(hurricane_field, 0.05)
        b = PoissonDiskSampler(seed=0).sample(hurricane_field, 0.05)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_blue_noise_spacing(self, hurricane_field):
        # Poisson-disk nearest-pair distances concentrate near the mean:
        # the min pair distance must be far larger than random sampling's.
        frac = 0.05
        blue = PoissonDiskSampler(seed=0, importance_ordered=False).sample(
            hurricane_field, frac
        )
        rand = RandomSampler(seed=0).sample(hurricane_field, frac)

        def min_pair(sample):
            d, _ = cKDTree(sample.points).query(sample.points, k=2)
            return d[:, 1].min()

        assert min_pair(blue) > 2.0 * min_pair(rand)

    def test_importance_ordered_prefers_features(self, grid):
        from repro.datasets.base import TimestepField
        from repro.grid import gradient_magnitude

        x, _, _ = grid.meshgrid()
        values = np.tanh((x - x.mean()) / 0.8)
        field = TimestepField(grid, values, timestep=0)
        s = PoissonDiskSampler(seed=0, importance_ordered=True).sample(field, 0.03)
        mag = gradient_magnitude(grid, values)
        assert mag[s.indices].mean() > mag.mean()

    def test_dense_fraction_still_exact(self, hurricane_field):
        # Radius must relax until the budget fits.
        s = PoissonDiskSampler(seed=0).sample(hurricane_field, 0.5)
        assert s.num_samples == int(round(0.5 * hurricane_field.grid.num_points))

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonDiskSampler(relax=1.0)
        with pytest.raises(ValueError):
            PoissonDiskSampler(relax=0.0)
