"""Unit tests for nn layers, parameters and initializers."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    Identity,
    Parameter,
    ReLU,
    Sigmoid,
    Tanh,
    he_normal,
    he_uniform,
    xavier_normal,
    xavier_uniform,
    zeros,
)
from repro.nn.initializers import get_initializer


class TestParameter:
    def test_grad_starts_zero(self):
        p = Parameter(np.ones((3, 2)))
        assert p.grad.shape == (3, 2)
        assert (p.grad == 0).all()

    def test_zero_grad(self):
        p = Parameter(np.ones(4))
        p.grad += 2.0
        p.zero_grad()
        assert (p.grad == 0).all()

    def test_trainable_default(self):
        assert Parameter(np.ones(1)).trainable is True

    def test_size(self):
        assert Parameter(np.ones((3, 5))).size == 15


class TestInitializers:
    @pytest.mark.parametrize("init", [he_normal, he_uniform, xavier_normal, xavier_uniform])
    def test_shape(self, init, rng):
        w = init(23, 512, rng)
        assert w.shape == (23, 512)

    def test_he_normal_variance(self, rng):
        w = he_normal(1000, 200, rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_he_uniform_bounds(self, rng):
        w = he_uniform(10, 10, rng)
        limit = np.sqrt(6.0 / 10)
        assert np.abs(w).max() <= limit

    def test_zeros(self, rng):
        assert (zeros(3, 3, rng) == 0).all()

    def test_get_initializer(self):
        assert get_initializer("he_normal") is he_normal
        with pytest.raises(ValueError):
            get_initializer("magic")


class TestDense:
    def test_forward_affine(self, rng):
        layer = Dense(3, 2, rng=rng)
        layer.weight.value[...] = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        layer.bias.value[...] = np.array([10.0, 20.0])
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(layer.forward(x), [[14.0, 25.0]])

    def test_forward_shape_check(self, rng):
        layer = Dense(3, 2, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((4, 5)))
        with pytest.raises(ValueError):
            layer.forward(np.zeros(3))

    def test_backward_before_forward(self, rng):
        with pytest.raises(RuntimeError):
            Dense(2, 2, rng=rng).backward(np.zeros((1, 2)))

    def test_backward_accumulates(self, rng):
        layer = Dense(2, 2, rng=rng)
        x = rng.normal(size=(4, 2))
        g = rng.normal(size=(4, 2))
        layer.forward(x)
        layer.backward(g)
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(g)
        np.testing.assert_allclose(layer.weight.grad, 2 * first)

    def test_parameters(self, rng):
        layer = Dense(3, 4, rng=rng)
        params = layer.parameters()
        assert len(params) == 2
        assert params[0].shape == (3, 4) and params[1].shape == (4,)

    def test_set_trainable(self, rng):
        layer = Dense(2, 2, rng=rng)
        layer.set_trainable(False)
        assert not layer.weight.trainable and not layer.bias.trainable

    def test_spec(self, rng):
        spec = Dense(23, 512, rng=rng).spec()
        assert spec == {"kind": "Dense", "in_features": 23, "out_features": 512,
                        "weight_init": "he_normal"}

    def test_rejects_bad_dims(self, rng):
        with pytest.raises(ValueError):
            Dense(0, 4, rng=rng)


class TestActivations:
    def test_relu_forward(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])

    def test_relu_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 3.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_allclose(grad, [[0.0, 5.0]])

    def test_tanh_range(self, rng):
        out = Tanh().forward(rng.normal(size=(10, 4)) * 10)
        assert np.abs(out).max() <= 1.0

    def test_sigmoid_range(self, rng):
        out = Sigmoid().forward(rng.normal(size=(10, 4)) * 100)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_sigmoid_no_overflow(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.isfinite(out).all()

    def test_identity_passthrough(self, rng):
        x = rng.normal(size=(3, 3))
        layer = Identity()
        np.testing.assert_array_equal(layer.forward(x), x)
        np.testing.assert_array_equal(layer.backward(x), x)

    @pytest.mark.parametrize("cls", [ReLU, Tanh, Sigmoid])
    def test_backward_before_forward(self, cls):
        with pytest.raises(RuntimeError):
            cls().backward(np.zeros((1, 1)))

    @pytest.mark.parametrize("cls", [ReLU, Tanh, Sigmoid, Identity])
    def test_no_parameters(self, cls):
        assert cls().parameters() == []
