"""Unit tests for deep-ensemble uncertainty reconstruction."""

import numpy as np
import pytest

from repro.core.ensemble import DeepEnsembleReconstructor, EnsembleReconstruction
from repro.datasets import HurricaneDataset
from repro.sampling import MultiCriteriaSampler


@pytest.fixture(scope="module")
def trained():
    grid = HurricaneDataset.default_grid().with_resolution((14, 14, 6))
    data = HurricaneDataset(grid=grid, seed=0)
    field = data.field(t=0)
    sampler = MultiCriteriaSampler(seed=3)
    train = [sampler.sample(field, 0.03), sampler.sample(field, 0.10)]
    ensemble = DeepEnsembleReconstructor(
        num_members=3, base_seed=0, hidden_layers=(24, 12), batch_size=1024
    )
    ensemble.train(field, train, epochs=20)
    test = sampler.sample(field, 0.05, seed=77)
    return field, ensemble, test


class TestConstruction:
    def test_member_count(self):
        e = DeepEnsembleReconstructor(num_members=4, hidden_layers=(8,))
        assert e.num_members == 4

    def test_members_have_distinct_seeds(self):
        e = DeepEnsembleReconstructor(num_members=3, base_seed=10, hidden_layers=(8,))
        assert [m.seed for m in e.members] == [10, 11, 12]

    def test_rejects_single_member(self):
        with pytest.raises(ValueError):
            DeepEnsembleReconstructor(num_members=1)

    def test_untrained_flag(self):
        e = DeepEnsembleReconstructor(hidden_layers=(8,))
        assert not e.is_trained


class TestReconstruction:
    def test_mean_and_std_shapes(self, trained):
        field, ensemble, test = trained
        rec = ensemble.reconstruct_with_uncertainty(test)
        assert rec.mean.shape == field.grid.dims
        assert rec.std.shape == field.grid.dims
        assert rec.members == 3

    def test_std_nonnegative(self, trained):
        _, ensemble, test = trained
        rec = ensemble.reconstruct_with_uncertainty(test)
        assert (rec.std >= 0).all()

    def test_sampled_voxels_zero_uncertainty(self, trained):
        _, ensemble, test = trained
        rec = ensemble.reconstruct_with_uncertainty(test)
        np.testing.assert_allclose(rec.std.ravel()[test.indices], 0.0, atol=1e-12)

    def test_mean_matches_member_average(self, trained):
        _, ensemble, test = trained
        rec = ensemble.reconstruct_with_uncertainty(test)
        manual = np.mean([m.reconstruct(test) for m in ensemble.members], axis=0)
        np.testing.assert_allclose(rec.mean, manual)

    def test_reconstruct_returns_mean(self, trained):
        _, ensemble, test = trained
        np.testing.assert_allclose(
            ensemble.reconstruct(test), ensemble.reconstruct_with_uncertainty(test).mean
        )

    def test_interval_symmetric(self, trained):
        _, ensemble, test = trained
        rec = ensemble.reconstruct_with_uncertainty(test)
        lo, hi = rec.interval(k=2.0)
        np.testing.assert_allclose(hi - rec.mean, rec.mean - lo)

    def test_coverage_monotone_in_k(self, trained):
        field, ensemble, test = trained
        rec = ensemble.reconstruct_with_uncertainty(test)
        assert rec.coverage(field.values, k=3.0) >= rec.coverage(field.values, k=1.0)

    def test_coverage_bounds(self, trained):
        field, ensemble, test = trained
        rec = ensemble.reconstruct_with_uncertainty(test)
        c = rec.coverage(field.values, k=2.0)
        assert 0.0 <= c <= 1.0


class TestPersistence:
    def test_save_load_roundtrip(self, trained, tmp_path):
        field, ensemble, test = trained
        ensemble.save(tmp_path / "ens")
        loaded = DeepEnsembleReconstructor.load(tmp_path / "ens")
        assert loaded.num_members == ensemble.num_members
        a = ensemble.reconstruct_with_uncertainty(test)
        b = loaded.reconstruct_with_uncertainty(test)
        np.testing.assert_allclose(a.mean, b.mean)
        np.testing.assert_allclose(a.std, b.std)

    def test_load_rejects_too_few(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ValueError):
            DeepEnsembleReconstructor.load(tmp_path / "empty")


class TestFineTune:
    def test_fine_tune_all_members(self, trained):
        import copy

        field, ensemble, test = trained
        tuned = copy.deepcopy(ensemble)
        grid = field.grid
        data = HurricaneDataset(grid=grid, seed=0)
        field2 = data.field(t=30)
        sampler = MultiCriteriaSampler(seed=3)
        train2 = [sampler.sample(field2, 0.05)]
        histories = tuned.fine_tune(field2, train2, epochs=3)
        assert len(histories) == 3
        # Members actually changed.
        before = ensemble.members[0].model.dense_layers()[0].weight.value
        after = tuned.members[0].model.dense_layers()[0].weight.value
        assert not np.array_equal(before, after)


class TestCalibration:
    def test_factor_reaches_target_coverage(self, trained):
        field, ensemble, test = trained
        rec = ensemble.reconstruct_with_uncertainty(test)
        factor = rec.calibration_factor(field.values, target=0.9, k=2.0)
        calibrated = rec.scaled(factor)
        cov = calibrated.coverage(field.values, k=2.0)
        # Sampled voxels (zero width, exact) only help coverage, so the
        # calibrated band must reach at least the target.
        assert cov >= 0.9 - 1e-9

    def test_underdispersed_ensemble_needs_factor_above_one(self, trained):
        field, ensemble, test = trained
        rec = ensemble.reconstruct_with_uncertainty(test)
        if rec.coverage(field.values, k=2.0) < 0.95:
            assert rec.calibration_factor(field.values, target=0.95) > 1.0

    def test_scaled_preserves_mean(self, trained):
        field, ensemble, test = trained
        rec = ensemble.reconstruct_with_uncertainty(test)
        import numpy as np

        np.testing.assert_array_equal(rec.scaled(2.0).mean, rec.mean)
        np.testing.assert_allclose(rec.scaled(2.0).std, 2.0 * rec.std)

    def test_validation(self, trained):
        field, ensemble, test = trained
        rec = ensemble.reconstruct_with_uncertainty(test)
        import pytest

        with pytest.raises(ValueError):
            rec.calibration_factor(field.values, target=1.5)
        with pytest.raises(ValueError):
            rec.scaled(0.0)
