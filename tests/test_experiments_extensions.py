"""Smoke tests for the extension experiments (features, uncertainty, samplers)."""

import numpy as np
import pytest

from repro.experiments.config import get_config

TINY = get_config(
    "quick",
    dims=(12, 12, 6),
    epochs=4,
    test_fractions=(0.03, 0.08),
    hidden_layers=(16, 8),
    batch_size=1024,
)


class TestFeaturePreservation:
    def test_runs_and_reports_all_metrics(self):
        from repro.experiments import exp_feature_preservation

        res = exp_feature_preservation.run(TINY)
        assert len(res.rows) == 2 * 5  # fractions x methods
        for row in res.rows:
            assert 0.0 <= row["iso_iou"] <= 1.0
            assert 0.0 <= row["hist_isect"] <= 1.0
            assert -1.0 <= row["ssim"] <= 1.0 + 1e-9
        assert "isovalue" in res.notes

    def test_isovalue_quantile(self):
        from repro.experiments.exp_feature_preservation import feature_isovalue

        values = np.arange(100.0)
        assert feature_isovalue(values, 0.1) == pytest.approx(9.9, abs=0.2)


class TestUncertainty:
    def test_runs_and_reports(self):
        from repro.experiments import exp_uncertainty

        res = exp_uncertainty.run(TINY, num_members=2)
        assert len(res.rows) == len(TINY.test_fractions)
        for row in res.rows:
            assert 0.0 <= row["coverage_2sigma"] <= 1.0
            assert row["mean_std"] >= 0.0
            assert -1.0 <= row["err_unc_corr"] <= 1.0

    def test_uncertainty_correlates_with_error_when_trained(self):
        # With a modest but real budget, ensemble std must rank error at
        # least weakly (positive correlation).
        from repro.experiments import exp_uncertainty

        cfg = TINY.scaled(epochs=25, test_fractions=(0.03,))
        res = exp_uncertainty.run(cfg, num_members=3)
        corr = res.rows[0]["err_unc_corr"]
        assert corr > 0.0


class TestSamplerAblation:
    def test_runs_all_samplers(self):
        from repro.experiments import exp_samplers

        res = exp_samplers.run(TINY, fraction=0.05)
        samplers = {r["sampler"] for r in res.rows}
        assert samplers == {
            "random", "stratified", "histogram", "gradient", "multicriteria", "poisson"
        }
        for row in res.rows:
            assert np.isfinite(row["snr_fcnn"]) and np.isfinite(row["snr_linear"])

    def test_subset_of_samplers(self):
        from repro.experiments import exp_samplers

        res = exp_samplers.run(TINY, fraction=0.05, samplers=("random", "multicriteria"))
        assert len(res.rows) == 2


class TestCompressionExperiment:
    def test_runs_and_budget_respected(self):
        from repro.experiments import exp_compression

        res = exp_compression.run(TINY)
        assert len(res.rows) == len(TINY.test_fractions)
        for row in res.rows:
            assert row["compressed_bytes"] <= row["budget_bytes"] + 64
            assert np.isfinite(row["snr_compression"])
            assert row["error_bound"] > 0

    def test_storage_model(self):
        from repro.experiments.exp_compression import sample_storage_bytes

        assert sample_storage_bytes(100) == 1600

    def test_compress_to_budget_monotone(self):
        from repro.experiments.exp_compression import compress_to_budget
        from repro.datasets import HurricaneDataset

        data = HurricaneDataset(
            grid=HurricaneDataset.default_grid().with_resolution((16, 16, 8))
        )
        field = data.field(0)
        _, small = compress_to_budget(field.grid, field.values, 500)
        _, large = compress_to_budget(field.grid, field.values, 5000)
        assert small.nbytes <= 500 + 64
        assert large.error_bound <= small.error_bound


class TestScheduleAblation:
    def test_runs_all_schedules(self):
        from repro.experiments import exp_schedules

        res = exp_schedules.run(TINY)
        labels = {r["schedule"] for r in res.rows}
        assert "constant" in labels and "cosine" in labels
        assert len(res.rows) == 5
        for row in res.rows:
            assert np.isfinite(row["avg_snr"])
            assert row["final_lr"] > 0


class TestCLIRegistration:
    @pytest.mark.parametrize(
        "name",
        ["ext-features", "ext-uncertainty", "ext-samplers", "ext-compression", "ext-schedules"],
    )
    def test_registered(self, name, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        assert name in capsys.readouterr().out
