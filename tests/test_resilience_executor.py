"""Executor hardening: retries, timeouts and broken-pool recovery."""

import numpy as np
import pytest

from repro.parallel import ParallelExecutor
from repro.resilience.faults import SimulatedCrash, SlowTask, TransientFaultTask


def _square(payload):
    return payload * payload


def _boom(payload):
    if payload == 2:
        raise SimulatedCrash("payload 2 always fails")
    return payload


class TestValidation:
    def test_constructor_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(timeout=0)
        with pytest.raises(ValueError):
            ParallelExecutor(retries=-1)
        with pytest.raises(ValueError):
            ParallelExecutor(backoff=-0.1)


class TestSerial:
    def test_map_order(self):
        ex = ParallelExecutor(max_workers=1)
        assert ex.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty(self):
        assert ParallelExecutor(max_workers=1).map(_square, []) == []

    def test_map_raises_original_exception(self):
        ex = ParallelExecutor(max_workers=1)
        with pytest.raises(SimulatedCrash, match="payload 2"):
            ex.map(_boom, [0, 1, 2, 3])

    def test_map_outcomes_never_raises(self):
        ex = ParallelExecutor(max_workers=1)
        outcomes = ex.map_outcomes(_boom, [0, 1, 2, 3])
        assert [o.ok for o in outcomes] == [True, True, False, True]
        assert outcomes[2].status == "failed"
        assert isinstance(outcomes[2].exception, SimulatedCrash)
        assert "payload 2" in outcomes[2].error

    def test_retry_recovers_transient_fault(self, tmp_path):
        task = TransientFaultTask(_square, tmp_path, crash_on={3}, mode="raise")
        ex = ParallelExecutor(max_workers=1, retries=1, backoff=0.0)
        outcomes = ex.map_outcomes(task, [1, 2, 3])
        assert all(o.ok for o in outcomes)
        assert outcomes[2].attempts == 2
        assert outcomes[2].recovered == "retry"
        assert outcomes[0].attempts == 1
        assert outcomes[0].recovered is None

    def test_no_retry_budget_fails(self, tmp_path):
        task = TransientFaultTask(_square, tmp_path, crash_on={3}, mode="raise")
        ex = ParallelExecutor(max_workers=1, retries=0)
        outcomes = ex.map_outcomes(task, [1, 2, 3])
        assert [o.ok for o in outcomes] == [True, True, False]


class TestPool:
    def test_pool_map(self):
        ex = ParallelExecutor(max_workers=2)
        assert ex.map(_square, list(range(6))) == [n * n for n in range(6)]

    def test_pool_retry_recovers(self, tmp_path):
        task = TransientFaultTask(_square, tmp_path, crash_on={2}, mode="raise")
        ex = ParallelExecutor(max_workers=2, retries=1, backoff=0.0)
        outcomes = ex.map_outcomes(task, [1, 2, 3])
        assert all(o.ok for o in outcomes)
        assert outcomes[1].attempts == 2
        assert outcomes[1].recovered == "retry"

    def test_broken_pool_partial_recovery(self, tmp_path):
        # payload 2 kills its worker process outright; completed results must
        # be kept and the unresolved payloads re-run serially in-process
        task = TransientFaultTask(_square, tmp_path, crash_on={2}, mode="exit")
        ex = ParallelExecutor(max_workers=2)
        outcomes = ex.map_outcomes(task, [0, 1, 2, 3, 4])
        assert all(o.ok for o in outcomes)
        assert [o.result for o in outcomes] == [0, 1, 4, 9, 16]
        assert any(o.recovered == "serial-fallback" for o in outcomes)

    def test_broken_pool_map_results(self, tmp_path):
        task = TransientFaultTask(_square, tmp_path, crash_on={1}, mode="exit")
        ex = ParallelExecutor(max_workers=2)
        assert ex.map(task, [0, 1, 2]) == [0, 1, 4]

    def test_timeout_marks_task_failed(self):
        task = SlowTask(_square, slow_on={1}, delay=10.0)
        ex = ParallelExecutor(max_workers=2, timeout=0.75)
        outcomes = ex.map_outcomes(task, [0, 1])
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert "timed out" in outcomes[1].error
        assert isinstance(outcomes[1].exception, TimeoutError)

    def test_outcomes_carry_attempt_metadata(self):
        ex = ParallelExecutor(max_workers=2)
        outcomes = ex.map_outcomes(_square, [5, 6])
        for o in outcomes:
            assert o.attempts == 1
            assert o.duration >= 0.0
            assert o.error is None and o.exception is None


class TestArrayPayloads:
    def test_array_results_roundtrip(self, rng):
        ex = ParallelExecutor(max_workers=2)
        chunks = [rng.normal(size=8) for _ in range(4)]
        results = ex.map(np.sort, chunks)
        for got, chunk in zip(results, chunks):
            np.testing.assert_array_equal(got, np.sort(chunk))


class TestBackoffClock:
    """Fake-clock proofs: exact delay sequence, never a post-final sleep."""

    def test_serial_backoff_sequence_and_no_final_sleep(self):
        ex = ParallelExecutor(max_workers=1, retries=2, backoff=0.5)
        sleeps: list[float] = []
        ex._sleep = sleeps.append
        outcomes = ex.map_outcomes(_boom, [2])
        assert not outcomes[0].ok and outcomes[0].attempts == 3
        # backoff * 2**(k-1) after attempts 1 and 2; the third (final)
        # failure returns immediately without sleeping.
        assert sleeps == [0.5, 1.0]

    def test_serial_no_sleep_when_last_attempt_succeeds(self, tmp_path):
        task = TransientFaultTask(_square, tmp_path, crash_on={3}, mode="raise")
        ex = ParallelExecutor(max_workers=1, retries=1, backoff=0.25)
        sleeps: list[float] = []
        ex._sleep = sleeps.append
        outcomes = ex.map_outcomes(task, [3])
        assert outcomes[0].ok and outcomes[0].attempts == 2
        assert sleeps == [0.25]  # one backoff before the winning retry only

    def test_serial_zero_retries_never_sleeps(self):
        ex = ParallelExecutor(max_workers=1, retries=0, backoff=9.0)
        sleeps: list[float] = []
        ex._sleep = sleeps.append
        outcomes = ex.map_outcomes(_boom, [0, 2])
        assert [o.ok for o in outcomes] == [True, False]
        assert sleeps == []

    def test_pool_backoff_sequence_and_no_final_sleep(self):
        ex = ParallelExecutor(max_workers=2, retries=2, backoff=0.5)
        sleeps: list[float] = []
        ex._sleep = sleeps.append
        outcomes = ex.map_outcomes(_boom, [0, 1, 2, 3])
        assert [o.ok for o in outcomes] == [True, True, False, True]
        assert outcomes[2].attempts == 3
        assert sleeps == [0.5, 1.0]

    def test_pool_all_ok_never_sleeps(self):
        ex = ParallelExecutor(max_workers=2, retries=3, backoff=9.0)
        sleeps: list[float] = []
        ex._sleep = sleeps.append
        assert ex.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
        assert sleeps == []


class TestRespawnBudget:
    def test_recycle_discards_live_pool_and_counts(self):
        with ParallelExecutor(max_workers=2, persistent=True) as ex:
            assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]
            if ex._pool is None:
                pytest.skip("pool unavailable on this host; nothing to recycle")
            assert ex.recycle() is True
            assert ex.respawns == 1
            assert ex._pool is None
            # no live pool: nothing discarded, no budget spent
            assert ex.recycle() is False
            assert ex.respawns == 1
            # the next call lazily builds a fresh pool and still works
            assert ex.map(_square, [4]) == [16]

    def test_recycle_noop_for_non_persistent_executor(self):
        ex = ParallelExecutor(max_workers=2)
        assert ex.recycle() is False
        assert ex.respawns == 0

    def test_exhausted_budget_degrades_to_serial(self):
        with ParallelExecutor(max_workers=2, persistent=True, max_respawns=0) as ex:
            assert ex.map(_square, [1, 2, 3]) == [1, 4, 9]
            if ex._pool is None:
                pytest.skip("pool unavailable on this host; nothing to recycle")
            ex.recycle()  # spends the whole budget
            # Still correct — but permanently in-process: no pool is rebuilt.
            assert ex.map(_square, [5, 6, 7]) == [25, 36, 49]
            assert ex._pool is None

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_respawns=-1)
