"""Unit tests for the sampling substrate (SampledField + samplers)."""

import numpy as np
import pytest

from repro.grid import UniformGrid
from repro.sampling import (
    GradientImportanceSampler,
    HistogramImportanceSampler,
    MultiCriteriaSampler,
    RandomSampler,
    SampledField,
    StratifiedSampler,
    acceptance_probabilities,
)

ALL_SAMPLERS = [
    RandomSampler,
    StratifiedSampler,
    HistogramImportanceSampler,
    GradientImportanceSampler,
    MultiCriteriaSampler,
]


@pytest.fixture(params=ALL_SAMPLERS, ids=[c.name for c in ALL_SAMPLERS])
def sampler(request):
    return request.param(seed=11)


class TestSampledField:
    def test_basic_invariants(self, sample):
        assert sample.num_samples == len(np.unique(sample.indices))
        assert np.all(np.diff(sample.indices) > 0)  # sorted unique
        assert sample.values.shape == sample.indices.shape

    def test_values_match_field(self, hurricane_field, sample):
        np.testing.assert_allclose(sample.values, hurricane_field.flat[sample.indices])

    def test_void_indices_partition(self, sample):
        void = sample.void_indices()
        n = sample.grid.num_points
        assert len(void) + sample.num_samples == n
        assert len(np.intersect1d(void, sample.indices)) == 0

    def test_points_positions(self, sample):
        pts = sample.points
        assert pts.shape == (sample.num_samples, 3)
        # positions must round-trip through the grid index mapping
        idx = sample.grid.multi_to_flat(sample.grid.position_to_index(pts))
        np.testing.assert_array_equal(np.sort(idx), sample.indices)

    def test_rejects_duplicates(self, grid):
        with pytest.raises(ValueError):
            SampledField(grid, np.array([1, 1]), np.array([0.0, 0.0]), 0.1)

    def test_rejects_out_of_range(self, grid):
        with pytest.raises(ValueError):
            SampledField(grid, np.array([grid.num_points]), np.array([0.0]), 0.1)

    def test_rejects_empty(self, grid):
        with pytest.raises(ValueError):
            SampledField(grid, np.array([], dtype=np.int64), np.array([]), 0.1)

    def test_sorts_inputs(self, grid):
        s = SampledField(grid, np.array([5, 2, 9]), np.array([50.0, 20.0, 90.0]), 0.1)
        np.testing.assert_array_equal(s.indices, [2, 5, 9])
        np.testing.assert_allclose(s.values, [20.0, 50.0, 90.0])

    def test_vtp_roundtrip(self, tmp_path, sample):
        path = tmp_path / "s.vtp"
        sample.to_vtp(path)
        loaded = SampledField.from_vtp(path, sample.grid, fraction=sample.fraction)
        np.testing.assert_array_equal(loaded.indices, sample.indices)
        np.testing.assert_allclose(loaded.values, sample.values)


class TestSamplerContract:
    def test_exact_budget(self, hurricane_field, sampler):
        s = sampler.sample(hurricane_field, 0.05)
        expected = int(round(0.05 * hurricane_field.grid.num_points))
        assert s.num_samples == expected

    def test_deterministic(self, hurricane_field, sampler):
        a = sampler.sample(hurricane_field, 0.03)
        b = sampler.sample(hurricane_field, 0.03)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_seed_changes_draw(self, hurricane_field, sampler):
        a = sampler.sample(hurricane_field, 0.03)
        b = sampler.sample(hurricane_field, 0.03, seed=123)
        assert not np.array_equal(a.indices, b.indices)

    def test_fraction_one_keeps_everything(self, hurricane_field, sampler):
        s = sampler.sample(hurricane_field, 1.0)
        assert s.num_samples == hurricane_field.grid.num_points

    def test_rejects_bad_fraction(self, hurricane_field, sampler):
        with pytest.raises(ValueError):
            sampler.sample(hurricane_field, 0.0)
        with pytest.raises(ValueError):
            sampler.sample(hurricane_field, 1.5)

    def test_rejects_zero_budget(self, hurricane_field, sampler):
        with pytest.raises(ValueError):
            sampler.sample(hurricane_field, 1e-9)

    def test_timestep_recorded(self, sampler, grid):
        from repro.datasets import HurricaneDataset

        field = HurricaneDataset(grid=grid).field(t=7)
        s = sampler.sample(field, 0.05)
        assert s.timestep == 7


class TestAcceptanceProbabilities:
    def test_sums_to_budget(self, rng):
        imp = rng.random(500)
        p = acceptance_probabilities(imp, 50)
        assert p.sum() == pytest.approx(50, rel=1e-6)

    def test_bounded(self, rng):
        imp = rng.random(200) ** 4
        p = acceptance_probabilities(imp, 120)
        assert (p >= 0).all() and (p <= 1).all()

    def test_proportional_when_unsaturated(self):
        imp = np.array([1.0, 2.0, 3.0, 4.0])
        p = acceptance_probabilities(imp, 2)
        np.testing.assert_allclose(p / p[0], imp / imp[0])

    def test_caps_dominant_point(self):
        imp = np.array([100.0, 1.0, 1.0, 1.0])
        p = acceptance_probabilities(imp, 2)
        assert p[0] == pytest.approx(1.0)
        assert p[1:].sum() == pytest.approx(1.0)

    def test_zero_importance_spread_uniformly(self):
        imp = np.zeros(10)
        p = acceptance_probabilities(imp, 4)
        assert p.sum() == pytest.approx(4)
        np.testing.assert_allclose(p, p[0])

    def test_budget_equals_n(self, rng):
        imp = rng.random(20)
        p = acceptance_probabilities(imp, 20)
        np.testing.assert_allclose(p, 1.0)

    def test_rejects_negative_importance(self):
        with pytest.raises(ValueError):
            acceptance_probabilities(np.array([-1.0, 1.0]), 1)

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            acceptance_probabilities(np.ones(5), 0)
        with pytest.raises(ValueError):
            acceptance_probabilities(np.ones(5), 6)


class TestImportanceBehaviour:
    def test_gradient_sampler_prefers_high_gradient(self, grid):
        from repro.datasets.base import TimestepField
        from repro.grid import gradient_magnitude

        # A field with one sharp front: samples must concentrate there.
        x, _, _ = grid.meshgrid()
        values = np.tanh((x - x.mean()) / 0.8)
        field = TimestepField(grid, values, timestep=0)
        s = GradientImportanceSampler(seed=0).sample(field, 0.05)
        mag = gradient_magnitude(grid, values)
        assert mag[s.indices].mean() > 1.3 * mag.mean()

    def test_histogram_sampler_prefers_rare_values(self, grid):
        from repro.datasets.base import TimestepField

        # 95% of points share one value; the rare tail must be enriched.
        values = np.zeros(grid.num_points)
        rare = np.arange(0, grid.num_points, 20)
        values[rare] = np.linspace(5, 10, len(rare))
        field = TimestepField(grid, values.reshape(grid.dims), timestep=0)
        s = HistogramImportanceSampler(bins=16, seed=0).sample(field, 0.05)
        rare_hit_rate = np.isin(s.indices, rare).mean()
        assert rare_hit_rate > 0.5  # rare points are 5% of the grid

    def test_multicriteria_blends(self, hurricane_field):
        s = MultiCriteriaSampler(seed=0).sample(hurricane_field, 0.04)
        assert s.num_samples == int(round(0.04 * hurricane_field.grid.num_points))

    def test_multicriteria_weight_validation(self):
        with pytest.raises(ValueError):
            MultiCriteriaSampler(histogram_weight=-1)
        with pytest.raises(ValueError):
            MultiCriteriaSampler(histogram_weight=0, gradient_weight=0, uniform_weight=0)

    def test_bernoulli_mode_near_budget(self, hurricane_field):
        s = MultiCriteriaSampler(seed=0, exact=False).sample(hurricane_field, 0.05)
        budget = 0.05 * hurricane_field.grid.num_points
        assert 0.5 * budget < s.num_samples < 1.5 * budget

    def test_bins_validation(self):
        with pytest.raises(ValueError):
            HistogramImportanceSampler(bins=1)
        with pytest.raises(ValueError):
            MultiCriteriaSampler(bins=1)


class TestStratified:
    def test_block_coverage(self, hurricane_field):
        # With enough budget, every spatial block must contain samples.
        s = StratifiedSampler(blocks=(3, 3, 2), seed=0).sample(hurricane_field, 0.10)
        grid = hurricane_field.grid
        multi = grid.flat_to_multi(s.indices)
        bx = multi[:, 0] * 3 // grid.dims[0]
        by = multi[:, 1] * 3 // grid.dims[1]
        bz = multi[:, 2] * 2 // grid.dims[2]
        blocks = set(zip(bx.tolist(), by.tolist(), bz.tolist()))
        assert len(blocks) == 3 * 3 * 2

    def test_rejects_bad_blocks(self):
        with pytest.raises(ValueError):
            StratifiedSampler(blocks=(0, 1, 1))

    def test_more_blocks_than_axis_points(self, hurricane_field):
        s = StratifiedSampler(blocks=(64, 64, 64), seed=0).sample(hurricane_field, 0.05)
        assert s.num_samples == int(round(0.05 * hurricane_field.grid.num_points))
