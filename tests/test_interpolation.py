"""Unit tests for the rule-based interpolators."""

import numpy as np
import pytest

from repro.datasets.base import TimestepField
from repro.grid import UniformGrid
from repro.interpolation import (
    DelaunayLinearInterpolator,
    ModifiedShepardInterpolator,
    NaturalNeighborInterpolator,
    NearestNeighborInterpolator,
    RBFInterpolator,
    available_interpolators,
    make_interpolator,
)
from repro.metrics import snr
from repro.sampling import RandomSampler

ALL = [
    NearestNeighborInterpolator,
    ModifiedShepardInterpolator,
    DelaunayLinearInterpolator,
    NaturalNeighborInterpolator,
    RBFInterpolator,
]


@pytest.fixture(params=ALL, ids=[c.name for c in ALL])
def interpolator(request):
    return request.param()


def linear_field(grid: UniformGrid) -> TimestepField:
    x, y, z = grid.meshgrid()
    return TimestepField(grid, 2.0 * x - 0.5 * y + 3.0 * z + 1.0, timestep=0)


class TestContract:
    def test_reconstruct_shape(self, interpolator, sample):
        out = interpolator.reconstruct(sample)
        assert out.shape == sample.grid.dims
        assert np.isfinite(out).all()

    def test_sampled_points_kept_exact(self, interpolator, sample):
        out = interpolator.reconstruct(sample).ravel()
        np.testing.assert_allclose(out[sample.indices], sample.values)

    def test_target_grid_reconstruction(self, interpolator, sample):
        target = sample.grid.with_resolution((6, 5, 4))
        out = interpolator.reconstruct(sample, target_grid=target)
        assert out.shape == (6, 5, 4)
        assert np.isfinite(out).all()

    def test_full_sample_is_identity(self, interpolator, hurricane_field):
        full = RandomSampler(seed=0).sample(hurricane_field, 1.0)
        out = interpolator.reconstruct(full)
        np.testing.assert_allclose(out, hurricane_field.values)

    def test_positive_snr_on_dense_sample(self, interpolator, hurricane_field, dense_sample):
        out = interpolator.reconstruct(dense_sample)
        assert snr(hurricane_field.values, out) > 3.0


class TestLinearExactness:
    """Linear-reproducing methods must be exact on affine fields."""

    @pytest.mark.parametrize("cls", [DelaunayLinearInterpolator, RBFInterpolator])
    def test_exact_on_linear_field(self, grid, cls):
        field = linear_field(grid)
        sample = RandomSampler(seed=1).sample(field, 0.3)
        out = cls().reconstruct(sample)
        # Hull interior must be exact; allow boundary fallback slack by
        # checking the median error.
        err = np.abs(out - field.values)
        assert np.median(err) < 1e-8

    def test_constant_field_exact_for_all(self, grid, interpolator):
        field = TimestepField(grid, np.full(grid.dims, 4.2), timestep=0)
        sample = RandomSampler(seed=1).sample(field, 0.1)
        out = interpolator.reconstruct(sample)
        np.testing.assert_allclose(out, 4.2, rtol=1e-6)


class TestDelaunay:
    def test_naive_matches_vectorized(self, grid):
        field = linear_field(grid)
        # nonlinear bump so interpolation is non-trivial
        x, _, _ = grid.meshgrid()
        field = TimestepField(grid, field.values + np.sin(x), timestep=0)
        sample = RandomSampler(seed=2).sample(field, 0.25)
        fast = DelaunayLinearInterpolator(mode="vectorized").reconstruct(sample)
        slow = DelaunayLinearInterpolator(mode="naive").reconstruct(sample)
        # Grid-aligned samples create sliver tetrahedra; a query point lying
        # on a shared face may legitimately resolve to either neighbor, so
        # we require agreement almost everywhere rather than exactly
        # everywhere.
        close = np.isclose(fast, slow, rtol=1e-8, atol=1e-8)
        assert close.mean() > 0.99
        assert np.abs(fast - slow).max() < 1.0  # disagreements stay local/small

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            DelaunayLinearInterpolator(mode="gpu")

    def test_tiny_sample_falls_back_to_nearest(self, grid, hurricane_field):
        sample = RandomSampler(seed=3).sample(hurricane_field, 4 / grid.num_points)
        assert sample.num_samples < 5
        out = DelaunayLinearInterpolator().reconstruct(sample)
        assert np.isfinite(out).all()

    def test_outside_hull_filled(self, unit_grid):
        # Samples clustered centrally leave the boundary outside the hull.
        from repro.sampling.base import SampledField

        center = np.array([idx for idx in range(unit_grid.num_points)
                           if np.all(np.abs(unit_grid.flat_to_multi(np.array([idx]))[0] - 3.5) < 2)])
        x, y, z = unit_grid.meshgrid()
        values = (x + y + z).ravel()[center]
        sample = SampledField(unit_grid, center, values, fraction=len(center) / unit_grid.num_points)
        out = DelaunayLinearInterpolator().reconstruct(sample)
        assert np.isfinite(out).all()


class TestShepard:
    def test_respects_neighbor_count(self, dense_sample):
        out = ModifiedShepardInterpolator(num_neighbors=4).reconstruct(dense_sample)
        assert np.isfinite(out).all()

    def test_rejects_bad_neighbors(self):
        with pytest.raises(ValueError):
            ModifiedShepardInterpolator(num_neighbors=1)

    def test_prediction_within_sample_range(self, dense_sample):
        # IDW is a convex combination: bounded by sample min/max.
        out = ModifiedShepardInterpolator().reconstruct(dense_sample)
        assert out.min() >= dense_sample.values.min() - 1e-9
        assert out.max() <= dense_sample.values.max() + 1e-9


class TestNaturalNeighbor:
    def test_smoother_than_nearest(self, hurricane_field, sample):
        nn = NearestNeighborInterpolator().reconstruct(sample)
        nat = NaturalNeighborInterpolator().reconstruct(sample)
        assert snr(hurricane_field.values, nat) > snr(hurricane_field.values, nn)

    def test_prediction_within_sample_range(self, sample):
        out = NaturalNeighborInterpolator().reconstruct(sample)
        assert out.min() >= sample.values.min() - 1e-9
        assert out.max() <= sample.values.max() + 1e-9


class TestRegistry:
    def test_available(self):
        names = available_interpolators()
        assert {"linear", "linear-naive", "natural", "nearest", "rbf", "shepard"} <= set(names)

    def test_make_each(self):
        for name in available_interpolators():
            method = make_interpolator(name)
            assert method.name == name

    def test_make_with_kwargs(self):
        m = make_interpolator("shepard", num_neighbors=12)
        assert m.num_neighbors == 12

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown interpolator"):
            make_interpolator("quantum")
