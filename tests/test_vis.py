"""Unit tests for the visualization substrate (isosurface, render, metrics)."""

import numpy as np
import pytest

from repro.grid import UniformGrid
from repro.vis import (
    IsoSurface,
    average_projection,
    extract_isosurface,
    histogram_intersection,
    isosurface_iou,
    max_intensity_projection,
    occupancy,
    slice_field,
    to_image_u8,
    write_pgm,
)


@pytest.fixture
def sphere():
    g = UniformGrid((24, 24, 24), spacing=(0.1, 0.1, 0.1), origin=(-1.15, -1.15, -1.15))
    x, y, z = g.meshgrid()
    return g, np.sqrt(x**2 + y**2 + z**2)


class TestIsosurface:
    def test_sphere_area(self, sphere):
        g, field = sphere
        surf = extract_isosurface(g, field, 0.7)
        expected = 4 * np.pi * 0.7**2
        assert surf.area() == pytest.approx(expected, rel=0.02)

    def test_sphere_vertices_on_level_set(self, sphere):
        g, field = sphere
        surf = extract_isosurface(g, field, 0.7)
        radii = np.linalg.norm(surf.vertices, axis=1)
        assert np.abs(radii - 0.7).max() < 0.01

    def test_sphere_centroid(self, sphere):
        g, field = sphere
        surf = extract_isosurface(g, field, 0.7)
        np.testing.assert_allclose(surf.centroid(), [0, 0, 0], atol=1e-6)

    def test_planar_level_set_area(self):
        # f = x: level set x=c is a plane; area = yspan * zspan.
        g = UniformGrid((10, 8, 6), spacing=(1.0, 0.5, 2.0))
        x, _, _ = g.meshgrid()
        surf = extract_isosurface(g, x, 4.5)
        assert surf.area() == pytest.approx(7 * 0.5 * 5 * 2.0, rel=1e-6)

    def test_missing_isovalue_empty(self, sphere):
        g, field = sphere
        surf = extract_isosurface(g, field, 1e9)
        assert surf.num_triangles == 0
        assert surf.area() == 0.0

    def test_empty_centroid_zero(self):
        surf = IsoSurface(np.zeros((0, 3)), np.zeros((0, 3), dtype=np.int64), 0.0)
        np.testing.assert_array_equal(surf.centroid(), [0, 0, 0])

    def test_grid_too_small(self):
        g = UniformGrid((1, 5, 5))
        surf = extract_isosurface(g, np.zeros(g.dims), 0.0)
        assert surf.num_triangles == 0

    def test_obj_export(self, sphere, tmp_path):
        g, field = sphere
        surf = extract_isosurface(g, field, 0.9)
        path = tmp_path / "s.obj"
        surf.write_obj(path)
        text = path.read_text()
        assert text.count("\nv ") + text.startswith("v ") == surf.num_vertices
        assert text.count("\nf ") == surf.num_triangles

    def test_case_table_complete(self):
        from repro.vis.isosurface import _TET_TRIANGLES

        assert set(_TET_TRIANGLES) == set(range(16))
        assert _TET_TRIANGLES[0] == [] and _TET_TRIANGLES[15] == []
        for mask in range(1, 15):
            count = bin(mask).count("1")
            assert len(_TET_TRIANGLES[mask]) == (1 if count in (1, 3) else 2)

    def test_watertight_euler_heuristic(self, sphere):
        # A closed surface triangulation satisfies 3T = 2E; with our
        # duplicated vertices we instead check T is even and area is stable
        # under isovalue jitter (no cracks popping in/out).
        g, field = sphere
        a1 = extract_isosurface(g, field, 0.70).area()
        a2 = extract_isosurface(g, field, 0.7001).area()
        assert abs(a1 - a2) / a1 < 1e-2


class TestRender:
    @pytest.fixture
    def volume(self, rng):
        g = UniformGrid((6, 5, 4))
        return g, rng.normal(size=g.dims)

    def test_mip_matches_numpy(self, volume):
        g, v = volume
        np.testing.assert_array_equal(max_intensity_projection(g, v, axis=2), v.max(axis=2))

    def test_mean_matches_numpy(self, volume):
        g, v = volume
        np.testing.assert_allclose(average_projection(g, v, axis=0), v.mean(axis=0))

    def test_slice_default_middle(self, volume):
        g, v = volume
        np.testing.assert_array_equal(slice_field(g, v, axis=2), v[:, :, 2])

    def test_slice_index_bounds(self, volume):
        g, v = volume
        with pytest.raises(ValueError):
            slice_field(g, v, axis=2, index=10)

    def test_bad_axis(self, volume):
        g, v = volume
        with pytest.raises(ValueError):
            max_intensity_projection(g, v, axis=3)

    def test_to_image_u8_range(self, rng):
        img = to_image_u8(rng.normal(size=(5, 7)))
        assert img.dtype == np.uint8
        assert img.min() == 0 and img.max() == 255

    def test_to_image_u8_constant(self):
        img = to_image_u8(np.full((3, 3), 2.0))
        assert (img == 128).all()

    def test_to_image_rejects_3d(self, rng):
        with pytest.raises(ValueError):
            to_image_u8(rng.normal(size=(2, 2, 2)))

    def test_write_pgm(self, tmp_path, rng):
        path = tmp_path / "x.pgm"
        write_pgm(path, rng.normal(size=(4, 6)))
        blob = path.read_bytes()
        assert blob.startswith(b"P5\n6 4\n255\n")
        assert len(blob) == len(b"P5\n6 4\n255\n") + 24


class TestFeatureMetrics:
    def test_occupancy(self):
        m = occupancy(np.array([0.0, 1.0, 2.0]), 1.0)
        np.testing.assert_array_equal(m, [False, True, True])

    def test_iou_identical(self, rng):
        v = rng.normal(size=(5, 5, 5))
        assert isosurface_iou(v, v.copy(), 0.0) == 1.0

    def test_iou_disjoint(self):
        a = np.zeros((4, 4, 4)); a[:2] = 1.0
        b = np.zeros((4, 4, 4)); b[2:] = 1.0
        assert isosurface_iou(a, b, 0.5) == 0.0

    def test_iou_both_empty(self):
        a = np.zeros((3, 3, 3))
        assert isosurface_iou(a, a, 5.0) == 1.0

    def test_iou_half_overlap(self):
        a = np.zeros(8); a[:4] = 1.0
        b = np.zeros(8); b[2:6] = 1.0
        assert isosurface_iou(a, b, 0.5) == pytest.approx(2 / 6)

    def test_iou_shape_mismatch(self):
        with pytest.raises(ValueError):
            isosurface_iou(np.zeros(3), np.zeros(4), 0.0)

    def test_histogram_intersection_identical(self, rng):
        v = rng.normal(size=1000)
        assert histogram_intersection(v, v.copy()) == pytest.approx(1.0)

    def test_histogram_intersection_disjoint_ranges(self, rng):
        a = rng.uniform(0, 1, 500)
        b = rng.uniform(10, 11, 500)
        assert histogram_intersection(a, b) < 0.05

    def test_histogram_intersection_bounds(self, rng):
        a, b = rng.normal(size=300), rng.normal(size=300) + 0.5
        h = histogram_intersection(a, b)
        assert 0.0 <= h <= 1.0

    def test_histogram_validation(self, rng):
        with pytest.raises(ValueError):
            histogram_intersection(rng.normal(size=5), rng.normal(size=5), bins=1)
        with pytest.raises(ValueError):
            histogram_intersection(np.array([]), np.array([]))
