#!/usr/bin/env python
"""The paper's on-disk in situ workflow: .vti -> sample -> .vtp -> .vti.

Mirrors Sec IV-A exactly, using this repo's self-contained VTK XML I/O:

1. the "simulation" writes the full-resolution timestep as a ``.vti``;
2. the in situ sampler reduces it to a point-cloud ``.vtp`` (this is all
   that survives on disk — the full data is discarded);
3. post hoc, a reconstructor loads the ``.vtp``, rebuilds the volume, and
   writes the reconstruction as a ``.vti``;
4. quality is scored against the original (which, in a real workflow,
   would no longer exist — here we keep it to compute SNR).

All artifacts land in ``./insitu_output/`` and open in ParaView.
"""

from pathlib import Path

from repro.core import FCNNReconstructor
from repro.datasets import CombustionDataset
from repro.io import read_vti, read_vtp, write_vti
from repro.metrics import snr
from repro.sampling import MultiCriteriaSampler, SampledField

OUT = Path("insitu_output")
FRACTION = 0.05


def main() -> None:
    OUT.mkdir(exist_ok=True)

    # --- in situ side -------------------------------------------------------
    grid = CombustionDataset.default_grid().with_resolution((36, 48, 12))
    dataset = CombustionDataset(grid=grid, seed=0)
    field = dataset.field(t=60)

    original_path = OUT / "combustion_t60.vti"
    write_vti(original_path, grid, {dataset.attribute: field.values})
    print(f"wrote original volume  : {original_path} ({original_path.stat().st_size // 1024} KiB)")

    sampler = MultiCriteriaSampler(seed=7)
    sample = sampler.sample(field, FRACTION)
    sample_path = OUT / "combustion_t60_sampled.vtp"
    sample.to_vtp(sample_path)
    print(f"wrote sampled cloud    : {sample_path} ({sample_path.stat().st_size // 1024} KiB, "
          f"{sample.num_samples} points = {sample.achieved_fraction:.1%})")

    # --- post hoc side ------------------------------------------------------
    loaded_grid, loaded_data = read_vti(original_path)
    loaded_sample = SampledField.from_vtp(sample_path, loaded_grid, fraction=FRACTION)

    # Train on the in situ timestep (full data available only now).
    from repro.datasets.base import TimestepField

    train_field = TimestepField(loaded_grid, loaded_data[dataset.attribute], timestep=60)
    extra = sampler.sample(train_field, 0.01)
    model = FCNNReconstructor(hidden_layers=(96, 48, 24, 12), seed=0)
    model.train(train_field, [extra, loaded_sample], epochs=100)

    volume = model.reconstruct(loaded_sample)
    recon_path = OUT / "combustion_t60_reconstructed.vti"
    write_vti(recon_path, loaded_grid, {dataset.attribute: volume})
    print(f"wrote reconstruction   : {recon_path} ({recon_path.stat().st_size // 1024} KiB)")

    # --- score --------------------------------------------------------------
    quality = snr(field.values, volume)
    print(f"reconstruction quality : SNR {quality:.2f} dB at {FRACTION:.0%} sampling")

    # Verify the .vtp round-trip reproduced the sampled values exactly.
    points, data = read_vtp(sample_path)
    assert len(points) == sample.num_samples
    print("vtp roundtrip          : OK "
          f"({len(points)} points, scalar range [{data['scalar'].min():.3f}, "
          f"{data['scalar'].max():.3f}])")


if __name__ == "__main__":
    main()
