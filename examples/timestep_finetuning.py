#!/usr/bin/env python
"""In situ across time: pretrain once, fine-tune ~10 epochs per timestep.

Experiment 2 of the paper as a user workflow.  A hurricane simulation
advances; at each output step only a 3% sample is stored.  One FCNN is
pretrained at the first step; at every later step it is fine-tuned for 10
epochs (Case 1) before reconstructing — and compared against (a) itself
*without* fine-tuning and (b) Delaunay linear interpolation, which must
start from scratch every time.

Also demonstrates the Case-2 storage scheme: per-timestep checkpoints that
hold only the last two layers.
"""

import copy
import os
import tempfile
import time

from repro.core import FCNNReconstructor
from repro.datasets import HurricaneDataset
from repro.interpolation import DelaunayLinearInterpolator
from repro.metrics import snr
from repro.sampling import MultiCriteriaSampler

FRACTION = 0.03
TIMESTEPS = (0, 8, 16, 24, 32, 40)


def main() -> None:
    grid = HurricaneDataset.default_grid().with_resolution((36, 36, 10))
    dataset = HurricaneDataset(grid=grid, seed=0)
    sampler = MultiCriteriaSampler(seed=7)
    linear = DelaunayLinearInterpolator()

    # Pretrain at the first stored timestep.
    first = dataset.field(t=TIMESTEPS[0])
    train = [sampler.sample(first, 0.01), sampler.sample(first, 0.05)]
    pretrained = FCNNReconstructor(hidden_layers=(128, 64, 32, 16), seed=0)
    t0 = time.perf_counter()
    pretrained.train(first, train, epochs=120)
    print(f"pretrained at t={TIMESTEPS[0]} in {time.perf_counter() - t0:.1f}s")

    rolling = copy.deepcopy(pretrained)  # fine-tuned copy, carried forward

    print()
    print(f"{'t':>3s}  {'linear':>7s}  {'pretrained':>10s}  {'fine-tuned':>10s}  {'ft secs':>8s}")
    with tempfile.TemporaryDirectory() as ckpt_dir:
        for t in TIMESTEPS:
            field = dataset.field(t=t)
            test = sampler.sample(field, FRACTION, seed=1000)

            lin_snr = snr(field.values, linear.reconstruct(test))
            pre_snr = snr(field.values, pretrained.reconstruct(test))

            t0 = time.perf_counter()
            if t != TIMESTEPS[0]:
                new_train = [sampler.sample(field, 0.01), sampler.sample(field, 0.05)]
                rolling.fine_tune(field, new_train, epochs=10, strategy="full")
            ft_seconds = time.perf_counter() - t0
            ft_snr = snr(field.values, rolling.reconstruct(test))

            # Case-2-style storage: per-timestep partial checkpoint.
            rolling.save_partial(os.path.join(ckpt_dir, f"t{t:02d}.npz"), num_layers=2)

            print(f"{t:3d}  {lin_snr:7.2f}  {pre_snr:10.2f}  {ft_snr:10.2f}  {ft_seconds:8.2f}")

        sizes = sorted(os.listdir(ckpt_dir))
        partial_bytes = os.path.getsize(os.path.join(ckpt_dir, sizes[-1]))
        full_path = os.path.join(ckpt_dir, "full.npz")
        rolling.save(full_path)
        print()
        print(f"checkpoints: full model {os.path.getsize(full_path) / 1024:.0f} KiB, "
              f"per-timestep last-2-layer checkpoint {partial_bytes / 1024:.0f} KiB")


if __name__ == "__main__":
    main()
