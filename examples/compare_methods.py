#!/usr/bin/env python
"""Survey every reconstruction method on every dataset (Sec III-B study).

Reproduces the paper's method comparison in miniature: for each of the
three simulation datasets and a sweep of sampling percentages, reconstruct
with the FCNN and all five rule-based interpolators (including RBF, which
the paper benchmarked and then excluded for cost) and print quality and
timing side by side.
"""

from repro.core import FCNNReconstructor, ReconstructionPipeline
from repro.datasets import make_dataset
from repro.interpolation import make_interpolator
from repro.sampling import MultiCriteriaSampler

DATASETS = ("hurricane", "combustion", "ionization")
FRACTIONS = (0.005, 0.01, 0.03)
METHODS = ("linear", "natural", "shepard", "nearest", "rbf")


def main() -> None:
    print(f"{'dataset':10s}  {'frac':>6s}  {'method':8s}  {'SNR (dB)':>9s}  {'seconds':>8s}")
    for name in DATASETS:
        pipeline = ReconstructionPipeline(
            dataset=make_dataset(name, dims=(28, 28, 10), seed=0),
            sampler=MultiCriteriaSampler(seed=7),
        )
        fcnn = FCNNReconstructor(hidden_layers=(96, 48, 24, 12), seed=0)
        pipeline.train_fcnn(fcnn, epochs=100)
        field = pipeline.field(0)

        for fraction in FRACTIONS:
            sample = pipeline.sample(field, fraction, seed=1000)
            for method_name in ("fcnn",) + METHODS:
                method = fcnn if method_name == "fcnn" else make_interpolator(method_name)
                res = pipeline.run_method(method, sample, field)
                print(
                    f"{name:10s}  {fraction:6.1%}  {method_name:8s}"
                    f"  {res.score.snr:9.2f}  {res.reconstruct_seconds:8.3f}"
                )
        print()


if __name__ == "__main__":
    main()
