#!/usr/bin/env python
"""Uncertainty-aware reconstruction with deep ensembles (paper future work).

Trains a 3-member deep ensemble, reconstructs with per-voxel uncertainty,
checks that the uncertainty actually ranks the error, and demonstrates the
closed loop: feed the uncertainty into an adaptive sampler for the next
timestep and compare against static sampling.
"""

import numpy as np

from repro.core import DeepEnsembleReconstructor
from repro.datasets import HurricaneDataset
from repro.insitu import run_adaptive_campaign
from repro.metrics import snr
from repro.sampling import MultiCriteriaSampler


def main() -> None:
    grid = HurricaneDataset.default_grid().with_resolution((28, 28, 10))
    dataset = HurricaneDataset(grid=grid, seed=0)
    sampler = MultiCriteriaSampler(seed=7)
    field = dataset.field(t=0)

    train = [sampler.sample(field, 0.01), sampler.sample(field, 0.05)]
    ensemble = DeepEnsembleReconstructor(
        num_members=3, base_seed=0, hidden_layers=(96, 48, 24, 12), batch_size=4096
    )
    ensemble.train(field, train, epochs=80)

    test = sampler.sample(field, 0.02, seed=1000)
    rec = ensemble.reconstruct_with_uncertainty(test)

    void = test.void_indices()
    err = np.abs(field.flat[void] - rec.mean.ravel()[void])
    unc = rec.std.ravel()[void]
    corr = np.corrcoef(err, unc)[0, 1]

    print(f"ensemble mean SNR      : {snr(field.values, rec.mean):.2f} dB")
    print(f"2-sigma coverage       : {rec.coverage(field.values, k=2):.1%}")
    print(f"error/uncertainty corr : {corr:.3f}")
    top = np.argsort(-unc)[: len(unc) // 10]
    print(f"error in top-10% most-uncertain voxels: {err[top].mean():.3f} "
          f"vs overall {err.mean():.3f}")

    # Closed loop: uncertainty drives the next timesteps' sampling.
    print("\nadaptive vs static sampling across timesteps (2% budget):")
    ensemble2 = DeepEnsembleReconstructor(
        num_members=2, base_seed=0, hidden_layers=(64, 32, 16), batch_size=4096
    )
    records = run_adaptive_campaign(
        dataset,
        timesteps=(0, 12, 24, 36),
        fraction=0.02,
        ensemble=ensemble2,
        pretrain_epochs=60,
        finetune_epochs=10,
    )
    print(f"{'t':>3s}  {'static':>7s}  {'adaptive':>8s}  {'mean std':>9s}")
    for r in records:
        print(f"{r['timestep']:3d}  {r['snr_static']:7.2f}  "
              f"{r['snr_adaptive']:8.2f}  {r['mean_uncertainty']:9.4f}")


if __name__ == "__main__":
    main()
