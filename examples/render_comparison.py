#!/usr/bin/env python
"""Qualitative comparison images (the paper's Fig 2 / Fig 3 analogue).

Fig 2 of the paper shows the combustion field reconstructed from a 1%
sample via FCNN vs linear interpolation; Fig 3 the ionization field via
FCNN vs natural neighbors.  This example regenerates both comparisons as
PGM images (original / FCNN / rule-based, plus absolute-error maps) under
``./render_output/``, viewable with any image tool.
"""

from pathlib import Path

import numpy as np

from repro.core import FCNNReconstructor
from repro.datasets import make_dataset
from repro.interpolation import make_interpolator
from repro.metrics import snr
from repro.sampling import MultiCriteriaSampler
from repro.vis import slice_field, write_pgm

OUT = Path("render_output")
FRACTION = 0.01

#: (dataset, rule-based competitor) pairs, as in the paper's figures
COMPARISONS = (("combustion", "linear"), ("ionization", "natural"))


def main() -> None:
    OUT.mkdir(exist_ok=True)
    for dataset_name, method_name in COMPARISONS:
        dataset = make_dataset(dataset_name, dims=(36, 36, 12), seed=0)
        field = dataset.field(t=dataset.num_timesteps // 2)
        sampler = MultiCriteriaSampler(seed=7)

        fcnn = FCNNReconstructor(hidden_layers=(96, 48, 24, 12), seed=0)
        train = [sampler.sample(field, 0.01), sampler.sample(field, 0.05)]
        fcnn.train(field, train, epochs=100)

        sample = sampler.sample(field, FRACTION, seed=1000)
        volumes = {
            "original": field.values,
            "fcnn": fcnn.reconstruct(sample),
            method_name: make_interpolator(method_name).reconstruct(sample),
        }

        # Common gray scale across the row so brightness is comparable.
        vmin, vmax = field.values.min(), field.values.max()
        grid = field.grid
        print(f"[{dataset_name}] 1% sample, middle z-slice:")
        for label, volume in volumes.items():
            image = slice_field(grid, volume, axis=2)
            path = OUT / f"{dataset_name}_{label}.pgm"
            write_pgm(path, image, vmin=vmin, vmax=vmax)
            note = ""
            if label != "original":
                note = f"  SNR {snr(field.values, volume):6.2f} dB"
            print(f"  wrote {path}{note}")

        # Error maps (shared scale) make the quality gap visible.
        err_scale = max(
            np.abs(volumes["fcnn"] - field.values).max(),
            np.abs(volumes[method_name] - field.values).max(),
        )
        for label in ("fcnn", method_name):
            err = np.abs(volumes[label] - field.values)
            image = slice_field(grid, err, axis=2)
            path = OUT / f"{dataset_name}_{label}_error.pgm"
            write_pgm(path, image, vmin=0.0, vmax=err_scale)
            print(f"  wrote {path}")
        print()


if __name__ == "__main__":
    main()
