#!/usr/bin/env python
"""Multivariate workflow: store several attributes at shared locations.

A realistic in situ reducer stores *all* attributes of interest at the same
sampled locations (one index column, several value columns).  This example
samples the hurricane simulation's pressure, temperature and wind speed
with a single pressure-driven importance draw, trains one FCNN per
attribute, and reconstructs the full multivariate state — reporting SNR per
attribute against Delaunay linear interpolation.
"""

import time

from repro.core import MultivariateReconstructor, sample_multivariate
from repro.datasets import HurricaneDataset
from repro.interpolation import DelaunayLinearInterpolator
from repro.metrics import snr
from repro.sampling import MultiCriteriaSampler

ATTRIBUTES = ("pressure", "temperature", "wind_speed")


def main() -> None:
    grid = HurricaneDataset.default_grid().with_resolution((32, 32, 10))
    dataset = HurricaneDataset(grid=grid, seed=0)
    sampler = MultiCriteriaSampler(seed=7)
    t = 24  # peak-intensity timestep

    fields = {a: dataset.field(t=t, attribute=a) for a in ATTRIBUTES}

    # One shared-location draw per training fraction (driver: pressure).
    train = {a: [] for a in ATTRIBUTES}
    for fraction in (0.01, 0.05):
        drawn = sample_multivariate(dataset, sampler, fraction, timestep=t,
                                    attributes=ATTRIBUTES)
        for a in ATTRIBUTES:
            train[a].append(drawn[a])

    model = MultivariateReconstructor(
        ATTRIBUTES, hidden_layers=(96, 48, 24, 12), batch_size=4096, seed=0
    )
    t0 = time.perf_counter()
    model.train(fields, train, epochs=100)
    print(f"trained {len(ATTRIBUTES)} attribute models in {time.perf_counter() - t0:.1f}s")

    test = sample_multivariate(dataset, sampler, 0.01, timestep=t,
                               attributes=ATTRIBUTES, seed=1000)
    volumes = model.reconstruct(test)
    linear = DelaunayLinearInterpolator()

    print()
    print(f"{'attribute':12s}  {'FCNN SNR':>9s}  {'linear SNR':>10s}")
    for a in ATTRIBUTES:
        fcnn_snr = snr(fields[a].values, volumes[a])
        lin_snr = snr(fields[a].values, linear.reconstruct(test[a]))
        print(f"{a:12s}  {fcnn_snr:9.2f}  {lin_snr:10.2f}")


if __name__ == "__main__":
    main()
