#!/usr/bin/env python
"""Volume upscaling: transfer a low-resolution model to a shifted, 2x grid.

Experiment 3 of the paper.  An FCNN pretrained on a low-resolution run is
fine-tuned for just 10 epochs on samples from a high-resolution run whose
*physical domain is shifted* — then reconstructs the 8x-larger volume,
competing with Delaunay linear interpolation and with an FCNN trained from
scratch on the high-resolution data.
"""

import time

from repro.core import FCNNReconstructor
from repro.datasets import HurricaneDataset
from repro.grid import upscaled_grid
from repro.interpolation import DelaunayLinearInterpolator
from repro.metrics import snr
from repro.sampling import MultiCriteriaSampler


def main() -> None:
    low_grid = HurricaneDataset.default_grid().with_resolution((30, 30, 10))
    dataset = HurricaneDataset(grid=low_grid, seed=0)
    sampler = MultiCriteriaSampler(seed=7)

    # High-resolution target: 2x points per axis, domain shifted by 15%.
    high_grid = upscaled_grid(low_grid, 2, shift_fraction=(0.15, 0.15, 0.0))
    print(f"low  grid: {low_grid.describe()}")
    print(f"high grid: {high_grid.describe()}")

    # Pretrain on the low-resolution domain.
    field_lo = dataset.field(t=0)
    train_lo = [sampler.sample(field_lo, 0.01), sampler.sample(field_lo, 0.05)]
    model = FCNNReconstructor(hidden_layers=(128, 64, 32, 16), seed=0)
    t0 = time.perf_counter()
    model.train(field_lo, train_lo, epochs=100)
    print(f"pretrained on low-res in {time.perf_counter() - t0:.1f}s")

    # Fine-tune 10 epochs on the high-resolution, shifted-domain samples.
    field_hi = dataset.field(t=0, grid=high_grid)
    train_hi = [sampler.sample(field_hi, 0.01), sampler.sample(field_hi, 0.05)]
    t0 = time.perf_counter()
    model.fine_tune(field_hi, train_hi, epochs=10, strategy="full")
    print(f"fine-tuned to high-res in {time.perf_counter() - t0:.1f}s")

    # Reference: an FCNN trained from scratch on the high-res data.
    t0 = time.perf_counter()
    reference = FCNNReconstructor(hidden_layers=(128, 64, 32, 16), seed=0)
    reference.train(field_hi, train_hi, epochs=100)
    full_train_seconds = time.perf_counter() - t0
    print(f"(reference model fully trained on high-res: {full_train_seconds:.1f}s)")

    linear = DelaunayLinearInterpolator()
    print()
    print(f"{'sampling':>8s}  {'linear':>7s}  {'fcnn fine-tuned':>15s}  {'fcnn full hi-res':>16s}")
    for fraction in (0.005, 0.01, 0.03, 0.05):
        test = sampler.sample(field_hi, fraction, seed=1000)
        row = (
            snr(field_hi.values, linear.reconstruct(test)),
            snr(field_hi.values, model.reconstruct(test)),
            snr(field_hi.values, reference.reconstruct(test)),
        )
        print(f"{fraction:8.1%}  {row[0]:7.2f}  {row[1]:15.2f}  {row[2]:16.2f}")


if __name__ == "__main__":
    main()
