#!/usr/bin/env python
"""Quickstart: sample a simulation field, train the FCNN, reconstruct.

This is the paper's Fig 1 workflow end to end on the synthetic Hurricane
dataset:

1. materialize one timestep of the simulation on a regular grid;
2. reduce it to a 1% + 5% importance sample (Biswas et al. [5]);
3. train the FCNN on the sampled data's void locations;
4. reconstruct a fresh 2% sample back to the full grid;
5. compare against Delaunay linear interpolation.

Runs in ~1 minute on one CPU core.
"""

import time

from repro.core import FCNNReconstructor
from repro.datasets import HurricaneDataset
from repro.interpolation import DelaunayLinearInterpolator
from repro.metrics import score_reconstruction
from repro.sampling import MultiCriteriaSampler


def main() -> None:
    # 1. One timestep of the simulation, on a CPU-friendly grid.
    grid = HurricaneDataset.default_grid().with_resolution((40, 40, 12))
    dataset = HurricaneDataset(grid=grid, seed=0)
    field = dataset.field(t=0)
    print(f"dataset : {dataset.name} ({dataset.attribute}), {grid.describe()}")

    # 2. Aggressive in situ sampling: keep 1% and 5% of the grid points.
    sampler = MultiCriteriaSampler(seed=7)
    train_samples = [sampler.sample(field, 0.01), sampler.sample(field, 0.05)]
    kept = sum(s.num_samples for s in train_samples)
    print(f"sampling: kept {kept} points for training ({kept / grid.num_points:.1%} total)")

    # 3. Train the FCNN on the void locations of both samples.
    model = FCNNReconstructor(hidden_layers=(128, 64, 32, 16), seed=0)
    t0 = time.perf_counter()
    model.train(field, train_samples, epochs=150)
    print(f"training: {time.perf_counter() - t0:.1f}s, "
          f"final loss {model.history.train_loss[-1]:.4f}")

    # 4. Reconstruct an independent 2% sample back to the full grid.
    test = sampler.sample(field, 0.02, seed=99)
    t0 = time.perf_counter()
    volume = model.reconstruct(test)
    fcnn_seconds = time.perf_counter() - t0
    fcnn = score_reconstruction(field.values, volume)

    # 5. The strongest rule-based baseline on the same sample.
    linear = DelaunayLinearInterpolator()
    t0 = time.perf_counter()
    baseline = linear.reconstruct(test)
    linear_seconds = time.perf_counter() - t0
    lin = score_reconstruction(field.values, baseline)

    print()
    print(f"{'method':8s}  {'SNR (dB)':>9s}  {'RMSE':>8s}  {'seconds':>8s}")
    print(f"{'fcnn':8s}  {fcnn.snr:9.2f}  {fcnn.rmse:8.4f}  {fcnn_seconds:8.3f}")
    print(f"{'linear':8s}  {lin.snr:9.2f}  {lin.rmse:8.4f}  {linear_seconds:8.3f}")


if __name__ == "__main__":
    main()
