"""Per-output-column weighted MSE.

The paper's FCNN predicts one scalar plus three gradient components with a
single MSE (Sec III-C).  Gradient targets are intrinsically noisier than
the scalar, so with equal weighting they dominate the loss and starve the
scalar head of gradient signal.  :class:`WeightedMSELoss` keeps the paper's
multi-task design (Fig 8 shows the gradient head helps) while letting the
harness down-weight the auxiliary columns.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import Loss

__all__ = ["WeightedMSELoss"]


class WeightedMSELoss(Loss):
    """MSE with a fixed non-negative weight per output column."""

    name = "weighted_mse"
    supports_out = True

    def __init__(self, weights) -> None:
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1D sequence")
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        self.weights = w

    def _check_width(self, p: np.ndarray) -> None:
        if p.shape[1] != self.weights.size:
            raise ValueError(
                f"prediction width {p.shape[1]} != weight count {self.weights.size}"
            )

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        p, t = self._check(prediction, target)
        self._check_width(p)
        return float(np.mean(self.weights * (p - t) ** 2))

    def gradient(
        self, prediction: np.ndarray, target: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        p, t = self._check(prediction, target)
        self._check_width(p)
        if out is None:
            return 2.0 * self.weights * (p - t) / p.size
        np.subtract(p, t, out=out)
        out *= 2.0 * self.weights
        out /= p.size
        return out
