# hot-path
"""Stacked layers: K models' weights as one 3-D tensor per layer.

A :class:`ModelStack` holds K architecturally-identical MLPs (one per
timestep or fine-tune case) with every ``Dense`` layer's weights stacked
into a single ``(K, in_features, out_features)`` tensor, so one
``np.matmul`` on the stack advances all K members per BLAS call — forward,
backward and the optimizer step all run fused.

Bit-identity contract: every stacked operation is the exact per-member
operation applied along the leading axis — ``np.matmul`` on ``(K, B, n) @
(K, n, m)`` computes each ``(B, n) @ (n, m)`` slice with the same kernel,
reductions use ``axis=1`` in place of ``axis=0``, and element-wise ufuncs
are position-independent.  Training a K-stack is therefore bit-identical
to K serial :class:`repro.nn.Trainer` runs that share a shuffling seed
(proven to the ulp by ``tests/test_nn_batched.py``).

Workspace discipline matches the serial fast path: with an attached
:class:`repro.perf.Workspace` every activation, gradient and optimizer
scratch tensor lives in a reused arena buffer (``out=`` writes only), so
steady-state epochs are allocation-free.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import _DETERMINISTIC_N, Dense, Identity, ReLU
from repro.nn.network import Sequential

__all__ = ["StackedParameter", "StackedDense", "StackedReLU", "StackedIdentity", "ModelStack"]


class StackedParameter:
    """K members' copies of one parameter as a ``(K, *shape)`` tensor."""

    __slots__ = ("name", "value", "grad", "trainable")

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = str(name)
        self.trainable = True

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "" if self.trainable else ", frozen"
        return f"StackedParameter({self.name}, shape={self.shape}{flag})"


class StackedLayer:
    """Base class for layers operating on ``(K, B, features)`` activations."""

    _ws = None       # active repro.perf.Workspace, or None (allocating path)
    _ws_tag = -1     # layer index within the owning ModelStack
    training = True  # toggled by ModelStack.set_training

    def __init__(self) -> None:
        self.trainable = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray, need_input_grad: bool = True) -> np.ndarray | None:
        raise NotImplementedError

    def parameters(self) -> list[StackedParameter]:
        return []

    def set_trainable(self, flag: bool) -> None:
        self.trainable = bool(flag)
        for p in self.parameters():
            p.trainable = bool(flag)


class StackedDense(StackedLayer):
    """K affine maps ``y_k = x_k @ W_k + b_k`` advanced by one batched matmul."""

    def __init__(self, weight: np.ndarray, bias: np.ndarray) -> None:
        super().__init__()
        weight = np.asarray(weight, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64)
        if weight.ndim != 3 or bias.ndim != 2 or weight.shape[::2] != (bias.shape[0], bias.shape[1]):
            raise ValueError(
                f"need stacked (K, n, m) weights with (K, m) biases, got {weight.shape} / {bias.shape}"
            )
        self.k = int(weight.shape[0])
        self.in_features = int(weight.shape[1])
        self.out_features = int(weight.shape[2])
        self.weight = StackedParameter(weight, name="weight")
        self.bias = StackedParameter(bias, name="bias")
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[0] != self.k or x.shape[2] != self.in_features:
            raise ValueError(
                f"StackedDense(K={self.k}, {self.in_features}->{self.out_features}) "
                f"got input shape {x.shape}"
            )
        self._input = x
        ws = self._ws
        # Inference through a skinny output head must stay row-count
        # independent per member (see repro.nn.layers._DETERMINISTIC_N):
        # run the serial path's exact 2-D einsum once per member — the
        # head is tiny, so the member loop costs nothing, and each slice
        # is literally the serial op.  Training keeps the batched BLAS
        # path, whose numerics the serial Trainer mirrors.
        skinny = not self.training and self.out_features < _DETERMINISTIC_N
        if ws is None:
            if skinny:
                out = np.empty(
                    (self.k, x.shape[1], self.out_features), dtype=np.float64
                )
                for member in range(self.k):
                    np.einsum(
                        "mk,kn->mn", x[member], self.weight.value[member],
                        out=out[member],
                    )
                out += self.bias.value[:, None, :]
                return out
            return np.matmul(x, self.weight.value) + self.bias.value[:, None, :]
        # Fast lane: one fused matmul over the stack, then the bias add —
        # per member the exact op sequence of the serial Dense fast path.
        out = ws.buffer((self._ws_tag, "fwd"), (self.k, x.shape[1], self.out_features))
        if skinny:
            for member in range(self.k):
                np.einsum(
                    "mk,kn->mn", x[member], self.weight.value[member],
                    out=out[member],
                )
        else:
            np.matmul(x, self.weight.value, out=out)
        out += self.bias.value[:, None, :]
        return out

    def backward(self, grad_out: np.ndarray, need_input_grad: bool = True) -> np.ndarray | None:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        x = self._input
        ws = self._ws
        if ws is None:
            if self.trainable:
                self.weight.grad += np.matmul(x.transpose(0, 2, 1), grad_out)
                self.bias.grad += grad_out.sum(axis=1)
            if not need_input_grad:
                return None
            return np.matmul(grad_out, self.weight.value.transpose(0, 2, 1))
        if self.trainable:
            gw = ws.buffer((self._ws_tag, "gw"), self.weight.shape)
            np.matmul(x.transpose(0, 2, 1), grad_out, out=gw)
            self.weight.grad += gw
            gb = ws.buffer((self._ws_tag, "gb"), self.bias.shape)
            np.sum(grad_out, axis=1, out=gb)
            self.bias.grad += gb
        if not need_input_grad:
            return None
        gin = ws.buffer((self._ws_tag, "bwd"), x.shape)
        np.matmul(grad_out, self.weight.value.transpose(0, 2, 1), out=gin)
        return gin

    def parameters(self) -> list[StackedParameter]:
        return [self.weight, self.bias]


class StackedReLU(StackedLayer):
    """Rectifier over the whole stack, fused in place on arena buffers."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        ws = self._ws
        if ws is None:
            self._mask = x > 0
            return np.where(self._mask, x, 0.0)
        mask = ws.buffer((self._ws_tag, "mask"), x.shape, dtype=bool)
        np.greater(x, 0, out=mask)
        # Safe arena persistence: the key is unique to this layer instance
        # and backward() consumes the mask before the next forward() could
        # re-request (and clobber) it.
        self._mask = mask  # repro: noqa[ALS002]
        if ws.owns(x):
            # Fuse with the producing StackedDense: rectify in place.
            np.multiply(x, mask, out=x)
            return x
        out = ws.buffer((self._ws_tag, "fwd"), x.shape)
        np.multiply(x, mask, out=out)
        return out

    def backward(self, grad_out: np.ndarray, need_input_grad: bool = True) -> np.ndarray | None:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        if not need_input_grad:
            return None
        ws = self._ws
        if ws is None:
            return np.where(self._mask, grad_out, 0.0)
        if ws.owns(grad_out):
            np.multiply(grad_out, self._mask, out=grad_out)
            return grad_out
        out = ws.buffer((self._ws_tag, "bwd"), grad_out.shape)
        np.multiply(grad_out, self._mask, out=out)
        return out


class StackedIdentity(StackedLayer):
    """No-op layer (linear output head)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray, need_input_grad: bool = True) -> np.ndarray | None:
        return grad_out if need_input_grad else None


class ModelStack:
    """K copies of one :class:`repro.nn.Sequential`, trained in lockstep.

    Build one with :meth:`from_network` — every member starts from the
    source network's weights (the fine-tune base) and diverges as each
    member trains against its own data slab.  Only ``Dense``/``ReLU``/
    ``Identity`` layers stack (the paper's FCNN); anything else raises.
    """

    def __init__(self, layers: list[StackedLayer], k: int) -> None:
        if not layers:
            raise ValueError("ModelStack needs at least one layer")
        self.layers = list(layers)
        self.k = int(k)
        self._ws = None

    # ------------------------------------------------------------ factory
    @classmethod
    def from_network(cls, network: Sequential, k: int) -> "ModelStack":
        """Replicate ``network``'s current weights into a K-member stack."""
        if k < 1:
            raise ValueError(f"need at least one member, got k={k}")
        layers: list[StackedLayer] = []
        for layer in network.layers:
            if isinstance(layer, Dense):
                layers.append(
                    StackedDense(
                        _replicate(layer.weight.value, k),
                        _replicate(layer.bias.value, k),
                    )
                )
            elif isinstance(layer, ReLU):
                layers.append(StackedReLU())
            elif isinstance(layer, Identity):
                layers.append(StackedIdentity())
            else:
                raise TypeError(
                    f"cannot stack layer of type {type(layer).__name__}; "
                    "the batched engine supports Dense/ReLU/Identity networks"
                )
        return cls(layers, k)

    # ------------------------------------------------------------- compute
    def forward(self, x: np.ndarray, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Forward through ``layers[start:stop]``, caching for backward."""
        out = x
        for layer in self.layers[start:stop]:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray, stop: int = 0) -> None:
        """Backpropagate down to (and including) ``layers[stop]``.

        The gradient with respect to ``layers[stop]``'s *input* is never
        materialized — with a frozen Case-2 prefix (``stop`` = first
        trainable layer) backprop through the frozen layers is skipped
        entirely, which is the fast path's whole point.
        """
        grad = grad_out
        for i in range(len(self.layers) - 1, stop - 1, -1):
            grad = self.layers[i].backward(grad, need_input_grad=i > stop)

    # ------------------------------------------------------------ fast path
    def attach_workspace(self, workspace) -> None:
        """Route layer buffers through a :class:`repro.perf.Workspace`."""
        self._ws = workspace
        for i, layer in enumerate(self.layers):
            layer._ws = workspace
            layer._ws_tag = i

    def detach_workspace(self) -> None:
        self._ws = None
        for layer in self.layers:
            layer._ws = None
            layer._ws_tag = -1

    @property
    def workspace(self):
        return self._ws

    # ---------------------------------------------------------- parameters
    def parameters(self) -> list[StackedParameter]:
        out: list[StackedParameter] = []
        for layer in self.layers:
            out.extend(layer.parameters())
        return out

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def dense_layers(self) -> list[StackedDense]:
        return [l for l in self.layers if isinstance(l, StackedDense)]

    def set_all_trainable(self, flag: bool = True) -> None:
        for layer in self.layers:
            layer.set_trainable(flag)

    def set_training(self, flag: bool) -> None:
        """Toggle training vs inference mode across the whole stack.

        Mirrors :meth:`repro.nn.Sequential.set_training`: in inference
        mode every skinny output head (``out_features <
        repro.nn.layers._DETERMINISTIC_N``) switches to the fixed-
        accumulation-order einsum, keeping fused stacked prediction
        bit-identical to the serial predict path per member.
        """
        for layer in self.layers:
            layer.training = bool(flag)

    def freeze_all_but_last(self, num_trainable: int) -> None:
        """Case-2 freeze: only the last ``num_trainable`` Dense layers adapt.

        Mirrors :meth:`repro.nn.Sequential.freeze_all_but_last`, so member
        freeze flags round-trip through :func:`member_weights` /
        :func:`repro.perf.restore_weights` unchanged.
        """
        dense = self.dense_layers()
        if not (1 <= num_trainable <= len(dense)):
            raise ValueError(
                f"num_trainable must be in [1, {len(dense)}], got {num_trainable}"
            )
        cut = len(dense) - num_trainable
        for i, layer in enumerate(dense):
            layer.set_trainable(i >= cut)

    def trainable_cut(self) -> int:
        """Index into ``layers`` where the trainable suffix starts.

        0 when every Dense layer is trainable.  Requires the freeze pattern
        :meth:`freeze_all_but_last` produces (a frozen prefix); a frozen
        layer *after* a trainable one raises, because backprop could not
        skip it.
        """
        cut = 0
        seen_trainable = False
        for i, layer in enumerate(self.layers):
            if not layer.parameters():
                continue
            if layer.trainable:
                if not seen_trainable:
                    cut = i
                seen_trainable = True
            elif seen_trainable:
                raise ValueError(
                    "frozen layer after a trainable one; the batched engine "
                    "needs a contiguous frozen prefix (freeze_all_but_last)"
                )
        if not seen_trainable:
            raise ValueError("every layer is frozen; nothing to train")
        return cut

    def prefix_width(self, cut: int) -> int:
        """Feature width entering ``layers[cut]`` (the Case-2 suffix input)."""
        for layer in reversed(self.layers[:cut]):
            if isinstance(layer, StackedDense):
                return layer.out_features
        raise ValueError(f"no Dense layer in the frozen prefix (cut={cut})")

    # ------------------------------------------------------------ snapshots
    def member_weights(self, member: int) -> np.ndarray:
        """One member's weights as a flat float64 vector.

        Layout matches :func:`repro.perf.snapshot_weights` on the source
        network — :func:`repro.perf.restore_weights` applies it directly,
        and the campaign journal stores it as a per-timestep sidecar.
        """
        if not (0 <= member < self.k):
            raise IndexError(f"member {member} out of range for K={self.k}")
        return np.concatenate([p.value[member].ravel() for p in self.parameters()])

    def set_member_weights(self, member: int, flat: np.ndarray) -> None:
        """Write one member's weights from a flat vector, in place.

        The inverse of :meth:`member_weights` (same
        :func:`repro.perf.snapshot_weights` layout), so a journal sidecar
        or registry artifact restores straight into the stack without
        rebuilding it — the serving layer's hot :class:`ModelStack` reuse
        depends on this being allocation-free.
        """
        if not (0 <= member < self.k):
            raise IndexError(f"member {member} out of range for K={self.k}")
        flat = np.asarray(flat, dtype=np.float64).ravel()
        expected = sum(int(np.prod(p.shape[1:], dtype=np.int64)) for p in self.parameters())
        if flat.size != expected:
            raise ValueError(
                f"flat vector has {flat.size} weights, stack member needs {expected}"
            )
        offset = 0
        for p in self.parameters():
            n = int(np.prod(p.shape[1:], dtype=np.int64))
            p.value[member].ravel()[...] = flat[offset : offset + n]
            offset += n

    def num_parameters(self) -> int:
        """Total scalar parameter count across the whole stack."""
        return sum(p.size for p in self.parameters())


def _replicate(value: np.ndarray, k: int) -> np.ndarray:
    """K contiguous copies of ``value`` stacked along a new leading axis."""
    value = np.asarray(value, dtype=np.float64)
    out = np.empty((k,) + value.shape, dtype=np.float64)
    out[...] = value
    return out
