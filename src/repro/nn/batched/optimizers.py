# hot-path
"""In-place optimizers over stacked parameters.

:class:`BatchedAdam` applies :class:`repro.nn.Adam`'s exact update — the
same ufunc sequence with the same hoisted bias corrections — to ``(K,
*shape)`` parameter stacks, so every member's trajectory is bit-identical
to a serial Adam run stepping in lockstep (one shared step counter; all
members step together every batch).  Frozen stacks are skipped entirely,
matching the serial optimizer's per-parameter ``trainable`` check.
"""

from __future__ import annotations

import numpy as np

from repro.nn.batched.stack import StackedParameter

__all__ = ["BatchedAdam"]


class BatchedAdam:
    """Adam (Kingma & Ba) over stacked parameters, fully in place."""

    def __init__(
        self,
        parameters: list[StackedParameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        self.parameters = list(parameters)
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._s1 = [np.empty_like(p.value) for p in self.parameters]
        self._s2 = [np.empty_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        """One update from the accumulated gradients, all K members at once."""
        self._t += 1
        # Bias corrections depend only on t: hoisted out of the parameter loop.
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        one_minus_b1 = 1.0 - self.beta1
        one_minus_b2 = 1.0 - self.beta2
        for p, m, v, s1, s2 in zip(self.parameters, self._m, self._v, self._s1, self._s2):
            if not p.trainable:
                continue
            m *= self.beta1
            np.multiply(p.grad, one_minus_b1, out=s1)
            m += s1
            v *= self.beta2
            np.multiply(p.grad, p.grad, out=s2)
            s2 *= one_minus_b2
            v += s2
            np.divide(m, b1t, out=s1)          # m_hat
            np.divide(v, b2t, out=s2)          # v_hat
            np.sqrt(s2, out=s2)
            s2 += self.eps
            s1 *= self.lr
            s1 /= s2
            p.value -= s1

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()
