"""Batched multi-model training: K weight sets per layer, fused matmuls.

The campaign's fine-tune stage is strictly sequential per timestep in the
serial engine; this package makes training itself wide instead.  K models
sharing one architecture stack their per-layer weights into ``(K, n, m)``
tensors and advance together through batched ``np.matmul`` calls —
forward, backward and the in-place Adam step all fuse across members,
reusing :class:`repro.perf.Workspace` arenas so steady-state epochs stay
allocation-free.

Entry points:

* :class:`ModelStack` — K copies of a :class:`repro.nn.Sequential`
  (``ModelStack.from_network(net, k)``), with Case-2 freezing and
  per-member flat-weight extraction (:meth:`ModelStack.member_weights`).
* :class:`BatchedTrainer` — the fused mini-batch loop, with the Case-2
  frozen-prefix activation cache.
* :class:`BatchedAdam` — in-place Adam over parameter stacks.

Training a K-stack is bit-identical to K serial :class:`repro.nn.Trainer`
runs sharing a shuffle seed; see ``docs/TRAINING.md`` for the execution
model and the exact guarantees.
"""

from repro.nn.batched.optimizers import BatchedAdam
from repro.nn.batched.stack import (
    ModelStack,
    StackedDense,
    StackedIdentity,
    StackedParameter,
    StackedReLU,
)
from repro.nn.batched.trainer import BatchedTrainer, batched_loss_gradient

__all__ = [
    "BatchedAdam",
    "BatchedTrainer",
    "ModelStack",
    "StackedDense",
    "StackedIdentity",
    "StackedParameter",
    "StackedReLU",
    "batched_loss_gradient",
]
