# hot-path
"""The batched mini-batch training loop: K fine-tunes per BLAS call.

:class:`BatchedTrainer` drives a :class:`~repro.nn.batched.ModelStack`
through the serial :class:`repro.nn.Trainer` protocol — shuffled
mini-batches, per-member loss history, Adam — with every step fused across
the K members.  All members share one shuffling seed (the campaign
fine-tunes every timestep with the same ``seed + 1``), so a single
permutation drives the whole stack and the per-member trajectories are
bit-identical to K serial runs (``tests/test_nn_batched.py``).

Case-2 fast path: when the stack has a frozen prefix
(:meth:`ModelStack.freeze_all_but_last`), the prefix is evaluated **once**
per fit over the full training slab (it never changes — its weights are
frozen), the resulting activations are cached in an arena buffer, and the
epoch loop trains only the suffix layers: no forward *or* backward work
through frozen layers, ever.  The cached-prefix trajectory is proven
correct against finite differences rather than claimed bit-identical to
the serial Case-2 run (the prefix matmul happens at full-slab rather than
per-batch shape); disable it with ``case2_prefix_cache=False`` to recover
the exact serial Case-2 op sequence.

Telemetry mirrors the serial trainer under a ``train.batched.*`` prefix:
``train.batched.fit``/``train.batched.epoch`` spans, batch/epoch counters,
loss/model-count gauges and epoch-seconds histograms.
"""

from __future__ import annotations

import time

import numpy as np

from repro.nn.batched.optimizers import BatchedAdam
from repro.nn.batched.stack import ModelStack
from repro.nn.losses import Loss, MSELoss
from repro.nn.losses_weighted import WeightedMSELoss
from repro.nn.training import TrainingHistory
from repro.obs import counter as obs_counter
from repro.obs import gauge as obs_gauge
from repro.obs import histogram as obs_histogram
from repro.obs import span

__all__ = ["BatchedTrainer", "batched_loss_gradient"]

#: rows per block when streaming the frozen prefix over the training slab;
#: K-independent so blocked evaluation keeps member results K-invariant
PREFIX_BLOCK = 16384


def batched_loss_gradient(loss: Loss, pred: np.ndarray, target: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Loss gradient over a ``(K, B, C)`` stack, element-identical per member.

    The fused forms repeat the serial losses' exact ``out=`` op sequences
    (subtract, scale, divide by the *member* element count ``B * C``);
    unrecognized losses fall back to a per-member loop.
    """
    member_size = pred[0].size
    if type(loss) is MSELoss:
        np.subtract(pred, target, out=out)
        out *= 2.0
        out /= member_size
    elif type(loss) is WeightedMSELoss:
        np.subtract(pred, target, out=out)
        out *= 2.0 * loss.weights
        out /= member_size
    else:
        for k in range(pred.shape[0]):
            out[k] = loss.gradient(pred[k], target[k])
    return out


class BatchedTrainer:
    """Mini-batch gradient descent on a :class:`ModelStack`.

    Parameters
    ----------
    stack:
        The K-member model stack (trained in place).
    loss:
        Defaults to :class:`MSELoss`; applied per member.
    optimizer:
        Defaults to :class:`BatchedAdam` with the paper's ``lr=0.001``.
        Construct it *after* any freezing so its state lists line up.
    batch_size:
        Mini-batch rows per member per update.
    seed:
        Shared shuffling seed — one permutation drives all K members.
    workspace:
        Optional :class:`repro.perf.Workspace`; when given, batch gathers,
        activations, gradients and the cached Case-2 prefix all reuse
        arena buffers (allocation-free steady-state epochs).
    case2_prefix_cache:
        Enable the frozen-prefix activation cache (default).  ``False``
        keeps the frozen layers in the per-batch loop — slower, but the
        exact serial Case-2 op sequence.
    """

    def __init__(
        self,
        stack: ModelStack,
        loss: Loss | None = None,
        optimizer: BatchedAdam | None = None,
        batch_size: int = 4096,
        seed: int = 0,
        workspace=None,
        case2_prefix_cache: bool = True,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.stack = stack
        self.loss = loss if loss is not None else MSELoss()
        self.optimizer = optimizer if optimizer is not None else BatchedAdam(stack.parameters())
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.workspace = workspace
        self.case2_prefix_cache = bool(case2_prefix_cache)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        shuffle: bool = True,
    ) -> list[TrainingHistory]:
        """Train all K members for ``epochs`` passes over their data slabs.

        ``x`` is ``(K, N, features)`` and ``y`` is ``(K, N, targets)`` —
        member ``k`` trains on the ``(x[k], y[k])`` slab.  Every member
        sees the same number of rows (a rectangular stack is what makes
        the fused batching possible).  Returns one
        :class:`~repro.nn.TrainingHistory` per member; epoch wall time is
        attributed ``1/K`` to each.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 3 or y.ndim != 3:
            raise ValueError(f"expected stacked 3D x/y, got {x.shape} and {y.shape}")
        if x.shape[0] != self.stack.k or y.shape[0] != self.stack.k:
            raise ValueError(
                f"stack has K={self.stack.k} members; x/y carry {x.shape[0]}/{y.shape[0]} slabs"
            )
        if x.shape[1] != y.shape[1]:
            raise ValueError(
                f"x and y row counts differ: x has shape {x.shape}, y has shape {y.shape}"
            )
        if x.shape[1] == 0:
            raise ValueError(f"training set is empty: x has shape {x.shape}")
        if epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {epochs}")

        ws = self.workspace
        if ws is not None:
            x = np.ascontiguousarray(x, dtype=ws.dtype)
            y = np.ascontiguousarray(y, dtype=ws.dtype)
            self.stack.attach_workspace(ws)
        try:
            return self._fit_loop(x, y, epochs, shuffle)
        finally:
            if ws is not None:
                self.stack.detach_workspace()
                obs_gauge("train.batched.workspace.bytes").set(float(ws.nbytes))
                obs_gauge("train.batched.workspace.buffers").set(float(ws.num_buffers))

    # ------------------------------------------------------------- internals
    def _fit_loop(
        self, x: np.ndarray, y: np.ndarray, epochs: int, shuffle: bool
    ) -> list[TrainingHistory]:
        k = self.stack.k
        cut = 0
        if self.case2_prefix_cache and any(not d.trainable for d in self.stack.dense_layers()):
            cut = self.stack.trainable_cut()
        rng = np.random.default_rng(self.seed)
        histories = [TrainingHistory() for _ in range(k)]
        n = x.shape[1]
        with span(
            "train.batched.fit",
            models=k,
            epochs=int(epochs),
            rows=n,
            case2_prefix=cut > 0,
        ):
            obs_gauge("train.batched.models").set(float(k))
            if cut > 0:
                x = self._prefix_activations(x, cut)
                obs_counter("train.batched.prefix_rows").inc(k * n)
            epoch = 0
            while epoch < epochs:
                with span("train.batched.epoch", epoch=epoch):
                    t0 = time.perf_counter()
                    order = rng.permutation(n) if shuffle else np.arange(n)
                    losses = self._run_epoch(x, y, order, cut)
                    seconds = time.perf_counter() - t0
                    for member, history in enumerate(histories):
                        history.train_loss.append(losses[member])
                        history.epoch_seconds.append(seconds / k)
                    obs_counter("train.batched.epochs").inc()
                    obs_gauge("train.batched.loss").set(float(np.mean(losses)))
                    obs_histogram("train.batched.epoch.seconds").observe(seconds)
                    epoch += 1
        return histories

    def _prefix_activations(self, x: np.ndarray, cut: int) -> np.ndarray:
        """Evaluate the frozen prefix once over the full ``(K, N, F)`` slab.

        Streams ``PREFIX_BLOCK``-row blocks through the stacked prefix
        (block boundaries are K-independent, so member results don't
        depend on how many members ride along) into one cached activation
        slab that the epoch loop then treats as the training input.
        """
        k, n, _ = x.shape
        width = self.stack.prefix_width(cut)
        ws = self.workspace
        with span("train.batched.prefix", rows=n, width=width):
            if ws is None:
                z = np.empty((k, n, width), dtype=np.float64)
            else:
                z = ws.buffer(("case2", "z"), (k, n, width))
            for start in range(0, n, PREFIX_BLOCK):
                stop = min(start + PREFIX_BLOCK, n)
                z[:, start:stop] = self.stack.forward(x[:, start:stop], stop=cut)
        return z

    def _run_epoch(
        self, x: np.ndarray, y: np.ndarray, order: np.ndarray, cut: int
    ) -> list[float]:
        k = self.stack.k
        n = x.shape[1]
        ws = self.stack.workspace
        grad_out = (
            getattr(self.loss, "supports_out", False)
            and ws is not None
            and ws.dtype == np.float64
        )
        epoch_loss = [0.0] * k
        counted = 0
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if ws is None:
                xb, yb = x[:, idx], y[:, idx]
            else:
                # Gather into arena buffers instead of fancy-index copies.
                xb = ws.buffer(("batch", "x"), (k, len(idx), x.shape[2]), dtype=x.dtype)
                np.take(x, idx, axis=1, out=xb)
                yb = ws.buffer(("batch", "y"), (k, len(idx), y.shape[2]), dtype=y.dtype)
                np.take(y, idx, axis=1, out=yb)
            pred = self.stack.forward(xb, start=cut)
            batch_losses = [self.loss.value(pred[m], yb[m]) for m in range(k)]
            self.optimizer.zero_grad()
            if grad_out:
                gbuf = ws.buffer(("loss", "grad"), pred.shape, dtype=np.float64)
            else:
                gbuf = np.empty(pred.shape, dtype=np.float64)
            self.stack.backward(
                batched_loss_gradient(self.loss, pred, yb, out=gbuf), stop=cut
            )
            obs_counter("train.batched.batches").inc()
            self.optimizer.step()
            for member in range(k):
                epoch_loss[member] += batch_losses[member] * len(idx)
            counted += len(idx)
        if counted == 0:
            return [float("nan")] * k
        return [total / counted for total in epoch_loss]
