# hot-path
"""Mini-batch training loop with loss history, checkpointing and health guards.

The :class:`Trainer` reproduces the paper's training protocol: shuffled
mini-batches, MSE loss, Adam, a fixed epoch budget (500 epochs for full
training, ~10 for Case-1 fine-tuning, 300-500 for Case-2), and the per-epoch
loss history that Fig 12 plots.

Long runs additionally get the resilience hooks from
:mod:`repro.resilience`:

* ``checkpoint=`` saves atomic, checksummed training-state checkpoints
  (model + optimizer + RNG + history) every N epochs;
* ``resume_from=`` continues a killed run *bit-exactly* — the resumed
  run's parameters and loss history match an uninterrupted one;
* ``health=`` detects NaN/Inf in loss, gradients and parameters per batch
  and epoch, with ``raise`` / ``skip_batch`` / ``rollback`` policies.

When a :class:`repro.obs.RunRecorder` is active, every run additionally
emits telemetry (``train.fit``/``train.epoch`` spans, ``train.batches``
counters, ``train.loss``/``train.lr`` gauges, checkpoint and health
events) at no cost to uninstrumented runs — see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs import counter as obs_counter
from repro.obs import gauge as obs_gauge
from repro.obs import histogram as obs_histogram
from repro.obs import record_event, span
from repro.nn.losses import Loss, MSELoss
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam, Optimizer
from repro.resilience.checkpoint import (
    CheckpointConfig,
    TrainingCheckpoint,
    load_training_checkpoint,
    save_training_checkpoint,
)
from repro.resilience.health import HealthGuard, NumericalHealthError

__all__ = ["TrainingHistory", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run (feeds Fig 12 and Tables I-II)."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.epoch_seconds))

    def extend(self, other: "TrainingHistory") -> None:
        """Append another run (e.g. fine-tuning after pretraining)."""
        self.train_loss.extend(other.train_loss)
        self.val_loss.extend(other.val_loss)
        self.epoch_seconds.extend(other.epoch_seconds)


class _RollbackSignal(Exception):
    """Internal: a health problem under the rollback policy."""

    def __init__(self, detail: str) -> None:
        self.detail = detail
        super().__init__(detail)


class Trainer:
    """Drives mini-batch gradient descent on a :class:`Sequential` model.

    Parameters
    ----------
    model:
        Network to train (trained in place).
    loss:
        Defaults to :class:`MSELoss` per the paper.
    optimizer:
        Defaults to Adam with the paper's ``lr=0.001``; note the optimizer
        must be constructed *after* any layer freezing if you want its state
        lists to include frozen parameters (they are skipped during
        updates either way).
    batch_size:
        Mini-batch rows per update.
    seed:
        Shuffling seed (deterministic epochs).
    workspace:
        Optional :class:`repro.perf.Workspace`.  When given, ``fit``
        attaches it to the model for the duration of training: batch
        gathers, layer activations/gradients and the loss gradient reuse
        arena buffers, making the epoch loop allocation-free in steady
        state.  Results are bit-identical to training without a workspace
        (when the workspace dtype is float64).
    """

    def __init__(
        self,
        model: Sequential,
        loss: Loss | None = None,
        optimizer: Optimizer | None = None,
        batch_size: int = 4096,
        seed: int = 0,
        workspace=None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.loss = loss if loss is not None else MSELoss()
        self.optimizer = optimizer if optimizer is not None else Adam(model.parameters())
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.workspace = workspace

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
        shuffle: bool = True,
        callback=None,
        checkpoint: CheckpointConfig | None = None,
        resume_from: str | Path | TrainingCheckpoint | None = None,
        health: HealthGuard | None = None,
    ) -> TrainingHistory:
        """Train until ``epochs`` total passes over ``(x, y)`` are done.

        ``callback(epoch, history)``, when given, runs after each epoch —
        used by the harness for early stopping and progress reporting.

        ``checkpoint`` periodically persists the full training state with
        :func:`repro.resilience.save_training_checkpoint` (atomic replace,
        checksummed).  ``resume_from`` (a path or loaded
        :class:`TrainingCheckpoint`) restores such a state and continues
        from its epoch; the returned history covers the *whole* run
        including the restored prefix, and matches an uninterrupted run
        bit-exactly.  ``health`` enables NaN/Inf detection with the guard's
        recovery policy.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 2:
            raise ValueError(f"expected matching 2D x/y, got {x.shape} and {y.shape}")
        if len(x) != len(y):
            raise ValueError(
                f"x and y row counts differ: x has shape {x.shape}, y has shape {y.shape}"
            )
        if len(x) == 0:
            raise ValueError(f"training set is empty: x has shape {x.shape}")
        if epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {epochs}")
        n = len(x)
        rng = np.random.default_rng(self.seed)
        history = TrainingHistory()

        start_epoch = 0
        if resume_from is not None:
            ckpt = (
                resume_from
                if isinstance(resume_from, TrainingCheckpoint)
                else load_training_checkpoint(resume_from)
            )
            self._validate_resume(ckpt, n, epochs)
            ckpt.restore(self.model, self.optimizer, rng)
            history = TrainingHistory(
                train_loss=list(ckpt.history["train_loss"]),
                val_loss=list(ckpt.history["val_loss"]),
                epoch_seconds=list(ckpt.history["epoch_seconds"]),
            )
            start_epoch = ckpt.epoch

        # Rollback needs a known-good state to return to, even when no
        # on-disk checkpointing is configured: keep an in-memory snapshot
        # refreshed after every healthy epoch.
        snapshot = None
        if health is not None and health.policy == "rollback":
            snapshot = self._capture_state(rng, history, start_epoch)

        epoch = start_epoch
        ws = self.workspace
        if ws is not None:
            # One up-front cast to the compute dtype (a no-op for float64)
            # keeps the per-batch gathers cast-free.
            x = np.ascontiguousarray(x, dtype=ws.dtype)
            y = np.ascontiguousarray(y, dtype=ws.dtype)
            self.model.attach_workspace(ws)
        try:
            return self._fit_loop(
                x, y, epochs, validation, shuffle, callback,
                checkpoint, health, n, rng, history, snapshot, epoch,
            )
        finally:
            if ws is not None:
                self.model.detach_workspace()
                obs_gauge("train.workspace.bytes").set(float(ws.nbytes))
                obs_gauge("train.workspace.buffers").set(float(ws.num_buffers))

    def _fit_loop(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        validation,
        shuffle: bool,
        callback,
        checkpoint: CheckpointConfig | None,
        health: HealthGuard | None,
        n: int,
        rng: np.random.Generator,
        history: TrainingHistory,
        snapshot: dict | None,
        epoch: int,
    ) -> TrainingHistory:
        with span("train.fit", epochs=int(epochs), rows=n, resumed_from=epoch):
            while epoch < epochs:
                with span("train.epoch", epoch=epoch):
                    t0 = time.perf_counter()
                    order = rng.permutation(n) if shuffle else np.arange(n)
                    try:
                        epoch_loss = self._run_epoch(x, y, order, health, epoch)
                        if health is not None:
                            problem = health.parameter_problem(self.optimizer.parameters)
                            if problem is not None:
                                self._handle_epoch_problem(health, epoch, problem)
                    except _RollbackSignal as signal:
                        epoch = self._rollback(health, snapshot, rng, history, epoch, signal)
                        continue
                    history.train_loss.append(epoch_loss)
                    if validation is not None:
                        xv, yv = validation
                        history.val_loss.append(self.evaluate(xv, yv))
                    seconds = time.perf_counter() - t0
                    history.epoch_seconds.append(seconds)
                    obs_counter("train.epochs").inc()
                    obs_gauge("train.loss").set(epoch_loss)
                    obs_gauge("train.lr").set(self.optimizer.lr)
                    obs_histogram("train.epoch.seconds").observe(seconds)
                    completed = epoch + 1
                    if checkpoint is not None and checkpoint.due(completed, epochs):
                        with span("train.checkpoint", epoch=completed):
                            save_training_checkpoint(
                                checkpoint.path,
                                model=self.model,
                                optimizer=self.optimizer,
                                rng=rng,
                                history=history,
                                epoch=completed,
                                meta={"rows": n, "batch_size": self.batch_size, "seed": self.seed},
                            )
                        record_event("checkpoint", path=str(checkpoint.path), epoch=completed)
                        obs_counter("train.checkpoints").inc()
                    if snapshot is not None:
                        snapshot = self._capture_state(rng, history, completed)
                    if callback is not None and callback(epoch, history) is False:
                        return history
                    epoch = completed
        return history

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Loss on held-out data (no parameter updates)."""
        pred = self.model.predict(np.asarray(x, dtype=np.float64))
        return self.loss.value(pred, np.asarray(y, dtype=np.float64))

    # ------------------------------------------------------------- internals
    def _run_epoch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        order: np.ndarray,
        health: HealthGuard | None,
        epoch: int,
    ) -> float:
        n = len(x)
        epoch_loss = 0.0
        counted = 0
        ws = self.model.workspace
        # getattr: loss wrappers (e.g. fault injectors) may predate supports_out
        grad_out = (
            getattr(self.loss, "supports_out", False)
            and ws is not None
            and ws.dtype == np.float64
        )
        for batch_index, start in enumerate(range(0, n, self.batch_size)):
            idx = order[start : start + self.batch_size]
            if ws is None:
                xb, yb = x[idx], y[idx]
            else:
                # Gather into arena buffers instead of fancy-index copies.
                xb = ws.buffer(("batch", "x"), (len(idx), x.shape[1]), dtype=x.dtype)
                np.take(x, idx, axis=0, out=xb)
                yb = ws.buffer(("batch", "y"), (len(idx), y.shape[1]), dtype=y.dtype)
                np.take(y, idx, axis=0, out=yb)
            pred = self.model.forward(xb)
            batch_loss = self.loss.value(pred, yb)
            self.optimizer.zero_grad()
            if grad_out:
                gbuf = ws.buffer(("loss", "grad"), pred.shape, dtype=np.float64)
                self.model.backward(self.loss.gradient(pred, yb, out=gbuf))
            else:
                self.model.backward(self.loss.gradient(pred, yb))
            obs_counter("train.batches").inc()
            if health is not None:
                problem = health.loss_problem(batch_loss)
                kind = "loss"
                if problem is None:
                    problem = health.gradient_problem(self.optimizer.parameters)
                    kind = "gradient"
                if problem is not None:
                    health.record(epoch, batch_index, kind, problem, health.policy)
                    self._observe_health(epoch, batch_index, kind, problem, health.policy)
                    if health.policy == "raise":
                        raise NumericalHealthError(
                            f"epoch {epoch} batch {batch_index}: {problem}"
                        )
                    if health.policy == "skip_batch":
                        continue
                    raise _RollbackSignal(
                        f"epoch {epoch} batch {batch_index}: {problem}"
                    )
            self.optimizer.step()
            epoch_loss += batch_loss * len(idx)
            counted += len(idx)
        if counted == 0:
            return float("nan")
        return epoch_loss / counted

    @staticmethod
    def _observe_health(epoch: int, batch: int, kind: str, detail: str, action: str) -> None:
        """Mirror one health intervention into the active run record."""
        obs_counter("health.events").inc()
        record_event(
            "health", epoch=epoch, batch=batch, problem=kind, detail=detail, action=action
        )

    def _handle_epoch_problem(self, health: HealthGuard, epoch: int, problem: str) -> None:
        """Non-finite *parameters* after an epoch: skip_batch cannot help."""
        action = "rollback" if health.policy == "rollback" else "raise"
        health.record(epoch, -1, "parameter", problem, action)
        self._observe_health(epoch, -1, "parameter", problem, action)
        if action == "rollback":
            raise _RollbackSignal(f"epoch {epoch}: {problem}")
        raise NumericalHealthError(f"epoch {epoch}: {problem}")

    def _rollback(
        self,
        health: HealthGuard,
        snapshot: dict | None,
        rng: np.random.Generator,
        history: TrainingHistory,
        epoch: int,
        signal: _RollbackSignal,
    ) -> int:
        if snapshot is None or health.retries_left() <= 0:
            raise NumericalHealthError(
                f"{signal.detail} (rollback budget exhausted after "
                f"{health.rollbacks_used} retr{'y' if health.rollbacks_used == 1 else 'ies'})"
            )
        health.rollbacks_used += 1
        restored_epoch = self._restore_state(snapshot, rng, history)
        self.optimizer.lr *= health.lr_factor
        health.record(
            epoch,
            -1,
            "rollback",
            signal.detail,
            f"restored epoch {restored_epoch}, lr -> {self.optimizer.lr:g}",
        )
        self._observe_health(
            epoch, -1, "rollback", signal.detail,
            f"restored epoch {restored_epoch}, lr -> {self.optimizer.lr:g}",
        )
        return restored_epoch

    def _capture_state(
        self, rng: np.random.Generator, history: TrainingHistory, epoch: int
    ) -> dict:
        return {
            "epoch": epoch,
            "parameters": [p.value.copy() for p in self.optimizer.parameters],
            "optimizer": self.optimizer.state_dict(),
            "rng_state": rng.bit_generator.state,
            "history": (
                list(history.train_loss),
                list(history.val_loss),
                list(history.epoch_seconds),
            ),
        }

    def _restore_state(
        self, snapshot: dict, rng: np.random.Generator, history: TrainingHistory
    ) -> int:
        for p, saved in zip(self.optimizer.parameters, snapshot["parameters"]):
            p.value[...] = saved
        self.optimizer.load_state_dict(snapshot["optimizer"])
        rng.bit_generator.state = snapshot["rng_state"]
        train, val, seconds = snapshot["history"]
        history.train_loss[:] = list(train)
        history.val_loss[:] = list(val)
        history.epoch_seconds[:] = list(seconds)
        return int(snapshot["epoch"])

    def _validate_resume(self, ckpt: TrainingCheckpoint, rows: int, epochs: int) -> None:
        meta = ckpt.meta
        if "rows" in meta and int(meta["rows"]) != rows:
            raise ValueError(
                f"checkpoint was trained on {meta['rows']} rows, resuming with {rows}; "
                "bit-exact resume requires the identical training set"
            )
        if "batch_size" in meta and int(meta["batch_size"]) != self.batch_size:
            raise ValueError(
                f"checkpoint used batch_size={meta['batch_size']}, trainer has "
                f"{self.batch_size}; bit-exact resume requires matching batching"
            )
        if "seed" in meta and int(meta["seed"]) != self.seed:
            raise ValueError(
                f"checkpoint used seed={meta['seed']}, trainer has {self.seed}"
            )
        if ckpt.epoch > epochs:
            raise ValueError(
                f"checkpoint already covers {ckpt.epoch} epochs, target is {epochs}"
            )
