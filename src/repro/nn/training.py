"""Mini-batch training loop with loss history.

The :class:`Trainer` reproduces the paper's training protocol: shuffled
mini-batches, MSE loss, Adam, a fixed epoch budget (500 epochs for full
training, ~10 for Case-1 fine-tuning, 300-500 for Case-2), and the per-epoch
loss history that Fig 12 plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import Loss, MSELoss
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam, Optimizer

__all__ = ["TrainingHistory", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run (feeds Fig 12 and Tables I-II)."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.epoch_seconds))

    def extend(self, other: "TrainingHistory") -> None:
        """Append another run (e.g. fine-tuning after pretraining)."""
        self.train_loss.extend(other.train_loss)
        self.val_loss.extend(other.val_loss)
        self.epoch_seconds.extend(other.epoch_seconds)


class Trainer:
    """Drives mini-batch gradient descent on a :class:`Sequential` model.

    Parameters
    ----------
    model:
        Network to train (trained in place).
    loss:
        Defaults to :class:`MSELoss` per the paper.
    optimizer:
        Defaults to Adam with the paper's ``lr=0.001``; note the optimizer
        must be constructed *after* any layer freezing if you want its state
        lists to include frozen parameters (they are skipped during
        updates either way).
    batch_size:
        Mini-batch rows per update.
    seed:
        Shuffling seed (deterministic epochs).
    """

    def __init__(
        self,
        model: Sequential,
        loss: Loss | None = None,
        optimizer: Optimizer | None = None,
        batch_size: int = 4096,
        seed: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.model = model
        self.loss = loss if loss is not None else MSELoss()
        self.optimizer = optimizer if optimizer is not None else Adam(model.parameters())
        self.batch_size = int(batch_size)
        self.seed = int(seed)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
        shuffle: bool = True,
        callback=None,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over ``(x, y)``.

        ``callback(epoch, history)``, when given, runs after each epoch —
        used by the harness for early stopping and progress reporting.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 2 or len(x) != len(y):
            raise ValueError(f"expected matching 2D x/y, got {x.shape} and {y.shape}")
        if epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {epochs}")
        n = len(x)
        rng = np.random.default_rng(self.seed)
        history = TrainingHistory()

        for epoch in range(epochs):
            t0 = time.perf_counter()
            order = rng.permutation(n) if shuffle else np.arange(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, yb = x[idx], y[idx]
                pred = self.model.forward(xb)
                batch_loss = self.loss.value(pred, yb)
                epoch_loss += batch_loss * len(idx)
                self.optimizer.zero_grad()
                self.model.backward(self.loss.gradient(pred, yb))
                self.optimizer.step()
            history.train_loss.append(epoch_loss / n)
            if validation is not None:
                xv, yv = validation
                history.val_loss.append(self.evaluate(xv, yv))
            history.epoch_seconds.append(time.perf_counter() - t0)
            if callback is not None and callback(epoch, history) is False:
                break
        return history

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Loss on held-out data (no parameter updates)."""
        pred = self.model.predict(np.asarray(x, dtype=np.float64))
        return self.loss.value(pred, np.asarray(y, dtype=np.float64))
