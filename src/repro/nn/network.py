"""Sequential network composition and the MLP factory."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import ACTIVATIONS, Dense, Layer

__all__ = ["Sequential", "mlp"]


class Sequential:
    """A straight pipeline of layers with joint forward/backward.

    This is all the paper's FCNN needs: input -> five Dense+ReLU blocks ->
    linear Dense head (Fig 5).
    """

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = list(layers)
        self._ws = None  # attached repro.perf.Workspace, or None (slow path)

    # ------------------------------------------------------------- compute
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward propagation, caching intermediates for backward."""
        ws = self._ws
        out = np.asarray(x, dtype=np.float64 if ws is None else ws.dtype)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate a loss gradient; returns the input gradient."""
        ws = self._ws
        grad = np.asarray(grad_out, dtype=np.float64 if ws is None else ws.dtype)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------ fast path
    def attach_workspace(self, workspace) -> None:
        """Route layer buffers through a :class:`repro.perf.Workspace`.

        Each layer is tagged with its index so arena keys stay distinct;
        results are bit-identical to the detached path (see
        :mod:`repro.perf.workspace`).  A workspace serves one model at a
        time — detach before attaching it elsewhere.
        """
        self._ws = workspace
        for i, layer in enumerate(self.layers):
            layer._ws = workspace
            layer._ws_tag = i

    def detach_workspace(self) -> None:
        """Return to the allocating (seed) path; the arena keeps its buffers."""
        self._ws = None
        for layer in self.layers:
            layer._ws = None
            layer._ws_tag = -1

    @property
    def workspace(self):
        """The attached :class:`repro.perf.Workspace`, or ``None``."""
        return self._ws

    def set_training(self, flag: bool) -> None:
        """Toggle train/eval mode on layers that distinguish them (Dropout)."""
        for layer in self.layers:
            if hasattr(layer, "training"):
                layer.training = bool(flag)

    def predict(self, x: np.ndarray, batch_size: int = 65536) -> np.ndarray:
        """Inference over arbitrarily many rows, processed in batches.

        Runs in eval mode (Dropout disabled) and restores train mode after;
        does not disturb training caches beyond the last batch.
        """
        ws = self._ws
        x = np.asarray(x, dtype=np.float64 if ws is None else ws.dtype)
        self.set_training(False)
        try:
            if ws is None:
                if len(x) <= batch_size:
                    return self.forward(x)
                chunks = [
                    self.forward(x[i : i + batch_size]) for i in range(0, len(x), batch_size)
                ]
                return np.concatenate(chunks, axis=0)
            # Fast lane: forward() returns an arena buffer that the next
            # block clobbers, so copy each block into one preallocated
            # result.  Block boundaries match the slow path, keeping the
            # matmul shapes — and therefore the bits — identical.
            first = self.forward(x[:batch_size])
            if len(x) <= batch_size:
                return first.copy()
            out = np.empty((len(x),) + first.shape[1:], dtype=first.dtype)
            out[: len(first)] = first
            for i in range(batch_size, len(x), batch_size):
                block = self.forward(x[i : i + batch_size])
                out[i : i + len(block)] = block
            return out
        finally:
            self.set_training(True)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ---------------------------------------------------------- parameters
    def parameters(self):
        """All parameters, in layer order."""
        out = []
        for layer in self.layers:
            out.extend(layer.parameters())
        return out

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------ freezing
    def dense_layers(self) -> list[Dense]:
        """The parameterized (Dense) layers, in order."""
        return [l for l in self.layers if isinstance(l, Dense)]

    def set_all_trainable(self, flag: bool = True) -> None:
        for layer in self.layers:
            layer.set_trainable(flag)

    def freeze_all_but_last(self, num_trainable: int) -> None:
        """Freeze every Dense layer except the last ``num_trainable``.

        This is the paper's Case-2 fine-tuning setup: with
        ``num_trainable=2`` only the last two layers adapt to a new
        timestep, so checkpoints for subsequent timesteps need only store
        those layers (see :func:`repro.nn.save_partial`).
        """
        dense = self.dense_layers()
        if not (1 <= num_trainable <= len(dense)):
            raise ValueError(
                f"num_trainable must be in [1, {len(dense)}], got {num_trainable}"
            )
        cut = len(dense) - num_trainable
        for i, layer in enumerate(dense):
            layer.set_trainable(i >= cut)

    # ------------------------------------------------------------ snapshots
    def snapshot(self) -> list[tuple[np.ndarray, bool]]:
        """Copy the learned state: per-parameter ``(value, trainable)`` pairs.

        This is the cheap alternative to ``copy.deepcopy(network)`` for
        save/rollback points: it copies only the weight tensors (and the
        freeze flags Case-2 fine-tuning flips), skipping attached
        :class:`repro.perf.Workspace` arenas, cached activations and
        gradient buffers — none of which are part of the learned state, and
        all of which deep copies drag along.
        """
        return [(p.value.copy(), bool(p.trainable)) for p in self.parameters()]

    def restore(self, snapshot: list[tuple[np.ndarray, bool]]) -> None:
        """Write a :meth:`snapshot` back into this network, in place.

        Values are copied into the existing parameter tensors (optimizers
        built against them stay valid, though their moment estimates are
        *not* rolled back — rebuild the optimizer for a fresh run, as
        :class:`repro.core.FCNNReconstructor.fine_tune` does).  The
        snapshot must come from an architecturally identical network.
        """
        params = self.parameters()
        if len(params) != len(snapshot):
            raise ValueError(
                f"snapshot has {len(snapshot)} parameters, network has {len(params)}"
            )
        for p, (value, trainable) in zip(params, snapshot):
            if p.value.shape != value.shape:
                raise ValueError(
                    f"snapshot shape {value.shape} != parameter {p.name} shape {p.value.shape}"
                )
            p.value[...] = value
            p.trainable = bool(trainable)
            p.zero_grad()

    # ---------------------------------------------------------- descriptors
    def spec(self) -> list[dict]:
        """Architecture description for checkpointing."""
        return [layer.spec() for layer in self.layers]

    def clone_architecture(self, rng: np.random.Generator | None = None) -> "Sequential":
        """A freshly-initialized network with the same architecture."""
        return from_spec(self.spec(), rng=rng)


def from_spec(spec: list[dict], rng: np.random.Generator | None = None) -> Sequential:
    """Rebuild a :class:`Sequential` from :meth:`Sequential.spec` output."""
    # Deterministic fallback, matching Dense's default (reproducible rebuilds).
    rng = rng if rng is not None else np.random.default_rng(0)
    layers: list[Layer] = []
    for entry in spec:
        kind = entry["kind"]
        if kind == "Dense":
            layers.append(
                Dense(
                    int(entry["in_features"]),
                    int(entry["out_features"]),
                    weight_init=entry.get("weight_init", "he_normal"),
                    rng=rng,
                )
            )
        elif kind == "Dropout":
            from repro.nn.regularization import Dropout

            layers.append(Dropout(rate=float(entry.get("rate", 0.5))))
        elif kind == "LayerNorm":
            from repro.nn.layers import LayerNorm

            layers.append(LayerNorm(int(entry["features"])))
        elif kind in ACTIVATIONS:
            layers.append(ACTIVATIONS[kind]())
        else:
            raise ValueError(f"unknown layer kind {kind!r} in spec")
    return Sequential(layers)


def mlp(
    in_features: int,
    hidden: list[int] | tuple[int, ...],
    out_features: int,
    activation: str = "ReLU",
    weight_init: str = "he_normal",
    seed: int | None = 0,
) -> Sequential:
    """Build a multilayer perceptron: Dense+activation blocks + linear head.

    ``mlp(23, [512, 256, 128, 64, 16], 4)`` is the paper's architecture.
    """
    if activation not in ACTIVATIONS:
        raise ValueError(f"unknown activation {activation!r}; available: {sorted(ACTIVATIONS)}")
    rng = np.random.default_rng(seed)
    layers: list[Layer] = []
    prev = int(in_features)
    for width in hidden:
        layers.append(Dense(prev, int(width), weight_init=weight_init, rng=rng))
        layers.append(ACTIVATIONS[activation]())
        prev = int(width)
    layers.append(Dense(prev, int(out_features), weight_init="xavier_normal", rng=rng))
    return Sequential(layers)
