"""A from-scratch, numpy-only neural-network engine.

The paper trains its FCNN in a mainstream framework on A100 GPUs; none is
available offline, so this package implements the required subset exactly:
dense layers with ReLU activations, mean-squared-error loss, backprop, the
Adam optimizer (lr=0.001, the paper's setting), mini-batch training with
loss history, *layer freezing* (the Case-2 "last two layers trainable"
fine-tuning protocol of Fig 5) and model (de)serialization including
partial, last-k-layer checkpoints (the Case-2 storage optimization).

Beyond the paper's minimum the engine also carries Huber / column-weighted
MSE losses, SGD/RMSProp optimizers, learning-rate schedules
(:func:`apply_schedule` with constant/step/exponential/cosine/warmup),
Dropout/LayerNorm layers, L2 regularization + gradient clipping, and
:class:`EarlyStopping`.  :meth:`Trainer.fit` exposes the resilience hooks
(``checkpoint=``, ``resume_from=``, ``health=`` — ``docs/RESILIENCE.md``)
and, under an active ``repro.obs`` recorder, emits ``train.*`` spans and
metrics (``docs/OBSERVABILITY.md``).

Everything is vectorized over the batch dimension; see
``tests/test_nn_gradcheck.py`` for finite-difference verification of every
layer's backward pass.
"""

from repro.nn.parameter import Parameter
from repro.nn.layers import Dense, Identity, Layer, LayerNorm, ReLU, Sigmoid, Tanh
from repro.nn.network import Sequential, mlp
from repro.nn.losses import HuberLoss, Loss, MAELoss, MSELoss
from repro.nn.losses_weighted import WeightedMSELoss
from repro.nn.optimizers import SGD, Adam, Optimizer, RMSProp
from repro.nn.initializers import he_normal, he_uniform, xavier_normal, xavier_uniform, zeros
from repro.nn.training import Trainer, TrainingHistory
from repro.nn.schedules import (
    ConstantSchedule,
    CosineAnnealingSchedule,
    ExponentialDecaySchedule,
    StepDecaySchedule,
    WarmupSchedule,
    apply_schedule,
)
from repro.nn.regularization import (
    Dropout,
    EarlyStopping,
    add_l2_gradients,
    clip_gradients,
    l2_penalty,
)
from repro.nn.serialization import (
    load_model,
    load_partial,
    save_model,
    save_partial,
)

__all__ = [
    "Parameter",
    "Layer",
    "Dense",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "LayerNorm",
    "Sequential",
    "mlp",
    "Loss",
    "MSELoss",
    "MAELoss",
    "WeightedMSELoss",
    "HuberLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "RMSProp",
    "he_normal",
    "he_uniform",
    "xavier_normal",
    "xavier_uniform",
    "zeros",
    "Trainer",
    "TrainingHistory",
    "save_model",
    "load_model",
    "save_partial",
    "load_partial",
    "ConstantSchedule",
    "StepDecaySchedule",
    "ExponentialDecaySchedule",
    "CosineAnnealingSchedule",
    "WarmupSchedule",
    "apply_schedule",
    "Dropout",
    "EarlyStopping",
    "l2_penalty",
    "add_l2_gradients",
    "clip_gradients",
]
