"""Weight initializers.

He initialization is the natural partner of ReLU activations (it preserves
forward variance through rectified layers), so :func:`he_normal` is the
default for the paper's FCNN; Xavier variants are provided for the
non-rectified output layer and experimentation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "he_uniform", "xavier_normal", "xavier_uniform", "zeros", "get_initializer"]


def he_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Gaussian with std ``sqrt(2 / fan_in)``."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))


def he_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform over ``[-sqrt(6/fan_in), +sqrt(6/fan_in)]``."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def xavier_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Gaussian with std ``sqrt(2 / (fan_in + fan_out))``."""
    return rng.normal(0.0, np.sqrt(2.0 / (fan_in + fan_out)), size=(fan_in, fan_out))


def xavier_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform over ``[-sqrt(6/(fan_in+fan_out)), +...]``."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """All-zero weights (useful in tests)."""
    return np.zeros((fan_in, fan_out))


_INITIALIZERS = {
    "he_normal": he_normal,
    "he_uniform": he_uniform,
    "xavier_normal": xavier_normal,
    "xavier_uniform": xavier_uniform,
    "zeros": zeros,
}


def get_initializer(name: str):
    """Resolve an initializer by name."""
    try:
        return _INITIALIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown initializer {name!r}; available: {sorted(_INITIALIZERS)}"
        ) from None
