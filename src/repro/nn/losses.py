"""Loss functions: value plus gradient with respect to predictions."""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "MSELoss", "MAELoss", "HuberLoss"]


class Loss:
    """Base class: ``value`` for reporting, ``gradient`` to seed backprop.

    ``value`` always reduces in float64 (``_check`` upcasts), whatever the
    network's compute dtype — this is the fast path's float64-accumulation
    guarantee.  Losses whose ``gradient`` accepts an ``out=`` buffer set
    ``supports_out`` so the trainer can reuse a workspace buffer; the
    ``out=`` form applies the same operations in the same order and is
    bit-identical to the allocating form.
    """

    name = "loss"
    #: True when ``gradient`` accepts an ``out=`` float64 buffer.
    supports_out = False

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(
        self, prediction: np.ndarray, target: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _check(prediction: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        p = np.asarray(prediction, dtype=np.float64)
        t = np.asarray(target, dtype=np.float64)
        if p.shape != t.shape:
            raise ValueError(f"prediction shape {p.shape} != target shape {t.shape}")
        if p.size == 0:
            raise ValueError("empty batch")
        return p, t


class MSELoss(Loss):
    """Mean squared error over every output element (paper Sec III-C)."""

    name = "mse"
    supports_out = True

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        p, t = self._check(prediction, target)
        return float(np.mean((p - t) ** 2))

    def gradient(
        self, prediction: np.ndarray, target: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        p, t = self._check(prediction, target)
        if out is None:
            return 2.0 * (p - t) / p.size
        np.subtract(p, t, out=out)
        out *= 2.0
        out /= p.size
        return out


class HuberLoss(Loss):
    """Huber loss: quadratic near zero, linear in the tails.

    Robust to the occasional extreme target (e.g. gradient spikes at
    under-resolved fronts) while staying smooth at the optimum.
    """

    name = "huber"

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        p, t = self._check(prediction, target)
        r = p - t
        a = np.abs(r)
        quad = 0.5 * r**2
        lin = self.delta * (a - 0.5 * self.delta)
        return float(np.mean(np.where(a <= self.delta, quad, lin)))

    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        p, t = self._check(prediction, target)
        r = p - t
        return np.clip(r, -self.delta, self.delta) / p.size


class MAELoss(Loss):
    """Mean absolute error (robust alternative, used in ablations)."""

    name = "mae"

    def value(self, prediction: np.ndarray, target: np.ndarray) -> float:
        p, t = self._check(prediction, target)
        return float(np.mean(np.abs(p - t)))

    def gradient(self, prediction: np.ndarray, target: np.ndarray) -> np.ndarray:
        p, t = self._check(prediction, target)
        return np.sign(p - t) / p.size
