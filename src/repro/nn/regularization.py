"""Regularization layers and training utilities.

The paper's Fig 6 discussion attributes the nine-layer model's quality drop
to overfitting; these utilities are the standard mitigations, used by the
repo's ablation benches: Dropout (train-time only), L2 penalty on Dense
weights, gradient clipping and early stopping on a validation loss.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer
from repro.nn.parameter import Parameter

__all__ = ["Dropout", "l2_penalty", "add_l2_gradients", "clip_gradients", "EarlyStopping"]


class Dropout(Layer):
    """Inverted dropout: active only while :attr:`training` is True.

    The mask is resampled per forward pass from the layer's own generator,
    so runs remain reproducible given the seed.
    """

    def __init__(self, rate: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        if not (0.0 <= rate < 1.0):
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.training = True
        self._rng = np.random.default_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask

    def spec(self) -> dict:
        return {"kind": "Dropout", "rate": self.rate}


def l2_penalty(parameters: list[Parameter], weight_decay: float) -> float:
    """The L2 regularization term ``wd * sum(w^2)`` over weight matrices.

    Biases (1D parameters) are conventionally excluded.
    """
    if weight_decay < 0:
        raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
    total = 0.0
    for p in parameters:
        if p.value.ndim >= 2:
            total += float(np.sum(p.value**2))
    return weight_decay * total


def add_l2_gradients(parameters: list[Parameter], weight_decay: float) -> None:
    """Accumulate the L2 term's gradient (``2 * wd * w``) in place."""
    if weight_decay < 0:
        raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
    if weight_decay == 0:
        return
    for p in parameters:
        if p.value.ndim >= 2 and p.trainable:
            p.grad += 2.0 * weight_decay * p.value


def clip_gradients(parameters: list[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for p in parameters:
        total += float(np.sum(p.grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in parameters:
            p.grad *= scale
    return norm


class EarlyStopping:
    """Trainer callback: stop when validation loss stalls.

    Usage::

        stopper = EarlyStopping(patience=20)
        trainer.fit(x, y, epochs=500, validation=(xv, yv), callback=stopper)
    """

    def __init__(self, patience: int = 10, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise ValueError(f"min_delta must be >= 0, got {min_delta}")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best = float("inf")
        self.best_epoch = -1
        self.stopped_epoch: int | None = None

    def __call__(self, epoch: int, history) -> bool | None:
        if not history.val_loss:
            raise RuntimeError("EarlyStopping needs validation data (pass validation=...)")
        current = history.val_loss[-1]
        if current < self.best - self.min_delta:
            self.best = current
            self.best_epoch = epoch
            return None
        if epoch - self.best_epoch >= self.patience:
            self.stopped_epoch = epoch
            return False
        return None
