"""Trainable parameter container."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A weight tensor with its accumulated gradient.

    Optimizers consult :attr:`trainable`; layer freezing (the paper's Case-2
    fine-tuning) flips that flag rather than detaching the parameter, so an
    optimizer can be rebuilt against the same network after (un)freezing.
    """

    __slots__ = ("name", "value", "grad", "trainable")

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = str(name)
        self.trainable = True

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient in place."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "" if self.trainable else ", frozen"
        return f"Parameter({self.name}, shape={self.shape}{flag})"
