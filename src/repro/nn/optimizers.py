# hot-path
"""Gradient-descent optimizers.

:class:`Adam` with ``lr=0.001`` is the paper's configuration (Sec III-C).
Optimizers respect :attr:`Parameter.trainable`, so freezing layers for
Case-2 fine-tuning simply stops their updates while per-parameter state
(Adam moments) stays aligned.

Updates run fully in place: each optimizer keeps per-parameter scratch
buffers (allocated once, never checkpointed) and applies the textbook
expressions as a sequence of ``out=`` ufunc calls.  The operation order is
unchanged from the allocating forms, so steps are bit-identical; the
bias-correction denominators ``1 - beta**t`` are computed once per step,
not per parameter.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "RMSProp"]


class Optimizer:
    """Base class binding an update rule to a list of parameters."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = float(lr)

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    # ----------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Resumable state: scalars plus per-parameter arrays (copies).

        Subclasses extend this with their moment/velocity buffers; the
        contract is that ``load_state_dict(state_dict())`` restores the
        optimizer bit-exactly (see :mod:`repro.resilience.checkpoint`).
        """
        return {"kind": type(self).__name__, "lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`, in place."""
        kind = state.get("kind")
        if kind != type(self).__name__:
            raise ValueError(
                f"optimizer state is for {kind!r}, cannot load into {type(self).__name__}"
            )
        self.lr = float(state["lr"])

    @staticmethod
    def _restore_buffers(dst: list[np.ndarray], src, label: str) -> None:
        """Copy checkpointed buffers over live ones, validating counts/shapes."""
        src = list(src)
        if len(src) != len(dst):
            raise ValueError(
                f"optimizer state {label!r} holds {len(src)} arrays, expected {len(dst)}"
            )
        for d, s in zip(dst, src):
            s = np.asarray(s, dtype=np.float64)
            if d.shape != s.shape:
                raise ValueError(
                    f"optimizer state {label!r} shape mismatch: {s.shape} vs {d.shape}"
                )
            d[...] = s


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]
        self._scratch = [np.empty_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for p, v, s in zip(self.parameters, self._velocity, self._scratch):
            if not p.trainable:
                continue
            np.multiply(p.grad, self.lr, out=s)
            if self.momentum > 0:
                v *= self.momentum
                v -= s
                p.value += v
            else:
                p.value -= s

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["momentum"] = self.momentum
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.momentum = float(state["momentum"])
        self._restore_buffers(self._velocity, state["velocity"], "velocity")


class RMSProp(Optimizer):
    """RMSProp: per-parameter step sizes from an EMA of squared gradients."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.001,
        rho: float = 0.9,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        if not (0.0 <= rho < 1.0):
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        self.rho = float(rho)
        self.eps = float(eps)
        self._sq = [np.zeros_like(p.value) for p in self.parameters]
        self._s1 = [np.empty_like(p.value) for p in self.parameters]
        self._s2 = [np.empty_like(p.value) for p in self.parameters]

    def step(self) -> None:
        one_minus_rho = 1.0 - self.rho
        for p, sq, s1, s2 in zip(self.parameters, self._sq, self._s1, self._s2):
            if not p.trainable:
                continue
            sq *= self.rho
            np.multiply(p.grad, p.grad, out=s1)
            s1 *= one_minus_rho
            sq += s1
            np.sqrt(sq, out=s2)
            s2 += self.eps
            np.multiply(p.grad, self.lr, out=s1)
            s1 /= s2
            p.value -= s1

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["rho"] = self.rho
        state["eps"] = self.eps
        state["sq"] = [sq.copy() for sq in self._sq]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.rho = float(state["rho"])
        self.eps = float(state["eps"])
        self._restore_buffers(self._sq, state["sq"], "sq")


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias-corrected moment estimates."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._s1 = [np.empty_like(p.value) for p in self.parameters]
        self._s2 = [np.empty_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        # Bias corrections depend only on t: hoisted out of the parameter loop.
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        one_minus_b1 = 1.0 - self.beta1
        one_minus_b2 = 1.0 - self.beta2
        for p, m, v, s1, s2 in zip(self.parameters, self._m, self._v, self._s1, self._s2):
            if not p.trainable:
                continue
            m *= self.beta1
            np.multiply(p.grad, one_minus_b1, out=s1)
            m += s1
            v *= self.beta2
            np.multiply(p.grad, p.grad, out=s2)
            s2 *= one_minus_b2
            v += s2
            np.divide(m, b1t, out=s1)          # m_hat
            np.divide(v, b2t, out=s2)          # v_hat
            np.sqrt(s2, out=s2)
            s2 += self.eps
            s1 *= self.lr
            s1 /= s2
            p.value -= s1

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["beta1"] = self.beta1
        state["beta2"] = self.beta2
        state["eps"] = self.eps
        state["t"] = self._t
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self._t = int(state["t"])
        self._restore_buffers(self._m, state["m"], "m")
        self._restore_buffers(self._v, state["v"], "v")
