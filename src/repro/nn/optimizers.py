"""Gradient-descent optimizers.

:class:`Adam` with ``lr=0.001`` is the paper's configuration (Sec III-C).
Optimizers respect :attr:`Parameter.trainable`, so freezing layers for
Case-2 fine-tuning simply stops their updates while per-parameter state
(Adam moments) stays aligned.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "RMSProp"]


class Optimizer:
    """Base class binding an update rule to a list of parameters."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = float(lr)

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    # ----------------------------------------------------------- checkpointing
    def state_dict(self) -> dict:
        """Resumable state: scalars plus per-parameter arrays (copies).

        Subclasses extend this with their moment/velocity buffers; the
        contract is that ``load_state_dict(state_dict())`` restores the
        optimizer bit-exactly (see :mod:`repro.resilience.checkpoint`).
        """
        return {"kind": type(self).__name__, "lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`, in place."""
        kind = state.get("kind")
        if kind != type(self).__name__:
            raise ValueError(
                f"optimizer state is for {kind!r}, cannot load into {type(self).__name__}"
            )
        self.lr = float(state["lr"])

    @staticmethod
    def _restore_buffers(dst: list[np.ndarray], src, label: str) -> None:
        """Copy checkpointed buffers over live ones, validating counts/shapes."""
        src = list(src)
        if len(src) != len(dst):
            raise ValueError(
                f"optimizer state {label!r} holds {len(src)} arrays, expected {len(dst)}"
            )
        for d, s in zip(dst, src):
            s = np.asarray(s, dtype=np.float64)
            if d.shape != s.shape:
                raise ValueError(
                    f"optimizer state {label!r} shape mismatch: {s.shape} vs {d.shape}"
                )
            d[...] = s


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if not p.trainable:
                continue
            if self.momentum > 0:
                v *= self.momentum
                v -= self.lr * p.grad
                p.value += v
            else:
                p.value -= self.lr * p.grad

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["momentum"] = self.momentum
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.momentum = float(state["momentum"])
        self._restore_buffers(self._velocity, state["velocity"], "velocity")


class RMSProp(Optimizer):
    """RMSProp: per-parameter step sizes from an EMA of squared gradients."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.001,
        rho: float = 0.9,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        if not (0.0 <= rho < 1.0):
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        self.rho = float(rho)
        self.eps = float(eps)
        self._sq = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for p, sq in zip(self.parameters, self._sq):
            if not p.trainable:
                continue
            sq *= self.rho
            sq += (1.0 - self.rho) * p.grad**2
            p.value -= self.lr * p.grad / (np.sqrt(sq) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["rho"] = self.rho
        state["eps"] = self.eps
        state["sq"] = [sq.copy() for sq in self._sq]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.rho = float(state["rho"])
        self.eps = float(state["eps"])
        self._restore_buffers(self._sq, state["sq"], "sq")


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias-corrected moment estimates."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if not p.trainable:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / b1t
            v_hat = v / b2t
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["beta1"] = self.beta1
        state["beta2"] = self.beta2
        state["eps"] = self.eps
        state["t"] = self._t
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self._t = int(state["t"])
        self._restore_buffers(self._m, state["m"], "m")
        self._restore_buffers(self._v, state["v"], "v")
