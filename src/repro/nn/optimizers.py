"""Gradient-descent optimizers.

:class:`Adam` with ``lr=0.001`` is the paper's configuration (Sec III-C).
Optimizers respect :attr:`Parameter.trainable`, so freezing layers for
Case-2 fine-tuning simply stops their updates while per-parameter state
(Adam moments) stays aligned.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "RMSProp"]


class Optimizer:
    """Base class binding an update rule to a list of parameters."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = float(lr)

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if not p.trainable:
                continue
            if self.momentum > 0:
                v *= self.momentum
                v -= self.lr * p.grad
                p.value += v
            else:
                p.value -= self.lr * p.grad


class RMSProp(Optimizer):
    """RMSProp: per-parameter step sizes from an EMA of squared gradients."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.001,
        rho: float = 0.9,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        if not (0.0 <= rho < 1.0):
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        self.rho = float(rho)
        self.eps = float(eps)
        self._sq = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for p, sq in zip(self.parameters, self._sq):
            if not p.trainable:
                continue
            sq *= self.rho
            sq += (1.0 - self.rho) * p.grad**2
            p.value -= self.lr * p.grad / (np.sqrt(sq) + self.eps)


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias-corrected moment estimates."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if not p.trainable:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad**2
            m_hat = m / b1t
            v_hat = v / b2t
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
