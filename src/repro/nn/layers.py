# hot-path
"""Layers: dense affine maps and element-wise activations.

Every layer implements ``forward`` (caching what backward needs) and
``backward`` (accumulating parameter gradients, returning the gradient with
respect to its input).  Batches are rows: activations are ``(B, features)``.

Fast path: when a :class:`repro.perf.Workspace` is attached (via
:meth:`repro.nn.Sequential.attach_workspace`), ``Dense`` and ``ReLU``
write into reused arena buffers instead of allocating — ``np.matmul(...,
out=)`` for the affine maps, an in-place masked multiply for the
activation (fusing Dense+ReLU into one buffer).  The operation sequence is
unchanged, so results are bit-identical to the allocating path; layers
without a fast branch simply ignore the workspace and keep allocating,
which composes safely within one network.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import get_initializer
from repro.nn.parameter import Parameter

__all__ = ["Layer", "Dense", "ReLU", "Tanh", "Sigmoid", "Identity", "LayerNorm"]

#: Output widths below this use a fixed-accumulation-order matmul at
#: inference.  BLAS dispatches skinny-N gemms (N <= 4 observed with
#: OpenBLAS) to kernels whose k-accumulation order depends on the row
#: count M, so the same input row can round to different last bits in a
#: 16384-row predict block than in a shard chunk.  ``np.einsum`` (without
#: ``optimize``) sums k sequentially per output element regardless of M,
#: making predictions a pure per-row function — the property the
#: shard-parallel campaign's bit-identity rests on.  Hidden-width gemms
#: (>= 8 columns) go through the standard blocked kernels, whose
#: M-partitioning does not reorder the per-row k loop.
_DETERMINISTIC_N = 8


class Layer:
    """Base class: a differentiable map with (possibly zero) parameters."""

    # class-level defaults so subclasses that skip super().__init__ still
    # see "no workspace attached"
    _ws = None       # active repro.perf.Workspace, or None (slow path)
    _ws_tag = -1     # layer index within the owning Sequential
    training = True  # toggled by Sequential.set_training

    def __init__(self) -> None:
        self.trainable = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """Parameters owned by this layer (empty for activations)."""
        return []

    def set_trainable(self, flag: bool) -> None:
        """Freeze/unfreeze this layer's parameters."""
        self.trainable = bool(flag)
        for p in self.parameters():
            p.trainable = bool(flag)

    def spec(self) -> dict:
        """JSON-serializable architecture description (for checkpoints)."""
        return {"kind": type(self).__name__}

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Dense(Layer):
    """Affine layer ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Weight shape.
    weight_init:
        Initializer name (see :mod:`repro.nn.initializers`).
    rng:
        Generator used for initialization; pass one seeded generator through
        an entire network for reproducible training runs.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight_init: str = "he_normal",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError(f"Dense needs positive dims, got {in_features}x{out_features}")
        # Deterministic fallback: un-threaded construction must still be
        # reproducible run to run (pass a Generator to vary the init).
        rng = rng if rng is not None else np.random.default_rng(0)
        init = get_initializer(weight_init)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight_init = weight_init
        self.weight = Parameter(init(in_features, out_features, rng), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias")
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        ws = self._ws
        if ws is None:
            x = np.asarray(x, dtype=np.float64)
        elif x.dtype != ws.dtype:
            x = x.astype(ws.dtype)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense({self.in_features}->{self.out_features}) got input shape {x.shape}"
            )
        self._input = x
        # Inference through a skinny output (the scalar/gradient head) must
        # be row-count independent — see _DETERMINISTIC_N.  Training keeps
        # the BLAS path: batch shapes are fixed there, and the batched
        # multi-model engine mirrors its exact numerics.
        skinny = not self.training and self.out_features < _DETERMINISTIC_N
        if ws is None:
            if skinny:
                out = np.einsum("mk,kn->mn", x, self.weight.value)
                out += self.bias.value
                return out
            return x @ self.weight.value + self.bias.value
        # Fast lane: same ops (matmul, then the bias add), arena-owned output.
        out = ws.buffer((self._ws_tag, "fwd"), (x.shape[0], self.out_features))
        if skinny:
            np.einsum("mk,kn->mn", x, self.weight.value, out=out)
        else:
            np.matmul(x, self.weight.value, out=out)
        out += self.bias.value
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        x = self._input
        ws = self._ws
        if ws is None:
            # Accumulate (+=) so gradient checks can sum over micro-batches.
            self.weight.grad += x.T @ grad_out
            self.bias.grad += grad_out.sum(axis=0)
            return grad_out @ self.weight.value.T
        gw = ws.buffer((self._ws_tag, "gw"), self.weight.shape)
        np.matmul(x.T, grad_out, out=gw)
        self.weight.grad += gw
        gb = ws.buffer((self._ws_tag, "gb"), self.bias.shape)
        np.sum(grad_out, axis=0, out=gb)
        self.bias.grad += gb
        gin = ws.buffer((self._ws_tag, "bwd"), x.shape)
        np.matmul(grad_out, self.weight.value.T, out=gin)
        return gin

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]

    def spec(self) -> dict:
        return {
            "kind": "Dense",
            "in_features": self.in_features,
            "out_features": self.out_features,
            "weight_init": self.weight_init,
        }


class ReLU(Layer):
    """Rectified linear activation — the paper's choice (Sec III-C)."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        ws = self._ws
        if ws is None:
            self._mask = x > 0
            return np.where(self._mask, x, 0.0)
        mask = ws.buffer((self._ws_tag, "mask"), x.shape, dtype=bool)
        np.greater(x, 0, out=mask)
        # Safe arena persistence: the key is unique to this layer instance
        # and backward() consumes the mask before the next forward() could
        # re-request (and clobber) it.
        self._mask = mask  # repro: noqa[ALS002]
        if ws.owns(x):
            # Fuse with the producing Dense: rectify its buffer in place.
            np.multiply(x, mask, out=x)
            return x
        out = ws.buffer((self._ws_tag, "fwd"), x.shape)
        np.multiply(x, mask, out=out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        ws = self._ws
        if ws is None:
            return np.where(self._mask, grad_out, 0.0)
        if ws.owns(grad_out):
            np.multiply(grad_out, self._mask, out=grad_out)
            return grad_out
        out = ws.buffer((self._ws_tag, "bwd"), grad_out.shape)
        np.multiply(grad_out, self._mask, out=out)
        return out


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._output**2)


class Sigmoid(Layer):
    """Logistic activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
        return self._output

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._output * (1.0 - self._output)


class LayerNorm(Layer):
    """Layer normalization over the feature axis, with learned gain/bias.

    Stabilizes deep-ladder training (the Fig 6 nine-layer regime); rows are
    normalized to zero mean / unit variance before the affine map.
    """

    def __init__(self, features: int, eps: float = 1e-5) -> None:
        super().__init__()
        if features < 1:
            raise ValueError(f"features must be >= 1, got {features}")
        self.features = int(features)
        self.eps = float(eps)
        self.gain = Parameter(np.ones(features), name="gain")
        self.bias = Parameter(np.zeros(features), name="bias")
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.features:
            raise ValueError(f"LayerNorm({self.features}) got input shape {x.shape}")
        mu = x.mean(axis=1, keepdims=True)
        var = x.var(axis=1, keepdims=True)
        inv = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mu) * inv
        self._cache = (xhat, inv, x)
        return xhat * self.gain.value + self.bias.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        xhat, inv, _ = self._cache
        self.gain.grad += (grad_out * xhat).sum(axis=0)
        self.bias.grad += grad_out.sum(axis=0)
        g = grad_out * self.gain.value
        # d/dx of (x - mu) / sqrt(var + eps), vectorized per row.
        return inv * (g - g.mean(axis=1, keepdims=True)
                      - xhat * (g * xhat).mean(axis=1, keepdims=True))

    def parameters(self) -> list[Parameter]:
        return [self.gain, self.bias]

    def spec(self) -> dict:
        return {"kind": "LayerNorm", "features": self.features}


class Identity(Layer):
    """No-op layer (linear output head)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


#: activations addressable by name in ``mlp()`` and checkpoints
ACTIVATIONS: dict[str, type[Layer]] = {
    "ReLU": ReLU,
    "Tanh": Tanh,
    "Sigmoid": Sigmoid,
    "Identity": Identity,
}
