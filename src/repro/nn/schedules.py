"""Learning-rate schedules.

The paper trains with a constant ``lr=0.001``; these schedules support the
repo's ablations (constant vs step vs exponential decay) and long
paper-profile runs where a decayed tail improves the final SNR.  A schedule
maps an epoch index to a learning rate; ``apply_schedule`` installs it on
an optimizer via the Trainer callback hook.
"""

from __future__ import annotations

import math

__all__ = [
    "ConstantSchedule",
    "StepDecaySchedule",
    "ExponentialDecaySchedule",
    "CosineAnnealingSchedule",
    "WarmupSchedule",
    "apply_schedule",
]


class Schedule:
    """Base: callable epoch -> learning rate."""

    def __call__(self, epoch: int) -> float:
        raise NotImplementedError


class ConstantSchedule(Schedule):
    """The paper's setting: a fixed learning rate."""

    def __init__(self, lr: float = 1e-3) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = float(lr)

    def __call__(self, epoch: int) -> float:
        return self.lr


class StepDecaySchedule(Schedule):
    """Multiply the rate by ``factor`` every ``step_size`` epochs."""

    def __init__(self, lr: float = 1e-3, step_size: int = 100, factor: float = 0.5) -> None:
        if lr <= 0 or not (0 < factor <= 1) or step_size < 1:
            raise ValueError("need lr > 0, 0 < factor <= 1, step_size >= 1")
        self.lr = float(lr)
        self.step_size = int(step_size)
        self.factor = float(factor)

    def __call__(self, epoch: int) -> float:
        return self.lr * self.factor ** (epoch // self.step_size)


class ExponentialDecaySchedule(Schedule):
    """``lr * decay**epoch``."""

    def __init__(self, lr: float = 1e-3, decay: float = 0.995) -> None:
        if lr <= 0 or not (0 < decay <= 1):
            raise ValueError("need lr > 0 and 0 < decay <= 1")
        self.lr = float(lr)
        self.decay = float(decay)

    def __call__(self, epoch: int) -> float:
        return self.lr * self.decay**epoch


class CosineAnnealingSchedule(Schedule):
    """Cosine descent from ``lr`` to ``lr_min`` over ``total_epochs``."""

    def __init__(self, lr: float = 1e-3, total_epochs: int = 500, lr_min: float = 1e-5) -> None:
        if lr <= 0 or lr_min < 0 or lr_min > lr or total_epochs < 1:
            raise ValueError("need lr > 0, 0 <= lr_min <= lr, total_epochs >= 1")
        self.lr = float(lr)
        self.lr_min = float(lr_min)
        self.total_epochs = int(total_epochs)

    def __call__(self, epoch: int) -> float:
        t = min(epoch, self.total_epochs) / self.total_epochs
        return self.lr_min + 0.5 * (self.lr - self.lr_min) * (1 + math.cos(math.pi * t))


class WarmupSchedule(Schedule):
    """Linear ramp over ``warmup_epochs``, then delegate to ``base``."""

    def __init__(self, base: Schedule, warmup_epochs: int = 5) -> None:
        if warmup_epochs < 1:
            raise ValueError(f"warmup_epochs must be >= 1, got {warmup_epochs}")
        self.base = base
        self.warmup_epochs = int(warmup_epochs)

    def __call__(self, epoch: int) -> float:
        if epoch < self.warmup_epochs:
            return self.base(self.warmup_epochs) * (epoch + 1) / self.warmup_epochs
        return self.base(epoch)


def apply_schedule(optimizer, schedule: Schedule):
    """Build a Trainer callback that updates ``optimizer.lr`` per epoch.

    The rate for epoch ``e+1`` is installed after epoch ``e`` completes
    (epoch 0 should be started at ``schedule(0)`` by the caller).
    """

    def callback(epoch: int, history) -> None:
        optimizer.lr = schedule(epoch + 1)

    return callback
