"""Model checkpointing: full and partial (last-k-layer) saves.

Partial checkpoints implement the paper's Case-2 storage scheme (Fig 5):
after last-two-layers fine-tuning, only the retrained layers differ from
the pretrained base model, so a per-timestep checkpoint needs just those
layers.  ``load_partial`` grafts such a checkpoint onto a base model.

All writes are atomic (temp file + ``os.replace``) and checksummed via
:mod:`repro.resilience.checkpoint`: a crash mid-save can no longer leave a
truncated ``.npz`` under the final name, and loading a truncated or
bit-flipped file raises :class:`repro.resilience.CheckpointCorruptionError`
naming the path and the damage instead of an opaque numpy error.
Checkpoints written before checksums existed still load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.layers import Dense
from repro.nn.network import Sequential, from_spec
from repro.resilience.checkpoint import (
    CheckpointCorruptionError,
    atomic_write_npz,
    read_verified_npz,
)

__all__ = ["save_model", "load_model", "save_partial", "load_partial"]

_SPEC_KEY = "__architecture__"
_META_KEY = "__meta__"


def _dense_arrays(model: Sequential, dense_indices: list[int]) -> dict[str, np.ndarray]:
    dense = model.dense_layers()
    arrays: dict[str, np.ndarray] = {}
    for i in dense_indices:
        arrays[f"dense{i}.weight"] = dense[i].weight.value
        arrays[f"dense{i}.bias"] = dense[i].bias.value
    return arrays


def _all_parameter_arrays(model: Sequential) -> dict[str, np.ndarray]:
    """Every layer's parameters, keyed by layer position in the pipeline.

    Covers non-Dense parameterized layers (e.g. LayerNorm) that the
    Dense-indexed Case-2 partial format deliberately ignores.
    """
    arrays: dict[str, np.ndarray] = {}
    for i, layer in enumerate(model.layers):
        for p in layer.parameters():
            arrays[f"layer{i}.{p.name}"] = p.value
    return arrays


def _decode_json(path: str | Path, array: np.ndarray, label: str):
    try:
        return json.loads(bytes(np.asarray(array, dtype=np.uint8)).decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointCorruptionError(path, f"undecodable {label}: {exc}") from exc


def save_model(path: str | Path, model: Sequential, meta: dict | None = None) -> None:
    """Save the full architecture + weights as a ``.npz`` checkpoint."""
    arrays = _all_parameter_arrays(model)
    arrays[_SPEC_KEY] = np.frombuffer(json.dumps(model.spec()).encode(), dtype=np.uint8)
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta or {}).encode(), dtype=np.uint8)
    atomic_write_npz(path, arrays)


def load_model(path: str | Path) -> tuple[Sequential, dict]:
    """Load a checkpoint written by :func:`save_model`.

    Returns ``(model, meta)``.  Raises
    :class:`~repro.resilience.CheckpointCorruptionError` for truncated or
    bit-flipped files.
    """
    data = read_verified_npz(path)
    if _SPEC_KEY not in data:
        raise ValueError(f"{path}: not a full-model checkpoint (missing architecture)")
    spec = _decode_json(path, data[_SPEC_KEY], "architecture spec")
    meta = _decode_json(path, data[_META_KEY], "metadata") if _META_KEY in data else {}
    model = from_spec(spec)
    for i, layer in enumerate(model.layers):
        for p in layer.parameters():
            key = f"layer{i}.{p.name}"
            if key not in data:
                raise CheckpointCorruptionError(path, f"missing parameter {key!r}")
            p.value[...] = data[key]
    return model, meta


def save_partial(path: str | Path, model: Sequential, num_layers: int, meta: dict | None = None) -> None:
    """Save only the last ``num_layers`` Dense layers of ``model``.

    The checkpoint records which layer slots it covers so
    :func:`load_partial` can verify compatibility.
    """
    dense = model.dense_layers()
    if not (1 <= num_layers <= len(dense)):
        raise ValueError(f"num_layers must be in [1, {len(dense)}], got {num_layers}")
    indices = list(range(len(dense) - num_layers, len(dense)))
    arrays = _dense_arrays(model, indices)
    info = {
        "layer_indices": indices,
        "total_dense_layers": len(dense),
        "meta": meta or {},
    }
    arrays[_META_KEY] = np.frombuffer(json.dumps(info).encode(), dtype=np.uint8)
    atomic_write_npz(path, arrays)


def load_partial(path: str | Path, base_model: Sequential) -> dict:
    """Graft a partial checkpoint onto ``base_model`` (in place).

    ``base_model`` must have the same Dense-layer count and matching shapes
    in the covered slots.  Returns the checkpoint's ``meta`` dict.
    """
    dense = base_model.dense_layers()
    data = read_verified_npz(path)
    if _META_KEY not in data:
        raise ValueError(f"{path}: not a partial checkpoint")
    info = _decode_json(path, data[_META_KEY], "metadata")
    if "layer_indices" not in info:
        raise ValueError(f"{path}: not a partial checkpoint")
    if info["total_dense_layers"] != len(dense):
        raise ValueError(
            f"{path}: checkpoint expects {info['total_dense_layers']} dense layers, "
            f"base model has {len(dense)}"
        )
    for i in info["layer_indices"]:
        layer: Dense = dense[i]
        key_w, key_b = f"dense{i}.weight", f"dense{i}.bias"
        if key_w not in data or key_b not in data:
            raise CheckpointCorruptionError(path, f"missing arrays for dense layer {i}")
        w = data[key_w]
        b = data[key_b]
        if w.shape != layer.weight.value.shape or b.shape != layer.bias.value.shape:
            raise ValueError(f"{path}: shape mismatch at dense layer {i}")
        layer.weight.value[...] = w
        layer.bias.value[...] = b
    return info.get("meta", {})
