"""Fault-tolerant process-pool map with per-task outcomes.

Workers receive picklable task payloads; with ``max_workers=1`` (or on
platforms where process creation fails) execution degrades gracefully to an
in-process loop, so every parallel code path is also exercised in serial
test environments.

Hardening (each recovery path is proven by fault injection in
``tests/test_resilience_executor.py``):

* tasks are submitted individually — one failing payload no longer takes
  the whole batch down, and side-effecting completed work is never re-run;
* per-task result timeout (``timeout=``) and exponential-backoff retry
  (``retries=``, ``backoff=``);
* ``BrokenProcessPool`` recovery: results collected before the crash are
  kept, and only the unresolved payloads are re-run serially in-process;
* :meth:`ParallelExecutor.map_outcomes` reports a structured
  :class:`TaskOutcome` per payload instead of raising.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from repro.obs import counter, record_event

__all__ = ["ParallelExecutor", "TaskOutcome"]


@dataclass
class TaskOutcome:
    """What happened to one payload across all execution attempts."""

    index: int
    status: str = "pending"          # "pending" -> "ok" | "failed"
    result: Any = None
    error: str | None = None         # human-readable failure description
    exception: BaseException | None = None
    attempts: int = 0
    duration: float = 0.0            # seconds spent waiting on/running the task
    recovered: str | None = None     # "retry" | "serial-fallback" | None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def _succeed(self, result: Any, recovered: str | None) -> None:
        self.status = "ok"
        self.result = result
        self.error = None
        self.exception = None
        self.recovered = recovered

    def _note_failure(self, exc: BaseException, error: str | None = None) -> None:
        self.error = error if error is not None else f"{type(exc).__name__}: {exc}"
        self.exception = exc


class ParallelExecutor:
    """Map a function over payloads using processes when beneficial.

    Parameters
    ----------
    max_workers:
        Process count; ``None`` uses ``os.cpu_count()``.  With one worker
        (or one payload) no pool is created.
    timeout:
        Seconds to wait for each task's result before treating it as
        failed (``None`` waits forever).  Only enforceable on the pool
        path — the serial path cannot interrupt a running call.
    retries:
        Extra attempts per failed task (0 keeps the fail-fast behavior).
    backoff:
        Base delay of the exponential backoff between attempts; after a
        failed attempt ``k`` (1-based) that will be retried, the executor
        waits ``backoff * 2**(k-1)`` seconds.  No delay is ever slept
        after the *final* failed attempt — the caller gets the failure
        immediately.  (Tests inject a fake clock via the ``_sleep``
        attribute.)
    persistent:
        Keep the process pool alive across :meth:`map_outcomes` calls
        instead of creating and tearing one down per call.  Campaign-style
        workloads (many reconstructions against the same warm workers —
        see :mod:`repro.perf.campaign`) pay pool startup once per run
        rather than once per timestep, and worker-side module caches stay
        hot.

        Lifecycle: the pool is created lazily on first use at the full
        ``max_workers`` width, survives healthy calls, and is recycled
        (shut down and lazily recreated) after a ``BrokenProcessPool`` or
        a task timeout — a crashed or hung worker never poisons the next
        call, and the in-flight call still gets the PR 2 recovery
        semantics (collected results kept, unresolved payloads re-run
        serially, ``recovered="serial-fallback"``).  The owner must call
        :meth:`close` (or use the executor as a context manager) when the
        campaign ends; a non-persistent executor needs no cleanup.
    max_respawns:
        Budget of persistent-pool replacements (automatic recycling after
        an unhealthy call plus supervisor-driven :meth:`recycle` calls).
        ``None`` (default) is unbounded — the PR 5 behavior.  Once the
        budget is exhausted no further pool is created and the executor
        degrades permanently to the in-process serial path: a host that
        keeps killing workers stops being asked for new ones.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 0.5,
        persistent: bool = False,
        max_respawns: int | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        if max_respawns is not None and max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {max_respawns}")
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.persistent = bool(persistent)
        self.max_respawns = max_respawns
        self.respawns = 0
        # Test seam: the backoff clock.  Injected by the fake-clock tests
        # proving no delay is slept after the final failed attempt.
        self._sleep = time.sleep
        self._pool: ProcessPoolExecutor | None = None
        # Guards the check-then-create/swap of self._pool: a campaign's
        # emit thread closing the executor must not race another thread's
        # lazy pool creation (the loser's pool would leak its workers).
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------- pool lifecycle
    def _acquire_pool(self, workers: int) -> tuple[ProcessPoolExecutor, bool]:
        """``(pool, pooled)`` — ``pooled`` marks a kept-alive persistent pool."""
        if not self.persistent:
            return ProcessPoolExecutor(max_workers=workers), False
        with self._pool_lock:
            if self._pool is None:
                if self._respawn_budget_spent():
                    # Budget exhausted: refuse a new pool; _pool_phase
                    # catches this and degrades to the serial path.
                    raise RuntimeError(
                        f"worker respawn budget exhausted "
                        f"({self.respawns}/{self.max_respawns}); running serially"
                    )
                # Full width regardless of this call's payload count, so later
                # (possibly larger) batches reuse the same warm pool.
                self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            return self._pool, True

    def _respawn_budget_spent(self) -> bool:
        return self.max_respawns is not None and self.respawns > self.max_respawns

    def _count_respawn(self, reason: str) -> None:
        """One persistent pool was discarded; a replacement costs budget."""
        self.respawns += 1
        counter("executor.respawns").inc()
        record_event(
            "executor.respawn",
            reason=reason,
            respawns=self.respawns,
            budget=self.max_respawns,
        )

    def _release_pool(self, pool: ProcessPoolExecutor, pooled: bool, unhealthy: bool) -> None:
        """Tear down per-call pools; keep a healthy persistent pool warm."""
        if pooled:
            if not unhealthy:
                return  # stays warm for the next map_outcomes call
            with self._pool_lock:
                if self._pool is pool:
                    self._pool = None  # recycle: recreate lazily on next use
                    self._count_respawn("unhealthy")
        # wait=False so a hung (timed-out) worker cannot block shutdown.
        pool.shutdown(wait=not unhealthy and self.timeout is None, cancel_futures=True)

    def recycle(self, reason: str = "supervisor") -> bool:
        """Replace the persistent pool: shut it down so the next call
        creates a fresh one.

        This is the supervisor's stall remedy (a hung worker is replaced
        wholesale) and counts against ``max_respawns``.  Returns ``True``
        when a live pool was actually discarded.  No-op for
        non-persistent executors.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            if pool is not None:
                self._count_respawn(reason)
        if pool is None:
            return False
        # A recycle usually means a wedged worker: don't block on it.
        pool.shutdown(wait=False, cancel_futures=True)
        return True

    def close(self) -> None:
        """Shut down the persistent pool (idempotent; no-op when not persistent).

        Thread-safe: concurrent ``close()`` calls shut the pool down once,
        and a close racing :meth:`_acquire_pool` can never strand a
        freshly created pool.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ API
    def map(self, fn, payloads: list) -> list:
        """Ordered results of ``fn`` applied to each payload.

        Raises the first (by payload order) unrecovered task failure after
        all attempts; completed work is never re-executed on the way.
        """
        outcomes = self.map_outcomes(fn, payloads)
        for outcome in outcomes:
            if not outcome.ok:
                if outcome.exception is not None:
                    raise outcome.exception
                raise RuntimeError(
                    f"task {outcome.index} failed: {outcome.error or 'unknown error'}"
                )
        return [outcome.result for outcome in outcomes]

    def map_outcomes(self, fn, payloads: list) -> list[TaskOutcome]:
        """Run every payload and report per-task outcomes (never raises
        for task failures).

        Payloads run in the pool when ``max_workers > 1``; tasks left
        unresolved by a broken or unavailable pool are re-run serially
        in-process (``recovered="serial-fallback"``), keeping all results
        already collected.
        """
        payloads = list(payloads)
        outcomes = [TaskOutcome(index=i) for i in range(len(payloads))]
        if not payloads:
            return outcomes
        pending = list(range(len(payloads)))
        workers = min(self.max_workers, len(payloads))
        pool_attempted = False
        if workers > 1:
            pool_attempted, pending = self._pool_phase(fn, payloads, outcomes, pending, workers)
        self._serial_phase(fn, payloads, outcomes, pending, pool_attempted)
        return outcomes

    # ------------------------------------------------------------ pool phase
    def _pool_phase(
        self,
        fn,
        payloads: list,
        outcomes: list[TaskOutcome],
        pending: list[int],
        workers: int,
    ) -> tuple[bool, list[int]]:
        """Run pending payloads in a process pool with retries.

        Returns ``(pool_ran, still_pending)`` — ``still_pending`` is
        non-empty only when the pool broke (or never started), leaving
        those payloads for serial recovery.  With a healthy pool, failures
        are final and marked ``"failed"`` here.
        """
        try:
            pool, pooled = self._acquire_pool(workers)
        except (OSError, RuntimeError, PermissionError):
            # Sandboxed/restricted environments: degrade to serial.
            return False, pending
        broken = False
        had_timeout = False
        try:
            for attempt in range(1, self.retries + 2):
                if not pending or broken:
                    break
                try:
                    futures = [(i, pool.submit(fn, payloads[i])) for i in pending]
                except (BrokenProcessPool, RuntimeError):
                    broken = True
                    break
                failed: list[int] = []
                for i, future in futures:
                    outcome = outcomes[i]
                    t0 = time.perf_counter()
                    try:
                        result = future.result(timeout=None if broken else self.timeout)
                    except FuturesTimeoutError:
                        future.cancel()
                        had_timeout = True
                        outcome.attempts += 1
                        outcome.duration += time.perf_counter() - t0
                        exc = TimeoutError(
                            f"task {i} timed out after {self.timeout}s"
                        )
                        outcome._note_failure(exc, f"timed out after {self.timeout}s")
                        failed.append(i)
                    except BrokenProcessPool as exc:
                        broken = True
                        outcome.attempts += 1
                        outcome.duration += time.perf_counter() - t0
                        outcome._note_failure(exc, "worker process died (BrokenProcessPool)")
                        failed.append(i)
                    except Exception as exc:
                        outcome.attempts += 1
                        outcome.duration += time.perf_counter() - t0
                        outcome._note_failure(exc)
                        failed.append(i)
                    else:
                        outcome.attempts += 1
                        outcome.duration += time.perf_counter() - t0
                        outcome._succeed(result, "retry" if outcome.attempts > 1 else None)
                pending = failed
                # Back off only when another attempt will actually run:
                # never sleep after the final failed attempt.
                if pending and not broken and attempt <= self.retries:
                    self._sleep(self.backoff * 2 ** (attempt - 1))
        finally:
            self._release_pool(pool, pooled, unhealthy=broken or had_timeout)
        if broken:
            return True, pending
        for i in pending:
            outcomes[i].status = "failed"
        return True, []

    # ---------------------------------------------------------- serial phase
    def _serial_phase(
        self,
        fn,
        payloads: list,
        outcomes: list[TaskOutcome],
        pending: list[int],
        pool_attempted: bool,
    ) -> None:
        """In-process execution with retries, for serial mode and pool recovery."""
        for i in pending:
            outcome = outcomes[i]
            recovered = "serial-fallback" if pool_attempted else None
            for attempt in range(1, self.retries + 2):
                outcome.attempts += 1
                t0 = time.perf_counter()
                try:
                    result = fn(payloads[i])
                except Exception as exc:
                    outcome.duration += time.perf_counter() - t0
                    outcome._note_failure(exc)
                    # Back off before the next attempt only; the final
                    # failure returns to the caller without sleeping.
                    if attempt <= self.retries:
                        self._sleep(self.backoff * 2 ** (attempt - 1))
                else:
                    outcome.duration += time.perf_counter() - t0
                    if recovered is None and attempt > 1:
                        recovered = "retry"
                    outcome._succeed(result, recovered)
                    break
            if not outcome.ok:
                outcome.status = "failed"
