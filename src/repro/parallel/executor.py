"""Process-pool map with a serial fallback.

Workers receive picklable task payloads; with ``max_workers=1`` (or on
platforms where spawning fails) execution degrades gracefully to an in-
process loop, so every parallel code path is also exercised in serial test
environments.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

__all__ = ["ParallelExecutor"]


class ParallelExecutor:
    """Map a function over payloads using processes when beneficial.

    Parameters
    ----------
    max_workers:
        Process count; ``None`` uses ``os.cpu_count()``.  With one worker
        (or one payload) no pool is created.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)

    def map(self, fn, payloads: list) -> list:
        """Ordered results of ``fn`` applied to each payload."""
        payloads = list(payloads)
        if not payloads:
            return []
        workers = min(self.max_workers, len(payloads))
        if workers <= 1:
            return [fn(p) for p in payloads]
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, payloads))
        except (OSError, RuntimeError):
            # Sandboxed/restricted environments: degrade to serial.
            return [fn(p) for p in payloads]
