"""Spatial chunking of grids and index sets for parallel reconstruction."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.grid import UniformGrid

__all__ = ["GridChunk", "aligned_chunks", "chunk_indices", "split_grid"]


@dataclass(frozen=True)
class GridChunk:
    """A contiguous slab of a grid along one axis."""

    axis: int
    start: int   # inclusive slab start index along `axis`
    stop: int    # exclusive slab end
    flat_indices: np.ndarray  # flat indices of the slab's grid points


def aligned_chunks(total: int, num_chunks: int, align: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into chunks whose boundaries are multiples of ``align``.

    Serial prediction blocks start at absolute multiples of ``align``
    (the FCNN predict block, ``max(batch_size, 16384)``); aligned chunk
    boundaries keep the union of per-chunk blocks identical to the serial
    block sequence, which keeps the matmul shapes — and the floats —
    bit-identical.  Shared by the warm campaign pool
    (:mod:`repro.perf.campaign`) and the shard decomposer
    (:mod:`repro.shard`).
    """
    if align < 1:
        raise ValueError(f"align must be >= 1, got {align}")
    if total <= 0:
        return []
    max_chunks = max(1, math.ceil(total / align))
    num_chunks = max(1, min(int(num_chunks), max_chunks))
    per = math.ceil(total / num_chunks / align) * align
    return [(start, min(start + per, total)) for start in range(0, total, per)]


def chunk_indices(n: int, num_chunks: int) -> list[np.ndarray]:
    """Split ``range(n)`` into ``num_chunks`` near-equal contiguous pieces."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if num_chunks < 1:
        raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
    bounds = np.linspace(0, n, num_chunks + 1).astype(np.int64)
    return [np.arange(bounds[i], bounds[i + 1]) for i in range(num_chunks) if bounds[i + 1] > bounds[i]]


def split_grid(grid: UniformGrid, num_chunks: int, axis: int | None = None) -> list[GridChunk]:
    """Decompose a grid into slabs along its longest (or given) axis.

    Slabs are contiguous in index space, so each worker's query points are
    spatially compact — the kd-tree/Delaunay locality the decomposition is
    meant to exploit.
    """
    if num_chunks < 1:
        raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
    if axis is None:
        axis = int(np.argmax(grid.dims))
    if axis not in (0, 1, 2):
        raise ValueError(f"axis must be 0, 1 or 2, got {axis}")

    n_axis = grid.dims[axis]
    bounds = np.linspace(0, n_axis, min(num_chunks, n_axis) + 1).astype(np.int64)
    all_flat = np.arange(grid.num_points).reshape(grid.dims)

    chunks: list[GridChunk] = []
    for i in range(len(bounds) - 1):
        start, stop = int(bounds[i]), int(bounds[i + 1])
        if stop <= start:
            continue
        slicer: list[slice] = [slice(None)] * 3
        slicer[axis] = slice(start, stop)
        flat = all_flat[tuple(slicer)].ravel()
        chunks.append(GridChunk(axis=axis, start=start, stop=stop, flat_indices=flat))
    return chunks
