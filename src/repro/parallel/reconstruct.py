"""Chunked (optionally multi-process) rule-based reconstruction.

Splits the target grid's void locations into spatial slabs and runs the
interpolator on each slab, mirroring the paper's OpenMP-parallel Delaunay
reconstruction.  The sampled point cloud is shipped whole to each worker —
interpolators like Delaunay need the global triangulation's samples to stay
correct at slab boundaries.

Resilience: a chunk whose task fails, or whose predictions contain
non-finite values, no longer poisons the full field.  With the default
``fallback="nearest"`` the affected locations are filled by nearest-
neighbor interpolation and the chunk is flagged in the
:class:`~repro.resilience.ReconstructionReport` (request it with
``return_report=True``).  Pass ``fallback=None`` to restore strict
behavior: task failures raise and non-finite values pass through.

Transport: with ``transport="auto"`` (default) the sampled cloud, the
query matrix and the result vector live in POSIX shared memory
(:mod:`repro.perf.shm`) and workers receive only segment names plus a
``[start, stop)`` slice — payload pickles shrink from O(grid) to a few
hundred bytes.  Hosts without usable shared memory degrade to the
classic pickled-arrays transport automatically; ``transport="pickle"``
forces it, ``transport="shm"`` makes shared-memory failures raise.
Fallback semantics are identical on both transports.
"""

from __future__ import annotations

import numpy as np

from repro.grid import UniformGrid
from repro.interpolation.base import GridInterpolator
from repro.interpolation.nearest import NearestNeighborInterpolator
from repro.obs import counter as obs_counter
from repro.obs import record_event, span
from repro.parallel.chunking import chunk_indices
from repro.parallel.executor import ParallelExecutor
from repro.perf import SharedArrayBundle, attached_arrays
from repro.resilience.report import ReconstructionReport
from repro.sampling.base import SampledField

__all__ = ["parallel_reconstruct"]


def _run_chunk(payload) -> np.ndarray:
    interpolator, points, values, query, grid = payload
    return interpolator.interpolate(points, values, query, grid)


def _run_chunk_shm(payload) -> None:
    """Worker body for the shared-memory transport.

    Maps the parent's segments, interpolates its ``[start, stop)`` slice of
    the shared query matrix and writes the result into the shared output
    vector; nothing but ``None`` travels back through the pool.
    """
    interpolator, specs, start, stop, grid = payload
    with attached_arrays(specs) as arrays:
        arrays["out"][start:stop] = interpolator.interpolate(
            arrays["points"], arrays["values"], arrays["query"][start:stop], grid
        )


def _resolve_fallback(fallback) -> GridInterpolator | None:
    if fallback is None:
        return None
    if fallback == "nearest":
        return NearestNeighborInterpolator()
    if isinstance(fallback, str):
        raise ValueError(f"unknown fallback {fallback!r}; use 'nearest', None, or an interpolator")
    return fallback


def parallel_reconstruct(
    interpolator: GridInterpolator,
    sample: SampledField,
    target_grid: UniformGrid | None = None,
    num_chunks: int | None = None,
    executor: ParallelExecutor | None = None,
    fallback: str | GridInterpolator | None = "nearest",
    return_report: bool = False,
    transport: str = "auto",
) -> np.ndarray | tuple[np.ndarray, ReconstructionReport]:
    """Reconstruct like ``interpolator.reconstruct`` but chunk the queries.

    Parameters
    ----------
    interpolator:
        Any :class:`GridInterpolator`; it must be picklable for multi-
        process execution (all built-ins are).
    sample:
        The sampled point cloud.
    target_grid:
        Defaults to the sample's grid (void-filling mode).
    num_chunks:
        Number of query slabs; defaults to the executor's worker count.
    executor:
        Defaults to a fresh one-call :class:`ParallelExecutor` (one worker
        per CPU) whose pool is created and torn down inside this call.
        Callers reconstructing repeatedly (per-timestep campaign loops)
        should pass their own ``ParallelExecutor(persistent=True)`` so the
        pool — and the workers' warm module state — survives across
        calls; the **caller** then owns the lifecycle and must ``close()``
        it (or use it as a context manager) when done.  Either way the
        PR 2 fault-tolerance semantics apply per call: crashed pools
        recover collected results and re-run unresolved chunks serially,
        timeouts/retries follow the executor's settings, and a persistent
        executor recycles its pool after a crash or timeout so the next
        call starts healthy.
    fallback:
        Degradation method for failed or non-finite chunks: ``"nearest"``
        (default), any interpolator instance, or ``None`` for strict mode.
    return_report:
        When true, return ``(field, report)`` with per-chunk degradation
        metadata instead of the bare field.
    transport:
        ``"auto"`` (shared memory, degrading to pickles when unavailable),
        ``"shm"`` (shared memory or raise) or ``"pickle"``.
    """
    if transport not in ("auto", "shm", "pickle"):
        raise ValueError(
            f"transport must be 'auto', 'shm' or 'pickle', got {transport!r}"
        )
    executor = executor if executor is not None else ParallelExecutor()
    grid = target_grid if target_grid is not None else sample.grid
    same_grid = target_grid is None or target_grid == sample.grid
    fallback_interp = _resolve_fallback(fallback)

    if same_grid:
        fill_indices = sample.void_indices()
    else:
        fill_indices = np.arange(grid.num_points)
    query = grid.index_to_position(grid.flat_to_multi(fill_indices))

    chunks = chunk_indices(len(fill_indices), num_chunks or executor.max_workers)
    method = getattr(interpolator, "name", "interpolator")

    bundle = None
    if transport in ("auto", "shm"):
        try:
            bundle = SharedArrayBundle.create(
                {
                    "points": np.asarray(sample.points, dtype=np.float64),
                    "values": np.asarray(sample.values, dtype=np.float64),
                    "query": query,
                    "out": np.empty(len(fill_indices), dtype=np.float64),
                }
            )
        except OSError as exc:
            if transport == "shm":
                raise
            record_event("transport.fallback", method=method, error=str(exc))
            bundle = None
    if bundle is not None:
        specs = bundle.specs
        # chunk_indices yields contiguous slabs, so a [start, stop) pair
        # fully identifies each worker's slice of the shared query matrix.
        payloads = [
            (interpolator, specs, int(c[0]), int(c[-1]) + 1, grid) for c in chunks
        ]
        fn = _run_chunk_shm
    else:
        payloads = [
            (interpolator, sample.points, sample.values, query[c], grid) for c in chunks
        ]
        fn = _run_chunk

    obs_counter("reconstruct.chunks.total").inc(len(chunks))
    try:
        with span(
            "parallel.reconstruct",
            method=method,
            chunks=len(chunks),
            transport="shm" if bundle is not None else "pickle",
        ):
            outcomes = executor.map_outcomes(fn, payloads)

            report = ReconstructionReport(
                total_points=int(grid.num_points),
                fallback_method=getattr(fallback_interp, "name", None),
            )
            out = grid.empty_field().ravel()
            if same_grid:
                out[sample.indices] = sample.values
            for k, (c, outcome) in enumerate(zip(chunks, outcomes)):
                if outcome.ok:
                    if bundle is not None:
                        piece = bundle.view("out")[int(c[0]) : int(c[-1]) + 1]
                    else:
                        piece = np.asarray(outcome.result, dtype=np.float64)
                    bad = ~np.isfinite(piece)
                    if bad.any() and fallback_interp is not None:
                        piece = piece.copy()
                        piece[bad] = fallback_interp.interpolate(
                            sample.points, sample.values, query[c][bad], grid
                        )
                        report.flag(
                            k,
                            int(bad.sum()),
                            f"{int(bad.sum())}/{piece.size} non-finite prediction(s)",
                            fallback_interp.name,
                        )
                        obs_counter("reconstruct.chunks.fallback").inc()
                        record_event(
                            "degraded", where="parallel.chunk", chunk=k,
                            count=int(bad.sum()), fallback=fallback_interp.name,
                        )
                else:
                    if fallback_interp is None:
                        if outcome.exception is not None:
                            raise outcome.exception
                        raise RuntimeError(
                            f"chunk {k} failed: {outcome.error or 'unknown error'}"
                        )
                    piece = fallback_interp.interpolate(
                        sample.points, sample.values, query[c], grid
                    )
                    report.flag(k, len(c), outcome.error or "task failed", fallback_interp.name)
                    obs_counter("reconstruct.chunks.fallback").inc()
                    record_event(
                        "degraded", where="parallel.chunk", chunk=k,
                        count=len(c), fallback=fallback_interp.name,
                        error=outcome.error or "task failed",
                    )
                out[fill_indices[c]] = piece
    finally:
        if bundle is not None:
            bundle.close()
    field = out.reshape(grid.dims)
    if return_report:
        return field, report
    return field
