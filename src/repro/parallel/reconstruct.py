"""Chunked (optionally multi-process) rule-based reconstruction.

Splits the target grid's void locations into spatial slabs and runs the
interpolator on each slab, mirroring the paper's OpenMP-parallel Delaunay
reconstruction.  The sampled point cloud is shipped whole to each worker —
interpolators like Delaunay need the global triangulation's samples to stay
correct at slab boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.grid import UniformGrid
from repro.interpolation.base import GridInterpolator
from repro.parallel.chunking import chunk_indices
from repro.parallel.executor import ParallelExecutor
from repro.sampling.base import SampledField

__all__ = ["parallel_reconstruct"]


def _run_chunk(payload) -> np.ndarray:
    interpolator, points, values, query, grid = payload
    return interpolator.interpolate(points, values, query, grid)


def parallel_reconstruct(
    interpolator: GridInterpolator,
    sample: SampledField,
    target_grid: UniformGrid | None = None,
    num_chunks: int | None = None,
    executor: ParallelExecutor | None = None,
) -> np.ndarray:
    """Reconstruct like ``interpolator.reconstruct`` but chunk the queries.

    Parameters
    ----------
    interpolator:
        Any :class:`GridInterpolator`; it must be picklable for multi-
        process execution (all built-ins are).
    sample:
        The sampled point cloud.
    target_grid:
        Defaults to the sample's grid (void-filling mode).
    num_chunks:
        Number of query slabs; defaults to the executor's worker count.
    executor:
        Defaults to one worker per CPU.
    """
    executor = executor if executor is not None else ParallelExecutor()
    grid = target_grid if target_grid is not None else sample.grid
    same_grid = target_grid is None or target_grid == sample.grid

    if same_grid:
        fill_indices = sample.void_indices()
    else:
        fill_indices = np.arange(grid.num_points)
    query = grid.index_to_position(grid.flat_to_multi(fill_indices))

    chunks = chunk_indices(len(fill_indices), num_chunks or executor.max_workers)
    payloads = [
        (interpolator, sample.points, sample.values, query[c], grid) for c in chunks
    ]
    pieces = executor.map(_run_chunk, payloads)

    out = grid.empty_field().ravel()
    if same_grid:
        out[sample.indices] = sample.values
    for c, piece in zip(chunks, pieces):
        out[fill_indices[c]] = piece
    return out.reshape(grid.dims)
