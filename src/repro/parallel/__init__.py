"""Domain decomposition and parallel execution.

The paper's optimized Delaunay pipeline is a C++/CGAL/OpenMP implementation
whose speedup "scaled with the number of processing units".  This package
provides the Python equivalent: split a reconstruction's query points into
spatial chunks (:func:`chunk_indices`, :func:`split_grid`) and map work over
a process pool (:class:`ParallelExecutor`) with a serial fallback when only
one worker is available — the pattern recommended by the HPC-Python
guidance this repo follows (vectorize inside a worker, decompose across
workers).
"""

from repro.parallel.chunking import aligned_chunks, chunk_indices, split_grid, GridChunk
from repro.parallel.executor import ParallelExecutor
from repro.parallel.reconstruct import parallel_reconstruct

__all__ = [
    "aligned_chunks",
    "chunk_indices",
    "split_grid",
    "GridChunk",
    "ParallelExecutor",
    "parallel_reconstruct",
]
