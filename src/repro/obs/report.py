"""Load, render and diff run records written by :class:`~repro.obs.recorder.RunRecorder`.

Three layers:

* **Loaders** — :func:`read_events` / :func:`read_manifest` /
  :func:`load_run` parse a run directory back into plain data.  They are
  crash-tolerant: a truncated final JSONL line (the process died mid-write)
  is dropped, and a missing ``run.json`` marks the run ``incomplete``
  rather than failing.
* **Views** — :func:`build_span_tree` reconstructs the span forest from
  ``span_open``/``span_close`` events; :func:`collapse_spans` groups
  sibling spans by name (150 ``train.epoch`` spans render as one line with
  count/total/mean); :func:`format_report` renders the whole run as text.
* **Diff** — :func:`diff_runs` compares two runs' per-name span wall times
  and counters, flagging regressions beyond a relative threshold — the
  machinery behind ``repro obs report A --diff B``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.recorder import EVENTS_FILENAME, MANIFEST_FILENAME

__all__ = [
    "EventNode",
    "RunRecord",
    "read_events",
    "read_manifest",
    "load_run",
    "build_span_tree",
    "collapse_spans",
    "aggregate_spans",
    "format_report",
    "diff_runs",
    "format_diff",
]


@dataclass
class EventNode:
    """A span rebuilt from its open/close events."""

    id: int
    name: str
    parent_id: int | None
    attrs: dict = field(default_factory=dict)
    wall: float | None = None     # None: the run died before the span closed
    cpu: float | None = None
    children: list["EventNode"] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.wall is not None


@dataclass
class RunRecord:
    """One loaded run directory."""

    run_dir: Path
    events: list[dict]
    manifest: dict | None
    roots: list[EventNode]

    @property
    def status(self) -> str:
        """Manifest status, or ``"incomplete"`` when the run never finalized."""
        if self.manifest is None:
            return "incomplete"
        return self.manifest.get("status", "unknown")

    @property
    def metrics(self) -> dict:
        """Final metric snapshot (from the manifest, else the last event)."""
        if self.manifest is not None and "metrics" in self.manifest:
            return self.manifest["metrics"]
        for event in reversed(self.events):
            if event.get("kind") == "metrics":
                return event.get("snapshot", {})
        return {"counters": {}, "gauges": {}, "histograms": {}}


def read_events(run_dir: str | Path) -> list[dict]:
    """Parse ``events.jsonl``; drops an unparseable (truncated) final line."""
    path = Path(run_dir) / EVENTS_FILENAME
    if not path.exists():
        raise FileNotFoundError(f"{run_dir}: no {EVENTS_FILENAME} (not a run directory?)")
    events: list[dict] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # process died mid-write; the prefix is still valid
            raise ValueError(f"{path}:{i + 1}: corrupt event line") from None
    return events


def read_manifest(run_dir: str | Path) -> dict | None:
    """Parse ``run.json``; ``None`` when the run never finalized."""
    path = Path(run_dir) / MANIFEST_FILENAME
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def build_span_tree(events: list[dict]) -> list[EventNode]:
    """Rebuild the span forest from ``span_open``/``span_close`` events."""
    nodes: dict[int, EventNode] = {}
    roots: list[EventNode] = []
    for event in events:
        kind = event.get("kind")
        if kind == "span_open":
            node = EventNode(
                id=int(event["id"]),
                name=str(event["name"]),
                parent_id=event.get("parent"),
                attrs=dict(event.get("attrs") or {}),
            )
            nodes[node.id] = node
            parent = nodes.get(node.parent_id) if node.parent_id is not None else None
            if parent is None:
                roots.append(node)
            else:
                parent.children.append(node)
        elif kind == "span_close":
            node = nodes.get(int(event["id"]))
            if node is not None:
                node.wall = float(event.get("wall", 0.0))
                node.cpu = float(event.get("cpu", 0.0))
                node.attrs.update(event.get("attrs") or {})
    return roots


def load_run(run_dir: str | Path) -> RunRecord:
    """Load one run directory (events + manifest + rebuilt span forest)."""
    run_dir = Path(run_dir)
    events = read_events(run_dir)
    return RunRecord(
        run_dir=run_dir,
        events=events,
        manifest=read_manifest(run_dir),
        roots=build_span_tree(events),
    )


# ---------------------------------------------------------------- rendering


@dataclass
class _Group:
    """Sibling spans of one name, collapsed for display."""

    name: str
    count: int = 0
    wall: float = 0.0
    cpu: float = 0.0
    open_count: int = 0
    children: list = field(default_factory=list)


def collapse_spans(roots: list[EventNode]) -> list[_Group]:
    """Group sibling spans by name, recursively (insertion-ordered)."""
    groups: dict[str, _Group] = {}
    descendants: dict[str, list[EventNode]] = {}
    for node in roots:
        group = groups.setdefault(node.name, _Group(name=node.name))
        group.count += 1
        if node.closed:
            group.wall += node.wall
            group.cpu += node.cpu
        else:
            group.open_count += 1
        descendants.setdefault(node.name, []).extend(node.children)
    for name, group in groups.items():
        group.children = collapse_spans(descendants[name])
    return list(groups.values())


def aggregate_spans(roots: list[EventNode]) -> dict:
    """Flat per-name totals ``{name: {count, wall, cpu}}`` over the forest."""
    totals: dict[str, dict] = {}
    def visit(nodes):
        for node in nodes:
            agg = totals.setdefault(node.name, {"count": 0, "wall": 0.0, "cpu": 0.0})
            agg["count"] += 1
            if node.closed:
                agg["wall"] += node.wall
                agg["cpu"] += node.cpu
            visit(node.children)
    visit(roots)
    return totals


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def _render_groups(groups: list[_Group], lines: list[str], depth: int) -> None:
    for group in groups:
        label = group.name if group.count == 1 else f"{group.name} x{group.count}"
        mean = group.wall / max(group.count - group.open_count, 1)
        parts = [
            f"{'  ' * depth}{label:<{max(44 - 2 * depth, 8)}}",
            f"wall {_fmt_seconds(group.wall)}",
            f"cpu {_fmt_seconds(group.cpu)}",
        ]
        if group.count > 1:
            parts.append(f"mean {_fmt_seconds(mean)}")
        if group.open_count:
            parts.append(f"[{group.open_count} never closed]")
        lines.append("  ".join(parts))
        _render_groups(group.children, lines, depth + 1)


def format_report(record: RunRecord, show_metrics: bool = True) -> str:
    """Human-readable text report: header, span tree, metric tables."""
    lines = [f"run {record.run_dir}  [{record.status}]"]
    manifest = record.manifest
    if manifest is not None:
        header = []
        if manifest.get("wall_seconds") is not None:
            header.append(f"wall {manifest['wall_seconds']:.3f}s")
        if manifest.get("git_sha"):
            header.append(f"git {str(manifest['git_sha'])[:12]}")
        if manifest.get("config_hash"):
            header.append(f"config {manifest['config_hash']}")
        if manifest.get("seed") is not None:
            header.append(f"seed {manifest['seed']}")
        if manifest.get("peak_rss_kb"):
            header.append(f"peak rss {manifest['peak_rss_kb'] / 1024:.1f} MiB")
        if header:
            lines.append("  " + "  ".join(header))
    lines.append("")
    lines.append("spans:")
    groups = collapse_spans(record.roots)
    if groups:
        _render_groups(groups, lines, 1)
    else:
        lines.append("  (none recorded)")
    if show_metrics:
        metrics = record.metrics
        if metrics.get("counters"):
            lines.append("")
            lines.append("counters:")
            for name, value in metrics["counters"].items():
                lines.append(f"  {name:<44}{value}")
        if metrics.get("gauges"):
            lines.append("")
            lines.append("gauges:")
            for name, value in metrics["gauges"].items():
                shown = f"{value:.6g}" if isinstance(value, float) else value
                lines.append(f"  {name:<44}{shown}")
        if metrics.get("histograms"):
            lines.append("")
            lines.append("histograms:")
            for name, summary in metrics["histograms"].items():
                mean = summary.get("mean")
                shown = "empty" if mean is None else (
                    f"count={summary['count']} mean={mean:.6g} "
                    f"min={summary['min']:.6g} max={summary['max']:.6g}"
                )
                lines.append(f"  {name:<44}{shown}")
    return "\n".join(lines)


# --------------------------------------------------------------------- diff


@dataclass
class DiffEntry:
    """One compared quantity across two runs."""

    kind: str          # "span" | "counter"
    name: str
    a: float
    b: float
    regressed: bool

    @property
    def ratio(self) -> float | None:
        if self.a == 0:
            return None
        return self.b / self.a


def diff_runs(a: RunRecord, b: RunRecord, threshold: float = 0.2) -> list[DiffEntry]:
    """Compare per-name span wall totals and counters of two runs.

    A span is *regressed* when run B spends more than ``(1 + threshold)``
    times run A's wall time on it; a counter when the values differ at all.
    Entries are returned for every name present in either run (missing ->
    0), spans first, sorted by name.
    """
    entries: list[DiffEntry] = []
    spans_a = aggregate_spans(a.roots)
    spans_b = aggregate_spans(b.roots)
    for name in sorted(set(spans_a) | set(spans_b)):
        wall_a = spans_a.get(name, {}).get("wall", 0.0)
        wall_b = spans_b.get(name, {}).get("wall", 0.0)
        regressed = wall_b > wall_a * (1.0 + threshold) and wall_b - wall_a > 1e-6
        entries.append(DiffEntry("span", name, wall_a, wall_b, regressed))
    counters_a = a.metrics.get("counters", {})
    counters_b = b.metrics.get("counters", {})
    for name in sorted(set(counters_a) | set(counters_b)):
        va = float(counters_a.get(name, 0))
        vb = float(counters_b.get(name, 0))
        entries.append(DiffEntry("counter", name, va, vb, va != vb))
    return entries


def format_diff(entries: list[DiffEntry], threshold: float = 0.2) -> str:
    """Aligned diff table; regressions are marked with ``<-- REGRESSED``."""
    lines = [
        f"{'kind':<8}{'name':<44}{'A':>12}{'B':>12}{'B/A':>8}",
        "-" * 84,
    ]
    for entry in entries:
        if entry.kind == "span":
            va, vb = f"{entry.a:.4f}s", f"{entry.b:.4f}s"
        else:
            va, vb = f"{entry.a:g}", f"{entry.b:g}"
        ratio = entry.ratio
        shown_ratio = "-" if ratio is None else f"{ratio:.2f}"
        mark = "  <-- REGRESSED" if entry.regressed and entry.kind == "span" else (
            "  <-- CHANGED" if entry.regressed else ""
        )
        lines.append(f"{entry.kind:<8}{entry.name:<44}{va:>12}{vb:>12}{shown_ratio:>8}{mark}")
    regressions = sum(1 for e in entries if e.regressed and e.kind == "span")
    lines.append("")
    lines.append(
        f"{regressions} span regression(s) at threshold {threshold:.0%}"
        if regressions
        else f"no span regressions at threshold {threshold:.0%}"
    )
    return "\n".join(lines)
