"""``repro obs`` — render and diff run-telemetry directories.

::

    repro obs report RUN_DIR                 # span tree + metrics of one run
    repro obs report RUN_DIR --diff OTHER    # A-vs-B regression comparison
    repro obs report RUN_DIR --no-metrics    # spans only
    repro obs report RUN_DIR --diff OTHER --only 'train.*'   # gate a subset

``--only GLOB`` (repeatable) restricts a diff to matching span/counter
names.  Use it when the two runs only overlap on part of their spans —
e.g. comparing a pipelined campaign against its serial twin, where the
overlapped stage spans legitimately dilate in wall time and only the
strictly-sequential ``train.*`` spans are required not to regress.

Exit codes: ``0`` report rendered (even when the diff finds regressions —
pass ``--fail-on-regression`` to turn those into exit ``1``), ``2`` usage
or unreadable run directory.
"""

from __future__ import annotations

import argparse
import fnmatch
import sys

from repro.obs.report import diff_runs, format_diff, format_report, load_run

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs", description="inspect run-telemetry directories"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("report", help="render a run's span tree and metrics")
    p.add_argument("run_dir", help="directory holding events.jsonl (+ run.json)")
    p.add_argument("--diff", default=None, metavar="OTHER",
                   help="second run directory to compare against (A=run_dir, B=OTHER)")
    p.add_argument("--threshold", type=float, default=0.2,
                   help="relative span-time regression threshold for --diff (default 0.2)")
    p.add_argument("--no-metrics", action="store_true",
                   help="omit the counter/gauge/histogram tables")
    p.add_argument("--only", action="append", default=None, metavar="GLOB",
                   help="restrict --diff to span/counter names matching any "
                        "glob (repeatable)")
    p.add_argument("--fail-on-regression", action="store_true",
                   help="exit 1 when --diff finds a span regression")

    args = parser.parse_args(argv)
    try:
        record = load_run(args.run_dir)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.diff is None:
        print(format_report(record, show_metrics=not args.no_metrics))
        return 0

    try:
        other = load_run(args.diff)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    entries = diff_runs(record, other, threshold=args.threshold)
    if args.only:
        entries = [
            e for e in entries
            if any(fnmatch.fnmatchcase(e.name, pattern) for pattern in args.only)
        ]
    print(f"A: {record.run_dir}  [{record.status}]")
    print(f"B: {other.run_dir}  [{other.status}]")
    print()
    print(format_diff(entries, threshold=args.threshold))
    if args.fail_on_regression and any(
        e.regressed and e.kind == "span" for e in entries
    ):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
