"""Instrumentation and run telemetry: spans, metrics, JSONL run records.

The paper's second headline claim is about *time* — a trained FCNN
reconstructs in near-constant time w.r.t. sampling percentage while
rule-based interpolants slow down (Fig 10 / Table I), and training-subset
sampling cuts training time ~linearly (Fig 14 / Table II).  This package
is the measurement substrate that makes such claims observable and
regressable on every run, with zero third-party dependencies:

* :mod:`repro.obs.timing`   — hierarchical :func:`span` context managers
  and :func:`timed` decorators over monotonic wall/CPU clocks, building
  nested-span trees (``fcnn.predict`` vs ``interp.linear.eval``);
* :mod:`repro.obs.metrics`  — process-local counters / gauges /
  histograms (``train.batches``, ``reconstruct.chunks.fallback``) with a
  JSON-able snapshot API;
* :mod:`repro.obs.recorder` — :class:`RunRecorder` streams structured
  JSONL events (span open/close, metric snapshots, health interventions,
  checkpoint writes) to ``<run_dir>/events.jsonl`` and finalizes an
  atomic ``run.json`` manifest (git SHA, config hash, seed, package
  versions, peak RSS);
* :mod:`repro.obs.report`   — loaders plus the ``repro obs report`` CLI
  rendering span trees / metric tables and diffing two runs for
  regressions.

Instrumentation is **off by default and cheap when off**: without an
active :class:`RunRecorder`, :func:`span` returns a shared no-op context
and the metric helpers return shared no-op instruments, so the
instrumented hot paths (training epochs, reconstruction batches) pay a
single function call.  Enable it per run::

    from repro.obs import RunRecorder, span, counter

    with RunRecorder("runs/demo", meta={"seed": 7}) as rec:
        with span("reconstruct", method="linear"):
            counter("reconstruct.chunks.total").inc()

    # runs/demo/events.jsonl + runs/demo/run.json now exist
    # render with: repro obs report runs/demo

The package imports nothing from the rest of ``repro``, so every layer
(nn, core, parallel, interpolation, experiments) can depend on it without
cycles.  See ``docs/OBSERVABILITY.md`` for the event schema, manifest
fields and CLI usage.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from repro.obs.recorder import (
    NullRecorder,
    RunRecorder,
    active_recorder,
    config_hash,
    record_event,
)
from repro.obs.report import diff_runs, format_report, load_run
from repro.obs.timing import Span, SpanTracker, span, timed

__all__ = [
    "Span",
    "SpanTracker",
    "span",
    "timed",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "RunRecorder",
    "NullRecorder",
    "active_recorder",
    "record_event",
    "config_hash",
    "load_run",
    "format_report",
    "diff_runs",
]
