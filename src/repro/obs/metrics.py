"""Process-local counters, gauges and histograms with a snapshot API.

Three instrument kinds, one registry:

* :class:`Counter`   — monotonically increasing totals
  (``train.batches``, ``reconstruct.chunks.fallback``);
* :class:`Gauge`     — last-written values (``train.loss``, ``train.lr``);
* :class:`Histogram` — streaming distribution summaries (count / total /
  min / max / mean) without storing samples (``epoch.seconds``).

A :class:`MetricsRegistry` owns the instruments; ``snapshot()`` returns a
plain, JSON-serializable dict and ``reset()`` zeroes every instrument in
place (held references stay valid).  Each instrument kind has its own
namespace, so ``counter("x")`` and ``gauge("x")`` coexist.

Like :mod:`repro.obs.timing`, the module-level helpers (:func:`counter`,
:func:`gauge`, :func:`histogram`) dispatch to the *active* registry —
installed by :class:`repro.obs.recorder.RunRecorder` — and hand back
shared no-op instruments when observability is off, so instrumented hot
paths cost a dict-free function call when disabled.
"""

from __future__ import annotations

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "activate",
    "deactivate",
    "active_registry",
]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """The most recently written value (``None`` until first ``set``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = None


class Histogram:
    """Streaming distribution summary; stores no individual samples."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.reset()

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float | None:
        if self.count == 0:
            return None
        return self.total / self.count

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create home for a run's instruments."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name)
        return inst

    def snapshot(self) -> dict:
        """Plain-data copy of every instrument (JSON-serializable)."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {k: h.summary() for k, h in sorted(self.histograms.items())},
        }

    def reset(self) -> None:
        """Zero every instrument in place; held references stay usable."""
        for group in (self.counters, self.gauges, self.histograms):
            for inst in group.values():
                inst.reset()


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for the disabled state."""

    __slots__ = ()
    name = "null"

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def reset(self) -> None:
        pass


_NULL = _NullInstrument()
_ACTIVE: MetricsRegistry | None = None


def activate(registry: MetricsRegistry) -> MetricsRegistry | None:
    """Install ``registry`` as the process-wide sink; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


def deactivate(previous: MetricsRegistry | None = None) -> None:
    """Remove the active registry (restoring ``previous``, usually ``None``)."""
    global _ACTIVE
    _ACTIVE = previous


def active_registry() -> MetricsRegistry | None:
    """The currently installed registry, or ``None`` when observability is off."""
    return _ACTIVE


def counter(name: str):
    """The active registry's counter ``name``; a shared no-op when disabled."""
    reg = _ACTIVE
    return _NULL if reg is None else reg.counter(name)


def gauge(name: str):
    """The active registry's gauge ``name``; a shared no-op when disabled."""
    reg = _ACTIVE
    return _NULL if reg is None else reg.gauge(name)


def histogram(name: str):
    """The active registry's histogram ``name``; a shared no-op when disabled."""
    reg = _ACTIVE
    return _NULL if reg is None else reg.histogram(name)
