"""Per-run telemetry: JSONL event streams and atomic ``run.json`` manifests.

A :class:`RunRecorder` owns one run directory::

    <run_dir>/events.jsonl   # append-only event stream, one JSON object/line
    <run_dir>/run.json       # manifest, written atomically at finalize

While active (``with RunRecorder(dir) as rec:``) it is installed as the
process-wide sink for :func:`repro.obs.span` and the
:func:`repro.obs.counter`/``gauge``/``histogram`` helpers, so every
instrumented library call lands in this run's records.  Span open/close
events stream to ``events.jsonl`` *as they happen* (line-buffered), so a
crashed or killed run still leaves a readable event prefix — and no
``run.json``, which is how :mod:`repro.obs.report` recognizes an
unfinalized run.

The manifest captures provenance alongside the numbers: git SHA, a stable
hash of the run's configuration, seed, package versions, peak RSS, the
metric snapshot and per-name span aggregates.  It is committed with
write-to-temp + ``os.replace`` so a crash during finalize can never leave
a truncated ``run.json`` under the final name.

:class:`NullRecorder` is the disabled-mode stand-in: same interface, no
files, no activation, near-zero cost.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.obs import metrics as _metrics
from repro.obs import timing as _timing
from repro.obs.metrics import MetricsRegistry
from repro.obs.timing import Span, SpanTracker

__all__ = [
    "RunRecorder",
    "NullRecorder",
    "active_recorder",
    "record_event",
    "config_hash",
    "EVENTS_FILENAME",
    "MANIFEST_FILENAME",
    "SCHEMA_VERSION",
]

EVENTS_FILENAME = "events.jsonl"
MANIFEST_FILENAME = "run.json"
#: bump when the event or manifest schema changes incompatibly
SCHEMA_VERSION = 1

_ACTIVE: "RunRecorder | None" = None


def active_recorder() -> "RunRecorder | None":
    """The recorder currently receiving this process's telemetry, if any."""
    return _ACTIVE


def record_event(kind: str, **payload) -> None:
    """Emit a custom event to the active recorder; no-op when none is active.

    This is the hook instrumented library code uses for discrete
    occurrences that are not spans or metrics — checkpoint writes, health
    interventions, degraded chunks.
    """
    rec = _ACTIVE
    if rec is not None:
        rec.event(kind, **payload)


def config_hash(config: dict) -> str:
    """Stable short hash of a JSON-able configuration mapping."""
    blob = json.dumps(config, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def _git_sha() -> str | None:
    """Best-effort current commit SHA; ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _peak_rss_kb() -> int | None:
    """Peak resident set size in KiB (``None`` where unsupported)."""
    try:
        import resource
    except ImportError:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; normalize to KiB.
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def _package_versions() -> dict:
    versions = {"python": platform.python_version()}
    for name in ("numpy", "scipy"):
        mod = sys.modules.get(name)
        if mod is None:
            try:
                mod = __import__(name)
            except ImportError:
                continue
        versions[name] = getattr(mod, "__version__", "unknown")
    return versions


def _aggregate_spans(roots: list[Span], into: dict) -> dict:
    for node in roots:
        agg = into.setdefault(node.name, {"count": 0, "wall": 0.0, "cpu": 0.0})
        agg["count"] += 1
        agg["wall"] += node.wall
        agg["cpu"] += node.cpu
        _aggregate_spans(node.children, into)
    return into


class RunRecorder:
    """Streams one run's telemetry to ``run_dir`` (see module docstring).

    Parameters
    ----------
    run_dir:
        Directory for this run's artifacts; created if missing.
    run_id:
        Defaults to the directory's name.
    meta:
        JSON-able run configuration (profile, dataset, seed, ...) recorded
        in the ``run_start`` event and hashed into the manifest's
        ``config_hash``.
    """

    def __init__(
        self,
        run_dir: str | Path,
        run_id: str | None = None,
        meta: dict | None = None,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.run_id = run_id if run_id is not None else self.run_dir.name
        self.meta = dict(meta) if meta else {}
        self.tracker = SpanTracker(on_open=self._span_open, on_close=self._span_close)
        self.metrics = MetricsRegistry()
        self.enabled = True
        self._fh = None
        self._seq = 0
        self._t0_wall = None
        self._t0_perf = None
        self._prev_tracker = None
        self._prev_registry = None
        self._prev_recorder = None
        self._finalized = False

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "RunRecorder":
        """Open the event stream and install this recorder process-wide."""
        global _ACTIVE
        if self._fh is not None:
            raise RuntimeError(f"recorder for {self.run_dir} already started")
        self.run_dir.mkdir(parents=True, exist_ok=True)
        # Line buffering: every event line reaches the OS as it is written,
        # so a killed process leaves a readable prefix.
        self._fh = open(
            self.run_dir / EVENTS_FILENAME, "w", encoding="utf-8", buffering=1
        )
        self._t0_wall = time.time()
        self._t0_perf = time.perf_counter()
        self.event(
            "run_start",
            run_id=self.run_id,
            schema=SCHEMA_VERSION,
            pid=os.getpid(),
            meta=self.meta,
        )
        self._prev_tracker = _timing.activate(self.tracker)
        self._prev_registry = _metrics.activate(self.metrics)
        self._prev_recorder = _ACTIVE
        _ACTIVE = self
        return self

    def __enter__(self) -> "RunRecorder":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finalize(status="failed" if exc_type is not None else "completed")
        return False

    @property
    def started(self) -> bool:
        return self._fh is not None

    # --------------------------------------------------------------- events
    def event(self, kind: str, **payload) -> None:
        """Append one JSONL event (monotonic ``seq``, wall-clock ``t``)."""
        if self._fh is None:
            return
        record = {"seq": self._seq, "t": round(time.time(), 6), "kind": kind}
        record.update(payload)
        self._seq += 1
        self._fh.write(json.dumps(record, default=str) + "\n")

    def _span_open(self, node: Span) -> None:
        self.event(
            "span_open",
            id=node.id,
            parent=node.parent_id,
            name=node.name,
            attrs=node.attrs,
        )

    def _span_close(self, node: Span) -> None:
        self.event(
            "span_close",
            id=node.id,
            name=node.name,
            wall=round(node.wall, 9),
            cpu=round(node.cpu, 9),
            attrs=node.attrs,
        )

    def metric_snapshot(self) -> dict:
        """Record (and return) the current metric values as a ``metrics`` event."""
        snap = self.metrics.snapshot()
        self.event("metrics", snapshot=snap)
        return snap

    # ------------------------------------------------------------- finalize
    def finalize(self, status: str = "completed") -> dict | None:
        """Close the stream, uninstall, and atomically write ``run.json``.

        Idempotent: a second call returns ``None`` without touching disk.
        Returns the manifest dict written.
        """
        global _ACTIVE
        if self._finalized or self._fh is None:
            return None
        self._finalized = True

        snap = self.metrics.snapshot()
        wall = time.perf_counter() - self._t0_perf
        self.event("metrics", snapshot=snap)
        self.event("run_end", status=status, wall=round(wall, 6))
        event_count = self._seq
        self._fh.close()
        self._fh = None

        _timing.deactivate(self._prev_tracker)
        _metrics.deactivate(self._prev_registry)
        _ACTIVE = self._prev_recorder

        manifest = {
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "status": status,
            "started_unix": self._t0_wall,
            "wall_seconds": wall,
            "hostname": platform.node(),
            "git_sha": _git_sha(),
            "config": self.meta,
            "config_hash": config_hash(self.meta),
            "seed": self.meta.get("seed"),
            "versions": _package_versions(),
            "peak_rss_kb": _peak_rss_kb(),
            "events": event_count,
            "metrics": snap,
            "spans": _aggregate_spans(self.tracker.roots, {}),
        }
        self._write_manifest(manifest)
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        """Commit ``run.json`` via temp file + ``os.replace`` (atomic)."""
        target = self.run_dir / MANIFEST_FILENAME
        fd, tmp = tempfile.mkstemp(
            dir=str(self.run_dir), prefix=".run.json.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(manifest, fh, indent=2, default=str)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise


class NullRecorder:
    """Disabled-mode recorder: same surface as :class:`RunRecorder`, no I/O.

    Used wherever a recorder is threaded through unconditionally (e.g.
    :func:`repro.experiments.runner.build_recorder` with ``config.obs``
    unset) so call sites need no ``if`` around the telemetry plumbing.
    """

    run_dir = None
    run_id = "null"
    enabled = False
    started = False

    def start(self) -> "NullRecorder":
        return self

    def __enter__(self) -> "NullRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def event(self, kind: str, **payload) -> None:
        pass

    def metric_snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def finalize(self, status: str = "completed") -> None:
        return None
