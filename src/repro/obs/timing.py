"""Hierarchical span timing: ``span()`` context managers and ``@timed``.

A *span* is one timed region of a run — an epoch, a reconstruction, one
interpolator's void fill.  Spans nest: entering a span inside another makes
it a child, so a completed run yields a tree whose wall/CPU totals
attribute time to the exact code path that spent it (e.g. Fig 10's
``interp.linear.eval`` vs ``fcnn.predict``).

Clocks are monotonic: wall time from :func:`time.perf_counter`, CPU time
from :func:`time.process_time`.  Both are recorded per span.

Instrumentation is **off-by-default-cheap**: :func:`span` consults the
module-level active :class:`SpanTracker` and, when none is installed
(the normal state — no :class:`~repro.obs.recorder.RunRecorder` running),
returns a shared no-op context manager without allocating or reading any
clock.  Hot loops can therefore stay instrumented unconditionally.

Activation is managed by :class:`repro.obs.recorder.RunRecorder`; tests
may call :func:`activate` / :func:`deactivate` directly.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanTracker",
    "span",
    "timed",
    "activate",
    "deactivate",
    "active_tracker",
]


@dataclass
class Span:
    """One timed region; ``wall``/``cpu`` are filled when the span closes."""

    id: int
    name: str
    parent_id: int | None
    attrs: dict = field(default_factory=dict)
    wall: float = 0.0
    cpu: float = 0.0
    closed: bool = False
    children: list["Span"] = field(default_factory=list)
    _wall0: float = 0.0
    _cpu0: float = 0.0


class SpanTracker:
    """Builds the span tree and notifies listeners on open/close.

    Parameters
    ----------
    on_open, on_close:
        Optional callbacks ``fn(span)`` — the
        :class:`~repro.obs.recorder.RunRecorder` uses them to stream
        ``span_open`` / ``span_close`` JSONL events as they happen, so a
        crashed run still leaves a readable prefix.

    Thread safety: the open-span stack is **per thread** — a span opened on
    a worker thread (the campaign scheduler's prefetch/emit threads run
    instrumented code) nests under that thread's spans only and becomes a
    new root when the thread has none, never corrupting another thread's
    LIFO discipline.  Id allocation, the shared ``roots`` list and the
    streaming callbacks are serialized by a lock, so concurrent spans from
    several threads interleave safely in one recorder.
    """

    def __init__(self, on_open=None, on_close=None) -> None:
        self.roots: list[Span] = []
        self.on_open = on_open
        self.on_close = on_close
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 0

    def _stack(self) -> list[Span]:
        """The calling thread's open-span stack."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------ lifecycle
    def open(self, name: str, attrs: dict | None = None) -> Span:
        """Open a child of the calling thread's current span (or a new root)."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        node = Span(
            id=-1,
            name=str(name),
            parent_id=None if parent is None else parent.id,
            attrs=dict(attrs) if attrs else {},
        )
        with self._lock:
            node.id = self._next_id
            self._next_id += 1
            if parent is None:
                self.roots.append(node)
            else:
                parent.children.append(node)
        stack.append(node)
        node._wall0 = time.perf_counter()
        node._cpu0 = time.process_time()
        if self.on_open is not None:
            with self._lock:
                self.on_open(node)
        return node

    def close(self, node: Span) -> None:
        """Close ``node``; spans must close in LIFO order per thread."""
        wall1 = time.perf_counter()
        cpu1 = time.process_time()
        stack = self._stack()
        if not stack or stack[-1] is not node:
            raise RuntimeError(
                f"span {node.name!r} closed out of order; spans must nest "
                "(use the context manager form)"
            )
        stack.pop()
        node.wall = wall1 - node._wall0
        node.cpu = cpu1 - node._cpu0
        node.closed = True
        if self.on_close is not None:
            with self._lock:
                self.on_close(node)

    @property
    def depth(self) -> int:
        """Current nesting depth on the calling thread (0 outside any span)."""
        return len(self._stack())

    def span(self, name: str, attrs: dict | None = None) -> "_SpanContext":
        """Context manager opening/closing one span on this tracker."""
        return _SpanContext(self, name, attrs)


class _SpanContext:
    """``with``-wrapper around :meth:`SpanTracker.open`/``close``."""

    __slots__ = ("_tracker", "_name", "_attrs", "_span")

    def __init__(self, tracker: SpanTracker, name: str, attrs: dict | None) -> None:
        self._tracker = tracker
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracker.open(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracker.close(self._span)
        return False


class _NullSpanContext:
    """Shared, stateless no-op used while no tracker is active."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()
_ACTIVE: SpanTracker | None = None


def activate(tracker: SpanTracker) -> SpanTracker | None:
    """Install ``tracker`` as the process-wide span sink; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracker
    return previous


def deactivate(previous: SpanTracker | None = None) -> None:
    """Remove the active tracker (restoring ``previous``, usually ``None``)."""
    global _ACTIVE
    _ACTIVE = previous


def active_tracker() -> SpanTracker | None:
    """The currently installed tracker, or ``None`` when observability is off."""
    return _ACTIVE


def span(name: str, **attrs):
    """Time a region against the active tracker; no-op when none is active.

    ::

        with span("train.epoch", epoch=3):
            ...
    """
    tracker = _ACTIVE
    if tracker is None:
        return _NULL_SPAN
    return _SpanContext(tracker, name, attrs or None)


def timed(name: str | None = None):
    """Decorator form of :func:`span`; defaults to the function's qualname.

    ::

        @timed("sampler.draw")
        def sample(...): ...
    """

    def decorate(fn):
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracker = _ACTIVE
            if tracker is None:
                return fn(*args, **kwargs)
            with _SpanContext(tracker, label, None):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
