"""Scalar-field reconstruction quality metrics (Sec IV of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "snr",
    "psnr",
    "rmse",
    "mae",
    "max_abs_error",
    "ReconstructionScore",
    "score_reconstruction",
]


def _flatten_pair(original: np.ndarray, reconstructed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(original, dtype=np.float64).ravel()
    b = np.asarray(reconstructed, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: original {a.shape} vs reconstructed {b.shape}")
    if a.size == 0:
        raise ValueError("cannot score empty fields")
    return a, b


def snr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Signal-to-noise ratio in dB, the paper's primary quality metric.

    ``SNR = 20 * log10(std(original) / std(original - reconstructed))``.
    Returns ``inf`` for a perfect reconstruction and ``-inf`` when the
    original field is constant but the reconstruction is not.
    """
    a, b = _flatten_pair(original, reconstructed)
    sigma_raw = float(np.std(a))
    sigma_noise = float(np.std(a - b))
    if sigma_noise == 0.0:
        return float("inf")
    if sigma_raw == 0.0:
        return float("-inf")
    # Log difference instead of log-of-ratio: no division, and immune to
    # overflow/underflow of the intermediate ratio for extreme sigmas.
    return 20.0 * (float(np.log10(sigma_raw)) - float(np.log10(sigma_noise)))


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (peak = original's value range)."""
    a, b = _flatten_pair(original, reconstructed)
    peak = float(np.max(a) - np.min(a))
    mse = float(np.mean((a - b) ** 2))
    if mse == 0.0:
        return float("inf")
    if peak == 0.0:
        return float("-inf")
    return 20.0 * float(np.log10(peak)) - 10.0 * float(np.log10(mse))


def rmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Root-mean-square error."""
    a, b = _flatten_pair(original, reconstructed)
    return float(np.sqrt(np.mean((a - b) ** 2)))


def mae(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean absolute error."""
    a, b = _flatten_pair(original, reconstructed)
    return float(np.mean(np.abs(a - b)))


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Worst-case absolute error (L-infinity)."""
    a, b = _flatten_pair(original, reconstructed)
    return float(np.max(np.abs(a - b)))


@dataclass(frozen=True)
class ReconstructionScore:
    """All metrics for one reconstruction, as reported by the harness."""

    snr: float
    psnr: float
    rmse: float
    mae: float
    max_abs_error: float

    def as_dict(self) -> dict[str, float]:
        return {
            "snr": self.snr,
            "psnr": self.psnr,
            "rmse": self.rmse,
            "mae": self.mae,
            "max_abs_error": self.max_abs_error,
        }


def score_reconstruction(original: np.ndarray, reconstructed: np.ndarray) -> ReconstructionScore:
    """Compute the full metric bundle for a reconstruction."""
    return ReconstructionScore(
        snr=snr(original, reconstructed),
        psnr=psnr(original, reconstructed),
        rmse=rmse(original, reconstructed),
        mae=mae(original, reconstructed),
        max_abs_error=max_abs_error(original, reconstructed),
    )
