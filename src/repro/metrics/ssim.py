"""Structural similarity (SSIM) for 3D volumes.

A perception-oriented companion to the paper's SNR: SSIM compares local
luminance, contrast and structure inside a sliding window, so blurring and
feature displacement — which SNR can under-penalize — show up clearly.
Implemented with uniform box windows via cumulative sums (O(N) regardless
of window size), no image-library dependency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ssim3d"]


def _box_mean(volume: np.ndarray, window: int) -> np.ndarray:
    """Mean over a centered cubic window (edge-clipped), via summed tables."""
    pad = window // 2
    padded = np.pad(volume, pad, mode="edge")
    # Inclusive prefix sums with a leading zero plane per axis.
    c = padded.cumsum(0).cumsum(1).cumsum(2)
    c = np.pad(c, ((1, 0), (1, 0), (1, 0)))
    nx, ny, nz = volume.shape
    w = window

    def corner(dx, dy, dz):
        return c[dx : dx + nx, dy : dy + ny, dz : dz + nz]

    total = (
        corner(w, w, w)
        - corner(0, w, w) - corner(w, 0, w) - corner(w, w, 0)
        + corner(0, 0, w) + corner(0, w, 0) + corner(w, 0, 0)
        - corner(0, 0, 0)
    )
    # ssim3d validates window as a positive odd integer, so w**3 >= 1.
    return total / float(w**3)  # repro: noqa[DIV001]


def ssim3d(
    original: np.ndarray,
    reconstructed: np.ndarray,
    window: int = 5,
    k1: float = 0.01,
    k2: float = 0.03,
) -> float:
    """Mean SSIM over the volume, in ``[-1, 1]`` (1 = identical).

    The dynamic range is taken from the original field; constant originals
    compare via the stabilizing constants only.
    """
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim != 3:
        raise ValueError(f"ssim3d expects 3D volumes, got shape {a.shape}")
    if window < 1 or window % 2 == 0:
        raise ValueError(f"window must be a positive odd integer, got {window}")
    if min(a.shape) < window:
        raise ValueError(f"volume {a.shape} smaller than window {window}")

    data_range = float(a.max() - a.min())
    if data_range == 0:
        data_range = 1.0
    c1 = (k1 * data_range) ** 2
    c2 = (k2 * data_range) ** 2

    mu_a = _box_mean(a, window)
    mu_b = _box_mean(b, window)
    var_a = _box_mean(a * a, window) - mu_a**2
    var_b = _box_mean(b * b, window) - mu_b**2
    cov = _box_mean(a * b, window) - mu_a * mu_b
    # Clamp tiny negative variances from floating-point cancellation.
    var_a = np.maximum(var_a, 0.0)
    var_b = np.maximum(var_b, 0.0)

    ssim_map = ((2 * mu_a * mu_b + c1) * (2 * cov + c2)) / (
        (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
    )
    return float(ssim_map.mean())
