"""Reconstruction-quality metrics.

The paper scores every reconstruction with the signal-to-noise ratio

    SNR = 20 * log10(sigma_raw / sigma_noise)

where ``sigma_raw`` is the standard deviation of the original field and
``sigma_noise`` the standard deviation of (original - reconstruction).
PSNR/RMSE/MAE companions are provided for completeness.
"""

from repro.metrics.quality import (
    ReconstructionScore,
    mae,
    max_abs_error,
    psnr,
    rmse,
    score_reconstruction,
    snr,
)
from repro.metrics.ssim import ssim3d

__all__ = [
    "snr",
    "psnr",
    "rmse",
    "mae",
    "max_abs_error",
    "score_reconstruction",
    "ReconstructionScore",
    "ssim3d",
]
