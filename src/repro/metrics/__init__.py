"""Reconstruction-quality metrics.

The paper scores every reconstruction with the signal-to-noise ratio

    SNR = 20 * log10(sigma_raw / sigma_noise)

where ``sigma_raw`` is the standard deviation of the original field and
``sigma_noise`` the standard deviation of (original - reconstruction).
Companions: PSNR, RMSE, MAE, max absolute error, a 3D structural
similarity index (:func:`ssim3d`, windowed Gaussian-free box SSIM over the
volume), and :func:`score_reconstruction`, which bundles them all into a
:class:`ReconstructionScore`.
"""

from repro.metrics.quality import (
    ReconstructionScore,
    mae,
    max_abs_error,
    psnr,
    rmse,
    score_reconstruction,
    snr,
)
from repro.metrics.ssim import ssim3d

__all__ = [
    "snr",
    "psnr",
    "rmse",
    "mae",
    "max_abs_error",
    "score_reconstruction",
    "ReconstructionScore",
    "ssim3d",
]
