"""Simulated in situ reduction + post hoc reconstruction campaigns.

The paper's deployment story (Sec I, III-D) is an in situ pipeline: at each
simulation timestep the full field exists only momentarily; a sampler
reduces it to a point cloud that is all that reaches disk; reconstruction
happens post hoc from those point clouds.  This package makes that story a
first-class, testable workflow:

* :class:`~repro.insitu.campaign.InSituWriter` — runs the time loop,
  samples each timestep, writes ``.vtp`` clouds + a JSON manifest (and can
  train/fine-tune an FCNN in situ, checkpointing per timestep);
* :class:`~repro.insitu.campaign.CampaignReader` — loads a manifest and
  reconstructs any stored timestep with any method;
* :class:`~repro.insitu.adaptive.AdaptiveSampler` /
  :func:`~repro.insitu.adaptive.run_adaptive_campaign` — close the loop:
  a deep ensemble's per-voxel uncertainty steers the next timestep's
  sampling budget toward the regions the model reconstructs worst.
"""

from repro.insitu.campaign import CampaignManifest, CampaignReader, InSituWriter
from repro.insitu.adaptive import AdaptiveSampler, run_adaptive_campaign

__all__ = [
    "InSituWriter",
    "CampaignReader",
    "CampaignManifest",
    "AdaptiveSampler",
    "run_adaptive_campaign",
]
