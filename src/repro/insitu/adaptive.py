"""Uncertainty-driven adaptive sampling across timesteps.

Closes the loop the paper's future work points at: if reconstruction
uncertainty can be estimated (deep ensembles, :mod:`repro.core.ensemble`),
the *next* timestep's sampling budget should concentrate where the current
reconstruction is least certain.  :class:`AdaptiveSampler` blends the
standard multi-criteria importance with the previous timestep's ensemble
uncertainty field; :func:`run_adaptive_campaign` drives the closed loop and
reports per-timestep quality against a static-sampler baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.ensemble import DeepEnsembleReconstructor
from repro.datasets.base import AnalyticDataset, TimestepField
from repro.metrics import snr
from repro.sampling.base import Sampler
from repro.sampling.importance import MultiCriteriaSampler, _ImportanceSampler

__all__ = ["AdaptiveSampler", "run_adaptive_campaign"]


class AdaptiveSampler(_ImportanceSampler):
    """Multi-criteria importance augmented with an uncertainty prior.

    Parameters
    ----------
    uncertainty_weight:
        Blend weight of the (normalized) uncertainty prior against the
        static multi-criteria importance.
    base:
        The static importance sampler providing the data-driven criteria.

    The prior is set per timestep via :meth:`set_uncertainty` (a flat or
    grid-shaped per-voxel field, e.g. the ensemble std of the previous
    timestep's reconstruction); with no prior set, behaviour reduces to the
    base sampler.
    """

    name = "adaptive"

    def __init__(
        self,
        uncertainty_weight: float = 1.0,
        base: MultiCriteriaSampler | None = None,
        seed: int = 0,
        exact: bool = True,
    ) -> None:
        super().__init__(seed=seed, exact=exact)
        if uncertainty_weight < 0:
            raise ValueError(f"uncertainty_weight must be >= 0, got {uncertainty_weight}")
        self.uncertainty_weight = float(uncertainty_weight)
        self.base = base if base is not None else MultiCriteriaSampler(seed=seed)
        self._prior: np.ndarray | None = None

    def set_uncertainty(self, uncertainty: np.ndarray | None) -> None:
        """Install (or clear) the per-voxel uncertainty prior."""
        if uncertainty is None:
            self._prior = None
            return
        prior = np.asarray(uncertainty, dtype=np.float64).ravel()
        if np.any(prior < 0) or not np.all(np.isfinite(prior)):
            raise ValueError("uncertainty prior must be finite and non-negative")
        self._prior = prior

    def importance(self, field: TimestepField) -> np.ndarray:
        imp = self.base.importance(field)
        if self._prior is None or self.uncertainty_weight == 0:
            return imp
        if self._prior.size != field.grid.num_points:
            raise ValueError(
                f"uncertainty prior has {self._prior.size} entries for "
                f"{field.grid.num_points} grid points"
            )
        peak = self._prior.max()
        prior = self._prior / peak if peak > 0 else self._prior
        return imp + self.uncertainty_weight * prior


def run_adaptive_campaign(
    dataset: AnalyticDataset,
    timesteps,
    fraction: float,
    ensemble: DeepEnsembleReconstructor,
    train_fractions: tuple[float, ...] = (0.01, 0.05),
    pretrain_epochs: int = 100,
    finetune_epochs: int = 10,
    uncertainty_weight: float = 1.0,
    seed: int = 0,
) -> list[dict]:
    """Closed-loop adaptive campaign vs a static baseline.

    At each timestep the adaptive sampler's budget is biased by the
    ensemble's uncertainty from the *previous* reconstruction; a static
    multi-criteria sampler with the same budget provides the baseline.
    The ensemble is pretrained at the first timestep and Case-1 fine-tuned
    at each subsequent one.  Returns one record per timestep with both
    SNRs and the uncertainty statistics that drove adaptation.
    """
    timesteps = [int(t) for t in timesteps]
    if not timesteps:
        raise ValueError("need at least one timestep")

    adaptive = AdaptiveSampler(uncertainty_weight=uncertainty_weight, seed=seed)
    static = MultiCriteriaSampler(seed=seed)

    records: list[dict] = []
    for i, t in enumerate(timesteps):
        field = dataset.field(t=t)
        train = [static.sample(field, f) for f in train_fractions]
        if i == 0:
            ensemble.train(field, train, epochs=pretrain_epochs)
        else:
            ensemble.fine_tune(field, train, epochs=finetune_epochs, strategy="full")

        static_sample = static.sample(field, fraction, seed=seed + 1000)
        adaptive_sample = adaptive.sample(field, fraction, seed=seed + 1000)

        rec = ensemble.reconstruct_with_uncertainty(adaptive_sample)
        static_rec = ensemble.reconstruct_with_uncertainty(static_sample)

        records.append(
            {
                "timestep": t,
                "snr_static": snr(field.values, static_rec.mean),
                "snr_adaptive": snr(field.values, rec.mean),
                "mean_uncertainty": float(rec.std.mean()),
                "max_uncertainty": float(rec.std.max()),
            }
        )
        # Next timestep's sampling follows this reconstruction's doubt.
        adaptive.set_uncertainty(rec.std)
    return records
