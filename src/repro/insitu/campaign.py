"""In situ campaign writer/reader.

A *campaign* is the on-disk artifact of a reduced simulation run::

    campaign_dir/
      manifest.json            # grid, dataset, fractions, file index
      t0000.vtp  t0008.vtp ... # sampled point clouds, one per stored step
      model_t0000.npz          # (optional) in-situ-trained FCNN
      model_t0008.npz ...      # (optional) Case-2 partial checkpoints
      model_t0008_s00.npz ...  # (optional) per-shard Case-2 checkpoints

The writer owns the in situ side (time loop, sampling, optional training);
the reader owns the post hoc side (load a timestep's cloud, reconstruct it
with any method, restore the matching model).

Sharded campaigns (``shards=``/``halo=``) split the grid into axis-aligned
subdomains (:mod:`repro.shard`) and fine-tune one model per (timestep,
shard) on its halo-extended box; the reader stitches the per-shard
reconstructions back into the global field.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path

import numpy as np

from repro.core.reconstructor import FCNNReconstructor
from repro.datasets.base import AnalyticDataset
from repro.grid import UniformGrid
from repro.obs import counter as obs_counter, record_event, span
from repro.perf.campaign import CampaignScheduler
from repro.perf.weights import restore_weights, snapshot_weights
from repro.resilience.journal import CampaignJournal, content_hash
from repro.resilience.supervise import CampaignInterrupted
from repro.sampling.base import SampledField, Sampler

__all__ = ["CampaignManifest", "InSituWriter", "CampaignReader"]

_MANIFEST_NAME = "manifest.json"
#: journal + model-state sidecars live here, outside the campaign artifact
WAL_DIRNAME = ".wal"


def _file_sha(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


@dataclass
class CampaignManifest:
    """Everything the post hoc side needs to interpret a campaign."""

    dataset: str
    attribute: str
    dims: tuple[int, int, int]
    spacing: tuple[float, float, float]
    origin: tuple[float, float, float]
    fraction: float
    timesteps: list[int] = dataclass_field(default_factory=list)
    cloud_files: dict[str, str] = dataclass_field(default_factory=dict)  # str(t) -> filename
    model_files: dict[str, str] = dataclass_field(default_factory=dict)
    base_model_file: str | None = None
    shards: tuple[int, int, int] | None = None
    halo: int | None = None
    # str(t) -> per-shard checkpoint filenames, in plan shard order
    shard_model_files: dict[str, list[str]] = dataclass_field(default_factory=dict)

    @property
    def grid(self) -> UniformGrid:
        return UniformGrid(tuple(self.dims), tuple(self.spacing), tuple(self.origin))

    def to_json(self) -> str:
        payload = {
            "dataset": self.dataset,
            "attribute": self.attribute,
            "dims": list(self.dims),
            "spacing": list(self.spacing),
            "origin": list(self.origin),
            "fraction": self.fraction,
            "timesteps": self.timesteps,
            "cloud_files": self.cloud_files,
            "model_files": self.model_files,
            "base_model_file": self.base_model_file,
        }
        if self.shards is not None:
            payload["shards"] = list(self.shards)
            payload["halo"] = self.halo
            payload["shard_model_files"] = self.shard_model_files
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "CampaignManifest":
        d = json.loads(text)
        shards = d.get("shards")
        return cls(
            dataset=d["dataset"],
            attribute=d["attribute"],
            dims=tuple(d["dims"]),
            spacing=tuple(d["spacing"]),
            origin=tuple(d["origin"]),
            fraction=float(d["fraction"]),
            timesteps=list(d["timesteps"]),
            cloud_files=dict(d["cloud_files"]),
            model_files=dict(d["model_files"]),
            base_model_file=d.get("base_model_file"),
            shards=tuple(shards) if shards is not None else None,
            halo=d.get("halo"),
            shard_model_files={
                k: list(v) for k, v in d.get("shard_model_files", {}).items()
            },
        )


class InSituWriter:
    """Runs the reduced time loop and writes the campaign directory.

    Parameters
    ----------
    dataset:
        The simulation (any :class:`AnalyticDataset`).
    sampler:
        The in situ reduction strategy.
    fraction:
        Storage budget per timestep.
    train_model:
        When True, a :class:`FCNNReconstructor` is trained in situ at the
        first stored timestep and Case-1 fine-tuned (``finetune_epochs``)
        at each subsequent one; the base model and per-timestep Case-2
        partial checkpoints are written alongside the clouds.
    batched_finetune:
        When True (with ``train_model``), every timestep after the first
        is fine-tuned **from the pretrained base** through the
        :mod:`repro.nn.batched` engine — timesteps are grouped into
        blocks of ``finetune_batch`` (0 = all remaining timesteps in one
        block) and each block's models advance together through fused
        stacked matmuls.  The on-disk campaign is *block-size invariant*;
        it differs from the serial (rolling) campaign by design.
    shards / halo:
        Spatial domain decomposition (requires ``train_model``).  The
        first stored timestep still trains the global base model, but
        every later timestep is fine-tuned per shard on its halo-extended
        box (one batched submission per block, so ``shards`` composes with
        ``batched_finetune``) and emits one Case-2 partial checkpoint per
        (timestep, shard) — ``model_tXXXX_sXX.npz``.  ``halo`` defaults to
        :func:`repro.shard.suggest_halo` for the model's kNN stencil.
    """

    def __init__(
        self,
        dataset: AnalyticDataset,
        sampler: Sampler,
        fraction: float,
        train_model: bool = False,
        train_fractions: tuple[float, ...] = (0.01, 0.05),
        epochs: int = 100,
        finetune_epochs: int = 10,
        model_kwargs: dict | None = None,
        batched_finetune: bool = False,
        finetune_batch: int = 0,
        shards=None,
        halo: int | None = None,
    ) -> None:
        if not (0.0 < fraction <= 1.0):
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.dataset = dataset
        self.sampler = sampler
        self.fraction = float(fraction)
        self.train_model = bool(train_model)
        self.train_fractions = tuple(train_fractions)
        self.epochs = int(epochs)
        self.finetune_epochs = int(finetune_epochs)
        self.model_kwargs = dict(model_kwargs or {})
        self.batched_finetune = bool(batched_finetune)
        self.finetune_batch = int(finetune_batch)
        if shards is not None:
            from repro.shard import parse_shards, suggest_halo

            if not self.train_model:
                raise ValueError(
                    "shards only affect in situ training; pass train_model=True"
                )
            self.shard_counts = parse_shards(shards)
            self.halo = (
                int(halo)
                if halo is not None
                else suggest_halo(
                    self.model_kwargs.get("num_neighbors", 5), self.fraction
                )
            )
            if self.halo < 0:
                raise ValueError(f"halo must be >= 0, got {self.halo}")
        else:
            if halo is not None:
                raise ValueError("halo requires shards")
            self.shard_counts = None
            self.halo = None

    def run(
        self,
        directory: str | Path,
        timesteps,
        pipeline: bool = True,
        *,
        journal: bool = False,
        resume: bool = False,
        interrupt=None,
        on_stage=None,
    ) -> CampaignManifest:
        """Execute the campaign; returns the written manifest.

        With ``pipeline=True`` (default) the time loop runs on the
        streaming :class:`~repro.perf.CampaignScheduler`: timestep ``t+1``
        is simulated and sampled on the prefetch thread while ``t`` trains
        on the calling thread and ``t-1``'s cloud/checkpoint files are
        written by the emit thread.  Training stays strictly sequential
        and checkpoints are written from published weight snapshots, so
        the on-disk campaign is byte-identical to ``pipeline=False``
        (files and manifest entries land in timestep order either way).

        Crash safety: ``journal=True`` keeps a durable write-ahead journal
        (plus per-timestep model-state sidecars) under
        ``<directory>/.wal/``; ``resume=True`` (implies ``journal``)
        verifies every already-emitted file against the journal's content
        hashes, skips that prefix, restores the training model
        bit-exactly, and continues — the finished directory is
        byte-identical to an uninterrupted run (the ``.wal/`` bookkeeping
        aside).  ``interrupt`` (a
        :class:`~repro.resilience.supervise.GracefulInterrupt`) turns
        SIGTERM/SIGINT into a drained stop: a partial (readable) manifest
        and a resume manifest are written, then
        :class:`~repro.resilience.supervise.CampaignInterrupted` is
        raised.  ``on_stage`` (``fn(stage, timestep)``) is the chaos
        harness's injection hook.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        timesteps = [int(t) for t in timesteps]
        if not timesteps:
            raise ValueError("a campaign needs at least one timestep")
        journal = journal or resume

        grid = self.dataset.grid
        plan = None
        if self.shard_counts is not None:
            from repro.shard import ShardPlan

            plan = ShardPlan.create(grid, self.shard_counts, self.halo)
        shard_coords = {"shards": plan.num_shards} if plan is not None else {}
        manifest = CampaignManifest(
            dataset=self.dataset.name,
            attribute=self.dataset.attribute,
            dims=grid.dims,
            spacing=grid.spacing,
            origin=grid.origin,
            fraction=self.fraction,
            shards=plan.counts if plan is not None else None,
            halo=self.halo,
        )

        wal: CampaignJournal | None = None
        if journal:
            config = {
                "kind": "insitu",
                "dataset": self.dataset.name,
                "fraction": self.fraction,
                "timesteps": timesteps,
                "train_model": self.train_model,
                "train_fractions": list(self.train_fractions),
                "epochs": self.epochs,
                "finetune_epochs": self.finetune_epochs,
            }
            if self.batched_finetune:
                # Recorded only for batched campaigns so old serial
                # journals stay valid; a serial<->batched resume (different
                # trajectories) is rejected as a config mismatch.
                config["batched_finetune"] = True
            if plan is not None:
                # Same conditional-key pattern: a sharded<->unsharded
                # resume (different models, different files) is refused.
                config["shards"] = list(plan.counts)
                config["halo"] = self.halo
            wal = CampaignJournal(
                directory / WAL_DIRNAME / "journal.jsonl",
                config=config,
                resume=resume,
            )

        # Training state lives on the calling thread (process stage); the
        # emit thread writes checkpoints from its own clone restored per
        # published weight snapshot, never from the live training model.
        model: FCNNReconstructor | None = None
        emit_model: FCNNReconstructor | None = None

        steps_to_run = timesteps
        skipped: list[int] = []
        if wal is not None:

            def verify(t: int, payload: dict) -> bool:
                for name, sha in payload.get("files", {}).items():
                    path = directory / name
                    if not path.exists() or _file_sha(path) != sha:
                        return False
                return True

            with span("campaign.resume.plan"):
                resume_plan = (
                    wal.plan(timesteps, verify=verify) if resume else wal.plan(timesteps)
                )
            record_event(
                "campaign.resume.planned",
                resume=bool(resume),
                skipped=len(resume_plan.completed) if resume else 0,
                remaining=len(resume_plan.remaining) if resume else len(timesteps),
            )
            if resume and resume_plan.completed:
                skipped = list(resume_plan.completed)
                steps_to_run = list(resume_plan.remaining)
                obs_counter("campaign.resume.skipped").inc(len(skipped))
                # Replay the completed prefix into the manifest.
                for t, payload in zip(skipped, resume_plan.payloads):
                    manifest.timesteps.append(t)
                    manifest.cloud_files[str(t)] = payload["cloud"]
                    emitted_model = payload.get("model")
                    if isinstance(emitted_model, list):
                        manifest.shard_model_files[str(t)] = list(emitted_model)
                    elif emitted_model is not None:
                        manifest.model_files[str(t)] = emitted_model
                    if payload.get("base") is not None:
                        manifest.base_model_file = payload["base"]
                if self.train_model and manifest.base_model_file is not None:
                    # Architecture + normalization from the base checkpoint,
                    # exact weights from the last completed timestep's WAL
                    # state — fine-tuning re-enters bit-identically.
                    model = FCNNReconstructor.load(directory / manifest.base_model_file)
                    if not self.batched_finetune and plan is None:
                        # Serial fine-tunes roll forward; batched and
                        # sharded ones derive every timestep from the
                        # unchanged base, which *is* the checkpoint just
                        # loaded.
                        restore_weights(model.model, wal.load_state(skipped[-1]))
                    emit_model = model.clone()

        def materialize(t: int):
            if on_stage is not None:
                on_stage("materialize", t)
            field = self.dataset.field(t=t)
            sample = self.sampler.sample(field, self.fraction)
            if wal is not None:
                wal.record(t, "sampled", sample_sha=content_hash(sample.values))
            train = (
                [self.sampler.sample(field, f) for f in self.train_fractions]
                if self.train_model
                else None
            )
            return field, sample, train

        def process(t: int, item):
            nonlocal model, emit_model
            if on_stage is not None:
                on_stage("process", t)
            field, sample, train = item
            if not self.train_model:
                return sample, None, False
            first = model is None
            if first:
                model = FCNNReconstructor(**self.model_kwargs)
                model.train(field, train, epochs=self.epochs)
                emit_model = model.clone()
                flat = snapshot_weights(model.model).data
            elif plan is not None:
                # One (num_shards, W) weight stack for this timestep; the
                # base model is never mutated (fine_tune_batch semantics).
                from repro.shard import fine_tune_shards

                stacks, _ = fine_tune_shards(
                    model, [field], [train], plan,
                    epochs=self.finetune_epochs, strategy="last",
                )
                flat = stacks[0]
            else:
                model.fine_tune(field, train, epochs=self.finetune_epochs, strategy="last")
                flat = snapshot_weights(model.model).data
            if wal is not None:
                wal.save_state(t, flat)
                wal.record(
                    t, "fine-tuned", weights_sha=content_hash(flat), **shard_coords
                )
            return sample, flat, first

        def emit(t: int, payload):
            if on_stage is not None:
                on_stage("emit", t)
            sample, flat, first = payload
            cloud_name = f"t{t:04d}.vtp"
            sample.to_vtp(directory / cloud_name)
            manifest.timesteps.append(t)
            manifest.cloud_files[str(t)] = cloud_name
            model_name = None
            base_name = None
            shard_names: list[str] | None = None
            if flat is not None and np.ndim(flat) == 2:
                # Sharded timestep: one Case-2 partial checkpoint per
                # shard, grafted onto the (global) base by the reader.
                shard_names = []
                for s in range(flat.shape[0]):
                    restore_weights(emit_model.model, flat[s])
                    name = f"model_t{t:04d}_s{s:02d}.npz"
                    emit_model.save_partial(directory / name, num_layers=2)
                    shard_names.append(name)
                manifest.shard_model_files[str(t)] = shard_names
            elif flat is not None:
                restore_weights(emit_model.model, flat)
                if first:
                    base_name = manifest.base_model_file = "model_base.npz"
                    emit_model.save(directory / manifest.base_model_file)
                # Case-2 storage: only the last two layers per timestep.
                model_name = f"model_t{t:04d}.npz"
                emit_model.save_partial(directory / model_name, num_layers=2)
                manifest.model_files[str(t)] = model_name
            if wal is not None:
                written = [cloud_name] + [n for n in (base_name, model_name) if n]
                written += shard_names or []
                wal.record(
                    t,
                    "emitted",
                    cloud=cloud_name,
                    model=shard_names if shard_names is not None else model_name,
                    base=base_name,
                    files={n: _file_sha(directory / n) for n in written},
                )
            return t

        # Batched fine-tuning: scheduler items become *block indices*.  The
        # first block stays ``[t0]`` when the base still has to be trained;
        # every later block fine-tunes its timesteps from that base in one
        # fused ModelStack.  The journal keeps per-timestep granularity.
        blocks: list[list[int]] = []
        if self.batched_finetune and steps_to_run:
            rest = steps_to_run
            if self.train_model and model is None:
                blocks.append([rest[0]])
                rest = rest[1:]
            size = self.finetune_batch if self.finetune_batch > 0 else max(1, len(rest))
            blocks.extend(rest[i : i + size] for i in range(0, len(rest), size))

        def materialize_block(block_index: int):
            return [materialize(t) for t in blocks[block_index]]

        def process_block(block_index: int, items):
            nonlocal model, emit_model
            ts = blocks[block_index]
            if not self.train_model or (model is None and len(ts) == 1):
                # Untrained campaigns, and the base-training first block,
                # go through the serial stage unchanged.
                return [process(t, item) for t, item in zip(ts, items)]
            if on_stage is not None:
                for t in ts:
                    on_stage("process", t)
            if plan is not None:
                from repro.shard import fine_tune_shards

                flats, _histories = fine_tune_shards(
                    model,
                    [field for field, _, _ in items],
                    [train for _, _, train in items],
                    plan,
                    epochs=self.finetune_epochs,
                    strategy="last",
                )
            else:
                flats, _histories = model.fine_tune_batch(
                    [field for field, _, _ in items],
                    [train for _, _, train in items],
                    epochs=self.finetune_epochs,
                    strategy="last",
                )
            if wal is not None:
                for t, flat in zip(ts, flats):
                    wal.save_state(t, flat)
                    wal.record(
                        t, "fine-tuned", weights_sha=content_hash(flat), **shard_coords
                    )
            return [
                (sample, flat, False)
                for (_, sample, _), flat in zip(items, flats)
            ]

        def emit_block(block_index: int, payloads):
            return [emit(t, payload) for t, payload in zip(blocks[block_index], payloads)]

        if self.batched_finetune:
            scheduler = CampaignScheduler(
                materialize_block,
                process_block,
                emit_block,
                pipeline=pipeline,
                name="insitu",
                interrupt=interrupt,
            )
            items_to_run = list(range(len(blocks)))
        else:
            scheduler = CampaignScheduler(
                materialize, process, emit, pipeline=pipeline, name="insitu", interrupt=interrupt
            )
            items_to_run = steps_to_run
        try:
            scheduler.run(items_to_run)
        except CampaignInterrupted as exc:
            if self.batched_finetune:
                # Translate block indices back into timestep coordinates.
                done_steps = [t for bi in exc.completed for t in blocks[bi]]
                next_blocks = blocks[len(exc.completed):]
                exc = CampaignInterrupted(
                    str(exc),
                    completed=tuple(done_steps),
                    next_timestep=next_blocks[0][0] if next_blocks else None,
                )
            # Flush a *readable* partial campaign (post hoc tools work on
            # the completed prefix) plus the resume manifest, then let the
            # interruption propagate.
            self._write_index(directory, manifest)
            if wal is not None:
                done = skipped + list(exc.completed)
                wal.write_manifest(
                    reason="interrupted",
                    completed=done,
                    remaining=timesteps[len(done):],
                )
                wal.close()
            raise exc
        self._write_index(directory, manifest)
        if wal is not None:
            wal.close()
        return manifest

    @staticmethod
    def _write_index(directory: Path, manifest: CampaignManifest) -> None:
        (directory / _MANIFEST_NAME).write_text(manifest.to_json())
        # ParaView animation index over the stored point clouds.
        from repro.io import write_pvd

        write_pvd(
            directory / "campaign.pvd",
            [(float(t), manifest.cloud_files[str(t)]) for t in manifest.timesteps],
        )


class CampaignReader:
    """Post hoc access to a written campaign."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        manifest_path = self.directory / _MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(f"{manifest_path}: no campaign manifest")
        self.manifest = CampaignManifest.from_json(manifest_path.read_text())

    @property
    def timesteps(self) -> list[int]:
        return list(self.manifest.timesteps)

    @property
    def shard_plan(self):
        """The campaign's :class:`~repro.shard.ShardPlan` (None if unsharded)."""
        if self.manifest.shards is None:
            return None
        from repro.shard import ShardPlan

        return ShardPlan.create(
            self.manifest.grid, self.manifest.shards, self.manifest.halo
        )

    def load_sample(self, timestep: int) -> SampledField:
        """The stored point cloud for one timestep."""
        key = str(int(timestep))
        if key not in self.manifest.cloud_files:
            raise KeyError(f"timestep {timestep} not in campaign {sorted(self.manifest.cloud_files)}")
        path = self.directory / self.manifest.cloud_files[key]
        return SampledField.from_vtp(
            path, self.manifest.grid, fraction=self.manifest.fraction, timestep=int(timestep)
        )

    def load_model(
        self, timestep: int | None = None, shard: int | None = None
    ) -> FCNNReconstructor:
        """The in-situ-trained FCNN, optionally specialized to a timestep.

        Loads the base model and, when ``timestep`` has a Case-2 partial
        checkpoint, grafts it on.  Sharded campaigns keep one checkpoint
        per (timestep, shard); pass ``shard`` (the plan's shard index) to
        pick one.
        """
        if self.manifest.base_model_file is None:
            raise ValueError("campaign was written without in situ training")
        model = FCNNReconstructor.load(self.directory / self.manifest.base_model_file)
        if timestep is not None:
            key = str(int(timestep))
            if shard is not None:
                names = self.manifest.shard_model_files.get(key)
                if names is None:
                    raise KeyError(
                        f"no per-shard checkpoints for timestep {timestep}"
                    )
                if not 0 <= int(shard) < len(names):
                    raise IndexError(
                        f"shard {shard} out of range for timestep {timestep} "
                        f"({len(names)} shards)"
                    )
                model.load_partial(self.directory / names[int(shard)])
            elif key in self.manifest.model_files:
                model.load_partial(self.directory / self.manifest.model_files[key])
            elif key in self.manifest.shard_model_files:
                raise KeyError(
                    f"timestep {timestep} has per-shard checkpoints only; "
                    "pass shard=<index> (or use reconstruct() to stitch)"
                )
            else:
                raise KeyError(f"no model checkpoint for timestep {timestep}")
        return model

    def reconstruct(self, timestep: int, method=None) -> np.ndarray:
        """Reconstruct one stored timestep.

        ``method`` defaults to the campaign's own FCNN (specialized to the
        timestep); pass any :class:`GridInterpolator` to use a rule-based
        method instead.  For sharded timesteps the default method
        reconstructs every shard with its own model over its halo-extended
        box and stitches the interiors back into the global field.
        """
        sample = self.load_sample(timestep)
        key = str(int(timestep))
        if method is None and key in self.manifest.shard_model_files:
            return self._reconstruct_sharded(sample, key)
        if method is None:
            method = self.load_model(timestep)
        return method.reconstruct(sample)

    def _reconstruct_sharded(self, sample: SampledField, key: str) -> np.ndarray:
        """Stitch one sharded timestep through the local shard sink."""
        from repro.perf.campaign import CampaignGeometry
        from repro.shard import LocalShardSink, ShardedCampaignGeometry

        plan = self.shard_plan
        model = FCNNReconstructor.load(self.directory / self.manifest.base_model_file)
        flats = []
        for name in self.manifest.shard_model_files[key]:
            model.load_partial(self.directory / name)
            flats.append(np.array(snapshot_weights(model.model).data, copy=True))
        geometry = CampaignGeometry(
            self.manifest.grid, sample.indices, self.manifest.fraction
        )
        sharded = ShardedCampaignGeometry(plan, geometry)
        with LocalShardSink(slots=1, scope="local") as sink:
            sink.bind(sharded, {"fcnn": model})
            slot = sink.publish(int(key), sample.values, {"fcnn": np.stack(flats)})
            volume, _report = sink.reconstruct(slot, "fcnn")
        return volume
