"""Synthetic ionization-front density field.

The Ionization Front Instabilities dataset (Whalen & Norman [10]) is a
600x248x248 grid over 200 timesteps; the density attribute shows an
ionization front propagating through neutral hydrogen: very low density in
the ionized region behind the front, a *compressed shell* of enhanced
density at the front, and ambient neutral-gas density ahead — with
transverse instabilities corrugating the front as it advances.

The generator builds exactly that profile along x:

* front position advances with ``t``;
* transverse corrugation modes whose amplitude grows with time (the
  "instabilities");
* a density bump (compressed shell) just ahead of the front, a deep rarified
  region behind it, ambient density with weak clumping ahead.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import AnalyticDataset
from repro.grid import UniformGrid

__all__ = ["IonizationDataset"]


class IonizationDataset(AnalyticDataset):
    """Propagating ionization front; stands in for Whalen & Norman [10]."""

    name = "ionization"
    attribute = "density"
    attributes = ("density", "temperature", "ionization_fraction")
    num_timesteps = 200

    NUM_MODES = 5
    AMBIENT = 1.0       # neutral-gas density
    IONIZED = 0.02      # density behind the front
    SHELL_BOOST = 1.8   # compressed-shell peak over ambient

    def __init__(self, grid: UniformGrid | None = None, seed: int = 0) -> None:
        super().__init__(grid=grid, seed=seed)
        rng = np.random.default_rng(2000 + self.seed)
        m = self.NUM_MODES
        self._ky = rng.integers(1, 7, size=m).astype(np.float64)
        self._kz = rng.integers(1, 7, size=m).astype(np.float64)
        self._phase = rng.uniform(0, 2 * np.pi, size=m)
        self._weight = rng.uniform(0.3, 1.0, size=m)
        self._weight /= self._weight.sum()

    @classmethod
    def default_grid(cls) -> UniformGrid:
        # Paper resolution: 600 x 248 x 248.
        return UniformGrid((600, 248, 248))

    def _front(self, y: np.ndarray, z: np.ndarray, tau: float) -> np.ndarray:
        """x-position of the ionization front at transverse coords (y, z)."""
        base = 0.12 + 0.62 * tau
        # Instability amplitude grows with time (linear growth phase).
        amp = 0.015 + 0.075 * tau
        corrugation = np.zeros_like(y)
        for i in range(self.NUM_MODES):
            corrugation += self._weight[i] * np.cos(
                2 * np.pi * (self._ky[i] * y + self._kz[i] * z) + self._phase[i]
            )
        return base + amp * corrugation

    def evaluate(self, points: np.ndarray, t: int = 0, attribute: str | None = None) -> np.ndarray:
        attribute = self._check_attribute(attribute)
        p = self.normalized(points)
        x, y, z = p[:, 0], p[:, 1], p[:, 2]
        tau = self.time_fraction(t)

        xf = self._front(y, z, tau)
        s = x - xf  # signed distance ahead of the front (positive = neutral gas)

        width = 0.02
        # Smooth ionized->neutral transition.
        step = 0.5 * (1.0 + np.tanh(s / width))

        if attribute == "ionization_fraction":
            # ~1 behind the front (ionized), ~0 ahead, smooth at the front.
            return 1.0 - step
        if attribute == "temperature":
            # Photoheated HII region ~1e4 K; cold neutral gas ~1e2 K, with
            # a mild shock-heated bump in the compressed shell.
            shell_width = 0.035
            shock = 1500.0 * np.exp(-((s - 0.5 * shell_width) ** 2) / (2 * shell_width**2))
            return 100.0 + (10_000.0 - 100.0) * (1.0 - step) + shock * step

        density = self.IONIZED + (self.AMBIENT - self.IONIZED) * step

        # Compressed shell: swept-up gas piled just ahead of the front; the
        # shell strengthens as the front sweeps up more material.
        shell_width = 0.035
        shell = (
            self.SHELL_BOOST
            * (0.3 + 0.7 * tau)
            * np.exp(-((s - 0.5 * shell_width) ** 2) / (2 * shell_width**2))
        )

        # Weak ambient clumping ahead of the front (smooth, deterministic).
        clumps = 0.12 * step * (
            np.sin(2 * np.pi * (2.0 * x + 3.0 * y) + 1.3)
            * np.sin(2 * np.pi * (1.0 * y + 2.0 * z) + 2.1)
        )

        return density + shell + clumps
