"""Synthetic hurricane pressure field (Hurricane Isabel stand-in).

The real Isabel dataset is a 250x250x50 grid over 48 timesteps whose
pressure attribute features a deep, compact low-pressure eye that moves
across the domain, surrounded by spiral rainbands, over a smooth synoptic
background.  This generator reproduces that structure analytically:

* a radially-Gaussian pressure depression (the eye) whose center follows a
  curved storm track across the domain as ``t`` advances and whose intensity
  peaks mid-simulation (landfall weakening afterwards);
* logarithmic spiral bands of alternating pressure perturbation rotating
  with time;
* a weak planetary-scale background gradient;
* vertical decay of the perturbation (hurricanes are surface-intense).

All components are smooth and deterministic, so gradients are well defined
and the sampler's feature-importance machinery has real structure to find.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import AnalyticDataset
from repro.grid import UniformGrid

__all__ = ["HurricaneDataset"]


class HurricaneDataset(AnalyticDataset):
    """Moving-vortex pressure field; stands in for Hurricane Isabel [8]."""

    name = "hurricane"
    attribute = "pressure"
    attributes = ("pressure", "temperature", "wind_speed")
    num_timesteps = 48

    #: ambient sea-level pressure (hPa) and maximum eye depression
    BACKGROUND = 1010.0
    MAX_DEPRESSION = 95.0

    def __init__(self, grid: UniformGrid | None = None, seed: int = 0) -> None:
        super().__init__(grid=grid, seed=seed)
        rng = np.random.default_rng(self.seed)
        # Fixed random phases make each seed a distinct but deterministic storm.
        self._band_phase = rng.uniform(0, 2 * np.pi)
        self._track_wobble = rng.uniform(0.8, 1.2)

    @classmethod
    def default_grid(cls) -> UniformGrid:
        # Paper resolution: 250 x 250 x 50.  Unit spacing, origin at 0.
        return UniformGrid((250, 250, 50))

    # ----------------------------------------------------------- components
    def _eye_center(self, tau: float) -> tuple[float, float]:
        """Normalized (x, y) of the eye at time fraction ``tau``.

        The track sweeps from the lower-right quadrant to the upper-left,
        with a gentle recurving arc — loosely Isabel's WNW-then-N track.
        """
        x = 0.78 - 0.55 * tau
        y = 0.22 + 0.58 * tau + 0.10 * np.sin(np.pi * tau * self._track_wobble)
        return x, y

    def _intensity(self, tau: float) -> float:
        """Eye depression amplitude: spins up, peaks near tau=0.55, decays."""
        return float(np.exp(-((tau - 0.55) ** 2) / (2 * 0.35**2)))

    # ------------------------------------------------------------- evaluate
    def evaluate(self, points: np.ndarray, t: int = 0, attribute: str | None = None) -> np.ndarray:
        attribute = self._check_attribute(attribute)
        p = self.normalized(points)
        x, y, z = p[:, 0], p[:, 1], p[:, 2]
        tau = self.time_fraction(t)
        if attribute == "temperature":
            return self._temperature(x, y, z, tau)
        if attribute == "wind_speed":
            return self._wind_speed(x, y, z, tau)
        return self._pressure(x, y, z, tau)

    def _pressure(self, x, y, z, tau) -> np.ndarray:
        cx, cy = self._eye_center(tau)
        dx, dy = x - cx, y - cy
        r = np.sqrt(dx * dx + dy * dy)
        theta = np.arctan2(dy, dx)

        # Vertical structure: perturbation strongest at the surface.
        vertical = np.exp(-1.8 * z)

        # Eye: sharp Gaussian depression with a compact core.
        core = np.exp(-((r / 0.085) ** 2))
        # Outer circulation: broader, shallower depression.
        outer = 0.35 * np.exp(-((r / 0.28) ** 2))

        # Spiral rainbands: alternating perturbations along log spirals that
        # rotate as the storm evolves.  Attenuated inside the eye and far
        # out.  Winding and amplitude are kept gentle: sea-level pressure is
        # a smooth field (bands show up in wind/precip far more than in
        # pressure).
        spiral_arg = 3.0 * theta - 7.0 * np.log(r + 0.05) + 6.0 * tau + self._band_phase
        band_env = np.exp(-((r - 0.18) ** 2) / (2 * 0.12**2))
        bands = 0.05 * np.sin(spiral_arg) * band_env

        depression = self.MAX_DEPRESSION * self._intensity(tau) * (core + outer + bands)

        # Synoptic background: weak large-scale gradient + stationary ridge.
        background = (
            self.BACKGROUND
            + 4.0 * (x - 0.5)
            + 2.5 * (y - 0.5)
            + 1.5 * np.sin(2 * np.pi * (0.7 * x + 0.4 * y) + 0.5)
            + 6.0 * z  # pressure decreases with altitude relative to perturbation field
        )

        return background - depression * vertical

    def _temperature(self, x, y, z, tau) -> np.ndarray:
        """Warm-core temperature (deg C): lapse rate + eye warm anomaly.

        Hurricanes are warm-core systems — subsidence inside the eye heats
        it several degrees above the environment, strongest aloft.
        """
        cx, cy = self._eye_center(tau)
        r = np.sqrt((x - cx) ** 2 + (y - cy) ** 2)
        background = 28.0 - 45.0 * z + 2.0 * (y - 0.5)  # tropical lapse profile
        warm_core = (
            7.0
            * self._intensity(tau)
            * np.exp(-((r / 0.10) ** 2))
            * np.sin(np.pi * np.clip(z, 0, 1))  # peaks at mid-levels
        )
        return background + warm_core

    def _wind_speed(self, x, y, z, tau) -> np.ndarray:
        """Azimuthal wind speed (m/s) with a ring of maximum winds.

        A Rankine-like vortex profile: calm at the eye center, peak at the
        radius of maximum winds just outside the core, decaying outward and
        with altitude.
        """
        cx, cy = self._eye_center(tau)
        r = np.sqrt((x - cx) ** 2 + (y - cy) ** 2)
        rmw = 0.09
        profile = (r / rmw) * np.exp(1.0 - r / rmw)  # 0 at center, 1 at rmw
        vmax = 65.0 * self._intensity(tau)
        ambient = 6.0 + 3.0 * np.sin(2 * np.pi * (x + 0.5 * y))
        return ambient + vmax * profile * np.exp(-1.2 * z)
