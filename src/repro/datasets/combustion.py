"""Synthetic turbulent-combustion mixture-fraction field.

The paper's combustion dataset [9] is a 240x360x60 grid over 122 timesteps;
the ``Mixfrac`` attribute (fuel/oxidizer mass proportion) transitions from
fuel-rich (~1) to oxidizer (~0) across a wrinkled, turbulently-perturbed
flame interface.  This generator mimics it as a smoothed step across a wavy
interface whose wrinkles advect and grow with time:

* a base interface plane that drifts slowly through the domain;
* multi-mode sinusoidal wrinkling (a deterministic "turbulence" surrogate:
  several transverse Fourier modes with seed-fixed phases whose amplitudes
  grow and whose phases advect with ``t``);
* a tanh profile across the interface giving the mixture-fraction ramp with
  a high-gradient flame sheet — the structure importance sampling must keep.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import AnalyticDataset
from repro.grid import UniformGrid

__all__ = ["CombustionDataset"]


class CombustionDataset(AnalyticDataset):
    """Wrinkled-flame mixture-fraction field; stands in for [9]."""

    name = "combustion"
    attribute = "mixfrac"
    attributes = ("mixfrac", "temperature", "product")
    num_timesteps = 122

    #: number of transverse wrinkling modes
    NUM_MODES = 6
    #: flame-sheet thickness in normalized units
    THICKNESS = 0.035

    def __init__(self, grid: UniformGrid | None = None, seed: int = 0) -> None:
        super().__init__(grid=grid, seed=seed)
        rng = np.random.default_rng(1000 + self.seed)
        m = self.NUM_MODES
        self._ky = rng.integers(1, 6, size=m).astype(np.float64)
        self._kz = rng.integers(1, 5, size=m).astype(np.float64)
        self._phase = rng.uniform(0, 2 * np.pi, size=m)
        self._speed = rng.uniform(0.5, 2.0, size=m)
        self._amp = rng.uniform(0.4, 1.0, size=m)
        self._amp /= self._amp.sum()

    @classmethod
    def default_grid(cls) -> UniformGrid:
        # Paper resolution: 240 x 360 x 60.
        return UniformGrid((240, 360, 60))

    def _interface(self, y: np.ndarray, z: np.ndarray, tau: float) -> np.ndarray:
        """x-position of the flame interface at transverse coords (y, z)."""
        base = 0.35 + 0.18 * tau  # flame front propagates in +x
        # Wrinkle amplitude grows as the flame becomes more turbulent.
        amp = 0.05 + 0.09 * tau
        wrinkle = np.zeros_like(y)
        for i in range(self.NUM_MODES):
            wrinkle += self._amp[i] * np.sin(
                2 * np.pi * (self._ky[i] * y + self._kz[i] * z)
                + self._phase[i]
                + 2 * np.pi * self._speed[i] * tau
            )
        return base + amp * wrinkle

    def evaluate(self, points: np.ndarray, t: int = 0, attribute: str | None = None) -> np.ndarray:
        attribute = self._check_attribute(attribute)
        mix = self._mixfrac(points, t)
        if attribute == "mixfrac":
            return mix
        # Both derived attributes follow flamelet relationships in mixture
        # fraction: the reaction zone sits near stoichiometric (mix ~ 0.4).
        stoich = 0.4
        reaction = np.exp(-(((mix - stoich) / 0.12) ** 2))
        if attribute == "temperature":
            # Ambient 300 K; flame temperature ~2200 K at stoichiometric.
            return 300.0 + 1900.0 * reaction
        # "product": combustion-product mass fraction — accumulates on the
        # oxidizer side of the reaction zone.
        return np.clip(reaction * (1.0 - mix) * 1.4, 0.0, 1.0)

    def _mixfrac(self, points: np.ndarray, t: int) -> np.ndarray:
        p = self.normalized(points)
        x, y, z = p[:, 0], p[:, 1], p[:, 2]
        tau = self.time_fraction(t)

        xi = self._interface(y, z, tau)
        # Mixture fraction: ~1 on the fuel side (x < interface), ~0 beyond.
        mix = 0.5 * (1.0 - np.tanh((x - xi) / self.THICKNESS))

        # Mild large-scale stratification + pockets of partially-mixed fluid
        # downstream (keeps the field from being a pure step function).
        pockets = (
            0.06
            * np.exp(-((x - xi - 0.12) ** 2) / (2 * 0.05**2))
            * np.sin(2 * np.pi * (3 * y + 2 * z) + 4.0 * tau)
        )
        return np.clip(mix + pockets + 0.02 * (1 - x), 0.0, 1.0)
