"""Synthetic spatiotemporal simulation datasets.

The paper evaluates on Hurricane Isabel (pressure), a turbulent combustion
simulation (mixture fraction) and an ionization-front instability simulation
(density).  Those datasets are not redistributable here, so this package
provides analytic generators with the same qualitative structure — localized
features, high-gradient regions, temporal evolution — that can be evaluated
at *any* resolution, timestep and physical domain, which is exactly what the
paper's three experiments require.

All generators are deterministic given their ``seed``.
"""

from repro.datasets.base import AnalyticDataset, TimestepField
from repro.datasets.hurricane import HurricaneDataset
from repro.datasets.combustion import CombustionDataset
from repro.datasets.ionization import IonizationDataset
from repro.datasets.registry import available_datasets, make_dataset, register_dataset

__all__ = [
    "AnalyticDataset",
    "TimestepField",
    "HurricaneDataset",
    "CombustionDataset",
    "IonizationDataset",
    "available_datasets",
    "make_dataset",
    "register_dataset",
]
