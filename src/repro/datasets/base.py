"""Base machinery for analytic spatiotemporal datasets.

An :class:`AnalyticDataset` is a closed-form scalar field ``f(x, y, z, t)``
defined over normalized coordinates of a *reference domain*.  Sampling it on
a grid simply evaluates ``f`` at the grid's physical points, so the same
dataset instance serves every experiment:

* different resolutions (Fig 13 upscaling) — denser grids over the same
  domain;
* shifted domains (Fig 13) — grids whose extent overlaps the reference
  domain differently;
* different timesteps (Fig 11/12) — the ``t`` argument.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.grid import UniformGrid

__all__ = ["AnalyticDataset", "TimestepField"]


@dataclass(frozen=True)
class TimestepField:
    """A scalar field materialized on a grid at one timestep."""

    grid: UniformGrid
    values: np.ndarray  # shaped grid.dims
    timestep: int
    name: str = "field"

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", self.grid.validate_field(self.values))

    @property
    def flat(self) -> np.ndarray:
        """Field values in flat (C) order, ``(N,)``."""
        return self.values.ravel()


class AnalyticDataset(abc.ABC):
    """A deterministic analytic scalar field ``f(points, t)``.

    Subclasses define :meth:`evaluate` over physical coordinates.  The
    *reference domain* (``default_grid``) fixes the coordinate normalization
    so that evaluating a finer or shifted grid probes the same underlying
    physical field.
    """

    #: short registry name, e.g. ``"hurricane"``
    name: str = "analytic"
    #: name of the scalar attribute reconstructed by default (the one the
    #: paper evaluates), e.g. ``"pressure"``
    attribute: str = "scalar"
    #: every scalar attribute the simulation carries (the paper's datasets
    #: have ~11; we model the physically coupled core set per dataset)
    attributes: tuple[str, ...] = ("scalar",)
    #: number of timesteps the reference simulation ran for
    num_timesteps: int = 1

    def __init__(self, grid: UniformGrid | None = None, seed: int = 0) -> None:
        self._grid = grid if grid is not None else self.default_grid()
        self.seed = int(seed)

    # ------------------------------------------------------------ interface
    @classmethod
    @abc.abstractmethod
    def default_grid(cls) -> UniformGrid:
        """Reference grid (paper-scale dims are documented per dataset)."""

    @abc.abstractmethod
    def evaluate(self, points: np.ndarray, t: int = 0, attribute: str | None = None) -> np.ndarray:
        """Field values at ``(N, 3)`` physical positions for timestep ``t``.

        ``attribute`` selects one of :attr:`attributes`; ``None`` means the
        default :attr:`attribute`.
        """

    def _check_attribute(self, attribute: str | None) -> str:
        name = attribute if attribute is not None else self.attribute
        if name not in self.attributes:
            raise ValueError(
                f"{self.name} has no attribute {name!r}; available: {list(self.attributes)}"
            )
        return name

    # ------------------------------------------------------------- plumbing
    @property
    def grid(self) -> UniformGrid:
        """The grid this instance materializes fields on by default."""
        return self._grid

    def normalized(self, points: np.ndarray) -> np.ndarray:
        """Map physical coordinates to the reference domain's unit cube.

        Values outside ``[0, 1]`` are legitimate — they address space beyond
        the reference extent (the shifted-domain upscaling experiment relies
        on this).
        """
        ref = self.default_grid()
        lo = np.asarray(ref.origin)
        span = (np.asarray(ref.dims) - 1) * np.asarray(ref.spacing)
        span = np.where(span == 0, 1.0, span)
        return (np.atleast_2d(np.asarray(points, dtype=np.float64)) - lo) / span

    def time_fraction(self, t: int) -> float:
        """Map a timestep index onto ``[0, 1]`` of the simulated evolution."""
        if self.num_timesteps <= 1:
            return 0.0
        return float(t) / float(self.num_timesteps - 1)

    def field(
        self,
        t: int = 0,
        grid: UniformGrid | None = None,
        attribute: str | None = None,
    ) -> TimestepField:
        """Materialize one attribute at timestep ``t`` on ``grid`` (or default)."""
        g = grid if grid is not None else self._grid
        name = self._check_attribute(attribute)
        values = self.evaluate(g.points(), t=t, attribute=name).reshape(g.dims)
        return TimestepField(grid=g, values=values, timestep=int(t), name=name)

    def fields(self, timesteps, grid: UniformGrid | None = None):
        """Yield :class:`TimestepField` for each timestep in ``timesteps``."""
        for t in timesteps:
            yield self.field(t=t, grid=grid)
