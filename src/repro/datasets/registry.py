"""Dataset registry: construct datasets by name.

The experiment harness and CLI refer to datasets by their registry name
(``"hurricane"``, ``"combustion"``, ``"ionization"``); this module resolves
those names and applies resolution overrides (the CPU-scale experiment
configs run on reduced grids, see :mod:`repro.experiments.config`).
"""

from __future__ import annotations

from repro.datasets.base import AnalyticDataset
from repro.datasets.combustion import CombustionDataset
from repro.datasets.hurricane import HurricaneDataset
from repro.datasets.ionization import IonizationDataset
from repro.grid import UniformGrid

__all__ = ["available_datasets", "make_dataset", "register_dataset", "DATASETS"]

DATASETS: dict[str, type[AnalyticDataset]] = {}


def register_dataset(cls: type[AnalyticDataset]) -> type[AnalyticDataset]:
    """Register a dataset class under its ``name`` attribute.

    Returns the class so it can be used as a decorator.  Raises
    :class:`ValueError` on a duplicate name, naming both the existing and
    the new class — registries never silently overwrite.
    """
    name = cls.name
    if name in DATASETS:
        raise ValueError(
            f"dataset {name!r} already registered to {DATASETS[name]!r}; "
            f"refusing to overwrite with {cls!r}"
        )
    DATASETS[name] = cls
    return cls


register_dataset(HurricaneDataset)
register_dataset(CombustionDataset)
register_dataset(IonizationDataset)


def available_datasets() -> list[str]:
    """Registry names, sorted."""
    return sorted(DATASETS)


def make_dataset(
    name: str,
    dims: tuple[int, int, int] | None = None,
    seed: int = 0,
) -> AnalyticDataset:
    """Instantiate a dataset by name.

    Parameters
    ----------
    name:
        One of :func:`available_datasets`.
    dims:
        Optional resolution override; the grid keeps the dataset's reference
        physical extent (so a smaller ``dims`` is a coarser sampling of the
        same field, matching how the paper's data would be downsampled).
    seed:
        Deterministic variation of the generator's fixed random phases.
    """
    try:
        cls = DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None
    grid = None
    if dims is not None:
        grid = cls.default_grid().with_resolution(tuple(dims))
    return cls(grid=grid, seed=seed)
