"""Finite-difference gradients on uniform grids.

The FCNN's output layer predicts the scalar value *and* its x/y/z gradients
(Sec III-D of the paper); the gradient targets are computed from the
full-resolution field available at training time.  The multi-criteria
sampler also uses gradient magnitude as an importance criterion.
"""

from __future__ import annotations

import numpy as np

from repro.grid.uniform import UniformGrid

__all__ = ["field_gradients", "gradient_magnitude"]


def field_gradients(grid: UniformGrid, values: np.ndarray) -> np.ndarray:
    """Central-difference gradients of a scalar field.

    Parameters
    ----------
    grid:
        The grid the field lives on (provides physical spacing).
    values:
        Scalar field, flat ``(N,)`` or shaped ``grid.dims``.

    Returns
    -------
    ``(N, 3)`` array of ``(d/dx, d/dy, d/dz)`` per grid point, in flat
    (C) order.  Axes with a single grid point get zero gradient.
    """
    field = grid.validate_field(values).astype(np.float64, copy=False)
    grads = np.zeros((grid.num_points, 3), dtype=np.float64)
    for axis in range(3):
        if grid.dims[axis] == 1:
            continue
        g = np.gradient(field, grid.spacing[axis], axis=axis)
        grads[:, axis] = g.ravel()
    return grads


def gradient_magnitude(grid: UniformGrid, values: np.ndarray) -> np.ndarray:
    """Euclidean norm of the per-point gradient, flat ``(N,)`` array."""
    return np.linalg.norm(field_gradients(grid, values), axis=1)
