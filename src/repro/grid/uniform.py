"""Uniform (regular) 3D grid.

The grid model mirrors VTK ImageData: integer dimensions ``(nx, ny, nz)``,
per-axis ``spacing`` and an ``origin`` in physical space.  Scalar fields
living on the grid are stored as C-ordered ``(nx, ny, nz)`` numpy arrays;
the flat ordering used throughout the package is ``np.ravel(order="C")`` of
that array, i.e. the z index varies fastest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["UniformGrid"]


@dataclass(frozen=True)
class UniformGrid:
    """A uniform rectilinear grid in 3D physical space.

    Parameters
    ----------
    dims:
        Number of grid points along each axis, ``(nx, ny, nz)``.  Each entry
        must be >= 1.
    spacing:
        Physical distance between adjacent grid points along each axis.
        Defaults to unit spacing.
    origin:
        Physical coordinates of grid point ``(0, 0, 0)``.

    Notes
    -----
    The class is frozen (hashable, safe to share between pipeline stages);
    derived quantities are computed on demand and cached where cheap.
    """

    dims: tuple[int, int, int]
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0)
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0)

    def __post_init__(self) -> None:
        dims = tuple(int(d) for d in self.dims)
        spacing = tuple(float(s) for s in self.spacing)
        origin = tuple(float(o) for o in self.origin)
        if len(dims) != 3 or len(spacing) != 3 or len(origin) != 3:
            raise ValueError("UniformGrid is strictly 3D: dims/spacing/origin need 3 entries")
        if any(d < 1 for d in dims):
            raise ValueError(f"grid dims must be >= 1, got {dims}")
        if any(s <= 0 for s in spacing):
            raise ValueError(f"grid spacing must be > 0, got {spacing}")
        object.__setattr__(self, "dims", dims)
        object.__setattr__(self, "spacing", spacing)
        object.__setattr__(self, "origin", origin)

    # ------------------------------------------------------------------ size
    @property
    def num_points(self) -> int:
        """Total number of grid points."""
        nx, ny, nz = self.dims
        return nx * ny * nz

    @property
    def shape(self) -> tuple[int, int, int]:
        """Alias for :attr:`dims` (numpy-style name)."""
        return self.dims

    @property
    def extent(self) -> tuple[tuple[float, float], tuple[float, float], tuple[float, float]]:
        """Physical ``((x0, x1), (y0, y1), (z0, z1))`` bounds of the grid."""
        return tuple(
            (o, o + (d - 1) * s)
            for o, d, s in zip(self.origin, self.dims, self.spacing)
        )  # type: ignore[return-value]

    # ----------------------------------------------------------- coordinates
    def axis_coordinates(self, axis: int) -> np.ndarray:
        """Physical coordinates of grid points along one axis (1D array)."""
        if axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
        return self.origin[axis] + self.spacing[axis] * np.arange(self.dims[axis])

    def meshgrid(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(X, Y, Z)`` coordinate arrays, each shaped :attr:`dims`."""
        return np.meshgrid(
            self.axis_coordinates(0),
            self.axis_coordinates(1),
            self.axis_coordinates(2),
            indexing="ij",
        )

    def points(self) -> np.ndarray:
        """All grid-point coordinates as an ``(N, 3)`` array in flat order.

        Flat order matches ``field.ravel(order="C")`` for a field shaped
        :attr:`dims`.
        """
        x, y, z = self.meshgrid()
        return np.column_stack([x.ravel(), y.ravel(), z.ravel()])

    # --------------------------------------------------------------- indices
    def flat_to_multi(self, flat: np.ndarray) -> np.ndarray:
        """Convert flat indices to ``(N, 3)`` integer multi-indices."""
        flat = np.asarray(flat)
        return np.column_stack(np.unravel_index(flat, self.dims))

    def multi_to_flat(self, multi: np.ndarray) -> np.ndarray:
        """Convert ``(N, 3)`` integer multi-indices to flat indices."""
        multi = np.asarray(multi)
        return np.ravel_multi_index((multi[:, 0], multi[:, 1], multi[:, 2]), self.dims)

    def index_to_position(self, multi: np.ndarray) -> np.ndarray:
        """Physical positions of ``(N, 3)`` integer multi-indices."""
        multi = np.asarray(multi, dtype=np.float64)
        return np.asarray(self.origin) + multi * np.asarray(self.spacing)

    def position_to_index(self, positions: np.ndarray) -> np.ndarray:
        """Nearest integer multi-index for each ``(N, 3)`` physical position.

        Positions outside the grid are clamped to the boundary.
        """
        positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
        idx = np.rint((positions - np.asarray(self.origin)) / np.asarray(self.spacing))
        return np.clip(idx, 0, np.asarray(self.dims) - 1).astype(np.int64)

    def contains(self, positions: np.ndarray) -> np.ndarray:
        """Boolean mask: which of the ``(N, 3)`` positions fall inside the grid."""
        positions = np.atleast_2d(np.asarray(positions, dtype=np.float64))
        lo = np.asarray(self.origin)
        hi = lo + (np.asarray(self.dims) - 1) * np.asarray(self.spacing)
        eps = 1e-9 * np.maximum(1.0, np.abs(hi - lo))
        return np.all((positions >= lo - eps) & (positions <= hi + eps), axis=1)

    # ---------------------------------------------------------------- fields
    def validate_field(self, values: np.ndarray) -> np.ndarray:
        """Check that ``values`` matches the grid and return it shaped 3D.

        Accepts either a flat ``(num_points,)`` array (C order) or a 3D array
        shaped :attr:`dims`.
        """
        values = np.asarray(values)
        if values.shape == self.dims:
            return values
        if values.shape == (self.num_points,):
            return values.reshape(self.dims)
        raise ValueError(
            f"field shape {values.shape} does not match grid dims {self.dims}"
        )

    def empty_field(self, fill: float = np.nan, dtype=np.float64) -> np.ndarray:
        """Allocate a field shaped :attr:`dims` filled with ``fill``."""
        return np.full(self.dims, fill, dtype=dtype)

    # ------------------------------------------------------------- factories
    def with_resolution(self, dims: tuple[int, int, int]) -> "UniformGrid":
        """Resample this grid's physical extent at a new point count.

        The returned grid spans the same physical bounds with ``dims``
        points per axis (spacing is recomputed; single-point axes keep the
        original spacing).
        """
        new_spacing = []
        for d_new, d_old, s_old in zip(dims, self.dims, self.spacing):
            if d_new < 1:
                raise ValueError(f"new dims must be >= 1, got {dims}")
            if d_new == 1 or d_old == 1:
                new_spacing.append(s_old)
            else:
                new_spacing.append(s_old * (d_old - 1) / (d_new - 1))
        return UniformGrid(tuple(dims), tuple(new_spacing), self.origin)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        nx, ny, nz = self.dims
        return (
            f"UniformGrid {nx}x{ny}x{nz} ({self.num_points} pts), "
            f"spacing={self.spacing}, origin={self.origin}"
        )
