"""Regular-grid data model.

Every dataset in the paper is a 3D regular grid (VTK ImageData).  This
package provides :class:`UniformGrid` — dimensions, spacing, origin — plus
coordinate generation, index<->position conversion, gradient computation and
domain windows used by the volume-upscaling experiment (Fig 13).
"""

from repro.grid.uniform import UniformGrid
from repro.grid.gradients import field_gradients, gradient_magnitude
from repro.grid.domain import DomainWindow, upscaled_grid

__all__ = [
    "UniformGrid",
    "field_gradients",
    "gradient_magnitude",
    "DomainWindow",
    "upscaled_grid",
]
