"""Domain windows and resolution changes.

Experiment 3 (Fig 13) trains on a low-resolution grid and reconstructs a
2x-per-axis higher resolution grid whose *physical extent is shifted* so the
fine-tuned model must generalize across spatial domains.  These helpers
express that manipulation explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.uniform import UniformGrid

__all__ = ["DomainWindow", "upscaled_grid"]


@dataclass(frozen=True)
class DomainWindow:
    """A fractional sub-window of a grid's physical extent.

    ``lo`` and ``hi`` are per-axis fractions in ``[0, 1]`` of the source
    extent; e.g. ``DomainWindow((0.25, 0.25, 0.0), (0.75, 0.75, 1.0))`` is
    the centered half-width window in x and y.
    """

    lo: tuple[float, float, float]
    hi: tuple[float, float, float]

    def __post_init__(self) -> None:
        lo = tuple(float(v) for v in self.lo)
        hi = tuple(float(v) for v in self.hi)
        if len(lo) != 3 or len(hi) != 3:
            raise ValueError("DomainWindow lo/hi need 3 entries each")
        for a, b in zip(lo, hi):
            if not (0.0 <= a < b <= 1.0):
                raise ValueError(f"window fractions must satisfy 0 <= lo < hi <= 1, got {lo}..{hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    def apply(self, grid: UniformGrid, dims: tuple[int, int, int]) -> UniformGrid:
        """Materialize the window of ``grid`` as a new grid with ``dims`` points."""
        origin, spacing = [], []
        for axis in range(3):
            o, s, d = grid.origin[axis], grid.spacing[axis], grid.dims[axis]
            span = (d - 1) * s
            w_lo = o + self.lo[axis] * span
            w_hi = o + self.hi[axis] * span
            n = dims[axis]
            origin.append(w_lo)
            spacing.append((w_hi - w_lo) / (n - 1) if n > 1 else s)
        return UniformGrid(tuple(dims), tuple(spacing), tuple(origin))


def upscaled_grid(
    grid: UniformGrid,
    factor: int | tuple[int, int, int] = 2,
    shift_fraction: tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> UniformGrid:
    """Grid with ``factor``x points per axis, optionally domain-shifted.

    Parameters
    ----------
    grid:
        Source (low-resolution) grid.
    factor:
        Per-axis (or scalar) multiplier on the point count.
    shift_fraction:
        Physical shift of the origin expressed as a fraction of the source
        extent per axis — used by Fig 13 to place the high-resolution data
        over a *different* spatial domain.
    """
    if isinstance(factor, int):
        factor = (factor, factor, factor)
    if any(f < 1 for f in factor):
        raise ValueError(f"upscale factor must be >= 1 per axis, got {factor}")
    dims = tuple(d * f for d, f in zip(grid.dims, factor))
    base = grid.with_resolution(dims)
    shift = tuple(
        sf * (d - 1) * s
        for sf, d, s in zip(shift_fraction, grid.dims, grid.spacing)
    )
    origin = tuple(o + dv for o, dv in zip(base.origin, shift))
    return UniformGrid(base.dims, base.spacing, origin)
