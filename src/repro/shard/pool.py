"""Shard-parallel reconstruction over the shared-memory transport.

:class:`ShardReconstructionPool` speaks the same sink protocol as
:class:`repro.perf.campaign.WarmReconstructionPool` (``bind`` once, then
``publish``/``reconstruct`` per timestep) but decomposes each timestep's
void prediction **spatially**: every task covers a chunk of one shard's
owned (interior) voids, reconstructed from only the samples inside that
shard's halo-extended box.

Halo exchange rides the existing :class:`~repro.perf.shm.SharedArrayBundle`:
the parent publishes the *global* sample values once per timestep, and each
shard worker gathers its extended-box subset — interior-owned samples plus
the halo samples owned by neighboring shards — through a precomputed
selection (``sample_order``).  No point-to-point messages, no duplicated
value segments; a sample sitting in ``h`` halos is read ``h + 1`` times
from the one shared row.

The stitcher is the ``void_order`` permutation: workers write their chunk's
predictions into the shard-grouped ``out`` segment contiguously, and the
parent scatters it back to global void order (the permutation was proven a
partition of unity at bind time), overlays the exact sample values and
applies the serial path's non-finite fallback — so a seam defect can only
come from neighbor selection, which the canonical kNN tie-break plus an
adequate halo makes bit-identical to the unsharded path (see
:meth:`repro.shard.ShardedCampaignGeometry.seam_check`).

:class:`LocalShardSink` executes the identical per-shard compute in-process
— the fallback when shared memory is unavailable and the reference the pool
is tested bit-identical against.
"""

from __future__ import annotations

import uuid

import numpy as np

from repro.core.features import TIE_BREAK_PAD, canonical_neighbors
from repro.obs import counter as obs_counter
from repro.obs import record_event, span
from repro.parallel.chunking import aligned_chunks
from repro.parallel.executor import ParallelExecutor
from repro.perf import shm as _shm
from repro.perf.campaign import CampaignGeometry, _nonfinite_fallback, _predict_block
from repro.perf.shm import SharedArrayBundle
from repro.perf.weights import apply_weight_delta, restore_weights, snapshot_weights, weight_delta
from repro.resilience.report import ReconstructionReport
from repro.sampling.base import SampledField
from repro.shard.geometry import ShardedCampaignGeometry
from repro.shard.plan import ShardPlan

__all__ = [
    "ShardReconstructionPool",
    "LocalShardSink",
    "make_shard_sink",
    "SHARD_SCOPES",
]

#: Fine-tune scopes a shard sink understands.  ``"global"``: one model per
#: timestep reconstructs every shard (bit-identical to unsharded when the
#: halo holds the kNN stencil).  ``"local"``: one model per (timestep,
#: shard), trained on the shard's own extended box with a shard-local
#: normalizer (SNR-parity, not bit-identity, vs unsharded).
SHARD_SCOPES = ("global", "local")

#: Per-process cap on cached shard worker states.
_SHARD_STATE_MAX = 4


def _shard_chunks(length: int, num_chunks: int, block: int) -> list[tuple[int, int]]:
    """Chunk one shard's void segment, never leaving a 1-row matmul block.

    Within a shard the query rows are a gathered subset of the global void
    order, so chunk boundaries need no *global* alignment for bit-identity:
    the network's wide hidden gemms are row-subset deterministic for blocks
    of two or more rows, and the skinny output head — where BLAS kernels
    *do* vary their accumulation order with the row count — runs a
    fixed-order einsum at inference (``_DETERMINISTIC_N`` in
    :mod:`repro.nn.layers`).  Single-row blocks would route the hidden
    gemms through gemv, whose accumulation order differs, so any chunk
    whose trailing predict block would be one row is reshaped (split or
    merged) to avoid it.
    """
    chunks = [list(c) for c in aligned_chunks(length, num_chunks, block)]
    if not chunks:
        return []
    start, stop = chunks[-1]
    if (stop - start) % block == 1 and length > 1:
        # Rewrite the tail so the final chunk is exactly two rows.  The
        # chunk before it ends at size ≡ block-1 (mod block): for any
        # block >= 3 (production uses >= 16384) neither part's trailing
        # predict block is a single row.
        if stop - start == 1:
            prev = chunks.pop()
            start = chunks[-1][0]
            assert prev[1] == stop
        chunks[-1] = [start, stop - 2]
        if chunks[-1][0] == chunks[-1][1]:
            chunks.pop()
        chunks.append([stop - 2, stop])
    return [tuple(c) for c in chunks]


# --------------------------------------------------------------------------
# worker-side compute state


class _ShardContext:
    """One shard's warm reconstruction inputs inside a worker process."""

    def __init__(self, state: "_ShardState", s: int) -> None:
        from scipy.spatial import cKDTree

        init = state.init
        geometry = state.geometry
        shard = state.plan.shards[s]
        soff = init["sample_offsets"]
        self.sel = state.sample_order[soff[s] : soff[s + 1]]
        global_sample = geometry.indices[self.sel]
        if init["scope"] == "local":
            self.norm_grid = shard.local_grid
            self.shell = SampledField(
                grid=shard.local_grid,
                indices=shard.global_to_local(global_sample),
                values=np.zeros(self.sel.size, dtype=np.float64),
                fraction=geometry.fraction,
            )
        else:
            # Global scope keeps the shell on the *global* grid so sample
            # positions (and therefore features) are bitwise the unsharded
            # ones; only the candidate set shrinks to the extended box.
            self.norm_grid = geometry.grid
            self.shell = SampledField(
                grid=geometry.grid,
                indices=global_sample,
                values=np.zeros(self.sel.size, dtype=np.float64),
                fraction=geometry.fraction,
            )
        self.tree = cKDTree(self.shell.points)
        self.shard = shard
        self._slabs: dict[tuple[int, int, int], tuple[np.ndarray, np.ndarray]] = {}

    def slab(self, state: "_ShardState", start: int, stop: int, num_neighbors: int, workers: int):
        """Cached (query positions, canonical neighbor indices) per chunk."""
        key = (start, stop, num_neighbors)
        cached = self._slabs.get(key)
        if cached is not None:
            return cached
        voff = state.init["void_offsets"]
        owned = state.void_order[voff[self.shard.index] + start : voff[self.shard.index] + stop]
        if state.init["scope"] == "local":
            lg = self.shard.local_grid
            local = self.shard.global_to_local(state.geometry.void_indices[owned])
            points = lg.index_to_position(lg.flat_to_multi(local))
        else:
            points = state.geometry.void_points[owned]
        k = min(num_neighbors, self.shell.num_samples)
        kq = min(k + TIE_BREAK_PAD, self.shell.num_samples)
        dist, idx = self.tree.query(points, k=kq, workers=workers)
        if kq == 1:
            dist, idx = dist[:, None], idx[:, None]
        idx = canonical_neighbors(dist, idx, k)
        if k < num_neighbors:
            pad = np.repeat(idx[:, -1:], num_neighbors - k, axis=1)
            idx = np.concatenate([idx, pad], axis=1)
        self._slabs[key] = (points, idx)
        return points, idx


class _ShardState:
    """Warm per-process state for one bound shard campaign.

    Works over any mapping of the bundle's arrays — shared-memory views in
    pool workers, plain arrays inside :class:`LocalShardSink` — so both
    sinks run the exact same compute.
    """

    def __init__(self, arrays: dict, init: dict, handles: list | None = None) -> None:
        from repro.core.normalization import Normalizer
        from repro.core.reconstructor import FCNNReconstructor
        from repro.nn.network import from_spec

        self.arrays = arrays
        self.handles = handles if handles is not None else []
        self.init = init
        self.plan = ShardPlan.create(init["grid"], init["counts"], init["halo"])
        indices = np.array(arrays["indices"], dtype=np.int64, copy=True)
        self.geometry = CampaignGeometry(init["grid"], indices, init["fraction"])
        self.sample_order = np.array(arrays["sample_order"], dtype=np.int64, copy=True)
        self.void_order = np.array(arrays["void_order"], dtype=np.int64, copy=True)
        self.models: dict[str, FCNNReconstructor] = {}
        self.num_weights: dict[str, int] = {}
        self.scratch: dict[str, np.ndarray] = {}
        for tag in init["tags"]:
            meta = init["models"][tag]
            recon = FCNNReconstructor(**meta["ctor"])
            recon.model = from_spec(meta["spec"])
            recon.dtype_policy.cast_model(recon.model)
            recon.normalizer = Normalizer.from_dict(meta["normalizer"])
            self.models[tag] = recon
            self.num_weights[tag] = int(meta["num_weights"])
            self.scratch[tag] = np.empty(meta["num_weights"], dtype=np.float64)
        self._contexts: dict[int, _ShardContext] = {}

    def context(self, s: int) -> _ShardContext:
        ctx = self._contexts.get(s)
        if ctx is None:
            ctx = self._contexts[s] = _ShardContext(self, s)
        return ctx

    def run(self, payload: dict) -> int:
        """Reconstruct one (slot, tag, shard, chunk) into the ``out`` segment."""
        slot = int(payload["slot"])
        tag = payload["tag"]
        ti = int(payload["tag_index"])
        s = int(payload["shard"])
        start, stop = int(payload["start"]), int(payload["stop"])
        recon = self.models[tag]
        w = self.num_weights[tag]
        ctx = self.context(s)

        flat = apply_weight_delta(
            self.arrays["weights_base"][ti, :w],
            self.arrays["weights_delta"][slot, ti, s, :w],
            out=self.scratch[tag],
        )
        restore_weights(recon.model, flat)
        np.take(self.arrays["values"][slot], ctx.sel, out=ctx.shell.values)

        extractor = recon.extractor
        points, idx = ctx.slab(self, start, stop, extractor.num_neighbors, extractor.workers)
        if extractor.cache_geometry:
            extractor._cached_sample = ctx.shell
            extractor._cached_tree = ctx.tree
            extractor._cached_query = points
            extractor._cached_idx = idx
        base = int(self.init["void_offsets"][s])
        self.arrays["out"][slot, ti, base + start : base + stop] = recon.predict_values(
            ctx.shell, points, ctx.norm_grid
        )
        return stop - start

    def close(self) -> None:
        self.arrays = {}
        self._contexts.clear()
        for shm in self.handles:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still referenced
                pass
        self.handles = []


#: (campaign id, epoch) -> warm shard state, module-level so pool workers
#: (and the in-process serial fallback) keep attachments across tasks.
_SHARD_STATE: dict[tuple[str, int], _ShardState] = {}


def _evict_shard_state(campaign: str, keep_epoch: int | None = None) -> None:
    for key in [k for k in _SHARD_STATE if k[0] == campaign and k[1] != keep_epoch]:
        _SHARD_STATE.pop(key).close()


def _shard_state(payload: dict) -> _ShardState:
    key = (payload["campaign"], payload["epoch"])
    state = _SHARD_STATE.get(key)
    if state is not None:
        return state
    _evict_shard_state(payload["campaign"], keep_epoch=payload["epoch"])
    while len(_SHARD_STATE) >= _SHARD_STATE_MAX:
        _SHARD_STATE.pop(next(iter(_SHARD_STATE))).close()
    init = payload["init"]
    handles: list = []
    arrays: dict[str, np.ndarray] = {}
    for name, spec in init["specs"].items():
        shm = _shm._attach(spec.shm_name)
        handles.append(shm)
        arrays[name] = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    state = _ShardState(arrays, init, handles)
    _SHARD_STATE[key] = state
    return state


def _shard_worker(payload: dict) -> int:
    """Pool task: attach (once), then reconstruct one shard chunk."""
    return _shard_state(payload).run(payload)


# --------------------------------------------------------------------------
# shared bind/publish plumbing


def _model_metas(models: dict) -> tuple[dict, dict]:
    """Per-tag rebuild metadata + base flat weights (WarmReconstructionPool's)."""
    metas, base = {}, {}
    for tag, model in models.items():
        network, normalizer = model._require_trained()
        flat = snapshot_weights(network).data
        base[tag] = np.array(flat, dtype=np.float64, copy=True)
        metas[tag] = {
            "ctor": {
                "hidden_layers": model.hidden_layers,
                "num_neighbors": model.extractor.num_neighbors,
                "include_gradients": model.extractor.include_gradients,
                "learning_rate": model.learning_rate,
                "batch_size": model.batch_size,
                "gradient_loss_weight": model.gradient_loss_weight,
                "seed": model.seed,
                "fast_path": model.fast_path,
                "dtype_policy": model.dtype_policy.compute,
            },
            "spec": network.spec(),
            "normalizer": normalizer.as_dict(),
            "num_weights": int(flat.size),
        }
    return metas, base


def _write_deltas(
    delta_view: np.ndarray,
    slot: int,
    tags: tuple[str, ...],
    base: dict[str, np.ndarray],
    num_shards: int,
    weights: dict,
) -> None:
    """Encode per-tag weights into per-shard XOR deltas for one slot.

    A flat ``(W,)`` vector (global scope: one model for every shard) is
    encoded once and broadcast; an ``(S, W)`` stack (local scope) gets one
    delta row per shard.
    """
    for ti, tag in enumerate(tags):
        flat = np.asarray(weights[tag], dtype=np.float64)
        if flat.ndim == 1:
            delta = weight_delta(base[tag], flat)
            delta_view[slot, ti, :, : flat.size] = delta[None, :]
        else:
            if flat.shape[0] != num_shards:
                raise ValueError(
                    f"per-shard weights for {tag!r} must have {num_shards} rows, "
                    f"got {flat.shape[0]}"
                )
            for s in range(num_shards):
                delta_view[slot, ti, s, : flat.shape[1]] = weight_delta(
                    base[tag], flat[s]
                )


def _chunk_payloads(
    sharded: ShardedCampaignGeometry, chunks_per_shard: int, block: int
) -> list[dict]:
    """Static (shard, chunk) task templates covering every owned void."""
    payloads = []
    for s, sg in enumerate(sharded.shards):
        for start, stop in _shard_chunks(sg.num_voids, chunks_per_shard, block):
            payloads.append({"shard": s, "start": start, "stop": stop})
    return payloads


def _assemble(
    geometry: CampaignGeometry,
    void_order: np.ndarray,
    grouped_pred: np.ndarray,
    values: np.ndarray,
    on_nonfinite: str,
    report: ReconstructionReport,
) -> np.ndarray:
    """Stitch shard-grouped predictions into the global field.

    ``void_order`` is a proven permutation of the void range, so the
    scatter writes every void exactly once; sample locations keep their
    exact published values; the non-finite fallback is the serial path's
    (global tree, global counters) — bit-identical to the unsharded sinks.
    """
    pred = np.empty(geometry.num_voids, dtype=np.float64)
    pred[void_order] = grouped_pred
    if not np.isfinite(pred).all():
        if on_nonfinite == "raise":
            from repro.resilience.health import NumericalHealthError

            count = int((~np.isfinite(pred)).sum())
            raise NumericalHealthError(
                f"FCNN produced {count}/{pred.size} non-finite predictions; "
                "the model state is numerically poisoned"
            )
        pred = _nonfinite_fallback(
            pred, geometry.points, values, geometry.void_points, report
        )
    out = geometry.grid.empty_field().ravel()
    out[geometry.indices] = values
    out[geometry.void_indices] = pred
    return out.reshape(geometry.grid.dims)


# --------------------------------------------------------------------------
# sinks


class LocalShardSink:
    """In-process shard sink — the pool's serial twin and shm-less fallback.

    Runs the identical per-shard compute (:class:`_ShardState`) over plain
    arrays, one chunk at a time, so it is bit-identical to the pool by
    construction and keeps working when shared memory is unavailable.
    """

    def __init__(self, slots: int = 2, scope: str = "global") -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if scope not in SHARD_SCOPES:
            raise ValueError(f"scope must be one of {SHARD_SCOPES}, got {scope!r}")
        self.slots = int(slots)
        self.scope = scope
        self.geometry: CampaignGeometry | None = None
        self.sharded: ShardedCampaignGeometry | None = None
        self._state: _ShardState | None = None
        self._tags: tuple[str, ...] = ()
        self._base: dict[str, np.ndarray] = {}
        self._payloads: dict[str, list[dict]] = {}
        self._timesteps: list[int | None] = []
        self._seq = 0

    @property
    def tags(self) -> tuple[str, ...]:
        return self._tags

    def bind(self, sharded: ShardedCampaignGeometry, models: dict) -> None:
        self.close()
        tags = tuple(models)
        if not tags:
            raise ValueError("bind needs at least one tagged model")
        geometry = sharded.geometry
        metas, base = _model_metas(models)
        width = max(meta["num_weights"] for meta in metas.values())
        num_shards = sharded.num_shards
        arrays = {
            "indices": np.array(geometry.indices, copy=True),
            "values": np.zeros((self.slots, geometry.num_samples), dtype=np.float64),
            "weights_base": np.zeros((len(tags), width), dtype=np.float64),
            "weights_delta": np.zeros(
                (self.slots, len(tags), num_shards, width), dtype=np.uint64
            ),
            "out": np.zeros((self.slots, len(tags), geometry.num_voids), dtype=np.float64),
            "sample_order": np.array(sharded.sample_order, copy=True),
            "void_order": np.array(sharded.void_order, copy=True),
        }
        for ti, tag in enumerate(tags):
            arrays["weights_base"][ti, : base[tag].size] = base[tag]
        init = {
            "grid": geometry.grid,
            "fraction": geometry.fraction,
            "counts": sharded.plan.counts,
            "halo": sharded.plan.halo,
            "scope": self.scope,
            "tags": tags,
            "models": metas,
            "sample_offsets": tuple(int(v) for v in sharded.sample_offsets),
            "void_offsets": tuple(int(v) for v in sharded.void_offsets),
        }
        self._state = _ShardState(arrays, init)
        self._payloads = {
            tag: _chunk_payloads(sharded, 1, _predict_block(models[tag])) for tag in tags
        }
        self.geometry = geometry
        self.sharded = sharded
        self._tags = tags
        self._base = base
        self._timesteps = [None] * self.slots
        self._seq = 0

    def publish(self, timestep: int, values: np.ndarray, weights: dict) -> int:
        if self._state is None or self.sharded is None:
            raise RuntimeError("sink is not bound; call bind() first")
        if set(weights) != set(self._tags):
            raise ValueError(
                f"publish needs weights for every bound tag {sorted(self._tags)}, "
                f"got {sorted(weights)}"
            )
        slot = self._seq % self.slots
        self._seq += 1
        self._state.arrays["values"][slot][...] = values
        _write_deltas(
            self._state.arrays["weights_delta"],
            slot,
            self._tags,
            self._base,
            self.sharded.num_shards,
            weights,
        )
        self._timesteps[slot] = int(timestep)
        return slot

    def reconstruct(
        self, slot: int, tag: str, on_nonfinite: str = "fallback"
    ) -> tuple[np.ndarray, ReconstructionReport]:
        if self._state is None or self.geometry is None or self.sharded is None:
            raise RuntimeError("sink is not bound; call bind() first")
        if on_nonfinite not in ("fallback", "raise"):
            raise ValueError(
                f"on_nonfinite must be 'fallback' or 'raise', got {on_nonfinite!r}"
            )
        ti = self._tags.index(tag)
        with span(
            "campaign.shard.reconstruct",
            tag=tag,
            shards=self.sharded.num_shards,
            chunks=len(self._payloads[tag]),
            timestep=self._timesteps[slot],
        ):
            for template in self._payloads[tag]:
                self._state.run(
                    {"slot": int(slot), "tag": tag, "tag_index": ti, **template}
                )
            report = ReconstructionReport(
                total_points=int(self.geometry.grid.num_points),
                fallback_method="nearest",
            )
            values = self._state.arrays["values"][slot]
            grouped = np.array(self._state.arrays["out"][slot, ti], copy=True)
            return (
                _assemble(
                    self.geometry,
                    self._state.void_order,
                    grouped,
                    values,
                    on_nonfinite,
                    report,
                ),
                report,
            )

    def close(self) -> None:
        if self._state is not None:
            self._state.close()
        self._state = None
        self.geometry = None
        self.sharded = None
        self._tags = ()
        self._base = {}
        self._payloads = {}

    def __enter__(self) -> "LocalShardSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class ShardReconstructionPool:
    """Persistent shard workers reconstructing timesteps via shared memory.

    One :class:`SharedArrayBundle` per campaign carries

    ========================  ===================================================
    ``indices``               ``(M,)`` global sampled flat indices — shipped once
    ``values``                ``(slots, M)`` global per-slot sample values
    ``weights_base``          ``(T, W)`` base flat weights per tag — shipped once
    ``weights_delta``         ``(slots, T, S, W)`` per-shard XOR deltas
    ``out``                   ``(slots, T, K)`` predictions, grouped by shard
    ``sample_order``          halo-exchange selections (all shards, concatenated)
    ``void_order``            the stitching permutation (partition of unity)
    ========================  ===================================================

    After :meth:`bind`, task payloads carry only ``(campaign id, epoch,
    slot, tag, shard, chunk bounds)`` plus the static init block; workers
    attach once and keep per-shard kd-trees, neighbor slabs and rebuilt
    models warm across every timestep.  Crashed workers get the executor's
    recovery semantics (serial in-process re-run, pool recycle), identical
    to :class:`~repro.perf.campaign.WarmReconstructionPool`.
    """

    def __init__(
        self,
        executor: ParallelExecutor | None = None,
        max_workers: int | None = None,
        num_chunks: int | None = None,
        slots: int = 2,
        scope: str = "global",
        worker_fn=None,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if scope not in SHARD_SCOPES:
            raise ValueError(f"scope must be one of {SHARD_SCOPES}, got {scope!r}")
        self.slots = int(slots)
        self.scope = scope
        self._owns_executor = executor is None
        self.executor = executor if executor is not None else ParallelExecutor(
            max_workers=max_workers, retries=1, persistent=True
        )
        self.num_chunks = num_chunks
        self.worker_fn = worker_fn if worker_fn is not None else _shard_worker
        self.campaign_id = uuid.uuid4().hex
        self.epoch = -1
        self.geometry: CampaignGeometry | None = None
        self.sharded: ShardedCampaignGeometry | None = None
        self._bundle: SharedArrayBundle | None = None
        self._tags: tuple[str, ...] = ()
        self._base: dict[str, np.ndarray] = {}
        self._payloads: dict[str, list[dict]] = {}
        self._init: dict = {}
        self._timesteps: list[int | None] = []
        self._seq = 0

    @property
    def tags(self) -> tuple[str, ...]:
        return self._tags

    # ----------------------------------------------------------------- bind
    def bind(self, sharded: ShardedCampaignGeometry, models: dict) -> None:
        """Ship geometry, shard selections + base weights to shared memory.

        Raises ``OSError`` when shared memory is unavailable — callers
        degrade to :class:`LocalShardSink` (see :func:`make_shard_sink`).
        """
        self.unbind()
        tags = tuple(models)
        if not tags:
            raise ValueError("bind needs at least one tagged model")
        geometry = sharded.geometry
        metas, base = _model_metas(models)
        width = max(meta["num_weights"] for meta in metas.values())
        num_shards = sharded.num_shards
        base_matrix = np.zeros((len(tags), width), dtype=np.float64)
        for ti, tag in enumerate(tags):
            base_matrix[ti, : base[tag].size] = base[tag]
        chunks_per_shard = max(1, -(-self._target_chunks() // num_shards))
        self._bundle = SharedArrayBundle.create(
            {
                "indices": geometry.indices,
                "values": np.zeros((self.slots, geometry.num_samples), dtype=np.float64),
                "weights_base": base_matrix,
                "weights_delta": np.zeros(
                    (self.slots, len(tags), num_shards, width), dtype=np.uint64
                ),
                "out": np.zeros(
                    (self.slots, len(tags), geometry.num_voids), dtype=np.float64
                ),
                "sample_order": np.asarray(sharded.sample_order, dtype=np.int64),
                "void_order": np.asarray(sharded.void_order, dtype=np.int64),
            }
        )
        obs_counter("campaign.shm_bundles_created").inc()
        record_event(
            "campaign.shard.bound",
            shards=num_shards,
            counts=list(sharded.plan.counts),
            halo=sharded.plan.halo,
            scope=self.scope,
            halo_samples=int(sum(sharded.halo_imports())),
        )
        self.epoch += 1
        self.geometry = geometry
        self.sharded = sharded
        self._tags = tags
        self._base = base
        self._payloads = {
            tag: _chunk_payloads(sharded, chunks_per_shard, _predict_block(models[tag]))
            for tag in tags
        }
        self._timesteps = [None] * self.slots
        self._seq = 0
        self._init = {
            "specs": self._bundle.specs,
            "grid": geometry.grid,
            "fraction": geometry.fraction,
            "counts": sharded.plan.counts,
            "halo": sharded.plan.halo,
            "scope": self.scope,
            "tags": tags,
            "models": metas,
            "sample_offsets": tuple(int(v) for v in sharded.sample_offsets),
            "void_offsets": tuple(int(v) for v in sharded.void_offsets),
        }

    def _target_chunks(self) -> int:
        if self.num_chunks is not None:
            return int(self.num_chunks)
        return max(1, self.executor.max_workers)

    # -------------------------------------------------------------- publish
    def publish(self, timestep: int, values: np.ndarray, weights: dict) -> int:
        """Write global sample values + per-shard weight deltas to a slot.

        ``weights`` maps each tag to either a flat ``(W,)`` vector (global
        scope: every shard reconstructs with the same model) or an
        ``(S, W)`` stack (local scope: one fine-tuned model per shard).
        Publishing the *global* values row once is the halo exchange:
        workers gather their extended-box subsets — neighbors' halo
        samples included — via the shared ``sample_order`` selections.
        """
        if self._bundle is None or self.sharded is None:
            raise RuntimeError("pool is not bound; call bind() first")
        if set(weights) != set(self._tags):
            raise ValueError(
                f"publish needs weights for every bound tag {sorted(self._tags)}, "
                f"got {sorted(weights)}"
            )
        slot = self._seq % self.slots
        self._seq += 1
        self._bundle.view("values")[slot][...] = values
        _write_deltas(
            self._bundle.view("weights_delta"),
            slot,
            self._tags,
            self._base,
            self.sharded.num_shards,
            weights,
        )
        self._timesteps[slot] = int(timestep)
        return slot

    # ---------------------------------------------------------- reconstruct
    def reconstruct(
        self, slot: int, tag: str, on_nonfinite: str = "fallback"
    ) -> tuple[np.ndarray, ReconstructionReport]:
        """Reconstruct one published slot: shard chunks fan out, parent stitches."""
        if self._bundle is None or self.geometry is None or self.sharded is None:
            raise RuntimeError("pool is not bound; call bind() first")
        if on_nonfinite not in ("fallback", "raise"):
            raise ValueError(
                f"on_nonfinite must be 'fallback' or 'raise', got {on_nonfinite!r}"
            )
        geometry = self.geometry
        ti = self._tags.index(tag)
        payloads = [
            {
                "campaign": self.campaign_id,
                "epoch": self.epoch,
                "init": self._init,
                "slot": int(slot),
                "tag": tag,
                "tag_index": ti,
                **template,
            }
            for template in self._payloads[tag]
        ]
        report = ReconstructionReport(
            total_points=int(geometry.grid.num_points), fallback_method="nearest"
        )
        with span(
            "campaign.shard.reconstruct",
            tag=tag,
            shards=self.sharded.num_shards,
            chunks=len(payloads),
            timestep=self._timesteps[slot],
        ):
            outcomes = self.executor.map_outcomes(self.worker_fn, payloads)
            obs_counter("campaign.shard.chunks").inc(len(payloads))
            for outcome in outcomes:
                if outcome.recovered is not None:
                    obs_counter("campaign.pool.recovered").inc()
                    record_event(
                        "campaign.chunk_recovered",
                        tag=tag,
                        chunk=outcome.index,
                        how=outcome.recovered,
                    )
                if not outcome.ok:
                    if outcome.exception is not None:
                        raise outcome.exception
                    raise RuntimeError(
                        f"shard chunk {outcome.index} ({tag}) failed: {outcome.error}"
                    )
            values = self._bundle.view("values")[slot]
            grouped = np.array(self._bundle.view("out")[slot, ti], copy=True)
            return (
                _assemble(
                    geometry,
                    self.sharded.void_order,
                    grouped,
                    values,
                    on_nonfinite,
                    report,
                ),
                report,
            )

    # ------------------------------------------------------------- teardown
    def unbind(self) -> None:
        """Release the current campaign's shared segments (keeps the executor)."""
        bundle, self._bundle = self._bundle, None
        if bundle is not None:
            bundle.close()
        _evict_shard_state(self.campaign_id)
        self.geometry = None
        self.sharded = None
        self._tags = ()
        self._base = {}
        self._payloads = {}
        self._init = {}

    def close(self) -> None:
        self.unbind()
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "ShardReconstructionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def make_shard_sink(
    sharded: ShardedCampaignGeometry,
    models: dict,
    *,
    executor: ParallelExecutor | None = None,
    max_workers: int | None = None,
    num_chunks: int | None = None,
    slots: int = 2,
    scope: str = "global",
    warm_pool: bool = True,
):
    """Bind the best available shard sink for this environment.

    Mirrors :func:`repro.perf.campaign.make_reconstruction_sink`: the
    shared-memory pool when available, the in-process
    :class:`LocalShardSink` otherwise — both speak the standard sink
    protocol and produce bit-identical fields.
    """
    if warm_pool:
        pool = ShardReconstructionPool(
            executor=executor,
            max_workers=max_workers,
            num_chunks=num_chunks,
            slots=slots,
            scope=scope,
        )
        try:
            pool.bind(sharded, models)
            return pool
        except OSError:
            pool.close()
            record_event("campaign.pool_unavailable", fallback="local")
        except BaseException:
            pool.close()
            raise
    sink = LocalShardSink(slots=slots, scope=scope)
    sink.bind(sharded, models)
    return sink
