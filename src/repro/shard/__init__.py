"""Spatial domain decomposition: shard-parallel campaigns with halo exchange.

ROADMAP item 2.  A campaign grid is split into axis-aligned subdomains
(:class:`ShardPlan`/:class:`Shard`, with halo/ghost zones sized to the
kNN feature stencil), each shard gets its own view of the campaign's
sampled-location geometry (:class:`ShardedCampaignGeometry`), fine-tuning
can go per-shard through the batched engine (:func:`fine_tune_shards`),
and reconstruction fans out shard-by-shard over the shared-memory
transport with halo exchange (:class:`ShardReconstructionPool` /
:class:`LocalShardSink`) before the stitcher reassembles the global field.

Wired into :meth:`repro.core.ReconstructionPipeline.run_campaign`
(``shards=``/``halo=``/``shard_scope=``), :class:`repro.insitu.InSituWriter`
and ``repro campaign --shards AxBxC --halo N``.  See
docs/PERFORMANCE.md ("Shard-parallel campaigns") and docs/API.md.
"""

from repro.shard.geometry import (
    SeamReport,
    ShardGeometry,
    ShardSeamStats,
    ShardedCampaignGeometry,
)
from repro.shard.plan import Shard, ShardPlan, parse_shards, suggest_halo
from repro.shard.pool import (
    SHARD_SCOPES,
    LocalShardSink,
    ShardReconstructionPool,
    make_shard_sink,
)
from repro.shard.training import fine_tune_shards, shard_field, shard_sample

__all__ = [
    "Shard",
    "ShardPlan",
    "parse_shards",
    "suggest_halo",
    "ShardGeometry",
    "ShardedCampaignGeometry",
    "SeamReport",
    "ShardSeamStats",
    "SHARD_SCOPES",
    "LocalShardSink",
    "ShardReconstructionPool",
    "make_shard_sink",
    "fine_tune_shards",
    "shard_field",
    "shard_sample",
]
