"""Per-shard fine-tuning through the batched multi-model engine.

Local-scope sharded campaigns train one model per (timestep, shard): each
shard's model sees only its halo-extended box — the cropped field, the
training samples that fall inside it, and a normalizer anchored to the
shard's local grid.  All ``timesteps x shards`` members are submitted to
:meth:`~repro.core.reconstructor.FCNNReconstructor.fine_tune_batch` in one
call, so they advance together through the PR 8 :class:`~repro.nn.batched`
``ModelStack`` block schedule (members whose training matrices differ in
row count are grouped into separate stacks internally; bits never depend
on group size).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import TimestepField
from repro.sampling.base import SampledField
from repro.shard.plan import Shard, ShardPlan

__all__ = ["shard_field", "shard_sample", "fine_tune_shards"]


def shard_field(shard: Shard, field: TimestepField) -> TimestepField:
    """Crop a global field to one shard's halo-extended box (local grid)."""
    if field.grid != shard.grid:
        raise ValueError("field lives on a different grid than the shard plan")
    sl = tuple(slice(l, h) for l, h in zip(shard.ext_lo, shard.ext_hi))
    return TimestepField(
        grid=shard.local_grid,
        values=np.ascontiguousarray(field.values[sl]),
        timestep=field.timestep,
        name=field.name,
    )


def shard_sample(shard: Shard, sample: SampledField) -> SampledField:
    """Restrict a global sample to one shard's halo-extended box.

    The surviving indices are re-expressed on the shard's local grid (the
    global→local map is strictly increasing, so ordering is preserved).
    Raises ``ValueError`` when no training sample lands in the box — a
    shard that cannot be fine-tuned locally (use fewer shards, a larger
    halo, or a denser training fraction).
    """
    if sample.grid != shard.grid:
        raise ValueError("sample lives on a different grid than the shard plan")
    multi = shard.grid.flat_to_multi(sample.indices)
    keep = shard.contains(multi, interior=False)
    if not keep.any():
        raise ValueError(
            f"no training samples fall inside shard {shard.index}'s extended box "
            f"(fraction {sample.fraction}, halo-extended dims {shard.ext_dims})"
        )
    local = shard.global_to_local(sample.indices[keep])
    return SampledField(
        grid=shard.local_grid,
        indices=local,
        values=sample.values[keep],
        fraction=float(keep.sum()) / shard.num_ext,
        timestep=sample.timestep,
    )


def fine_tune_shards(
    reconstructor,
    fields: list[TimestepField],
    samples_per_step: list,
    plan: ShardPlan,
    *,
    epochs: int = 10,
    strategy: str = "last",
) -> tuple[list[np.ndarray], list[list]]:
    """Fine-tune one model per (timestep, shard) in one batched submission.

    Returns ``(flats, histories)`` with one ``(num_shards, W)`` weight
    stack and one per-shard history list per timestep, ordered like
    ``fields``.  Row ``s`` of a stack is the model for ``plan.shards[s]``
    — exactly the layout :meth:`ShardReconstructionPool.publish` accepts.
    The base model is never mutated (``fine_tune_batch`` semantics).
    """
    fields = list(fields)
    samples_per_step = list(samples_per_step)
    if len(fields) != len(samples_per_step):
        raise ValueError(
            f"{len(fields)} fields but {len(samples_per_step)} sample groups"
        )
    local_fields: list[TimestepField] = []
    local_samples: list[list[SampledField]] = []
    for field, samples in zip(fields, samples_per_step):
        sample_list = samples if isinstance(samples, (list, tuple)) else [samples]
        for shard in plan.shards:
            local_fields.append(shard_field(shard, field))
            local_samples.append([shard_sample(shard, s) for s in sample_list])
    flats, histories = reconstructor.fine_tune_batch(
        local_fields, local_samples, epochs=epochs, strategy=strategy
    )
    s = plan.num_shards
    stacked = [np.stack(flats[i * s : (i + 1) * s]) for i in range(len(fields))]
    grouped = [histories[i * s : (i + 1) * s] for i in range(len(fields))]
    return stacked, grouped
