"""Axis-aligned spatial domain decomposition with halo (ghost) zones.

A :class:`ShardPlan` splits a :class:`~repro.grid.UniformGrid` into
``counts = (A, B, C)`` axis-aligned subdomains ("shards").  Each
:class:`Shard` owns a disjoint **interior** box — the interiors tile the
grid exactly (partition of unity) — plus a surrounding **halo** of
``halo`` cells clipped to the grid, forming its **extended** box.  Samples
inside the extended box are what a shard-local reconstruction may see;
halo cells overlap neighboring interiors, which is how "halo exchange"
is realized over the shared-memory transport: every shard reads the
neighbor-owned samples that fall inside its halo from the one shared
sample-value segment (:mod:`repro.shard.pool`).

Index conventions match the rest of the package: flat indices are C-order
(z fastest), so a box enumerated in its own C order yields strictly
ascending global flat indices — the global↔local maps below are strictly
increasing, which the canonical kNN tie-break
(:func:`repro.core.features.canonical_neighbors`) relies on for
bit-identical shard-local neighbor selection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.features import TIE_BREAK_PAD
from repro.grid import UniformGrid

__all__ = ["Shard", "ShardPlan", "parse_shards", "suggest_halo"]


def parse_shards(spec) -> tuple[int, int, int]:
    """Parse a shard-count spec (``"AxBxC"``, a plain count, or a 3-sequence).

    A single count (``"N"`` or ``N``) means ``(N, 1, 1)`` — split along x only.
    """
    if isinstance(spec, (int, np.integer)):
        counts = (int(spec),)
    elif isinstance(spec, str):
        parts = [p for p in spec.lower().replace("×", "x").split("x") if p]
        try:
            counts = tuple(int(p) for p in parts)
        except ValueError:
            raise ValueError(f"shard spec must look like 'AxBxC', got {spec!r}") from None
    else:
        counts = tuple(int(c) for c in spec)
    if len(counts) == 1:
        counts = (counts[0], 1, 1)
    if len(counts) != 3:
        raise ValueError(f"shard spec needs 1 or 3 counts, got {spec!r}")
    if any(c < 1 for c in counts):
        raise ValueError(f"shard counts must be >= 1, got {counts}")
    return counts  # type: ignore[return-value]


def suggest_halo(
    num_neighbors: int = 5,
    fraction: float = 0.05,
    *,
    pad: int = TIE_BREAK_PAD,
    safety: float = 2.0,
) -> int:
    """Halo width (cells) expected to contain the full kNN stencil.

    Bit-identical shard-local neighbor selection needs every query's
    ``num_neighbors + pad`` nearest samples inside the shard's extended
    box (see :func:`repro.core.features.canonical_neighbors`).  Under
    uniform sampling density ``fraction`` (samples per cell), a ball of
    radius ``r`` cells holds ``~ fraction * 4/3 pi r^3`` samples; solve
    for the radius holding ``num_neighbors + pad`` and scale by
    ``safety`` to absorb importance-sampling density fluctuations.
    Verify a specific geometry with
    :meth:`repro.shard.ShardedCampaignGeometry.seam_check`.
    """
    if num_neighbors < 1:
        raise ValueError(f"num_neighbors must be >= 1, got {num_neighbors}")
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    need = num_neighbors + max(0, int(pad))
    radius = (3.0 * need / (4.0 * math.pi * fraction)) ** (1.0 / 3.0)
    return max(1, math.ceil(safety * radius))


def _box_flat_indices(dims: tuple[int, int, int], lo, hi) -> np.ndarray:
    """Global C-order flat indices of box ``[lo, hi)``, strictly ascending."""
    ny, nz = dims[1], dims[2]
    ix = np.arange(lo[0], hi[0], dtype=np.int64)
    iy = np.arange(lo[1], hi[1], dtype=np.int64)
    iz = np.arange(lo[2], hi[2], dtype=np.int64)
    return (
        (ix[:, None, None] * ny + iy[None, :, None]) * nz + iz[None, None, :]
    ).reshape(-1)


@dataclass(frozen=True)
class Shard:
    """One subdomain: a disjoint interior box plus its clipped halo.

    ``lo``/``hi`` bound the interior (half-open, in grid index space);
    ``ext_lo``/``ext_hi`` bound the halo-extended box, clipped to the
    grid.  A face of the extended box is **open** when grid points exist
    beyond it (the clip came from the halo width, not the grid edge) —
    open faces are where shard-local kNN queries can disagree with global
    ones, so seam margins are measured against them.
    """

    index: int
    coords: tuple[int, int, int]
    lo: tuple[int, int, int]
    hi: tuple[int, int, int]
    ext_lo: tuple[int, int, int]
    ext_hi: tuple[int, int, int]
    grid: UniformGrid

    # ----------------------------------------------------------------- sizes
    @property
    def interior_dims(self) -> tuple[int, int, int]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))  # type: ignore[return-value]

    @property
    def ext_dims(self) -> tuple[int, int, int]:
        return tuple(h - l for l, h in zip(self.ext_lo, self.ext_hi))  # type: ignore[return-value]

    @property
    def num_interior(self) -> int:
        a, b, c = self.interior_dims
        return a * b * c

    @property
    def num_ext(self) -> int:
        a, b, c = self.ext_dims
        return a * b * c

    @cached_property
    def local_grid(self) -> UniformGrid:
        """The extended box as its own grid (origin shifted to ``ext_lo``)."""
        return UniformGrid(
            dims=self.ext_dims,
            spacing=self.grid.spacing,
            origin=tuple(
                o + l * s
                for o, l, s in zip(self.grid.origin, self.ext_lo, self.grid.spacing)
            ),
        )

    # --------------------------------------------------------------- indices
    @cached_property
    def interior_indices(self) -> np.ndarray:
        """Global flat indices of the interior box (ascending; read-only)."""
        return _box_flat_indices(self.grid.dims, self.lo, self.hi)

    @cached_property
    def ext_indices(self) -> np.ndarray:
        """Global flat indices of the extended box (ascending; read-only)."""
        return _box_flat_indices(self.grid.dims, self.ext_lo, self.ext_hi)

    def contains(self, multi: np.ndarray, interior: bool = True) -> np.ndarray:
        """Boolean mask: which ``(N, 3)`` multi-indices fall in the box."""
        lo = self.lo if interior else self.ext_lo
        hi = self.hi if interior else self.ext_hi
        return np.all((multi >= lo) & (multi < hi), axis=1)

    def global_to_local(self, flat: np.ndarray) -> np.ndarray:
        """Map global flat indices (inside the extended box) to local flat.

        The map is strictly increasing — both sides are C-order
        enumerations of the same box — so sorted global index subsets stay
        sorted locally (load-bearing for canonical kNN tie-breaking).
        """
        multi = self.grid.flat_to_multi(np.asarray(flat, dtype=np.int64))
        if not self.contains(multi, interior=False).all():
            raise ValueError(f"indices outside shard {self.index} extended box")
        ea, eb, ec = self.ext_lo
        _, ny, nz = self.ext_dims
        return ((multi[:, 0] - ea) * ny + (multi[:, 1] - eb)) * nz + (multi[:, 2] - ec)

    def local_to_global(self, local: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`global_to_local`."""
        local = np.asarray(local, dtype=np.int64)
        if local.size and (local.min() < 0 or local.max() >= self.num_ext):
            raise ValueError(f"local indices out of range for shard {self.index}")
        multi = np.column_stack(np.unravel_index(local, self.ext_dims))
        multi += np.asarray(self.ext_lo, dtype=np.int64)
        return self.grid.multi_to_flat(multi)

    # ------------------------------------------------------------ seam faces
    @property
    def open_faces(self) -> tuple[tuple[int, int], ...]:
        """``(axis, side)`` faces with grid points beyond the extended box."""
        faces = []
        for axis in range(3):
            if self.ext_lo[axis] > 0:
                faces.append((axis, -1))
            if self.ext_hi[axis] < self.grid.dims[axis]:
                faces.append((axis, +1))
        return tuple(faces)

    def margin(self, points: np.ndarray) -> np.ndarray:
        """Distance from each point to the nearest *excluded* grid plane.

        Any grid point outside the extended box is at least this far from
        the query (it must cross an open face's first excluded plane), so
        a kNN query whose ``kq``-th distance is strictly below the margin
        provably saw every global candidate.  ``inf`` when the extended
        box covers the whole grid.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        out = np.full(len(points), np.inf)
        for axis, side in self.open_faces:
            o, s = self.grid.origin[axis], self.grid.spacing[axis]
            if side < 0:
                plane = o + (self.ext_lo[axis] - 1) * s
                np.minimum(out, points[:, axis] - plane, out=out)
            else:
                plane = o + self.ext_hi[axis] * s
                np.minimum(out, plane - points[:, axis], out=out)
        return out


@dataclass(frozen=True)
class ShardPlan:
    """A full decomposition: shards in C order over the shard lattice."""

    grid: UniformGrid
    counts: tuple[int, int, int]
    halo: int
    shards: tuple[Shard, ...]

    @classmethod
    def create(cls, grid: UniformGrid, counts, halo: int) -> "ShardPlan":
        """Decompose ``grid`` into ``counts`` shards with ``halo`` ghost cells.

        Interior boundaries come from per-axis ``linspace`` cuts (the same
        near-equal split :func:`repro.parallel.chunk_indices` uses), so
        interiors tile the grid exactly.
        """
        counts = parse_shards(counts)
        halo = int(halo)
        if halo < 0:
            raise ValueError(f"halo must be >= 0, got {halo}")
        for axis, (c, d) in enumerate(zip(counts, grid.dims)):
            if c > d:
                raise ValueError(
                    f"{c} shards along axis {axis} but the grid only has {d} points"
                )
        bounds = [
            np.linspace(0, grid.dims[a], counts[a] + 1).astype(np.int64)
            for a in range(3)
        ]
        shards = []
        for ca in range(counts[0]):
            for cb in range(counts[1]):
                for cc in range(counts[2]):
                    coords = (ca, cb, cc)
                    lo = tuple(int(bounds[a][coords[a]]) for a in range(3))
                    hi = tuple(int(bounds[a][coords[a] + 1]) for a in range(3))
                    shards.append(
                        Shard(
                            index=len(shards),
                            coords=coords,
                            lo=lo,
                            hi=hi,
                            ext_lo=tuple(max(0, l - halo) for l in lo),
                            ext_hi=tuple(
                                min(d, h + halo) for d, h in zip(grid.dims, hi)
                            ),
                            grid=grid,
                        )
                    )
        return cls(grid=grid, counts=counts, halo=halo, shards=tuple(shards))

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, flat: np.ndarray) -> np.ndarray:
        """Owning shard index (by interior box) for each global flat index."""
        multi = self.grid.flat_to_multi(np.asarray(flat, dtype=np.int64))
        bounds = [
            np.linspace(0, self.grid.dims[a], self.counts[a] + 1).astype(np.int64)
            for a in range(3)
        ]
        coord = [
            np.searchsorted(bounds[a], multi[:, a], side="right") - 1 for a in range(3)
        ]
        # The last boundary is inclusive on the top edge.
        for a in range(3):
            coord[a] = np.minimum(coord[a], self.counts[a] - 1)
        return (coord[0] * self.counts[1] + coord[1]) * self.counts[2] + coord[2]

    def neighbors(self, index: int) -> tuple[int, ...]:
        """Indices of shards whose interiors touch ``index``'s (Chebyshev 1)."""
        me = self.shards[index].coords
        out = []
        for shard in self.shards:
            if shard.index == index:
                continue
            if max(abs(a - b) for a, b in zip(me, shard.coords)) <= 1:
                out.append(shard.index)
        return tuple(out)
