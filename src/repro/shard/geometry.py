"""Per-shard views of a campaign's sampled-location geometry.

:class:`ShardGeometry` restricts one :class:`~repro.perf.CampaignGeometry`
to one shard: the sample positions inside the shard's halo-extended box
(what a shard-local kNN query may see — interior-owned samples plus the
halo samples imported from neighbors) and the void positions inside its
interior (what the shard is responsible for predicting).
:class:`ShardedCampaignGeometry` builds all of them at once, proves the
interiors' void sets are a partition of unity over the global void set
(the stitcher's correctness precondition), and offers
:meth:`~ShardedCampaignGeometry.seam_check` — a per-query proof of when
shard-local canonical kNN selection matches the global one, which is the
condition for sharded reconstruction to be bit-identical to unsharded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import TIE_BREAK_PAD
from repro.obs import record_event
from repro.perf.campaign import CampaignGeometry
from repro.shard.plan import Shard, ShardPlan

__all__ = ["ShardGeometry", "ShardedCampaignGeometry", "SeamReport", "ShardSeamStats"]


class ShardGeometry:
    """One shard's selections into a :class:`CampaignGeometry`.

    ``sample_sel`` / ``void_sel`` index into the campaign geometry's
    (sorted) sample/void arrays; both are ascending, so the local subsets
    inherit the global ordering — the property canonical kNN tie-breaking
    needs to reproduce global neighbor selection shard-locally.
    """

    def __init__(
        self,
        shard: Shard,
        geometry: CampaignGeometry,
        sample_multi: np.ndarray,
        void_multi: np.ndarray,
    ) -> None:
        self.shard = shard
        self.geometry = geometry
        self.sample_sel = np.flatnonzero(shard.contains(sample_multi, interior=False))
        interior = shard.contains(sample_multi[self.sample_sel], interior=True)
        self.interior_sample_count = int(interior.sum())
        self.void_sel = np.flatnonzero(shard.contains(void_multi, interior=True))

    # ----------------------------------------------------------------- sizes
    @property
    def num_samples(self) -> int:
        """Samples visible to this shard (interior + imported halo)."""
        return int(self.sample_sel.size)

    @property
    def halo_sample_count(self) -> int:
        """Samples imported from neighboring interiors via the halo."""
        return self.num_samples - self.interior_sample_count

    @property
    def num_voids(self) -> int:
        """Void locations this shard owns (strictly interior)."""
        return int(self.void_sel.size)

    # ------------------------------------------------------------- positions
    @property
    def points(self) -> np.ndarray:
        """Global physical positions of the shard's visible samples."""
        return self.geometry.points[self.sample_sel]

    @property
    def void_points(self) -> np.ndarray:
        """Global physical positions of the shard's owned voids."""
        return self.geometry.void_points[self.void_sel]

    @property
    def global_sample_indices(self) -> np.ndarray:
        return self.geometry.indices[self.sample_sel]

    @property
    def global_void_indices(self) -> np.ndarray:
        return self.geometry.void_indices[self.void_sel]


@dataclass(frozen=True)
class ShardSeamStats:
    """Seam-exactness accounting for one shard."""

    shard: int
    queries: int          # owned void queries checked
    unsafe: int           # queries whose kNN selection is not provably global
    halo_samples: int     # samples imported through the halo
    margin_min: float     # tightest open-face margin over all queries
    kth_dist_max: float   # largest padded-candidate distance over all queries


@dataclass(frozen=True)
class SeamReport:
    """Result of :meth:`ShardedCampaignGeometry.seam_check`."""

    num_neighbors: int
    halo: int
    shards: tuple[ShardSeamStats, ...]

    @property
    def exact(self) -> bool:
        """True when every query's shard-local kNN provably equals global."""
        return all(s.unsafe == 0 for s in self.shards)

    @property
    def total_unsafe(self) -> int:
        return sum(s.unsafe for s in self.shards)

    @property
    def total_queries(self) -> int:
        return sum(s.queries for s in self.shards)

    def summary(self) -> str:
        if self.exact:
            return (
                f"seams exact: {self.total_queries} queries across "
                f"{len(self.shards)} shards all resolve inside halo={self.halo}"
            )
        return (
            f"{self.total_unsafe}/{self.total_queries} queries may cross "
            f"shard seams (halo={self.halo} too small for k={self.num_neighbors}"
            f"+{TIE_BREAK_PAD} stencil)"
        )


class ShardedCampaignGeometry:
    """All shards' views of one campaign geometry, with partition checks.

    Raises ``ValueError`` when the decomposition is unusable: a shard with
    zero visible samples cannot run kNN reconstruction (use fewer shards,
    a bigger halo, or a denser sampling fraction).  The void partition
    check is structural — interiors tile the grid, so the concatenated
    ``void_sel`` arrays must be a permutation of the global void range —
    and guards the stitcher: scattering per-shard predictions through
    ``void_order`` writes every global void exactly once.
    """

    def __init__(self, plan: ShardPlan, geometry: CampaignGeometry) -> None:
        if plan.grid != geometry.grid:
            raise ValueError("shard plan and campaign geometry disagree on the grid")
        self.plan = plan
        self.geometry = geometry
        grid = geometry.grid
        sample_multi = grid.flat_to_multi(geometry.indices)
        void_multi = grid.flat_to_multi(geometry.void_indices)
        self.shards = [
            ShardGeometry(shard, geometry, sample_multi, void_multi)
            for shard in plan.shards
        ]
        empty = [sg.shard.index for sg in self.shards if sg.num_samples == 0]
        if empty:
            raise ValueError(
                f"shard(s) {empty} contain no samples even with halo={plan.halo}; "
                "use fewer shards, a larger halo, or a denser sampling fraction"
            )
        self.void_order = (
            np.concatenate([sg.void_sel for sg in self.shards])
            if self.shards
            else np.empty(0, dtype=np.int64)
        )
        covered = np.zeros(geometry.num_voids, dtype=bool)
        covered[self.void_order] = True
        if self.void_order.size != geometry.num_voids or not covered.all():
            raise ValueError(
                "shard interiors do not partition the void set "
                f"({self.void_order.size} owned vs {geometry.num_voids} global)"
            )
        self.void_offsets = np.concatenate(
            [[0], np.cumsum([sg.num_voids for sg in self.shards])]
        ).astype(np.int64)
        self.sample_order = np.concatenate([sg.sample_sel for sg in self.shards])
        self.sample_offsets = np.concatenate(
            [[0], np.cumsum([sg.num_samples for sg in self.shards])]
        ).astype(np.int64)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def halo_imports(self) -> list[int]:
        """Per-shard count of samples imported through the halo."""
        return [sg.halo_sample_count for sg in self.shards]

    # ------------------------------------------------------------ seam proof
    def seam_check(self, num_neighbors: int = 5) -> SeamReport:
        """Prove (per query) that shard-local kNN selection is global.

        For each owned void the shard-local kd-tree fetches the padded
        candidate list (``k + TIE_BREAK_PAD``, the same list canonical
        selection consumes).  The local selection provably equals the
        global one when

        * the padded list is full-size (the shard sees at least
          ``k + TIE_BREAK_PAD`` samples, or all global samples),
        * the farthest padded candidate is strictly closer than the
          nearest excluded grid plane (no outside sample can intrude), and
        * the ``k``-th distance is strictly below the padded-list maximum
          (the canonical cut does not straddle the list boundary).

        Queries failing any condition are counted ``unsafe`` — sharded
        output there is still a valid reconstruction, just not guaranteed
        bit-identical to unsharded.  Cost is one kd-tree build + one kNN
        query per shard (comparable to one timestep's reconstruction
        query), so run it once per campaign geometry, not per timestep.
        """
        from scipy.spatial import cKDTree

        geometry = self.geometry
        total_samples = geometry.num_samples
        k_global = min(int(num_neighbors), total_samples)
        stats = []
        for sg in self.shards:
            if sg.num_voids == 0:
                stats.append(
                    ShardSeamStats(
                        shard=sg.shard.index,
                        queries=0,
                        unsafe=0,
                        halo_samples=sg.halo_sample_count,
                        margin_min=float("inf"),
                        kth_dist_max=0.0,
                    )
                )
                continue
            m_local = sg.num_samples
            kq_global = min(k_global + TIE_BREAK_PAD, total_samples)
            kq_local = min(k_global + TIE_BREAK_PAD, m_local)
            points = sg.void_points
            margin = sg.shard.margin(points)
            if kq_local < kq_global:
                # The shard cannot even materialize the global candidate
                # list; every query is unsafe.
                unsafe = len(points)
                kth = float("nan")
            else:
                dist, _ = cKDTree(sg.points).query(points, k=kq_local, workers=-1)
                if kq_local == 1:
                    dist = dist[:, None]
                safe = dist[:, -1] < margin
                if kq_local > k_global:
                    safe &= dist[:, k_global - 1] < dist[:, -1]
                unsafe = int((~safe).sum())
                kth = float(dist[:, -1].max())
            stats.append(
                ShardSeamStats(
                    shard=sg.shard.index,
                    queries=int(len(points)),
                    unsafe=unsafe,
                    halo_samples=sg.halo_sample_count,
                    margin_min=float(margin.min()) if len(points) else float("inf"),
                    kth_dist_max=kth,
                )
            )
        report = SeamReport(
            num_neighbors=int(num_neighbors), halo=self.plan.halo, shards=tuple(stats)
        )
        record_event(
            "campaign.shard.seam_check",
            shards=self.num_shards,
            halo=self.plan.halo,
            unsafe=report.total_unsafe,
            queries=report.total_queries,
            exact=report.exact,
        )
        return report
