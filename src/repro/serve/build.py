"""Registry builders: train + batched fine-tune a campaign into a registry.

The serving layer consumes what the campaign produces — per-timestep
fine-tuned flat weight vectors over one frozen sample geometry.
:func:`build_registry` runs that production path end to end (pretrain a
base at the first timestep, fine-tune every timestep from the base
through :meth:`~repro.core.FCNNReconstructor.fine_tune_batch` — the
``run_campaign(batched_finetune=True)`` trajectory) and lands the
results in a durable :class:`~repro.serve.ModelRegistry`, one key per
timestep.  Used by ``repro serve build`` and the replay benches.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.obs import span
from repro.serve.registry import ModelKey, ModelRegistry

__all__ = ["build_registry"]


def build_registry(
    root: str | Path,
    dataset: str = "combustion",
    dims: tuple[int, int, int] | None = (16, 16, 8),
    fraction: float = 0.05,
    timesteps=(0, 1, 2, 3),
    epochs: int = 40,
    finetune_epochs: int = 4,
    hidden: tuple[int, ...] = (32, 16),
    train_fractions: tuple[float, ...] = (0.01, 0.05),
    seed: int = 0,
    hot_capacity: int = 16,
) -> ModelRegistry:
    """Train, batched-fine-tune and register one (dataset, fraction) family.

    Returns the populated registry; its ``geometry_cache`` is primed with
    the namespace geometry, so a server over it reuses the builder's void
    enumeration and kd-tree instead of recomputing them.
    """
    from repro.core.pipeline import ReconstructionPipeline
    from repro.core.reconstructor import FCNNReconstructor
    from repro.datasets.registry import make_dataset
    from repro.sampling import MultiCriteriaSampler

    steps = [int(t) for t in timesteps]
    if not steps:
        raise ValueError("need at least one timestep to build a registry")
    data = make_dataset(dataset, dims=tuple(dims) if dims else None, seed=seed)
    pipe = ReconstructionPipeline(
        dataset=data,
        sampler=MultiCriteriaSampler(seed=seed),
        train_fractions=tuple(float(f) for f in train_fractions),
    )
    recon = FCNNReconstructor(hidden_layers=tuple(hidden), seed=seed)
    with span("serve.build.train", dataset=data.name, epochs=epochs):
        pipe.train_fcnn(recon, timestep=steps[0], epochs=epochs)

    field0 = pipe.field(steps[0])
    geometry = pipe.geometry_cache.get(
        pipe.sample(field0, fraction), dtype=recon.dtype_policy.compute
    )
    registry = ModelRegistry(
        root, hot_capacity=hot_capacity, geometry_cache=pipe.geometry_cache
    )
    registry.create_namespace(data.name, fraction, recon, geometry.grid, geometry.indices)

    fields = [field0 if t == steps[0] else pipe.field(t) for t in steps]
    trains = [[pipe.sample(fld, f) for f in pipe.train_fractions] for fld in fields]
    with span("serve.build.finetune", steps=len(steps)):
        flats, _ = recon.fine_tune_batch(fields, trains, epochs=finetune_epochs)
    for t, fld, flat in zip(steps, fields, flats):
        values = fld.values.ravel()[geometry.indices]
        registry.put(ModelKey(data.name, float(fraction), t), np.asarray(flat), values)
    return registry
