"""Replay load harness: fire recorded/synthetic request traces at a server.

A :class:`RequestTrace` is a columnar (numpy) recording of a request
stream — key table plus per-request key/tenant/kind/deadline columns — so
million-request traces cost megabytes and load instantly.
:func:`synthetic_trace` draws a Zipf-skewed stream (a few hot timesteps
dominate, the regime where coalescing and result caching pay);
:func:`replay` plays any trace open-loop against a
:class:`~repro.serve.ReconstructionServer` with a bounded in-flight
window and reports :class:`ReplayStats` (p50/p99 latency, requests/sec,
batch occupancy, cache hit rates).  :func:`naive_throughput` measures the
one-request-one-reconstruction baseline — per request: load weights,
restore them into a model, reconstruct the full grid — that the batched
server is gated ≥5x against in ``benchmarks/test_bench_serve.py``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.resilience.checkpoint import atomic_write_npz, read_verified_npz
from repro.serve.registry import ModelKey, ModelRegistry
from repro.serve.service import ReconstructionServer, ServeRequest

__all__ = [
    "RequestTrace",
    "ReplayStats",
    "synthetic_trace",
    "replay",
    "naive_throughput",
]

_KIND_FULL = 0
_KIND_CHUNK = 1


@dataclass
class RequestTrace:
    """Columnar recording of a request stream (replayable, npz-persistable)."""

    keys: list[ModelKey]          #: key table (deduplicated)
    key_idx: np.ndarray           #: per-request index into ``keys``
    tenants: list[str]            #: tenant table
    tenant_idx: np.ndarray        #: per-request index into ``tenants``
    kinds: np.ndarray             #: per-request 0=full, 1=chunk
    chunks: np.ndarray            #: chunk index (kind=chunk only)
    deadlines: np.ndarray         #: seconds (NaN = server default)

    def __post_init__(self) -> None:
        n = len(self.key_idx)
        for name in ("tenant_idx", "kinds", "chunks", "deadlines"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"trace column {name!r} has wrong length")

    @property
    def num_requests(self) -> int:
        return int(len(self.key_idx))

    def request(self, i: int) -> ServeRequest:
        deadline = float(self.deadlines[i])
        return ServeRequest(
            key=self.keys[self.key_idx[i]],
            tenant=self.tenants[self.tenant_idx[i]],
            kind="chunk" if self.kinds[i] == _KIND_CHUNK else "full",
            chunk=int(self.chunks[i]),
            deadline=None if np.isnan(deadline) else deadline,
        )

    def save(self, path: str | Path) -> None:
        # Checksummed + atomic (temp file, fsync, os.replace): a crashed
        # recording never leaves a truncated trace behind, and a damaged
        # one is refused at load instead of replaying garbage.
        atomic_write_npz(
            path,
            {
                "datasets": np.array([k.dataset for k in self.keys]),
                "fractions": np.array([k.fraction for k in self.keys], dtype=np.float64),
                "timesteps": np.array([k.timestep for k in self.keys], dtype=np.int64),
                "key_idx": self.key_idx,
                "tenants": np.array(self.tenants),
                "tenant_idx": self.tenant_idx,
                "kinds": self.kinds,
                "chunks": self.chunks,
                "deadlines": self.deadlines,
            },
        )

    @classmethod
    def load(cls, path: str | Path) -> "RequestTrace":
        data = read_verified_npz(path)
        keys = [
            ModelKey(str(d), float(f), int(t))
            for d, f, t in zip(data["datasets"], data["fractions"], data["timesteps"])
        ]
        return cls(
            keys=keys,
            key_idx=np.array(data["key_idx"]),
            tenants=[str(t) for t in data["tenants"]],
            tenant_idx=np.array(data["tenant_idx"]),
            kinds=np.array(data["kinds"]),
            chunks=np.array(data["chunks"]),
            deadlines=np.array(data["deadlines"]),
        )


def synthetic_trace(
    keys: list[ModelKey],
    num_requests: int,
    tenants: tuple[str, ...] = ("default",),
    seed: int = 0,
    skew: float = 1.1,
    chunk_fraction: float = 0.0,
    deadline: float | None = None,
) -> RequestTrace:
    """A Zipf-skewed synthetic request stream over ``keys``.

    ``skew`` is the Zipf exponent over a seeded random popularity ranking
    of the keys (higher = hotter hot set); ``chunk_fraction`` of requests
    ask for a single streamed chunk instead of the full field.
    """
    if not keys:
        raise ValueError("need at least one key to build a trace")
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    rng = np.random.default_rng(seed)
    ranks = rng.permutation(len(keys)).astype(np.float64)
    weights = 1.0 / (ranks + 1.0) ** float(skew)
    weights /= weights.sum()
    key_idx = rng.choice(len(keys), size=num_requests, p=weights).astype(np.int32)
    tenant_idx = rng.integers(0, len(tenants), size=num_requests, dtype=np.int32)
    kinds = (rng.random(num_requests) < chunk_fraction).astype(np.uint8)
    deadlines = np.full(num_requests, np.nan if deadline is None else float(deadline))
    return RequestTrace(
        keys=list(keys),
        key_idx=key_idx,
        tenants=list(tenants),
        tenant_idx=tenant_idx,
        kinds=kinds,
        chunks=np.zeros(num_requests, dtype=np.int32),
        deadlines=deadlines,
    )


@dataclass
class ReplayStats:
    """What one :func:`replay` run measured."""

    requests: int
    duration_s: float
    rps: float
    p50_ms: float
    p99_ms: float
    statuses: dict = field(default_factory=dict)
    batch_occupancy: float = 0.0
    mean_stack_k: float = 0.0
    cache_hit_rate: float = 0.0
    registry_hit_rate: float = 0.0
    server: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "duration_s": self.duration_s,
            "rps": self.rps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "statuses": dict(self.statuses),
            "batch_occupancy": self.batch_occupancy,
            "mean_stack_k": self.mean_stack_k,
            "cache_hit_rate": self.cache_hit_rate,
            "registry_hit_rate": self.registry_hit_rate,
            "server": dict(self.server),
        }


def replay(
    server: ReconstructionServer,
    trace: RequestTrace,
    max_in_flight: int = 256,
) -> ReplayStats:
    """Play ``trace`` against ``server`` open-loop; returns :class:`ReplayStats`.

    Requests are submitted as fast as the server accepts them with at
    most ``max_in_flight`` unresolved tickets — enough admission pressure
    that misses pile up in the queue and coalescing/stacking actually
    engage, while bounding replay memory.
    """
    if max_in_flight < 1:
        raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
    n = trace.num_requests
    latencies = np.empty(n, dtype=np.float64)
    num_ok = 0
    statuses: dict[str, int] = {}
    in_flight: deque = deque()

    def settle(ticket) -> None:
        nonlocal num_ok
        ticket.wait()
        statuses[ticket.status] = statuses.get(ticket.status, 0) + 1
        if ticket.status == "ok":
            latencies[num_ok] = ticket.latency
            num_ok += 1

    t0 = time.perf_counter()
    for i in range(n):
        ticket = server.submit(trace.request(i))
        if ticket.done():
            settle(ticket)
        else:
            in_flight.append(ticket)
            if len(in_flight) >= max_in_flight:
                settle(in_flight.popleft())
    while in_flight:
        settle(in_flight.popleft())
    duration = time.perf_counter() - t0

    lat_ms = latencies[:num_ok] * 1e3
    stats = server.stats()
    looked = stats["hits"] + stats["misses"]
    reg = stats["registry"]
    reg_looked = reg["hot_hits"] + reg["hot_misses"]
    return ReplayStats(
        requests=n,
        duration_s=duration,
        rps=n / duration if duration > 0 else float("inf"),
        p50_ms=float(np.percentile(lat_ms, 50)) if num_ok else float("nan"),
        p99_ms=float(np.percentile(lat_ms, 99)) if num_ok else float("nan"),
        statuses=statuses,
        batch_occupancy=stats["batch_occupancy"],
        mean_stack_k=stats["mean_stack_k"],
        cache_hit_rate=stats["hits"] / looked if looked else 0.0,
        registry_hit_rate=reg["hot_hits"] / reg_looked if reg_looked else 0.0,
        server=stats,
    )


def naive_throughput(
    registry: ModelRegistry,
    trace: RequestTrace,
    limit: int = 1000,
) -> tuple[float, float]:
    """One-request-one-reconstruction baseline: ``(requests/sec, seconds)``.

    Per request — no coalescing, no caches, no fusion — the naive server
    loads the key's weights and sample values from the cold tier,
    restores the weights into a model and reconstructs the **full grid**,
    exactly the per-timestep offline path.  Measured over the first
    ``limit`` requests of ``trace`` (a full million would take hours;
    throughput is per-request stationary).
    """
    from repro.perf.weights import restore_weights

    n = min(int(limit), trace.num_requests)
    if n < 1:
        raise ValueError("need at least one request to measure")
    models: dict[str, object] = {}
    shells: dict[str, object] = {}
    t0 = time.perf_counter()
    for i in range(n):
        key = trace.keys[trace.key_idx[i]]
        ns = registry.namespace(key.dataset, key.fraction)
        model = models.get(ns.ns_id)
        if model is None:
            model = models[ns.ns_id] = ns.base.clone()
            shells[ns.ns_id] = ns.geometry.shell()
        weights = np.array(registry.cold_weights(key), dtype=np.float64, copy=True)
        values = np.array(registry.cold_values(key), dtype=np.float64, copy=True)
        restore_weights(model.model, weights)
        shell = shells[ns.ns_id]
        shell.values[...] = values
        model.reconstruct(shell)
    duration = time.perf_counter() - t0
    return (n / duration if duration > 0 else float("inf"), duration)
