"""Model registry: (dataset, fraction, timestep) -> trained flat weights.

The serving layer's durable substrate.  A registry directory holds one or
more *namespaces* — a (dataset, fraction) pair sharing one pretrained base
model and one frozen sample geometry — and, per timestep, the fine-tuned
flat weight vector (:func:`repro.perf.snapshot_weights` layout, exactly
what :meth:`repro.core.FCNNReconstructor.fine_tune_batch` and the campaign
journal produce) plus that timestep's sample values.

Storage tiers:

* **cold** — each artifact is a plain ``.npy`` file opened with
  ``np.load(..., mmap_mode="r")``: the OS pages weights in on demand, so a
  registry with thousands of timesteps costs no resident memory until a
  key is actually served;
* **hot** — an LRU of in-RAM ``(weights, values)`` copies
  (:meth:`ModelRegistry.hot`), so repeated tenants never re-read or
  re-allocate (counters ``serve.registry.hits`` / ``.misses``, gauge
  ``serve.registry.hot_entries``).

All writes are atomic (temp file + ``os.replace``), matching the
repo-wide checkpoint durability convention, and the manifest
(``registry.json``) is rewritten atomically after every mutation so a
crash mid-``put`` never leaves a dangling entry.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.grid import UniformGrid
from repro.obs import counter as obs_counter
from repro.obs import gauge as obs_gauge
from repro.perf.campaign import CampaignGeometry, GeometryCache
from repro.sampling.base import SampledField

__all__ = ["ModelKey", "ModelRegistry", "RegistryNamespace"]

_SCHEMA = 1


@dataclass(frozen=True, order=True)
class ModelKey:
    """Identity of one served model: which dataset, sampled how, when."""

    dataset: str
    fraction: float
    timestep: int

    @property
    def namespace_id(self) -> str:
        return namespace_id(self.dataset, self.fraction)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.dataset}@{self.fraction:g}/t{self.timestep}"


def namespace_id(dataset: str, fraction: float) -> str:
    """Stable directory-safe id for a (dataset, fraction) namespace."""
    return f"{dataset}-f{float(fraction):.6f}"


def _atomic_save_npy(path: Path, array: np.ndarray) -> None:
    """``np.save`` with the write-to-temp + ``os.replace`` promotion."""
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.save(fh, np.ascontiguousarray(array))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _atomic_save_json(path: Path, payload: dict) -> None:
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class RegistryNamespace:
    """One (dataset, fraction) family: shared base model + frozen geometry.

    Lazily materializes the expensive shared state — the base
    :class:`~repro.core.FCNNReconstructor` (architecture + normalizer) and
    the :class:`~repro.perf.CampaignGeometry` (void enumeration, kd-tree
    memo) — exactly once per namespace, via the registry's
    :class:`~repro.perf.GeometryCache` so namespaces sampling the same
    locations share geometry objects.
    """

    def __init__(self, registry: "ModelRegistry", ns_id: str, record: dict) -> None:
        self._registry = registry
        self.ns_id = ns_id
        self.dataset = str(record["dataset"])
        self.fraction = float(record["fraction"])
        self.grid = UniformGrid(
            dims=tuple(record["grid"]["dims"]),
            spacing=tuple(record["grid"]["spacing"]),
            origin=tuple(record["grid"]["origin"]),
        )
        self.timesteps = sorted(int(t) for t in record["timesteps"])
        self._dir = registry.root / ns_id
        self._base = None
        self._geometry: CampaignGeometry | None = None
        self._indices: np.ndarray | None = None

    @property
    def indices(self) -> np.ndarray:
        if self._indices is None:
            self._indices = np.load(self._dir / "indices.npy")
        return self._indices

    @property
    def base(self):
        """The namespace's pretrained base reconstructor (loaded once)."""
        if self._base is None:
            from repro.core.reconstructor import FCNNReconstructor

            self._base = FCNNReconstructor.load(self._dir / "base.npz")
        return self._base

    @property
    def geometry(self) -> CampaignGeometry:
        if self._geometry is None:
            shell = SampledField(
                grid=self.grid,
                indices=self.indices,
                values=np.zeros(self.indices.size, dtype=np.float64),
                fraction=self.fraction,
            )
            self._geometry = self._registry.geometry_cache.get(
                shell, dtype=self.base.dtype_policy.compute
            )
        return self._geometry

    def keys(self) -> list[ModelKey]:
        return [ModelKey(self.dataset, self.fraction, t) for t in self.timesteps]


class ModelRegistry:
    """Durable (dataset, fraction, timestep) -> weights store with a hot LRU."""

    def __init__(
        self,
        root: str | Path,
        hot_capacity: int = 16,
        geometry_cache: GeometryCache | None = None,
    ) -> None:
        if hot_capacity < 1:
            raise ValueError(f"hot_capacity must be >= 1, got {hot_capacity}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hot_capacity = int(hot_capacity)
        self.geometry_cache = geometry_cache if geometry_cache is not None else GeometryCache()
        self._manifest_path = self.root / "registry.json"
        self._namespaces: dict[str, RegistryNamespace] = {}
        self._hot: OrderedDict[ModelKey, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        if self._manifest_path.exists():
            manifest = json.loads(self._manifest_path.read_text(encoding="utf-8"))
            if manifest.get("schema") != _SCHEMA:
                raise ValueError(
                    f"{self._manifest_path}: unsupported registry schema "
                    f"{manifest.get('schema')!r} (expected {_SCHEMA})"
                )
            self._records: dict[str, dict] = manifest["namespaces"]
        else:
            self._records = {}

    # ------------------------------------------------------------- manifest
    def _flush_manifest(self) -> None:
        _atomic_save_json(
            self._manifest_path, {"schema": _SCHEMA, "namespaces": self._records}
        )

    # ----------------------------------------------------------- namespaces
    def create_namespace(
        self,
        dataset: str,
        fraction: float,
        base,
        grid: UniformGrid,
        indices: np.ndarray,
    ) -> RegistryNamespace:
        """Register a (dataset, fraction) family: base checkpoint + geometry.

        ``base`` is a trained :class:`~repro.core.FCNNReconstructor`;
        ``indices`` are the frozen sampled flat grid indices every
        timestep of the namespace shares (the campaign draws them once at
        the first timestep).  Idempotent for an identical re-create.
        """
        ns_id = namespace_id(dataset, fraction)
        ns_dir = self.root / ns_id
        ns_dir.mkdir(parents=True, exist_ok=True)
        indices = np.sort(np.asarray(indices, dtype=np.int64))
        base.save(ns_dir / "base.npz")
        _atomic_save_npy(ns_dir / "indices.npy", indices)
        record = self._records.get(ns_id)
        if record is None:
            record = {
                "dataset": str(dataset),
                "fraction": float(fraction),
                "grid": {
                    "dims": list(grid.dims),
                    "spacing": list(grid.spacing),
                    "origin": list(grid.origin),
                },
                "timesteps": [],
            }
            self._records[ns_id] = record
        self._flush_manifest()
        self._namespaces.pop(ns_id, None)
        return self.namespace(dataset, fraction)

    def namespace(self, dataset: str, fraction: float) -> RegistryNamespace:
        ns_id = namespace_id(dataset, fraction)
        ns = self._namespaces.get(ns_id)
        if ns is None:
            record = self._records.get(ns_id)
            if record is None:
                raise KeyError(f"no namespace {ns_id!r} in registry {self.root}")
            ns = RegistryNamespace(self, ns_id, record)
            self._namespaces[ns_id] = ns
        return ns

    def namespaces(self) -> list[RegistryNamespace]:
        return [
            self.namespace(rec["dataset"], rec["fraction"])
            for rec in self._records.values()
        ]

    # ----------------------------------------------------------------- put
    def put(self, key: ModelKey, weights: np.ndarray, values: np.ndarray) -> None:
        """Store one timestep's fine-tuned weights + sample values, durably."""
        ns = self.namespace(key.dataset, key.fraction)
        weights = np.asarray(weights, dtype=np.float64).ravel()
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size != ns.indices.size:
            raise ValueError(
                f"{key}: {values.size} sample values for {ns.indices.size} "
                "registered sample locations"
            )
        ns_dir = self.root / ns.ns_id
        _atomic_save_npy(ns_dir / f"weights_t{key.timestep}.npy", weights)
        _atomic_save_npy(ns_dir / f"values_t{key.timestep}.npy", values)
        if key.timestep not in ns.timesteps:
            ns.timesteps.append(int(key.timestep))
            ns.timesteps.sort()
            self._records[ns.ns_id]["timesteps"] = list(ns.timesteps)
            self._flush_manifest()
        # A re-put invalidates any cached hot copy of the old weights.
        self._hot.pop(key, None)

    # ---------------------------------------------------------------- reads
    def _paths(self, key: ModelKey) -> tuple[Path, Path]:
        ns = self.namespace(key.dataset, key.fraction)
        if key.timestep not in ns.timesteps:
            raise KeyError(f"no weights for {key} in registry {self.root}")
        ns_dir = self.root / ns.ns_id
        return (
            ns_dir / f"weights_t{key.timestep}.npy",
            ns_dir / f"values_t{key.timestep}.npy",
        )

    def cold_weights(self, key: ModelKey) -> np.ndarray:
        """The stored flat weights as a read-only memory map (no RAM copy)."""
        wpath, _ = self._paths(key)
        return np.load(wpath, mmap_mode="r")

    def cold_values(self, key: ModelKey) -> np.ndarray:
        _, vpath = self._paths(key)
        return np.load(vpath, mmap_mode="r")

    def hot(self, key: ModelKey) -> tuple[np.ndarray, np.ndarray]:
        """In-RAM ``(weights, values)`` for ``key``, LRU-cached.

        A hit moves the entry to the cache's fresh end; a miss pages the
        cold ``.npy`` artifacts in and may evict the stalest entry.
        """
        entry = self._hot.get(key)
        if entry is not None:
            self._hot.move_to_end(key)
            self._hits += 1
            obs_counter("serve.registry.hits").inc()
            return entry
        self._misses += 1
        obs_counter("serve.registry.misses").inc()
        weights = np.array(self.cold_weights(key), dtype=np.float64, copy=True)
        values = np.array(self.cold_values(key), dtype=np.float64, copy=True)
        while len(self._hot) >= self.hot_capacity:
            self._hot.popitem(last=False)
        self._hot[key] = (weights, values)
        obs_gauge("serve.registry.hot_entries").set(len(self._hot))
        return weights, values

    def keys(self) -> list[ModelKey]:
        out: list[ModelKey] = []
        for ns in self.namespaces():
            out.extend(ns.keys())
        return sorted(out)

    def __contains__(self, key: ModelKey) -> bool:
        try:
            ns = self.namespace(key.dataset, key.fraction)
        except KeyError:
            return False
        return key.timestep in ns.timesteps

    def __len__(self) -> int:
        return sum(len(rec["timesteps"]) for rec in self._records.values())

    def stats(self) -> dict:
        return {
            "keys": len(self),
            "namespaces": len(self._records),
            "hot_entries": len(self._hot),
            "hot_hits": self._hits,
            "hot_misses": self._misses,
        }
