# hot-path
"""Reconstruction-as-a-service: async request queue over the fused engine.

A :class:`ReconstructionServer` accepts reconstruction requests for any
registry key and answers them from a single dispatcher thread (stdlib
threading only):

* **coalescing** — concurrent requests for the same (dataset, fraction,
  timestep) are answered by one evaluation (counter ``serve.coalesced``);
* **stacking** — distinct timesteps of one namespace queued together
  become one fused ``(K, n, m)`` :class:`repro.serve.StackEvaluator` pass
  (histogram ``serve.batch.stack_k``);
* **result caching** — evaluated rows land in a per-namespace slot ring
  (shared memory when available — the campaign's
  :class:`~repro.perf.shm.SharedArrayBundle` transport — else local
  arrays) and repeated requests complete synchronously at submit
  (counters ``serve.cache.hits`` / ``.misses``);
* **backpressure** — per-tenant token buckets throttle at submit
  (``serve.throttled``), a queue bound rejects floods (``serve.rejected``)
  and requests whose deadline lapses while queued are shed instead of
  evaluated (``serve.shed``);
* **streaming** — full-field responses are :class:`ServedField` views
  over the cached rows that stream as aligned predict-block chunks
  (:meth:`ServedField.chunks`); nothing materializes a full grid unless
  the caller asks (:meth:`ServedField.assemble`).

Responses are zero-copy views into the slot ring: like the warm pool's
slot discipline, a result stays valid until its slot is recycled — after
``cache_slots`` further distinct evaluations — and stale access raises
:class:`StaleResultError` (re-request; a cache miss re-evaluates to the
same bits).  Served bits are the serial offline path's bits; see
:mod:`repro.serve.engine` for the contract and ``docs/SERVING.md`` for
the architecture and the SLO metric catalog.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from repro.obs import counter as obs_counter
from repro.obs import gauge as obs_gauge
from repro.obs import histogram as obs_histogram
from repro.obs import record_event, span
from repro.perf.shm import SharedArrayBundle
from repro.serve.engine import StackEvaluator
from repro.serve.registry import ModelKey, ModelRegistry

__all__ = [
    "ServeError",
    "StaleResultError",
    "ServeRequest",
    "ServerConfig",
    "ServedChunk",
    "ServedField",
    "Ticket",
    "TokenBucket",
    "ReconstructionServer",
]


class ServeError(RuntimeError):
    """A request could not be served (throttled, shed, rejected or failed)."""


class StaleResultError(ServeError):
    """A response's slot was recycled; re-request to re-materialize it."""


@dataclass(frozen=True)
class ServeRequest:
    """One reconstruction request.

    ``kind="full"`` answers with a :class:`ServedField` (streamable
    chunks, optional full-grid assembly); ``kind="chunk"`` answers with a
    single aligned predict-block :class:`ServedChunk`.  ``deadline`` is
    seconds from submit after which the request is shed instead of
    evaluated (``None`` — the server's default).
    """

    key: ModelKey
    tenant: str = "default"
    kind: str = "full"
    chunk: int = 0
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("full", "chunk"):
            raise ValueError(f"kind must be 'full' or 'chunk', got {self.kind!r}")


@dataclass
class ServerConfig:
    """Tunables of one :class:`ReconstructionServer`."""

    max_batch: int = 8            #: stack members per fused evaluation
    batch_window: float = 0.0     #: seconds to linger collecting a batch
    cache_slots: int = 16         #: result-ring slots per namespace
    max_stacks: int = 4           #: warm ModelStacks kept per namespace
    max_queue: int = 100_000      #: queued-request bound (reject beyond)
    default_deadline: float | None = None  #: seconds; None = never shed
    tenant_rate: float | None = None       #: tokens/s per tenant; None = off
    tenant_burst: int = 64        #: token-bucket capacity per tenant
    transport: str = "auto"       #: result-ring transport: auto | shm | local
    on_nonfinite: str = "fallback"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.cache_slots < 1:
            raise ValueError(f"cache_slots must be >= 1, got {self.cache_slots}")
        if self.transport not in ("auto", "shm", "local"):
            raise ValueError(
                f"transport must be auto/shm/local, got {self.transport!r}"
            )


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate: float, burst: int, clock=time.monotonic) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError(f"need rate > 0 and burst >= 1, got {rate}/{burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_take(self, n: float = 1.0) -> bool:
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False


class Ticket:
    """Future-like handle for one submitted request."""

    __slots__ = (
        "request", "status", "value", "error",
        "submitted", "completed", "deadline_at", "_event",
    )

    def __init__(self, request: ServeRequest, submitted: float, deadline_at: float) -> None:
        self.request = request
        self.status = "pending"   # -> ok | shed | throttled | rejected | error
        self.value = None
        self.error: BaseException | None = None
        self.submitted = submitted
        self.completed: float | None = None
        self.deadline_at = deadline_at
        self._event: threading.Event | None = None

    def done(self) -> bool:
        return self.status != "pending"

    def wait(self, timeout: float | None = None) -> bool:
        """Block until completion (any status); True when done."""
        if self.status != "pending":
            return True
        event = self._event
        if event is None:  # pragma: no cover - completed between checks
            return self.status != "pending"
        return event.wait(timeout)

    def result(self, timeout: float | None = None):
        """The response, or raise: ``ServeError`` for shed/throttled/rejected."""
        if not self.wait(timeout):
            raise TimeoutError("request still pending")
        if self.status == "ok":
            return self.value
        if self.status == "error":
            raise self.error
        raise ServeError(f"request {self.request.key} was {self.status}")

    @property
    def latency(self) -> float | None:
        """Submit-to-completion seconds (None while pending)."""
        if self.completed is None:
            return None
        return self.completed - self.submitted

    def _finish(self, status: str, clock, value=None, error=None) -> None:
        self.value = value
        self.error = error
        self.completed = clock()
        self.status = status
        event = self._event
        if event is not None:
            event.set()


# --------------------------------------------------------------------------
# result ring


class _SlotCache:
    """Per-namespace LRU slot ring of evaluated (values, pred) rows.

    Rows live in a :class:`SharedArrayBundle` when shared memory is
    usable (``transport="auto"``/``"shm"``) so chunk responses are
    zero-copy shareable across processes, degrading to process-local
    arrays otherwise.  Slot reuse bumps a generation counter; guarded
    views detect recycled slots (:class:`StaleResultError`).
    """

    def __init__(self, slots: int, num_samples: int, num_voids: int, transport: str) -> None:
        self.slots = int(slots)
        self.transport = "local"
        self._bundle: SharedArrayBundle | None = None
        if transport in ("auto", "shm"):
            try:
                self._bundle = SharedArrayBundle.create(
                    {
                        "values": np.zeros((slots, num_samples), dtype=np.float64),
                        "pred": np.zeros((slots, num_voids), dtype=np.float64),
                    }
                )
                self.values = self._bundle.view("values")
                self.pred = self._bundle.view("pred")
                self.transport = "shm"
            except OSError:
                if transport == "shm":
                    raise
                record_event("serve.cache.transport", fallback="local")
        if self._bundle is None:
            self.values = np.zeros((slots, num_samples), dtype=np.float64)
            self.pred = np.zeros((slots, num_voids), dtype=np.float64)
        self.generation = [0] * self.slots
        self._index: OrderedDict[ModelKey, int] = OrderedDict()
        self._free = list(range(self.slots - 1, -1, -1))

    def lookup(self, key: ModelKey) -> tuple[int, int] | None:
        slot = self._index.get(key)
        if slot is None:
            return None
        self._index.move_to_end(key)
        return slot, self.generation[slot]

    def store(self, key: ModelKey, values: np.ndarray, pred: np.ndarray) -> tuple[int, int]:
        if self._free:
            slot = self._free.pop()
        else:
            _, slot = self._index.popitem(last=False)
            self.generation[slot] += 1
        self.values[slot][...] = values
        self.pred[slot][...] = pred
        self._index[key] = slot
        return slot, self.generation[slot]

    def check(self, slot: int, generation: int) -> None:
        if self.generation[slot] != generation:
            raise StaleResultError(
                "served result was evicted from the slot ring; re-request it"
            )

    def close(self) -> None:
        bundle, self._bundle = self._bundle, None
        if bundle is not None:
            bundle.close()
        self._index.clear()


# --------------------------------------------------------------------------
# responses


class ServedField:
    """A full-field response streaming from the result ring, lazily.

    Holds guarded zero-copy views of the cached sample values and void
    predictions; :meth:`chunks` streams the predictions as the serial
    path's aligned predict blocks, :meth:`assemble` materializes the full
    grid (sample overlay + void fill — the offline reconstruct's exact
    assembly) only on demand.
    """

    def __init__(self, key, engine: StackEvaluator, cache: _SlotCache,
                 slot: int, generation: int, report) -> None:
        self.key = key
        self.report = report
        self._engine = engine
        self._cache = cache
        self._slot = slot
        self._generation = generation

    @property
    def values(self) -> np.ndarray:
        self._cache.check(self._slot, self._generation)
        return self._cache.values[self._slot]

    @property
    def predictions(self) -> np.ndarray:
        self._cache.check(self._slot, self._generation)
        return self._cache.pred[self._slot]

    def num_chunks(self) -> int:
        return self._engine.num_chunks()

    def chunks(self):
        """Yield ``(start, stop, block)`` aligned predict-block views."""
        pred = self.predictions
        for chunk in range(self._engine.num_chunks()):
            start, stop = self._engine.chunk_bounds(chunk)
            self._cache.check(self._slot, self._generation)
            yield start, stop, pred[start:stop]

    def assemble(self) -> np.ndarray:
        """Materialize the full grid (the one deliberate full-size copy)."""
        return self._engine.assemble(self.values, self.predictions)


class ServedChunk:
    """One aligned predict-block of void predictions, zero-copy."""

    def __init__(self, key, cache: _SlotCache, slot: int, generation: int,
                 chunk: int, start: int, stop: int) -> None:
        self.key = key
        self.chunk = chunk
        self.start = start
        self.stop = stop
        self._cache = cache
        self._slot = slot
        self._generation = generation

    def array(self) -> np.ndarray:
        """The block's predictions (guarded view into the result ring)."""
        self._cache.check(self._slot, self._generation)
        return self._cache.pred[self._slot][self.start : self.stop]


# --------------------------------------------------------------------------
# server


@dataclass
class _Namespace:
    """Lazily-built per-namespace serving state."""

    engine: StackEvaluator
    cache: _SlotCache
    errors: dict = field(default_factory=dict)


class ReconstructionServer:
    """Threaded serving front door over a :class:`ModelRegistry`.

    Create it inside an active :class:`repro.obs.RunRecorder` to capture
    the ``serve.*`` spans and metrics.  Close it (or use it as a context
    manager) to drain the queue and release shared-memory slot rings.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: ServerConfig | None = None,
        clock=time.monotonic,
    ) -> None:
        self.registry = registry
        self.config = config if config is not None else ServerConfig()
        self._clock = clock
        self._cond = threading.Condition()
        self._queue: deque[Ticket] = deque()
        self._closed = False
        self._namespaces: dict[str, _Namespace] = {}
        self._buckets: dict[str, TokenBucket] = {}
        # Plain counters for stats(), mutated from both caller threads and
        # the dispatcher — every write goes through _count() under this
        # dedicated lock (never held while calling anything else, so it
        # cannot participate in a lock cycle with _cond).
        self._stats_lock = threading.Lock()
        self._n = {
            "requests": 0, "hits": 0, "misses": 0, "coalesced": 0,
            "shed": 0, "throttled": 0, "rejected": 0, "errors": 0,
            "evals": 0, "eval_members": 0, "batches": 0, "batch_requests": 0,
        }
        self._c_requests = obs_counter("serve.requests")
        self._c_hits = obs_counter("serve.cache.hits")
        self._c_misses = obs_counter("serve.cache.misses")
        self._c_coalesced = obs_counter("serve.coalesced")
        self._c_shed = obs_counter("serve.shed")
        self._c_throttled = obs_counter("serve.throttled")
        self._c_rejected = obs_counter("serve.rejected")
        self._c_errors = obs_counter("serve.errors")
        self._c_evals = obs_counter("serve.evals")
        self._g_depth = obs_gauge("serve.queue.depth")
        self._g_occupancy = obs_gauge("serve.batch.occupancy")
        self._h_stack = obs_histogram("serve.batch.stack_k")
        self._h_batch = obs_histogram("serve.batch.requests")
        self._h_latency = obs_histogram("serve.latency_ms")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-dispatch", daemon=True
        )
        self._thread.start()

    def _count(self, name: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._n[name] += amount

    # -------------------------------------------------------------- submit
    def submit(self, request: ServeRequest) -> Ticket:
        """Enqueue one request; returns immediately with a :class:`Ticket`.

        Cache hits (and throttle/reject refusals) complete the ticket
        synchronously; misses complete on the dispatcher thread.
        """
        if self._closed:
            raise ServeError("server is closed")
        now = self._clock()
        deadline = request.deadline
        if deadline is None:
            deadline = self.config.default_deadline
        deadline_at = now + deadline if deadline is not None else float("inf")
        ticket = Ticket(request, submitted=now, deadline_at=deadline_at)
        self._count("requests")
        self._c_requests.inc()
        if self.config.tenant_rate is not None:
            bucket = self._buckets.get(request.tenant)
            if bucket is None:
                bucket = self._buckets.setdefault(
                    request.tenant,
                    TokenBucket(
                        self.config.tenant_rate, self.config.tenant_burst, self._clock
                    ),
                )
            if not bucket.try_take():
                self._count("throttled")
                self._c_throttled.inc()
                ticket._finish("throttled", self._clock)
                return ticket
        with self._cond:
            ns = self._namespaces.get(request.key.namespace_id)
            if ns is not None:
                hit = ns.cache.lookup(request.key)
                if hit is not None:
                    self._count("hits")
                    self._c_hits.inc()
                    self._fulfill(ticket, ns, *hit, report=None)
                    return ticket
            if len(self._queue) >= self.config.max_queue:
                self._count("rejected")
                self._c_rejected.inc()
                ticket._finish("rejected", self._clock)
                return ticket
            self._count("misses")
            self._c_misses.inc()
            ticket._event = threading.Event()
            self._queue.append(ticket)
            self._g_depth.set(len(self._queue))
            self._cond.notify()
        return ticket

    def serve(self, request: ServeRequest, timeout: float | None = None):
        """Submit and wait: the blocking convenience wrapper."""
        return self.submit(request).result(timeout)

    # ---------------------------------------------------------- dispatcher
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
            if self.config.batch_window > 0:
                time.sleep(self.config.batch_window)
            with self._cond:
                batch = list(self._queue)
                self._queue.clear()
                self._g_depth.set(0)
            if batch:
                self._process(batch)

    def _process(self, batch: list[Ticket]) -> None:
        now = self._clock()
        groups: dict[str, OrderedDict[ModelKey, list[Ticket]]] = {}
        live = 0
        for ticket in batch:
            if ticket.deadline_at < now:
                self._count("shed")
                self._c_shed.inc()
                ticket._finish("shed", self._clock)
                continue
            groups.setdefault(ticket.request.key.namespace_id, OrderedDict()) \
                  .setdefault(ticket.request.key, []).append(ticket)
            live += 1
        if not groups:
            return
        with span("serve.batch", requests=live, namespaces=len(groups)):
            for ns_id, keymap in groups.items():
                self._process_namespace(ns_id, keymap)
        with self._stats_lock:
            self._n["batches"] += 1
            self._n["batch_requests"] += live
            occupancy = self._n["batch_requests"] / self._n["batches"]
        self._h_batch.observe(live)
        self._g_occupancy.set(occupancy)

    def _process_namespace(self, ns_id: str, keymap) -> None:
        first_key = next(iter(keymap))
        try:
            ns = self._namespace(first_key)
        except Exception as exc:
            for tickets in keymap.values():
                for ticket in tickets:
                    self._fail(ticket, exc)
            return
        # Second chance: a result may have landed since these were queued.
        for key in list(keymap):
            with self._cond:
                hit = ns.cache.lookup(key)
            if hit is not None:
                tickets = keymap.pop(key)
                self._count("hits", len(tickets))
                self._c_hits.inc(len(tickets))
                for ticket in tickets:
                    self._fulfill(ticket, ns, *hit, report=None)
        pending = list(keymap)
        for i in range(0, len(pending), self.config.max_batch):
            kslice = pending[i : i + self.config.max_batch]
            rows: list[tuple[ModelKey, np.ndarray, np.ndarray]] = []
            for key in kslice:
                try:
                    weights, values = self.registry.hot(key)
                except Exception as exc:
                    for ticket in keymap[key]:
                        self._fail(ticket, exc)
                    continue
                rows.append((key, weights, values))
            if not rows:
                continue
            try:
                pred, reports = ns.engine.evaluate(
                    [r[1] for r in rows],
                    [r[2] for r in rows],
                    on_nonfinite=self.config.on_nonfinite,
                )
            except Exception as exc:
                for key, _, _ in rows:
                    for ticket in keymap[key]:
                        self._fail(ticket, exc)
                continue
            self._count("evals")
            self._count("eval_members", len(rows))
            self._c_evals.inc()
            self._h_stack.observe(len(rows))
            for member, (key, _, values) in enumerate(rows):
                with self._cond:
                    slot, generation = ns.cache.store(key, values, pred[member])
                tickets = keymap[key]
                self._count("coalesced", max(0, len(tickets) - 1))
                if len(tickets) > 1:
                    self._c_coalesced.inc(len(tickets) - 1)
                for ticket in tickets:
                    self._fulfill(ticket, ns, slot, generation, reports[member])

    # ------------------------------------------------------------ plumbing
    def _namespace(self, key: ModelKey) -> _Namespace:
        ns = self._namespaces.get(key.namespace_id)
        if ns is not None:
            return ns
        record = self.registry.namespace(key.dataset, key.fraction)
        engine = StackEvaluator(
            record.base, record.geometry, max_stacks=self.config.max_stacks
        )
        cache = _SlotCache(
            self.config.cache_slots,
            record.geometry.num_samples,
            record.geometry.num_voids,
            self.config.transport,
        )
        ns = _Namespace(engine=engine, cache=cache)
        # submit() reads this dict under _cond for its cache fast path;
        # publish the bound namespace under the same lock.
        with self._cond:
            self._namespaces[key.namespace_id] = ns
        record_event(
            "serve.namespace.bound", namespace=key.namespace_id,
            transport=cache.transport, voids=record.geometry.num_voids,
        )
        return ns

    def _fulfill(self, ticket: Ticket, ns: _Namespace, slot: int,
                 generation: int, report) -> None:
        request = ticket.request
        if request.kind == "chunk":
            try:
                start, stop = ns.engine.chunk_bounds(request.chunk)
            except IndexError as exc:
                self._fail(ticket, exc)
                return
            value = ServedChunk(
                request.key, ns.cache, slot, generation, request.chunk, start, stop
            )
        else:
            value = ServedField(request.key, ns.engine, ns.cache, slot, generation, report)
        ticket._finish("ok", self._clock, value=value)
        latency = ticket.latency
        if latency is not None:
            self._h_latency.observe(latency * 1e3)

    def _fail(self, ticket: Ticket, exc: BaseException) -> None:
        self._count("errors")
        self._c_errors.inc()
        ticket._finish("error", self._clock, error=exc)

    # ------------------------------------------------------------- teardown
    def stats(self) -> dict:
        """Serving counters plus derived occupancy/hit-rate numbers."""
        out = dict(self._n)
        out["batch_occupancy"] = (
            self._n["batch_requests"] / self._n["batches"] if self._n["batches"] else 0.0
        )
        out["mean_stack_k"] = (
            self._n["eval_members"] / self._n["evals"] if self._n["evals"] else 0.0
        )
        looked = self._n["hits"] + self._n["misses"]
        out["cache_hit_rate"] = self._n["hits"] / looked if looked else 0.0
        out["registry"] = self.registry.stats()
        out["config"] = {
            "max_batch": self.config.max_batch,
            "cache_slots": self.config.cache_slots,
            "batch_window": self.config.batch_window,
            "transport": self.config.transport,
        }
        out["transports"] = {
            ns_id: ns.cache.transport for ns_id, ns in self._namespaces.items()
        }
        return out

    def close(self) -> None:
        """Drain queued requests, stop the dispatcher, release slot rings."""
        with self._cond:
            if self._closed and not self._thread.is_alive():
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join()
        for ns in self._namespaces.values():
            ns.cache.close()
        self._namespaces.clear()

    def __enter__(self) -> "ReconstructionServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
