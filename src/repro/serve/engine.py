# hot-path
"""Fused stacked inference: K served models' void predictions in one pass.

The serving layer's evaluation kernel.  K requests for distinct timesteps
of one namespace become one :class:`repro.nn.batched.ModelStack` forward —
every hidden layer advances all K members per batched BLAS call, and the
skinny output head runs the serial predict path's fixed-accumulation-order
einsum per member — so fused results are **bit-identical, per member, to
the serial** :meth:`repro.core.FCNNReconstructor.predict_values` path for
the same weights (the acceptance contract of ``repro.serve``):

* features per member are filled by the same
  :meth:`~repro.core.FeatureExtractor.features_into` over the same cached
  void positions and memoized neighbor indices;
* block boundaries equal the serial predict blocks
  (``max(batch_size, 16384)``), so every matmul sees the same row count;
* denormalization and the non-finite nearest-neighbor fallback reuse the
  serial path's exact op sequences.

Stacks are LRU-cached by member count: a warm (K) stack's weight tensors
are overwritten in place (:meth:`ModelStack.set_member_weights`) instead
of re-allocated, and all arena buffers live in one reused
:class:`repro.perf.Workspace` — steady-state serving allocates only the
output rows.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict

import numpy as np

from repro.nn.batched import ModelStack
from repro.obs import counter as obs_counter
from repro.obs import span
from repro.perf import Workspace
from repro.perf.campaign import CampaignGeometry, _nonfinite_fallback
from repro.resilience.health import NumericalHealthError
from repro.resilience.report import ReconstructionReport

__all__ = ["StackEvaluator"]


class StackEvaluator:
    """Evaluate K weight sets over one namespace's void geometry, fused."""

    def __init__(
        self,
        base,
        geometry: CampaignGeometry,
        max_stacks: int = 4,
    ) -> None:
        network, normalizer = base._require_trained()
        if base.dtype_policy.compute != "float64":
            raise ValueError(
                "StackEvaluator serves float64 models only (the fused stacked "
                f"engine is float64); base has dtype_policy={base.dtype_policy.compute!r}"
            )
        if max_stacks < 1:
            raise ValueError(f"max_stacks must be >= 1, got {max_stacks}")
        self.base = base
        self.geometry = geometry
        self.max_stacks = int(max_stacks)
        self.block = max(base.batch_size, 16384)
        # The serial predict path's per-grid coordinate renormalization.
        self.local = dataclasses.replace(
            normalizer,
            origin=np.asarray(geometry.grid.origin, dtype=np.float64),
            span=_grid_span(geometry.grid),
        )
        # One stable shell + the geometry's cached void positions keep the
        # extractor's canonical neighbor memo hot across every evaluation.
        self._shell = geometry.shell()
        self._ws = Workspace(dtype=np.float64)
        self._stacks: OrderedDict[int, ModelStack] = OrderedDict()
        self._idx: np.ndarray | None = None

    # ------------------------------------------------------------ geometry
    @property
    def num_voids(self) -> int:
        return self.geometry.num_voids

    def num_chunks(self) -> int:
        """How many aligned predict blocks one full response streams as."""
        return max(1, -(-self.geometry.num_voids // self.block))

    def chunk_bounds(self, chunk: int) -> tuple[int, int]:
        """Void-index bounds of one predict-block chunk."""
        n = self.num_chunks()
        if not (0 <= chunk < n):
            raise IndexError(f"chunk {chunk} out of range for {n} predict block(s)")
        start = chunk * self.block
        return start, min(start + self.block, self.geometry.num_voids)

    def _neighbor_idx(self) -> np.ndarray:
        if self._idx is None:
            self._idx = self.base.extractor._neighbor_indices(
                self._shell, self.geometry.void_points
            )
        return self._idx

    # -------------------------------------------------------------- stacks
    def _stack(self, k: int) -> ModelStack:
        """The warm K-member stack (LRU by K; weights overwritten per call)."""
        stack = self._stacks.get(k)
        if stack is not None:
            self._stacks.move_to_end(k)
            obs_counter("serve.engine.stack_hits").inc()
            return stack
        obs_counter("serve.engine.stack_misses").inc()
        stack = ModelStack.from_network(self.base.model, k=k)
        while len(self._stacks) >= self.max_stacks:
            self._stacks.popitem(last=False)
        self._stacks[k] = stack
        return stack

    # ------------------------------------------------------------ evaluate
    def evaluate(
        self,
        weight_rows: list[np.ndarray],
        value_rows: list[np.ndarray],
        on_nonfinite: str = "fallback",
    ) -> tuple[np.ndarray, list[ReconstructionReport]]:
        """Predict every void for K (weights, sample values) pairs, fused.

        Returns ``(pred, reports)`` where ``pred`` is ``(K, num_voids)``
        and ``reports[m]`` records member ``m``'s degradation (non-finite
        predictions replaced by nearest-neighbor sample values, exactly as
        the serial reconstruct path does).  Each row of ``pred`` is
        bit-identical to the serial
        :meth:`~repro.core.FCNNReconstructor.predict_values` over the
        same geometry with the same weights.
        """
        if on_nonfinite not in ("fallback", "raise"):
            raise ValueError(
                f"on_nonfinite must be 'fallback' or 'raise', got {on_nonfinite!r}"
            )
        k = len(weight_rows)
        if k == 0 or len(value_rows) != k:
            raise ValueError(
                f"need matching weight/value rows, got {k}/{len(value_rows)}"
            )
        geometry = self.geometry
        extractor = self.base.extractor
        nv = geometry.num_voids
        width = extractor.feature_size
        idx = self._neighbor_idx()
        stack = self._stack(k)
        for member, flat in enumerate(weight_rows):
            stack.set_member_weights(member, flat)
        pred = np.empty((k, nv), dtype=np.float64)
        ws = self._ws
        stack.attach_workspace(ws)
        stack.set_training(False)
        with span("serve.eval", members=k, voids=nv):
            try:
                for start in range(0, nv, self.block):
                    stop = min(start + self.block, nv)
                    feat = ws.buffer(("serve", "feat"), (k, stop - start, width))
                    for member in range(k):
                        self._shell.values[...] = value_rows[member]
                        extractor.features_into(
                            self._shell,
                            geometry.void_points[start:stop],
                            self.local,
                            feat[member],
                            workspace=ws,
                            neighbor_idx=idx[start:stop],
                        )
                    out = stack.forward(feat)
                    for member in range(k):
                        self.local.denormalize_values_into(
                            out[member, :, 0], pred[member, start:stop]
                        )
            finally:
                stack.set_training(True)
                stack.detach_workspace()
        reports = []
        for member in range(k):
            report = ReconstructionReport(
                total_points=int(geometry.grid.num_points), fallback_method="nearest"
            )
            row = pred[member]
            if not np.isfinite(row).all():
                if on_nonfinite == "raise":
                    count = int((~np.isfinite(row)).sum())
                    raise NumericalHealthError(
                        f"FCNN produced {count}/{row.size} non-finite predictions; "
                        "the model state is numerically poisoned"
                    )
                pred[member] = _nonfinite_fallback(
                    row,
                    geometry.points,
                    np.asarray(value_rows[member], dtype=np.float64),
                    geometry.void_points,
                    report,
                )
            reports.append(report)
        return pred, reports

    def assemble(self, values: np.ndarray, pred: np.ndarray) -> np.ndarray:
        """Full-grid materialization: sample overlay + void fill (serial ops)."""
        geometry = self.geometry
        out = geometry.grid.empty_field().ravel()
        out[geometry.indices] = values
        out[geometry.void_indices] = pred
        return out.reshape(geometry.grid.dims)


def _grid_span(grid) -> np.ndarray:
    span_ = (np.asarray(grid.dims, dtype=np.float64) - 1.0) * np.asarray(grid.spacing)
    return np.where(span_ <= 0, 1.0, span_)
