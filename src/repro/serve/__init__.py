"""Reconstruction-as-a-service: registry, fused serving engine, replay bench.

The front door over the campaign substrate (PR 4-9): trained per-timestep
weights live in a durable :class:`ModelRegistry` (mmap'd cold tier + hot
LRU), a :class:`ReconstructionServer` coalesces and stacks concurrent
requests into fused :class:`repro.nn.batched` evaluations with per-tenant
token-bucket backpressure and deadline shedding, and responses stream as
aligned predict-block chunks straight out of a (shared-memory) result
ring — bit-identical to the offline ``run_campaign`` reconstruction path
for the same weights.  :mod:`repro.serve.replay` replays recorded or
synthetic request traces against a server for load benchmarking
(``benchmarks/test_bench_serve.py``, ``BENCH_serve.json``).

See ``docs/SERVING.md`` for architecture, semantics and the SLO metric
catalog.
"""

from repro.serve.build import build_registry
from repro.serve.engine import StackEvaluator
from repro.serve.registry import ModelKey, ModelRegistry, RegistryNamespace
from repro.serve.replay import (
    ReplayStats,
    RequestTrace,
    naive_throughput,
    replay,
    synthetic_trace,
)
from repro.serve.service import (
    ReconstructionServer,
    ServeError,
    ServeRequest,
    ServedChunk,
    ServedField,
    ServerConfig,
    StaleResultError,
    Ticket,
    TokenBucket,
)

__all__ = [
    "ModelKey",
    "ModelRegistry",
    "RegistryNamespace",
    "StackEvaluator",
    "ReconstructionServer",
    "ServerConfig",
    "ServeRequest",
    "ServedField",
    "ServedChunk",
    "ServeError",
    "StaleResultError",
    "Ticket",
    "TokenBucket",
    "RequestTrace",
    "ReplayStats",
    "replay",
    "synthetic_trace",
    "naive_throughput",
    "build_registry",
]
