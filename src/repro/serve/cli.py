"""CLI for the serving layer: ``repro serve ...`` and ``repro replay ...``.

::

    repro serve build registry/ --dataset combustion --timesteps 0 1 2 3
    repro serve ls registry/
    repro replay registry/ --requests 10000 --report stats.json --obs runs/serve

``repro replay`` plays a synthetic (or recorded ``--trace``) request
stream against an in-process :class:`~repro.serve.ReconstructionServer`
over the registry and prints :class:`~repro.serve.ReplayStats` as JSON.
``--no-batching`` degrades the server to one-key-per-evaluation,
single-slot caching — the configuration CI diffs the batched run against
(``repro obs report A --diff B --only 'serve.*'``).
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["serve_main", "replay_main"]


def serve_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="repro serve", description="model-registry tools")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", help="train + batched fine-tune a campaign into a registry")
    p.add_argument("registry", help="registry directory to create/extend")
    p.add_argument("--dataset", default="combustion")
    p.add_argument("--dims", type=int, nargs=3, default=[16, 16, 8])
    p.add_argument("--fraction", type=float, default=0.05)
    p.add_argument("--timesteps", type=int, nargs="+", default=[0, 1, 2, 3])
    p.add_argument("--epochs", type=int, default=40)
    p.add_argument("--finetune-epochs", type=int, default=4)
    p.add_argument("--hidden", type=int, nargs="+", default=[32, 16])
    p.add_argument("--fractions", type=float, nargs="+", default=[0.01, 0.05],
                   help="training sampling fractions")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--obs", default=None, metavar="DIR",
                   help="record run telemetry under DIR (repro obs report DIR)")

    p = sub.add_parser("ls", help="list a registry's namespaces and keys")
    p.add_argument("registry")

    args = parser.parse_args(argv)
    try:
        if args.command == "build":
            msg = _cmd_build(args)
        else:
            msg = _cmd_ls(args)
    except (ValueError, FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(msg)
    return 0


def _recorder(obs_dir, meta):
    if obs_dir:
        from repro.obs import RunRecorder

        return RunRecorder(obs_dir, meta=meta)
    from repro.obs import NullRecorder

    return NullRecorder()


def _cmd_build(args) -> str:
    from repro.serve.build import build_registry

    with _recorder(args.obs, {"command": "serve build", "seed": args.seed}):
        registry = build_registry(
            args.registry,
            dataset=args.dataset,
            dims=tuple(args.dims),
            fraction=args.fraction,
            timesteps=args.timesteps,
            epochs=args.epochs,
            finetune_epochs=args.finetune_epochs,
            hidden=tuple(args.hidden),
            train_fractions=tuple(args.fractions),
            seed=args.seed,
        )
    return (
        f"registry {args.registry}: {len(registry)} key(s) across "
        f"{len(registry.namespaces())} namespace(s)"
    )


def _cmd_ls(args) -> str:
    from repro.serve.registry import ModelRegistry

    registry = ModelRegistry(args.registry)
    lines = []
    for ns in registry.namespaces():
        dims = "x".join(str(d) for d in ns.grid.dims)
        lines.append(
            f"{ns.ns_id}: dataset={ns.dataset} fraction={ns.fraction:g} "
            f"grid={dims} timesteps={ns.timesteps}"
        )
    if not lines:
        return f"registry {args.registry}: empty"
    return "\n".join(lines)


def replay_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro replay", description="replay a request trace against a registry"
    )
    parser.add_argument("registry", help="registry directory (see 'repro serve build')")
    parser.add_argument("--requests", type=int, default=10_000)
    parser.add_argument("--trace", default=None, metavar="NPZ",
                        help="replay a recorded trace instead of a synthetic one")
    parser.add_argument("--record", default=None, metavar="NPZ",
                        help="save the (synthetic) trace for later replays")
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--skew", type=float, default=1.1,
                        help="Zipf exponent of the synthetic key popularity")
    parser.add_argument("--chunk-fraction", type=float, default=0.0,
                        help="fraction of requests asking for one streamed chunk")
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--cache-slots", type=int, default=16)
    parser.add_argument("--max-in-flight", type=int, default=256)
    parser.add_argument("--no-batching", action="store_true",
                        help="naive serving config: max_batch=1, cache_slots=1")
    parser.add_argument("--transport", default="auto", choices=["auto", "shm", "local"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--report", default=None, metavar="JSON",
                        help="also write the stats to this file")
    parser.add_argument("--obs", default=None, metavar="DIR",
                        help="record run telemetry under DIR (repro obs report DIR)")
    args = parser.parse_args(argv)

    from repro.serve import (
        ModelRegistry,
        ReconstructionServer,
        RequestTrace,
        ServerConfig,
        replay,
        synthetic_trace,
    )

    try:
        registry = ModelRegistry(args.registry)
        keys = registry.keys()
        if not keys:
            raise ValueError(f"registry {args.registry} has no keys; run 'repro serve build'")
        if args.trace:
            trace = RequestTrace.load(args.trace)
        else:
            trace = synthetic_trace(
                keys,
                args.requests,
                tenants=tuple(f"tenant-{i}" for i in range(max(1, args.tenants))),
                seed=args.seed,
                skew=args.skew,
                chunk_fraction=args.chunk_fraction,
            )
        if args.record:
            trace.save(args.record)
        config = ServerConfig(
            max_batch=1 if args.no_batching else args.max_batch,
            cache_slots=1 if args.no_batching else args.cache_slots,
            transport=args.transport,
        )
        meta = {
            "command": "replay",
            "seed": args.seed,
            "requests": trace.num_requests,
            "batching": not args.no_batching,
        }
        with _recorder(args.obs, meta) as recorder:
            with ReconstructionServer(registry, config) as server:
                stats = replay(server, trace, max_in_flight=args.max_in_flight)
    except (ValueError, FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    payload = stats.to_dict()
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
    if recorder.run_dir is not None:
        print(f"telemetry: repro obs report {recorder.run_dir}", file=sys.stderr)
    return 0
