"""Modified Shepard (local inverse-distance-weighted) reconstruction.

The classic Shepard method weights *every* sample by inverse distance; the
modified variant (Franke & Nielson) restricts each query to its k nearest
samples and uses the Franke–Little weight

    w_i = ((R - d_i) / (R * d_i))^2,   R = distance to the k-th neighbor,

which decays smoothly to zero at the neighborhood boundary, trading the
global method's O(M) per-query cost for a local kd-tree lookup.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.grid import UniformGrid
from repro.interpolation.base import GridInterpolator

__all__ = ["ModifiedShepardInterpolator"]


class ModifiedShepardInterpolator(GridInterpolator):
    """Local IDW with the Franke–Little weighting."""

    name = "shepard"

    def __init__(self, num_neighbors: int = 8, power: float = 2.0, workers: int = -1) -> None:
        if num_neighbors < 2:
            raise ValueError(f"modified Shepard needs >= 2 neighbors, got {num_neighbors}")
        self.num_neighbors = int(num_neighbors)
        self.power = float(power)
        self.workers = int(workers)

    def interpolate(
        self,
        points: np.ndarray,
        values: np.ndarray,
        query: np.ndarray,
        grid: UniformGrid,
    ) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        k = min(self.num_neighbors, len(points))
        tree = cKDTree(points)
        dist, idx = tree.query(query, k=k, workers=self.workers)
        if k == 1:
            return values[idx]

        # R: radius of the local neighborhood (distance to farthest of the k).
        radius = dist[:, -1:]
        # Exact hits would divide by zero; detect and patch afterwards.
        safe = np.maximum(dist, 1e-300)
        w = np.maximum(radius - dist, 0.0) / (radius * safe)
        w = w**self.power

        wsum = w.sum(axis=1)
        degenerate = wsum <= 0
        if degenerate.any():
            # All k neighbors equidistant at R: fall back to plain averaging.
            w[degenerate] = 1.0
            wsum = w.sum(axis=1)
        result = (w * values[idx]).sum(axis=1) / wsum

        exact = dist[:, 0] < 1e-12
        if exact.any():
            result[exact] = values[idx[exact, 0]]
        return result
