"""Nearest-neighbor reconstruction.

Assigns each query point the value of its closest sample (kd-tree lookup).
Fast — the paper's speed reference among rule-based methods — but blocky,
with discontinuities at Voronoi boundaries, hence consistently low SNR.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.grid import UniformGrid
from repro.interpolation.base import GridInterpolator

__all__ = ["NearestNeighborInterpolator"]


class NearestNeighborInterpolator(GridInterpolator):
    """Piecewise-constant (Voronoi-cell) reconstruction."""

    name = "nearest"

    def __init__(self, workers: int = -1) -> None:
        self.workers = int(workers)

    def interpolate(
        self,
        points: np.ndarray,
        values: np.ndarray,
        query: np.ndarray,
        grid: UniformGrid,
    ) -> np.ndarray:
        tree = cKDTree(points)
        _, idx = tree.query(query, k=1, workers=self.workers)
        return np.asarray(values)[idx]
