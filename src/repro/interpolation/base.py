"""Common interface for point-cloud → grid reconstructors."""

from __future__ import annotations

import abc

import numpy as np

from repro.grid import UniformGrid
from repro.obs import span
from repro.sampling.base import SampledField

__all__ = ["GridInterpolator"]


class GridInterpolator(abc.ABC):
    """Reconstruct a full grid field from an unstructured sample.

    Subclasses implement :meth:`interpolate` — value prediction at arbitrary
    query positions given the sampled point cloud.  :meth:`reconstruct`
    wraps it with the shared bookkeeping: when the target grid *is* the
    sample's source grid, sampled locations keep their exact stored values
    and only void locations are predicted (matching the paper's setup, where
    reconstruction means filling the voids).

    Under an active :class:`repro.obs.RunRecorder`, :meth:`reconstruct`
    times each method's void fill as an ``interp.<name>.eval`` span, which
    is what lets a run record attribute Fig 10's rule-based timings to the
    individual interpolators (vs ``fcnn.predict`` for the FCNN).
    """

    name: str = "interpolator"

    @abc.abstractmethod
    def interpolate(
        self,
        points: np.ndarray,
        values: np.ndarray,
        query: np.ndarray,
        grid: UniformGrid,
    ) -> np.ndarray:
        """Predict values at ``query`` ``(Q, 3)`` from samples ``(M, 3)``.

        ``grid`` describes the query points' source grid (several methods
        need its spacing/extent, e.g. discrete Sibson's rasterization).
        """

    def reconstruct(
        self,
        sample: SampledField,
        target_grid: UniformGrid | None = None,
    ) -> np.ndarray:
        """Reconstruct the full field; returns an array shaped like the grid.

        Parameters
        ----------
        sample:
            The sampled point cloud.
        target_grid:
            Grid to reconstruct onto.  Defaults to the sample's own grid;
            pass a different grid for the upscaling experiment (Fig 13).
        """
        grid = target_grid if target_grid is not None else sample.grid
        same_grid = target_grid is None or target_grid == sample.grid

        out = grid.empty_field()
        if same_grid:
            flat = out.ravel()
            flat[sample.indices] = sample.values
            void = sample.void_indices()
            if void.size:
                query = grid.index_to_position(grid.flat_to_multi(void))
                with span(f"interp.{self.name}.eval", queries=int(void.size)):
                    flat[void] = self.interpolate(sample.points, sample.values, query, grid)
            return flat.reshape(grid.dims)
        query = grid.points()
        with span(f"interp.{self.name}.eval", queries=int(len(query))):
            values = self.interpolate(sample.points, sample.values, query, grid)
        return values.reshape(grid.dims)
