"""Piecewise-linear interpolation over a Delaunay tetrahedralization.

The paper's strongest rule-based baseline.  Two execution modes reproduce
the paper's two implementations (Fig 10):

* ``mode="naive"`` — a sequential pure-Python loop over query points:
  locate the containing simplex, solve for barycentric coordinates, blend.
  This is the paper's "initial sequential implementation in Python" whose
  cost blows up with sample count.
* ``mode="vectorized"`` — one batched simplex location plus fully
  vectorized barycentric transforms; this plays the role of the paper's
  parallel C++/CGAL/OpenMP implementation (and can additionally be chunked
  across processes via :mod:`repro.parallel`).

Queries outside the convex hull of the samples have no containing simplex;
both modes fall back to nearest-neighbor there, so reconstructions are
defined on the whole grid.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay, cKDTree

from repro.grid import UniformGrid
from repro.interpolation.base import GridInterpolator

__all__ = ["DelaunayLinearInterpolator"]

_MODES = ("vectorized", "naive")


class DelaunayLinearInterpolator(GridInterpolator):
    """Delaunay-based piecewise-linear (barycentric) reconstruction."""

    name = "linear"

    def __init__(self, mode: str = "vectorized") -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        if mode == "naive":
            self.name = "linear-naive"

    # ------------------------------------------------------------- plumbing
    def _triangulate(self, points: np.ndarray) -> Delaunay:
        # QJ joggles degenerate (cospherical/collinear) inputs instead of
        # failing; grid-aligned samples frequently need it.
        try:
            return Delaunay(points)
        except Exception:
            return Delaunay(points, qhull_options="QJ")

    def interpolate(
        self,
        points: np.ndarray,
        values: np.ndarray,
        query: np.ndarray,
        grid: UniformGrid,
    ) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        query = np.atleast_2d(np.asarray(query, dtype=np.float64))
        if len(points) < 5:
            # Too few samples for a 3D triangulation: nearest fallback.
            return self._nearest_fill(points, values, query, np.ones(len(query), bool))

        tri = self._triangulate(points)
        if self.mode == "naive":
            result = self._interpolate_naive(tri, values, query)
        else:
            result = self._interpolate_vectorized(tri, values, query)

        outside = np.isnan(result)
        if outside.any():
            result[outside] = self._nearest_fill(points, values, query[outside], None)
        return result

    @staticmethod
    def _nearest_fill(points, values, query, _mask) -> np.ndarray:
        tree = cKDTree(points)
        _, idx = tree.query(query, k=1)
        return np.asarray(values)[idx]

    # ----------------------------------------------------------- vectorized
    @staticmethod
    def _interpolate_vectorized(tri: Delaunay, values: np.ndarray, query: np.ndarray) -> np.ndarray:
        simplex = tri.find_simplex(query)
        result = np.full(len(query), np.nan)
        inside = simplex >= 0
        if not inside.any():
            return result
        s = simplex[inside]
        # Barycentric coordinates from the precomputed affine transforms:
        # b = T^{-1} (q - r),  last coordinate = 1 - sum(b).
        transform = tri.transform[s]  # (K, 4, 3)
        delta = query[inside] - transform[:, 3, :]
        bary = np.einsum("kij,kj->ki", transform[:, :3, :], delta)
        weights = np.concatenate([bary, 1.0 - bary.sum(axis=1, keepdims=True)], axis=1)
        verts = tri.simplices[s]  # (K, 4)
        result[inside] = np.einsum("ki,ki->k", weights, values[verts])
        return result

    # ---------------------------------------------------------------- naive
    @staticmethod
    def _interpolate_naive(tri: Delaunay, values: np.ndarray, query: np.ndarray) -> np.ndarray:
        # Deliberately sequential: one simplex lookup and one small linear
        # solve per query point, mirroring the paper's slow Python baseline.
        result = np.full(len(query), np.nan)
        for i in range(len(query)):
            q = query[i]
            s = int(tri.find_simplex(q))
            if s < 0:
                continue
            verts = tri.simplices[s]
            corners = tri.points[verts]
            # Solve for barycentric coordinates the long way: columns of the
            # 4x4 system are the homogeneous simplex corners [x, y, z, 1]^T.
            m = np.vstack([corners.T, np.ones((1, 4))])
            rhs = np.append(q, 1.0)
            try:
                bary = np.linalg.solve(m, rhs)
            except np.linalg.LinAlgError:
                continue
            result[i] = float(np.dot(bary, values[verts]))
        return result
