"""Radial-basis-function reconstruction (thin-plate splines).

The paper evaluates RBFs but excludes them from the headline comparison:
"the time taken by them is much larger than the rest of the methods, and it
does not offer any noticeable improvement in reconstruction quality over
linear interpolation" (Sec III-B).  We implement them anyway so that claim
is checkable: a local RBF (scipy's ``RBFInterpolator`` restricted to a
``neighbors`` window, the only tractable form at these sample counts)
wrapped in the shared interface.
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import RBFInterpolator as _SciPyRBF

from repro.grid import UniformGrid
from repro.interpolation.base import GridInterpolator

__all__ = ["RBFInterpolator"]


class RBFInterpolator(GridInterpolator):
    """Thin-plate-spline RBF reconstruction with a local neighborhood."""

    name = "rbf"

    def __init__(
        self,
        kernel: str = "thin_plate_spline",
        neighbors: int | None = 32,
        smoothing: float = 0.0,
        degree: int | None = None,
    ) -> None:
        self.kernel = kernel
        self.neighbors = neighbors
        self.smoothing = float(smoothing)
        self.degree = degree

    def interpolate(
        self,
        points: np.ndarray,
        values: np.ndarray,
        query: np.ndarray,
        grid: UniformGrid,
    ) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        neighbors = self.neighbors
        if neighbors is not None:
            neighbors = min(neighbors, len(points))
        rbf = _SciPyRBF(
            points,
            values,
            kernel=self.kernel,
            neighbors=neighbors,
            smoothing=self.smoothing,
            degree=self.degree,
        )
        return rbf(np.atleast_2d(np.asarray(query, dtype=np.float64)))
