"""Natural-neighbor (Sibson) reconstruction via the discrete approximation.

Exact Sibson interpolation requires inserting each query point into the
samples' Voronoi diagram and measuring stolen cell volumes — prohibitively
expensive in 3D.  Park et al. [26] ("Discrete Sibson Interpolation", cited
by the paper) rasterize instead: every grid node ``x`` knows its nearest
sample ``s(x)`` at distance ``r(x)``; node ``x`` then *scatters* the value
``v(s(x))`` to every grid node within radius ``r(x)`` of ``x``.  Averaging
the contributions received at each node converges to Sibson's coordinates
as the raster resolution grows.

The scatter is vectorized by quantizing the radii and applying precomputed
index-offset balls per radius class; nodes that receive no contribution
(isolated exact-sample hits) fall back to nearest-neighbor.

The offset balls depend only on the grid spacing and the radius class, so
they are memoized module-wide: repeated same-grid reconstructions (every
timestep of a campaign) skip the ``meshgrid`` offset generation entirely.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.grid import UniformGrid
from repro.interpolation.base import GridInterpolator
from repro.obs import counter as obs_counter

__all__ = ["NaturalNeighborInterpolator"]

#: (radius_voxels, spacing, h) -> read-only offset array.  Offsets are tiny
#: (a few KB per radius class) but regenerating them cost a meshgrid + mask
#: per class per call; campaigns reconstruct the same grid hundreds of times.
_OFFSET_CACHE: dict[tuple, np.ndarray] = {}
#: distinct grid geometries to remember before dropping the cache; a single
#: campaign touches one or two, so this never evicts in practice.
_OFFSET_CACHE_MAX_KEYS = 512


class NaturalNeighborInterpolator(GridInterpolator):
    """Discrete Sibson interpolation on the target grid."""

    name = "natural"

    def __init__(self, max_radius_voxels: int = 64, workers: int = -1) -> None:
        self.max_radius_voxels = int(max_radius_voxels)
        self.workers = int(workers)

    def interpolate(
        self,
        points: np.ndarray,
        values: np.ndarray,
        query: np.ndarray,
        grid: UniformGrid,
    ) -> np.ndarray:
        sums, counts, tree = self._scatter(points, values, grid)
        vals = np.asarray(values, dtype=np.float64)

        # Map query positions to grid nodes and read the accumulated average.
        qidx = grid.multi_to_flat(grid.position_to_index(query))
        have = counts[qidx] > 0
        result = np.empty(len(query), dtype=np.float64)
        result[have] = sums[qidx[have]] / counts[qidx[have]]
        if (~have).any():
            _, nn = tree.query(query[~have], k=1, workers=self.workers)
            result[~have] = vals[nn]
        return result

    # ------------------------------------------------------------- internals
    def _scatter(
        self, points: np.ndarray, values: np.ndarray, grid: UniformGrid
    ) -> tuple[np.ndarray, np.ndarray, cKDTree]:
        """Accumulate discrete-Sibson contributions over the whole grid."""
        vals = np.asarray(values, dtype=np.float64)
        tree = cKDTree(points)
        nodes = grid.points()
        dist, nearest = tree.query(nodes, k=1, workers=self.workers)
        contrib = vals[nearest]  # value scattered by each node

        spacing = np.asarray(grid.spacing)
        h = float(spacing.min())
        # Radius class: how many voxels (of the finest spacing) each node's
        # scatter ball spans.  Class 0 nodes only reach themselves.
        r_class = np.minimum(
            np.floor(dist / h).astype(np.int64), self.max_radius_voxels
        )

        sums = np.zeros(grid.num_points, dtype=np.float64)
        counts = np.zeros(grid.num_points, dtype=np.int64)
        multi = grid.flat_to_multi(np.arange(grid.num_points))
        dims = np.asarray(grid.dims)

        for rc in np.unique(r_class):
            members = np.flatnonzero(r_class == rc)
            offsets = self._ball_offsets(int(rc), spacing, h)
            src_multi = multi[members]
            src_val = contrib[members]
            for off in offsets:
                tgt = src_multi + off
                ok = np.all((tgt >= 0) & (tgt < dims), axis=1)
                if not ok.any():
                    continue
                flat = grid.multi_to_flat(tgt[ok])
                np.add.at(sums, flat, src_val[ok])
                np.add.at(counts, flat, 1)
        return sums, counts, tree

    @staticmethod
    def _ball_offsets(radius_voxels: int, spacing: np.ndarray, h: float) -> np.ndarray:
        """Integer index offsets within a physical ball of ``radius_voxels * h``.

        Memoized per ``(radius class, grid spacing)`` — treat the returned
        array as read-only.
        """
        key = (int(radius_voxels), tuple(float(s) for s in spacing), float(h))
        cached = _OFFSET_CACHE.get(key)
        if cached is not None:
            obs_counter("interp.natural.offsets.hit").inc()
            return cached
        obs_counter("interp.natural.offsets.miss").inc()
        offsets = NaturalNeighborInterpolator._compute_ball_offsets(radius_voxels, spacing, h)
        if len(_OFFSET_CACHE) >= _OFFSET_CACHE_MAX_KEYS:
            _OFFSET_CACHE.clear()
        offsets.setflags(write=False)
        _OFFSET_CACHE[key] = offsets
        return offsets

    @staticmethod
    def _compute_ball_offsets(radius_voxels: int, spacing: np.ndarray, h: float) -> np.ndarray:
        if radius_voxels <= 0:
            return np.zeros((1, 3), dtype=np.int64)
        r_phys = radius_voxels * h
        reach = np.floor(r_phys / spacing).astype(np.int64)
        axes = [np.arange(-m, m + 1) for m in reach]
        dx, dy, dz = np.meshgrid(*axes, indexing="ij")
        offs = np.column_stack([dx.ravel(), dy.ravel(), dz.ravel()])
        d2 = ((offs * spacing) ** 2).sum(axis=1)
        return offs[d2 <= r_phys**2]
