"""Interpolator registry used by the harness, benchmarks and CLI."""

from __future__ import annotations

from typing import Callable

from repro.interpolation.base import GridInterpolator
from repro.interpolation.linear_delaunay import DelaunayLinearInterpolator
from repro.interpolation.natural_neighbor import NaturalNeighborInterpolator
from repro.interpolation.nearest import NearestNeighborInterpolator
from repro.interpolation.rbf import RBFInterpolator
from repro.interpolation.global_shepard import GlobalShepardInterpolator
from repro.interpolation.shepard import ModifiedShepardInterpolator

__all__ = [
    "available_interpolators",
    "make_interpolator",
    "register_interpolator",
    "INTERPOLATORS",
]

INTERPOLATORS: dict[str, Callable[[], GridInterpolator]] = {}


def register_interpolator(
    name: str, factory: Callable[[], GridInterpolator]
) -> None:
    """Register ``factory`` under ``name``.

    Raises
    ------
    ValueError
        When ``name`` is already registered — naming both the existing and
        the new factory, so a plugin collision is diagnosable from the
        message alone.  Registries never silently overwrite: the shadowed
        entry would keep appearing in docs/CLI help while dispatch ran
        something else.
    """
    if name in INTERPOLATORS:
        raise ValueError(
            f"interpolator {name!r} already registered to "
            f"{INTERPOLATORS[name]!r}; refusing to overwrite with {factory!r}"
        )
    INTERPOLATORS[name] = factory


register_interpolator("nearest", NearestNeighborInterpolator)
register_interpolator("shepard", ModifiedShepardInterpolator)
register_interpolator("shepard-global", GlobalShepardInterpolator)
register_interpolator("linear", DelaunayLinearInterpolator)
register_interpolator("linear-naive", lambda: DelaunayLinearInterpolator(mode="naive"))
register_interpolator("natural", NaturalNeighborInterpolator)
register_interpolator("rbf", RBFInterpolator)


def available_interpolators() -> list[str]:
    """Registry names, sorted."""
    return sorted(INTERPOLATORS)


def make_interpolator(name: str, **kwargs) -> GridInterpolator:
    """Instantiate an interpolator by registry name."""
    try:
        factory = INTERPOLATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown interpolator {name!r}; available: {available_interpolators()}"
        ) from None
    if kwargs:
        if name == "linear-naive":
            kwargs.setdefault("mode", "naive")
            return DelaunayLinearInterpolator(**kwargs)
        return factory(**kwargs)  # type: ignore[call-arg]
    return factory()
