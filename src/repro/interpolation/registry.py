"""Interpolator registry used by the harness, benchmarks and CLI."""

from __future__ import annotations

from typing import Callable

from repro.interpolation.base import GridInterpolator
from repro.interpolation.linear_delaunay import DelaunayLinearInterpolator
from repro.interpolation.natural_neighbor import NaturalNeighborInterpolator
from repro.interpolation.nearest import NearestNeighborInterpolator
from repro.interpolation.rbf import RBFInterpolator
from repro.interpolation.global_shepard import GlobalShepardInterpolator
from repro.interpolation.shepard import ModifiedShepardInterpolator

__all__ = ["available_interpolators", "make_interpolator", "INTERPOLATORS"]

INTERPOLATORS: dict[str, Callable[[], GridInterpolator]] = {
    "nearest": NearestNeighborInterpolator,
    "shepard": ModifiedShepardInterpolator,
    "shepard-global": GlobalShepardInterpolator,
    "linear": DelaunayLinearInterpolator,
    "linear-naive": lambda: DelaunayLinearInterpolator(mode="naive"),
    "natural": NaturalNeighborInterpolator,
    "rbf": RBFInterpolator,
}


def available_interpolators() -> list[str]:
    """Registry names, sorted."""
    return sorted(INTERPOLATORS)


def make_interpolator(name: str, **kwargs) -> GridInterpolator:
    """Instantiate an interpolator by registry name."""
    try:
        factory = INTERPOLATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown interpolator {name!r}; available: {available_interpolators()}"
        ) from None
    if kwargs:
        if name == "linear-naive":
            kwargs.setdefault("mode", "naive")
            return DelaunayLinearInterpolator(**kwargs)
        return factory(**kwargs)  # type: ignore[call-arg]
    return factory()
