"""Rule-based point-cloud → grid reconstruction (paper Sec III-B).

These are the classical methods the FCNN is compared against:

* :class:`NearestNeighborInterpolator` — fastest, blocky.
* :class:`ModifiedShepardInterpolator` — local inverse-distance weighting
  with the Franke–Little weight.
* :class:`DelaunayLinearInterpolator` — piecewise-linear barycentric
  interpolation over a Delaunay tetrahedralization; ``mode="naive"``
  reproduces the paper's slow sequential Python implementation,
  ``mode="vectorized"`` its optimized (CGAL/OpenMP-equivalent) one.
* :class:`NaturalNeighborInterpolator` — discrete Sibson approximation
  (Park et al. [26]).
* :class:`RBFInterpolator` — thin-plate-spline radial basis functions;
  included for completeness, excluded from the paper's headline plots for
  cost.

All share the :class:`GridInterpolator` interface used by the experiment
harness and benchmarks.
"""

from repro.interpolation.base import GridInterpolator
from repro.interpolation.nearest import NearestNeighborInterpolator
from repro.interpolation.shepard import ModifiedShepardInterpolator
from repro.interpolation.global_shepard import GlobalShepardInterpolator
from repro.interpolation.linear_delaunay import DelaunayLinearInterpolator
from repro.interpolation.natural_neighbor import NaturalNeighborInterpolator
from repro.interpolation.rbf import RBFInterpolator
from repro.interpolation.registry import (
    available_interpolators,
    make_interpolator,
    register_interpolator,
)

__all__ = [
    "GridInterpolator",
    "NearestNeighborInterpolator",
    "ModifiedShepardInterpolator",
    "GlobalShepardInterpolator",
    "DelaunayLinearInterpolator",
    "NaturalNeighborInterpolator",
    "RBFInterpolator",
    "available_interpolators",
    "make_interpolator",
    "register_interpolator",
]
