"""Classic (global) Shepard inverse-distance weighting.

The original Shepard (1968) method the paper's "Modified Shepard
Interpolation" bullet improves upon: *every* sample contributes to every
query with weight ``1 / d^p``.  O(M) per query and globally smooth but
blurry — included so the modified variant's improvement is measurable
rather than asserted.  Evaluation is chunked so the (Q x M) distance
matrix never exceeds a memory budget.
"""

from __future__ import annotations

import numpy as np

from repro.grid import UniformGrid
from repro.interpolation.base import GridInterpolator

__all__ = ["GlobalShepardInterpolator"]


class GlobalShepardInterpolator(GridInterpolator):
    """All-pairs inverse-distance weighting (Shepard's original method)."""

    name = "shepard-global"

    def __init__(self, power: float = 2.0, chunk_rows: int = 2048) -> None:
        if power <= 0:
            raise ValueError(f"power must be positive, got {power}")
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        self.power = float(power)
        self.chunk_rows = int(chunk_rows)

    def interpolate(
        self,
        points: np.ndarray,
        values: np.ndarray,
        query: np.ndarray,
        grid: UniformGrid,
    ) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        query = np.atleast_2d(np.asarray(query, dtype=np.float64))

        out = np.empty(len(query), dtype=np.float64)
        for start in range(0, len(query), self.chunk_rows):
            q = query[start : start + self.chunk_rows]
            # (q, M) squared distances via the expansion trick.
            d2 = (
                np.sum(q**2, axis=1)[:, None]
                - 2.0 * q @ points.T
                + np.sum(points**2, axis=1)[None, :]
            )
            d2 = np.maximum(d2, 0.0)
            exact = d2 < 1e-24
            with np.errstate(divide="ignore"):
                w = d2 ** (-self.power / 2.0)
            w[exact] = 0.0
            wsum = w.sum(axis=1)
            safe = wsum > 0
            chunk_out = np.empty(len(q))
            chunk_out[safe] = (w[safe] @ values) / wsum[safe]
            # Queries landing exactly on a sample take its value.
            hit_rows, hit_cols = np.nonzero(exact)
            if hit_rows.size:
                chunk_out[hit_rows] = values[hit_cols]
                safe[hit_rows] = True
            if not safe.all():
                chunk_out[~safe] = values.mean()
            out[start : start + self.chunk_rows] = chunk_out
        return out
