"""Error-bounded lossy compression — the *other* data-reduction path.

The paper positions sampling against the broader reduction landscape via
Di et al.'s survey of error-bounded lossy compression [24].  This package
implements a self-contained SZ-style compressor (Lorenzo prediction +
linear-scaling quantization + DEFLATE entropy coding) so the repo can ask
the systems question the paper's readers will: *at equal storage, does
sampling + learned reconstruction beat compression?*  (See
``repro.experiments.exp_compression``.)
"""

from repro.compression.szlike import (
    CompressedField,
    SZCompressor,
    compression_ratio,
)

__all__ = ["SZCompressor", "CompressedField", "compression_ratio"]
